/**
 * @file
 * Tests of the mitigator registry and the unified experiment API: spec
 * parsing (round-trip, unknown names/keys, malformed values), config
 * extraction, the SRAM single-source-of-truth, and a parameterized
 * sweep running every registered design through the PerfRunner and the
 * generic attack driver.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "attacks/attack.hh"
#include "mitigation/registry.hh"
#include "sim/experiment.hh"

namespace moatsim::mitigation
{
namespace
{

// ------------------------------------------------------------- parsing

TEST(Registry, KnowsTheRegisteredDesigns)
{
    for (const char *name :
         {"moat", "panopticon", "panopticon-counter", "ideal-prc", "null"})
        EXPECT_TRUE(Registry::known(name)) << name;
    EXPECT_FALSE(Registry::known("mithril"));

    const auto names = Registry::names();
    EXPECT_GE(names.size(), 4u);
    for (const auto &name : names) {
        EXPECT_TRUE(Registry::known(name));
        EXPECT_FALSE(Registry::descriptor(name).summary.empty());
    }
}

TEST(Registry, ParseDescribeRoundTrip)
{
    const char *cases[] = {
        "moat",
        "moat:ath=128,eth=64",
        "moat:period=0,safe-reset=false",
        "panopticon:threshold=256,entries=4,drain-all=true",
        "panopticon-counter:slack=128",
        "ideal-prc:period=8,min-count=2",
        "null",
    };
    for (const char *text : cases) {
        const MitigatorSpec first = Registry::parse(text);
        const MitigatorSpec second = Registry::parse(first.describe());
        EXPECT_EQ(first, second) << text;
        EXPECT_EQ(first.describe(), second.describe()) << text;
    }
}

TEST(Registry, DescribeIsCanonicalKeyOrder)
{
    // Keys are emitted in descriptor order regardless of input order.
    const auto a = Registry::parse("moat:eth=64,ath=128");
    const auto b = Registry::parse("moat:ath=128,eth=64");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.describe(), "moat:ath=128,eth=64");
}

TEST(Registry, RejectsUnknownName)
{
    std::string error;
    EXPECT_FALSE(Registry::tryParse("mithril", &error).has_value());
    EXPECT_NE(error.find("unknown mitigator 'mithril'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("moat"), std::string::npos) << error;

    EXPECT_FALSE(Registry::tryParse("", &error).has_value());
    EXPECT_FALSE(Registry::tryParse(":ath=64", &error).has_value());
}

TEST(Registry, RejectsUnknownKey)
{
    std::string error;
    EXPECT_FALSE(Registry::tryParse("moat:bogus=1", &error).has_value());
    EXPECT_NE(error.find("unknown key 'bogus'"), std::string::npos) << error;
    EXPECT_NE(error.find("ath"), std::string::npos) << error;

    // A key of another design is still unknown here.
    EXPECT_FALSE(Registry::tryParse("moat:threshold=128", &error).has_value());
    // "null" takes no parameters at all.
    EXPECT_FALSE(Registry::tryParse("null:ath=64", &error).has_value());
}

TEST(Registry, RejectsMalformedValues)
{
    std::string error;
    EXPECT_FALSE(Registry::tryParse("moat:ath=banana", &error).has_value());
    EXPECT_NE(error.find("'ath'"), std::string::npos) << error;
    EXPECT_NE(error.find("banana"), std::string::npos) << error;

    EXPECT_FALSE(
        Registry::tryParse("moat:safe-reset=maybe", &error).has_value());
    EXPECT_NE(error.find("true/false"), std::string::npos) << error;

    // 2^32 would wrap to 0 in the 32-bit config field; reject instead.
    EXPECT_FALSE(
        Registry::tryParse("moat:ath=4294967296", &error).has_value());
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
    EXPECT_TRUE(Registry::tryParse("moat:ath=4294967295").has_value());

    EXPECT_FALSE(Registry::tryParse("moat:ath", &error).has_value());
    EXPECT_FALSE(Registry::tryParse("moat:ath=", &error).has_value());
    EXPECT_FALSE(Registry::tryParse("moat:=64", &error).has_value());
    EXPECT_FALSE(Registry::tryParse("moat:ath=1,ath=2", &error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

// --------------------------------------------------- config extraction

TEST(Registry, MoatConfigRoundTripsThroughSpec)
{
    MoatConfig cfg;
    cfg.ath = 96;
    cfg.eth = 24;
    cfg.trackerEntries = 4;
    cfg.mitigationPeriodRefis = 10;
    cfg.resetOnRefresh = false;
    cfg.safeReset = false;
    cfg.blastRadius = 1;
    // A fully explicit spec -- the text sim::mitigatorOfArgs emits for
    // the legacy --ath/--eth path -- extracts back to the same config.
    const MoatConfig back = moatConfigOf(Registry::parse(
        "moat:ath=96,eth=24,entries=4,period=10,"
        "reset-on-refresh=false,safe-reset=false,blast=1"));
    EXPECT_EQ(back.ath, cfg.ath);
    EXPECT_EQ(back.eth, cfg.eth);
    EXPECT_EQ(back.trackerEntries, cfg.trackerEntries);
    EXPECT_EQ(back.mitigationPeriodRefis, cfg.mitigationPeriodRefis);
    EXPECT_EQ(back.resetOnRefresh, cfg.resetOnRefresh);
    EXPECT_EQ(back.safeReset, cfg.safeReset);
    EXPECT_EQ(back.blastRadius, cfg.blastRadius);
}

TEST(Registry, ExtractionAppliesOverridesAndDefaults)
{
    const auto pano =
        panopticonConfigOf(Registry::parse("panopticon:threshold=256"));
    EXPECT_EQ(pano.queueThreshold, 256u);
    EXPECT_EQ(pano.queueEntries, PanopticonConfig{}.queueEntries);

    const auto prc = idealPrcConfigOf(Registry::parse("ideal-prc:period=7"));
    EXPECT_EQ(prc.mitigationPeriodRefis, 7u);
}

TEST(Registry, CreateYieldsTheNamedDesign)
{
    EXPECT_EQ(Registry::parse("null").create()->name(), "none");
    EXPECT_NE(Registry::parse("moat:ath=128").create()->name().find("ATH=128"),
              std::string::npos);
    // factory() produces fresh instances per bank.
    const auto factory = Registry::parse("panopticon").factory();
    const auto a = factory(0);
    const auto b = factory(1);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->name(), b->name());
}

TEST(Registry, SramCostComesFromTheImplementation)
{
    // The registry's number is the mitigator's own Section-6.5 number.
    const MoatConfig def;
    EXPECT_EQ(Registry::parse("moat").sramBytesPerBank(),
              MoatMitigator(def).sramBytesPerBank());
    // MOAT-L2/L4 grow with the tracker, as in the paper (7/10/16 B).
    const auto l1 = Registry::parse("moat:entries=1").sramBytesPerBank();
    const auto l2 = Registry::parse("moat:entries=2").sramBytesPerBank();
    const auto l4 = Registry::parse("moat:entries=4").sramBytesPerBank();
    EXPECT_LT(l1, l2);
    EXPECT_LT(l2, l4);
    EXPECT_EQ(Registry::parse("null").sramBytesPerBank(), 0u);
}

// ------------------------------------ every design through the pipeline

class RegistryDesignTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RegistryDesignTest, RunsThroughPerfRunner)
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.windowFraction = 0.03125;
    sim::PerfRunner runner(tg);
    const auto spec = Registry::parse(GetParam());
    const auto r =
        runner.run(workload::findWorkload("x264"), spec, abo::Level::L1);
    EXPECT_EQ(r.mitigator, spec.describe());
    EXPECT_GT(r.acts, 0u);
    EXPECT_GT(r.normPerf, 0.0);
    EXPECT_LE(r.normPerf, 1.001);
}

TEST_P(RegistryDesignTest, RunsThroughTheAttackDriver)
{
    attacks::AttackConfig cfg;
    cfg.pattern = "hammer";
    cfg.budget = 600;
    const auto r = attacks::runAttack(cfg, Registry::parse(GetParam()));
    EXPECT_EQ(r.totalActs, 600u);
    EXPECT_GT(r.maxHammer, 0u);
    EXPECT_GT(r.duration, 0);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, RegistryDesignTest,
                         ::testing::Values("moat", "panopticon",
                                           "panopticon-counter", "ideal-prc",
                                           "null"),
                         [](const auto &info) {
                             std::string name = info.param;
                             std::replace(name.begin(), name.end(), '-', '_');
                             return name;
                         });

TEST(RegistryDesign, UnmitigatedHammerRunsHotterThanMoat)
{
    attacks::AttackConfig cfg;
    cfg.pattern = "hammer";
    cfg.budget = 2000;
    const auto none = attacks::runAttack(cfg, Registry::parse("null"));
    const auto moat = attacks::runAttack(cfg, Registry::parse("moat"));
    EXPECT_GT(none.maxHammer, moat.maxHammer);
    EXPECT_EQ(none.alerts, 0u);
    EXPECT_GT(moat.alerts, 0u);
}

// ------------------------------------------------------- Experiment API

TEST(Experiment, RunsTheConfiguredSelection)
{
    sim::ExperimentConfig ec;
    ec.tracegen.banksSimulated = 8;
    ec.tracegen.windowFraction = 0.03125;
    ec.workload = "x264";
    ec.mitigator = Registry::parse("panopticon");
    sim::Experiment exp(ec);

    const auto results = exp.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].workload, "x264");
    EXPECT_EQ(results[0].mitigator, "panopticon");

    // A sweep over another design reuses the same baseline cache.
    const auto swept =
        exp.run(Registry::parse("moat:ath=128,eth=64"), abo::Level::L1);
    ASSERT_EQ(swept.size(), 1u);
    EXPECT_EQ(swept[0].mitigator, "moat:ath=128,eth=64");
}

} // namespace
} // namespace moatsim::mitigation
