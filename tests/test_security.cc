/**
 * @file
 * Unit tests for the ground-truth SecurityMonitor.
 */

#include <gtest/gtest.h>

#include "dram/security.hh"

namespace moatsim::dram
{
namespace
{

TEST(Security, ActivationDamagesNeighboursOnly)
{
    SecurityMonitor m(100, 2);
    m.onActivate(50);
    EXPECT_EQ(m.damage(48), 1u);
    EXPECT_EQ(m.damage(49), 1u);
    EXPECT_EQ(m.damage(50), 0u); // the aggressor itself is not damaged
    EXPECT_EQ(m.damage(51), 1u);
    EXPECT_EQ(m.damage(52), 1u);
    EXPECT_EQ(m.damage(53), 0u);
    EXPECT_EQ(m.hammerCount(50), 1u);
}

TEST(Security, EdgeRowsClipVictimWindow)
{
    SecurityMonitor m(100, 2);
    m.onActivate(0);
    EXPECT_EQ(m.damage(1), 1u);
    EXPECT_EQ(m.damage(2), 1u);
    m.onActivate(99);
    EXPECT_EQ(m.damage(97), 1u);
    EXPECT_EQ(m.damage(98), 1u);
}

TEST(Security, RefreshResetsDamageAndHammer)
{
    SecurityMonitor m(100, 2);
    for (int i = 0; i < 10; ++i)
        m.onActivate(50);
    m.onRowRefreshed(51);
    EXPECT_EQ(m.damage(51), 0u);
    EXPECT_EQ(m.damage(49), 10u); // other victims keep their damage
    m.onRowRefreshed(50);
    EXPECT_EQ(m.hammerCount(50), 0u);
}

TEST(Security, MitigationResetsHammerNotDamage)
{
    SecurityMonitor m(100, 2);
    for (int i = 0; i < 5; ++i)
        m.onActivate(50);
    m.onMitigated(50);
    EXPECT_EQ(m.hammerCount(50), 0u);
    // Victim damage is cleared by the victim refreshes, which the
    // caller reports separately.
    EXPECT_EQ(m.damage(51), 5u);
}

TEST(Security, MaxTrackingSurvivesResets)
{
    SecurityMonitor m(100, 2);
    for (int i = 0; i < 7; ++i)
        m.onActivate(10);
    m.onMitigated(10);
    m.onRowRefreshed(11);
    for (int i = 0; i < 3; ++i)
        m.onActivate(20);
    EXPECT_EQ(m.maxHammer(), 7u);
    EXPECT_EQ(m.maxHammerRow(), 10u);
    EXPECT_EQ(m.maxDamage(), 7u);
}

TEST(Security, DoubleSidedDamageAccumulates)
{
    // Figure 7(a) scenario: the victim between two aggressors takes
    // damage from both even though each aggressor's count stays low.
    SecurityMonitor m(100, 2);
    for (int i = 0; i < 4; ++i) {
        m.onActivate(49);
        m.onActivate(51);
    }
    EXPECT_EQ(m.damage(50), 8u);
    EXPECT_EQ(m.hammerCount(49), 4u);
    EXPECT_EQ(m.hammerCount(51), 4u);
}

TEST(Security, UnsafeResetScenarioKeepsVictimDamage)
{
    // T activations before and after the aggressor's own refresh: the
    // aggressor's hammer count resets but the victim's damage is 2T
    // until the victim itself is refreshed (Section 4.3).
    SecurityMonitor m(100, 2);
    for (int i = 0; i < 30; ++i)
        m.onActivate(60);
    m.onRowRefreshed(60); // aggressor refreshed, not the victims
    for (int i = 0; i < 30; ++i)
        m.onActivate(60);
    EXPECT_EQ(m.hammerCount(60), 30u);
    EXPECT_EQ(m.damage(61), 60u);
}

TEST(Security, ClearResetsEverything)
{
    SecurityMonitor m(100, 2);
    m.onActivate(10);
    m.clear();
    EXPECT_EQ(m.maxHammer(), 0u);
    EXPECT_EQ(m.maxDamage(), 0u);
    EXPECT_EQ(m.damage(11), 0u);
    EXPECT_EQ(m.hammerCount(10), 0u);
}

TEST(Security, BlastRadiusOne)
{
    SecurityMonitor m(100, 1);
    m.onActivate(50);
    EXPECT_EQ(m.damage(49), 1u);
    EXPECT_EQ(m.damage(51), 1u);
    EXPECT_EQ(m.damage(48), 0u);
    EXPECT_EQ(m.damage(52), 0u);
}

} // namespace
} // namespace moatsim::dram
