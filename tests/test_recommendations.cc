/**
 * @file
 * Tests for the counter-carrying Panopticon queue (the Section-9
 * recommendations implemented) and for the safe-reset ablation.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/security.hh"
#include "mitigation/panopticon_counter.hh"
#include "subchannel/subchannel.hh"

namespace moatsim::mitigation
{
namespace
{

struct CounterQueueFixture : public ::testing::Test
{
    dram::TimingParams timing = [] {
        dram::TimingParams t;
        t.rowsPerBank = 1024;
        t.refreshGroups = 128;
        return t;
    }();
    dram::Bank bank{timing, dram::CounterInit::Zero};
    dram::SecurityMonitor security{1024, 2};
    MitigationStats stats;
    MitigationContext ctx{bank, security, stats};

    void
    act(PanopticonCounterMitigator &m, RowId row, uint32_t times = 1)
    {
        for (uint32_t i = 0; i < times; ++i) {
            bank.activate(row);
            security.onActivate(row);
            m.onActivate(row, ctx);
        }
    }
};

TEST_F(CounterQueueFixture, EnqueuedRowsKeepCounting)
{
    PanopticonCounterConfig cfg; // insert at 128, 64 ACTs of slack
    PanopticonCounterMitigator m(cfg);
    act(m, 10, 128);
    EXPECT_EQ(m.queueSize(), 1u);
    act(m, 10, 64); // exactly the slack, not above it
    EXPECT_FALSE(m.wantsAlert());
    act(m, 10, 1); // 65 activations while enqueued
    EXPECT_TRUE(m.wantsAlert());
}

TEST_F(CounterQueueFixture, NoDuplicateEntriesWhileEnqueued)
{
    PanopticonCounterConfig cfg;
    cfg.alertSlack = 1024;
    PanopticonCounterMitigator m(cfg);
    act(m, 10, 300); // crosses 128 and 256 while enqueued
    EXPECT_EQ(m.queueSize(), 1u);
}

TEST_F(CounterQueueFixture, MaxFirstService)
{
    PanopticonCounterConfig cfg;
    cfg.alertSlack = 1024;
    PanopticonCounterMitigator m(cfg);
    act(m, 10, 128);
    act(m, 20, 128);
    act(m, 20, 100); // row 20 is now the hottest enqueued row
    for (int i = 0; i < 4; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(security.hammerCount(20), 0u); // served before row 10
    EXPECT_NE(security.hammerCount(10), 0u);
}

TEST_F(CounterQueueFixture, AlertLatchesMaxEntry)
{
    PanopticonCounterConfig cfg;
    PanopticonCounterMitigator m(cfg);
    act(m, 10, 128);
    act(m, 10, 70); // 70 while enqueued > 64 of slack
    EXPECT_TRUE(m.wantsAlert());
    m.onAlertAsserted(ctx);
    EXPECT_FALSE(m.wantsAlert());
    m.onRfm(ctx);
    EXPECT_EQ(security.hammerCount(10), 0u);
    EXPECT_EQ(m.queueSize(), 0u);
}

TEST_F(CounterQueueFixture, SramCost)
{
    PanopticonCounterConfig cfg;
    PanopticonCounterMitigator m(cfg);
    EXPECT_EQ(m.sramBytesPerBank(), 24u); // 8 entries x 3 bytes
}

TEST(CounterQueueDeathTest, ZeroSlackIsFatal)
{
    PanopticonCounterConfig cfg;
    cfg.alertSlack = 0;
    EXPECT_EXIT(PanopticonCounterMitigator{cfg},
                testing::ExitedWithCode(1), "slack");
}

TEST(CounterQueueIntegration, JailbreakPatternIsBounded)
{
    // The headline of the repair: the deterministic Jailbreak pattern
    // cannot push a row past the queue's ALERT threshold by more than
    // the inter-ALERT slack.
    subchannel::SubChannelConfig sc;
    sc.numBanks = 1;
    PanopticonCounterConfig cfg; // 64 ACTs of enqueued slack
    subchannel::SubChannel ch(sc, [&](BankId) {
        return std::make_unique<PanopticonCounterMitigator>(cfg);
    });

    std::vector<RowId> rows;
    for (int i = 0; i < 8; ++i)
        rows.push_back(30000 + 8 * i);
    for (int k = 0; k < 128; ++k) {
        for (RowId r : rows)
            ch.activate(0, r);
    }
    const Time pace = ch.timing().tREFI / 32;
    Time nb = ch.now();
    for (int a = 0; a < 1024; ++a)
        nb = ch.activateAt(0, rows.back(), nb) + pace;
    ch.advanceTo(ch.now() + fromNs(2000));

    // Bounded by queueing threshold + slack + one mitigation latency
    // (~3x the threshold) instead of the original design's 9x.
    EXPECT_LE(ch.security(0).maxHammer(), 3 * cfg.queueThreshold);
}

} // namespace
} // namespace moatsim::mitigation
