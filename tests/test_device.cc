/**
 * @file
 * Tests of the named DDR5 device model (dram/device.hh): spec
 * parse/describe round-trips and error text, the default grade's
 * bit-exact equivalence with the hand-assembled Table-3 system, the
 * geometry each preset resolves to, and the per-level seed-derivation
 * determinism of channels x ranks x sub-channels sweeps.
 */

#include <gtest/gtest.h>

#include "common/hash.hh"
#include "common/logging.hh"
#include "dram/device.hh"
#include "mitigation/registry.hh"
#include "sim/result_io.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/tracegen.hh"

namespace moatsim::dram
{
namespace
{

class DeviceTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

// ------------------------------------------------------ spec round-trip

TEST_F(DeviceTest, DefaultSpecDescribesBare)
{
    EXPECT_EQ(DeviceSpec{}.describe(), "device");
    EXPECT_TRUE(DeviceSpec{}.isDefault());
    EXPECT_EQ(DeviceSpec{}.org(), defaultDeviceOrg());
    EXPECT_EQ(DeviceSpec{}.speed(), defaultDeviceSpeed());
}

TEST_F(DeviceTest, DescribeReproducesGivenKeysOnly)
{
    EXPECT_EQ(DeviceSpec::parse("device").describe(), "device");
    EXPECT_EQ(DeviceSpec::parse("device:org=8gb").describe(),
              "device:org=8gb");
    EXPECT_EQ(DeviceSpec::parse("device:speed=ddr5-prac-fast").describe(),
              "device:speed=ddr5-prac-fast");
}

TEST_F(DeviceTest, DescribeCanonicalizesKeyOrder)
{
    const auto spec =
        DeviceSpec::parse("device:speed=ddr5-prac-slow,org=16gb");
    EXPECT_EQ(spec.describe(), "device:org=16gb,speed=ddr5-prac-slow");
    // parse(describe()) is a fixed point.
    EXPECT_EQ(DeviceSpec::parse(spec.describe()).describe(),
              spec.describe());
}

TEST_F(DeviceTest, NamingTheDefaultsIsStillDefault)
{
    const auto spec =
        DeviceSpec::parse("device:org=32gb,speed=ddr5-prac");
    EXPECT_TRUE(spec.isDefault());
    // describe() keeps the spelled-out form (round-trip fidelity) ...
    EXPECT_EQ(spec.describe(), "device:org=32gb,speed=ddr5-prac");
    // ... but resolves to the same model as the bare spec.
    EXPECT_EQ(spec.resolve().totalBanks(),
              DeviceModel{}.totalBanks());
}

TEST_F(DeviceTest, EveryPresetCombinationRoundTrips)
{
    for (const auto &o : deviceOrgs()) {
        for (const auto &s : deviceSpeeds()) {
            const std::string text =
                "device:org=" + o.name + ",speed=" + s.name;
            const auto spec = DeviceSpec::parse(text);
            EXPECT_EQ(spec.describe(), text);
            const DeviceModel m = spec.resolve();
            EXPECT_EQ(m.org().name, o.name);
            EXPECT_EQ(m.speed().name, s.name);
            EXPECT_EQ(m.describe(), text);
        }
    }
}

// ---------------------------------------------------------- error text

TEST_F(DeviceTest, TryParseReportsUnknownNames)
{
    std::string error;
    EXPECT_FALSE(DeviceSpec::tryParse("dram:org=32gb", &error));
    EXPECT_EQ(error, "unknown device spec 'dram' (expected "
                     "device:org=...,speed=...)");

    EXPECT_FALSE(DeviceSpec::tryParse(":org=32gb", &error));
    EXPECT_EQ(error, "empty device name in ':org=32gb' (expected "
                     "device:org=...,speed=...)");
}

TEST_F(DeviceTest, TryParseReportsUnknownOrgAndSpeed)
{
    std::string error;
    EXPECT_FALSE(DeviceSpec::tryParse("device:org=99gb", &error));
    EXPECT_EQ(error,
              "device: unknown org '99gb' (known: 32gb, 8gb, 16gb, "
              "64gb-2r, 64gb-2ch, 128gb-2r2ch)");

    EXPECT_FALSE(DeviceSpec::tryParse("device:speed=ddr4", &error));
    EXPECT_EQ(error, "device: unknown speed 'ddr4' (known: ddr5-prac, "
                     "ddr5-prac-fast, ddr5-prac-slow)");
}

TEST_F(DeviceTest, TryParseReportsMalformedParameters)
{
    std::string error;
    EXPECT_FALSE(DeviceSpec::tryParse("device:org", &error));
    EXPECT_EQ(error,
              "device: malformed parameter 'org' (expected key=value)");

    EXPECT_FALSE(DeviceSpec::tryParse("device:org=", &error));
    EXPECT_EQ(error,
              "device: malformed parameter 'org=' (expected key=value)");

    EXPECT_FALSE(DeviceSpec::tryParse("device:rows=64", &error));
    EXPECT_EQ(error,
              "device: unknown key 'rows' (known keys: org, speed)");

    EXPECT_FALSE(
        DeviceSpec::tryParse("device:org=8gb,org=16gb", &error));
    EXPECT_EQ(error, "device: duplicate key 'org'");
}

// --------------------------------------------- default-grade identity

TEST_F(DeviceTest, DefaultTimingEqualsHandAssembledDefaults)
{
    const TimingParams def;
    const TimingParams t = DeviceModel{}.timing();
    EXPECT_EQ(t.tACT, def.tACT);
    EXPECT_EQ(t.tPRE, def.tPRE);
    EXPECT_EQ(t.tRAS, def.tRAS);
    EXPECT_EQ(t.tRC, def.tRC);
    EXPECT_EQ(t.tREFW, def.tREFW);
    EXPECT_EQ(t.tREFI, def.tREFI);
    EXPECT_EQ(t.tRFC, def.tRFC);
    EXPECT_EQ(t.tRRD, def.tRRD);
    EXPECT_EQ(t.tFAW, def.tFAW);
    EXPECT_EQ(t.tRFM, def.tRFM);
    EXPECT_EQ(t.tAlertNormal, def.tAlertNormal);
    EXPECT_EQ(t.rowsPerBank, def.rowsPerBank);
    EXPECT_EQ(t.banksPerSubchannel, def.banksPerSubchannel);
    EXPECT_EQ(t.refreshGroups, def.refreshGroups);
    EXPECT_EQ(t.blastRadius, def.blastRadius);
}

TEST_F(DeviceTest, DefaultAddressConfigEqualsHandAssembledDefaults)
{
    const AddressMap::Config def;
    const AddressMap::Config cfg = DeviceModel{}.addressConfig();
    EXPECT_EQ(cfg.rowBits, def.rowBits);
    EXPECT_EQ(cfg.bankBits, def.bankBits);
    EXPECT_EQ(cfg.rowIndexBits, def.rowIndexBits);
    EXPECT_EQ(cfg.rankBits, 0u);
    EXPECT_EQ(cfg.channelBits, 0u);
    // Encode/decode are byte-identical to the pre-device map when the
    // new bit widths are zero.
    const AddressMap a(def), b(cfg);
    const uint64_t addr = 0x123456789abcull;
    const auto ca = a.decode(addr), cb = b.decode(addr);
    EXPECT_EQ(ca.bank, cb.bank);
    EXPECT_EQ(ca.row, cb.row);
    EXPECT_EQ(cb.rank, 0u);
    EXPECT_EQ(cb.channel, 0u);
}

TEST_F(DeviceTest, WithDeviceDefaultGradeIsIdentity)
{
    const workload::TraceGenConfig base;
    const workload::TraceGenConfig derived =
        workload::withDevice(base, DeviceModel{});
    // Field-for-field identical -- the config key, every derived seed,
    // and the JSONL output stay bit-identical to the legacy pipeline.
    EXPECT_EQ(derived.device, "");
    EXPECT_EQ(derived.channels, base.channels);
    EXPECT_EQ(derived.ranks, base.ranks);
    EXPECT_EQ(derived.systemBanks, base.systemBanks);
    EXPECT_EQ(derived.timing.tRC, base.timing.tRC);
    EXPECT_EQ(derived.timing.rowsPerBank, base.timing.rowsPerBank);
    EXPECT_EQ(workload::configKey(derived), workload::configKey(base));
}

// ------------------------------------------------------------ geometry

TEST_F(DeviceTest, PresetGeometry)
{
    const DeviceModel small =
        DeviceSpec::parse("device:org=8gb").resolve();
    EXPECT_EQ(small.rowsPerBank(), kTable3RowsPerBank / 4);
    EXPECT_EQ(small.banksPerSubchannel(), kTable3BanksPerSubchannel);
    EXPECT_EQ(small.totalSubchannelSlots(), 2u);
    EXPECT_EQ(small.addressConfig().rowIndexBits, 14u);

    const DeviceModel big =
        DeviceSpec::parse("device:org=128gb-2r2ch").resolve();
    EXPECT_EQ(big.channels(), 2u);
    EXPECT_EQ(big.ranks(), 2u);
    EXPECT_EQ(big.totalSubchannelSlots(), 8u);
    EXPECT_EQ(big.totalBanks(), 8u * 32u);
    EXPECT_EQ(big.addressConfig().rankBits, 1u);
    EXPECT_EQ(big.addressConfig().channelBits, 1u);
}

TEST_F(DeviceTest, SpeedGradeTimings)
{
    const DeviceModel fast =
        DeviceSpec::parse("device:speed=ddr5-prac-fast").resolve();
    const TimingParams t = fast.timing();
    EXPECT_EQ(t.tRC, fromNs(44));
    EXPECT_EQ(t.tRFC, fromNs(350));
    // Geometry still comes from the (default) org.
    EXPECT_EQ(t.rowsPerBank, kTable3RowsPerBank);
    // The PRAC counter-update cost is the tPRE/tACT gap per JEDEC.
    EXPECT_EQ(fast.speed().pracIncrement,
              fast.speed().tPRE - fast.speed().tACT);
}

// ------------------------------------------- per-level seed derivation

TEST_F(DeviceTest, SystemSlotSeedsFollowTheLevelScheme)
{
    const auto factory = mitigation::Registry::parse("moat").factory();

    sim::SystemConfig flat;
    flat.channel.seed = 99;
    flat.channel.numBanks = 4;
    flat.subchannels = 3;
    const sim::System legacy(flat, factory);
    for (uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(legacy.subchannel(i).config().seed, hashCombine(99, i));

    sim::SystemConfig deep = flat;
    deep.channels = 2;
    deep.ranks = 2;
    deep.subchannels = 2;
    const sim::System system(deep, factory);
    ASSERT_EQ(system.numSubchannels(), 8u);
    for (uint32_t c = 0; c < 2; ++c) {
        for (uint32_t r = 0; r < 2; ++r) {
            for (uint32_t s = 0; s < 2; ++s) {
                const uint64_t want = hashCombine(
                    hashCombine(hashCombine(uint64_t{99}, c), r), s);
                const uint32_t slot = system.slotIndex(c, r, s);
                EXPECT_EQ(system.subchannel(slot).config().seed, want)
                    << "slot " << slot;
            }
        }
    }
}

TEST_F(DeviceTest, MultiTopologySweepBitIdenticalAcrossJobCounts)
{
    // The acceptance bar: a channels x ranks x sub-channels device
    // sweep is deterministic at any --jobs count, bit-identically.
    workload::TraceGenConfig tg;
    tg.banksSimulated = 4;
    tg.numCores = 4;
    tg.windowFraction = 0.015625;
    tg.subchannels = 2; // withDevice keeps the simulated slice size
    tg = workload::withDevice(
        tg, DeviceSpec::parse("device:org=128gb-2r2ch,"
                              "speed=ddr5-prac-fast")
                .resolve());

    std::vector<sim::SweepCell> cells;
    for (const char *w : {"roms", "xz"}) {
        cells.push_back({workload::findWorkload(w),
                         mitigation::Registry::parse("moat"),
                         abo::Level::L1});
    }

    std::vector<std::vector<sim::PerfResult>> runs;
    for (const unsigned jobs : {1u, 8u}) {
        sim::SweepConfig sc;
        sc.tracegen = tg;
        sc.jobs = jobs;
        sim::SweepEngine engine(sc);
        runs.push_back(engine.run(cells));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
        EXPECT_EQ(sim::toJsonLine(runs[0][i]),
                  sim::toJsonLine(runs[1][i]))
            << "cell " << i;
        // Every cell simulated the full 2x2x2 slot grid and carries
        // the device tag into the serialized result.
        EXPECT_EQ(runs[0][i].perSubchannel.size(), 8u);
        EXPECT_EQ(runs[0][i].device,
                  "device:org=128gb-2r2ch,speed=ddr5-prac-fast");
        EXPECT_NE(sim::toJsonLine(runs[0][i]).find("\"device\":"),
                  std::string::npos);
    }
}

TEST_F(DeviceTest, DeviceGradeChangesTheConfigKey)
{
    // Different grades must never share traces, baselines, or seeds.
    const workload::TraceGenConfig base;
    const auto fast = workload::withDevice(
        base, DeviceSpec::parse("device:speed=ddr5-prac-fast").resolve());
    const auto slow = workload::withDevice(
        base, DeviceSpec::parse("device:speed=ddr5-prac-slow").resolve());
    EXPECT_NE(workload::configKey(fast), workload::configKey(base));
    EXPECT_NE(workload::configKey(fast), workload::configKey(slow));
}

TEST_F(DeviceTest, ResultDeviceFieldRoundTripsThroughJsonl)
{
    sim::PerfResult r;
    r.workload = "roms";
    r.mitigator = "moat";
    r.device = "device:org=8gb";
    const std::string line = sim::toJsonLine(r);
    EXPECT_NE(line.find("\"device\":\"device:org=8gb\""),
              std::string::npos);
    EXPECT_EQ(sim::perfResultOfJsonLine(line).device, "device:org=8gb");

    // Absent field decodes as the empty (legacy) tag.
    r.device.clear();
    const std::string bare = sim::toJsonLine(r);
    EXPECT_EQ(bare.find("\"device\":"), std::string::npos);
    EXPECT_EQ(sim::perfResultOfJsonLine(bare).device, "");
}

} // namespace
} // namespace moatsim::dram
