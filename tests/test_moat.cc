/**
 * @file
 * Unit tests for the MOAT mitigator (Section 4, Appendix D).
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/security.hh"
#include "mitigation/moat.hh"

namespace moatsim::mitigation
{
namespace
{

struct MoatFixture : public ::testing::Test
{
    dram::TimingParams timing = [] {
        dram::TimingParams t;
        t.rowsPerBank = 256;
        t.refreshGroups = 32; // 8 rows per group
        return t;
    }();
    dram::Bank bank{timing, dram::CounterInit::Zero};
    dram::SecurityMonitor security{256, 2};
    MitigationStats stats;
    MitigationContext ctx{bank, security, stats};

    /** Activate through the bank + mitigator like the SubChannel. */
    void
    act(MoatMitigator &m, RowId row, uint32_t times = 1)
    {
        for (uint32_t i = 0; i < times; ++i) {
            bank.activate(row);
            security.onActivate(row);
            m.onActivate(row, ctx);
        }
    }
};

TEST_F(MoatFixture, RowsBelowEthAreNotTracked)
{
    MoatConfig cfg;
    MoatMitigator m(cfg);
    act(m, 10, cfg.eth); // exactly ETH: not above it
    EXPECT_FALSE(m.trackerValid());
}

TEST_F(MoatFixture, CrossingEthEntersTracker)
{
    MoatConfig cfg;
    MoatMitigator m(cfg);
    act(m, 10, cfg.eth + 1);
    EXPECT_TRUE(m.trackerValid());
    EXPECT_EQ(m.maxTrackedRow(), 10u);
    EXPECT_EQ(m.maxTrackedCount(), cfg.eth + 1);
}

TEST_F(MoatFixture, TrackerKeepsHighestCountRow)
{
    MoatConfig cfg;
    MoatMitigator m(cfg);
    act(m, 10, 40);
    act(m, 20, 50);
    EXPECT_EQ(m.maxTrackedRow(), 20u);
    act(m, 10, 20); // row 10 now at 60
    EXPECT_EQ(m.maxTrackedRow(), 10u);
    EXPECT_EQ(m.maxTrackedCount(), 60u);
}

TEST_F(MoatFixture, AlertRequestedAboveAth)
{
    MoatConfig cfg; // ATH = 64
    MoatMitigator m(cfg);
    act(m, 10, cfg.ath);
    EXPECT_FALSE(m.wantsAlert());
    act(m, 10, 1); // 65th activation exceeds ATH
    EXPECT_TRUE(m.wantsAlert());
}

TEST_F(MoatFixture, AlertLatchThenRfmMitigates)
{
    MoatConfig cfg;
    MoatMitigator m(cfg);
    act(m, 10, cfg.ath + 1);
    m.onAlertAsserted(ctx);
    EXPECT_FALSE(m.wantsAlert()); // consumed by the assertion
    EXPECT_EQ(m.pendingAlertRow(), 10u);
    m.onRfm(ctx);
    EXPECT_EQ(bank.counter(10), 0u);
    EXPECT_EQ(security.hammerCount(10), 0u);
    EXPECT_EQ(stats.alertMitigations, 1u);
    EXPECT_FALSE(m.trackerValid());
}

TEST_F(MoatFixture, ActivationsAfterAssertCannotRedirectRfm)
{
    // Section 4.2 semantics: the CTA is latched at assertion; a row
    // activated to a higher count in the 180 ns window is not the one
    // mitigated.
    MoatConfig cfg;
    MoatMitigator m(cfg);
    act(m, 10, cfg.ath + 1);
    m.onAlertAsserted(ctx);
    act(m, 20, cfg.ath + 10); // higher count, after assertion
    m.onRfm(ctx);
    EXPECT_EQ(bank.counter(10), 0u);   // 10 was mitigated
    EXPECT_NE(bank.counter(20), 0u);   // 20 was not
    EXPECT_TRUE(m.wantsAlert());       // 20 still needs an ALERT
}

TEST_F(MoatFixture, ProactiveMitigationAtPeriodBoundary)
{
    MoatConfig cfg; // period 5, 1 step per REF
    MoatMitigator m(cfg);
    act(m, 100, 40); // above ETH=32
    // REFs 1..5: boundary at the 5th (latch), work on REFs 6..10.
    for (int i = 0; i < 5; ++i)
        m.onRefCommand(ctx);
    EXPECT_FALSE(m.trackerValid()); // latched into the CMA
    for (int i = 0; i < 5; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(bank.counter(100), 0u); // mitigated and counter reset
    EXPECT_EQ(stats.proactiveMitigations, 1u);
    EXPECT_EQ(stats.victimRefreshes, 4u);
}

TEST_F(MoatFixture, PeriodZeroDisablesProactive)
{
    MoatConfig cfg;
    cfg.mitigationPeriodRefis = 0;
    MoatMitigator m(cfg);
    act(m, 100, 60);
    for (int i = 0; i < 50; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(stats.proactiveMitigations, 0u);
    EXPECT_NE(bank.counter(100), 0u);
}

TEST_F(MoatFixture, SafeResetKeepsLastTwoRowCounts)
{
    MoatConfig cfg;
    MoatMitigator m(cfg);
    // Hammer the last two rows of group 0 (rows 6 and 7).
    act(m, 6, 20);
    act(m, 7, 25);
    act(m, 3, 10);
    m.onAutoRefresh(0, 7, ctx); // group 0 refresh resets counters
    EXPECT_EQ(bank.counter(6), 0u);
    EXPECT_EQ(bank.counter(7), 0u);
    EXPECT_EQ(bank.counter(3), 0u);
    // The replicas keep counting for rows 6 and 7: 13 more ACTs must
    // trip ETH for row 7 (25 + 13 = 38 > 32), although the in-array
    // counter is only 13.
    act(m, 7, 13);
    EXPECT_TRUE(m.trackerValid());
    EXPECT_EQ(m.maxTrackedRow(), 7u);
    EXPECT_EQ(m.maxTrackedCount(), 38u);
}

TEST_F(MoatFixture, SafeResetReplicaTriggersAlert)
{
    MoatConfig cfg; // ATH 64
    MoatMitigator m(cfg);
    act(m, 7, 60);
    m.onAutoRefresh(0, 7, ctx);
    act(m, 7, 4); // replica now at 64
    EXPECT_FALSE(m.wantsAlert());
    act(m, 7, 1); // replica 65 > ATH
    EXPECT_TRUE(m.wantsAlert());
}

TEST_F(MoatFixture, ReplicasDroppedAtNextGroupRefresh)
{
    MoatConfig cfg;
    MoatMitigator m(cfg);
    act(m, 7, 60);
    m.onAutoRefresh(0, 7, ctx);  // replicas: rows 6, 7
    m.onAutoRefresh(8, 15, ctx); // rows 6, 7 now safe; replicas: 14, 15
    act(m, 7, 5);
    // Row 7's effective count restarts from the in-array counter.
    EXPECT_FALSE(m.wantsAlert());
    EXPECT_EQ(bank.counter(7), 5u);
}

TEST_F(MoatFixture, UnsafeResetLosesCounts)
{
    MoatConfig cfg;
    cfg.safeReset = false;
    MoatMitigator m(cfg);
    act(m, 7, 60);
    m.onAutoRefresh(0, 7, ctx);
    // Figure 7(a): the count vanishes; 60 more ACTs only reach 60.
    act(m, 7, 60);
    EXPECT_FALSE(m.wantsAlert());
    // But the ground truth shows the victim accumulated 120 of damage.
    EXPECT_EQ(security.damage(8), 120u);
}

TEST_F(MoatFixture, NoResetOnRefreshKeepsCounters)
{
    MoatConfig cfg;
    cfg.resetOnRefresh = false;
    MoatMitigator m(cfg);
    act(m, 7, 60);
    m.onAutoRefresh(0, 7, ctx);
    EXPECT_EQ(bank.counter(7), 60u);
}

TEST_F(MoatFixture, MultiEntryTrackerKeepsTopL)
{
    MoatConfig cfg;
    cfg.trackerEntries = 2; // MOAT-L2
    MoatMitigator m(cfg);
    act(m, 10, 40);
    act(m, 20, 50);
    act(m, 30, 45); // evicts the minimum (row 10 at 40)
    EXPECT_EQ(m.maxTrackedRow(), 20u);
    act(m, 10, 10); // row 10 back at 50; evicts row 30 (45)
    // Tracker should now hold rows 20 (50) and 10 (50).
    m.onAlertAsserted(ctx);
    m.onRfm(ctx);
    m.onRfm(ctx);
    EXPECT_EQ(bank.counter(10), 0u);
    EXPECT_EQ(bank.counter(20), 0u);
    EXPECT_NE(bank.counter(30), 0u);
}

TEST_F(MoatFixture, SramBudgetMatchesPaper)
{
    // Section 6.5 / Appendix D: 7 / 10 / 16 bytes per bank.
    MoatConfig l1;
    EXPECT_EQ(MoatMitigator(l1).sramBytesPerBank(), 7u);
    MoatConfig l2;
    l2.trackerEntries = 2;
    EXPECT_EQ(MoatMitigator(l2).sramBytesPerBank(), 10u);
    MoatConfig l4;
    l4.trackerEntries = 4;
    EXPECT_EQ(MoatMitigator(l4).sramBytesPerBank(), 16u);
}

TEST_F(MoatFixture, StepsPerRefCoversPeriod)
{
    MoatConfig cfg;
    cfg.mitigationPeriodRefis = 5;
    EXPECT_EQ(cfg.stepsPerRef(), 1u);
    cfg.mitigationPeriodRefis = 3;
    EXPECT_EQ(cfg.stepsPerRef(), 2u);
    cfg.mitigationPeriodRefis = 1;
    EXPECT_EQ(cfg.stepsPerRef(), 5u);
    cfg.mitigationPeriodRefis = 10;
    EXPECT_EQ(cfg.stepsPerRef(), 1u);
}

TEST_F(MoatFixture, NameEncodesConfiguration)
{
    MoatConfig cfg;
    MoatMitigator m(cfg);
    EXPECT_EQ(m.name(), "MOAT-L1(ETH=32,ATH=64)");
}

TEST(MoatDeathTest, EthAboveAthIsFatal)
{
    MoatConfig cfg;
    cfg.eth = 100;
    cfg.ath = 64;
    EXPECT_EXIT(MoatMitigator{cfg}, testing::ExitedWithCode(1), "ETH");
}

} // namespace
} // namespace moatsim::mitigation
