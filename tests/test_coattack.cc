/**
 * @file
 * Adversary-under-load scenario engine: attacker/victim core-class
 * accounting on the shared multi-sub-channel System.
 *
 *  - An attack-free co-run must equal a plain System replay bit for
 *    bit (the attacker core is additive, never perturbing).
 *  - The attacker's maxHammer on the shared system must never exceed
 *    its isolated run of the identical trace: contention interleaves
 *    more REFs/mitigation into the pattern and can only hurt it.
 *  - Co-attack sweep cells must be bit-identical at any jobs count.
 */

#include <gtest/gtest.h>

#include "sim/coattack.hh"
#include "sim/experiment.hh"
#include "sim/result_io.hh"
#include "sim/system.hh"

namespace moatsim::sim
{
namespace
{

workload::TraceGenConfig
smallTracegen(uint32_t subchannels = 2)
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.numCores = 4;
    tg.windowFraction = 0.015625;
    tg.subchannels = subchannels;
    return tg;
}

/** The System a co-attack cell simulates, built by hand. */
System
manualSystem(const workload::TraceGenConfig &tg,
             const mitigation::MitigatorSpec &m, abo::Level level,
             uint64_t seed)
{
    SystemConfig sys;
    sys.channel.timing = tg.timing;
    sys.channel.numBanks = tg.banksSimulated;
    sys.channel.aboLevel = level;
    sys.channel.securityEnabled = true;
    sys.channel.seed = seed;
    sys.subchannels = tg.subchannels;
    return System(sys, m.factory());
}

void
expectIdenticalSystemResults(const SystemResult &a, const SystemResult &b)
{
    ASSERT_EQ(a.coreFinish.size(), b.coreFinish.size());
    for (size_t i = 0; i < a.coreFinish.size(); ++i)
        EXPECT_EQ(a.coreFinish[i], b.coreFinish[i]) << "core " << i;
    EXPECT_EQ(a.totalActs, b.totalActs);
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_EQ(a.alerts, b.alerts);
    ASSERT_EQ(a.perSubchannel.size(), b.perSubchannel.size());
    for (size_t i = 0; i < a.perSubchannel.size(); ++i) {
        EXPECT_EQ(a.perSubchannel[i].acts, b.perSubchannel[i].acts);
        EXPECT_EQ(a.perSubchannel[i].refs, b.perSubchannel[i].refs);
        EXPECT_EQ(a.perSubchannel[i].alerts, b.perSubchannel[i].alerts);
        EXPECT_EQ(a.perSubchannel[i].rfms, b.perSubchannel[i].rfms);
    }
}

TEST(CoAttack, AttackFreeCoRunEqualsPlainSystemReplay)
{
    const auto tg = smallTracegen();
    const auto &spec = workload::findWorkload("xz");
    const auto m = mitigation::Registry::parse("moat");

    CoAttackScenario none;
    none.pattern = "none";
    const auto attack = resolveAttack(none, tg);
    const SystemResult co = runCoSystem(tg, CoreModel{}, spec, m,
                                        abo::Level::L1, attack);

    // The same replay, hand-assembled without the co-attack layer.
    System sys = manualSystem(
        tg, m, abo::Level::L1,
        coAttackCellSeed(tg, spec, m, abo::Level::L1, attack));
    const SystemResult plain =
        runSystem(sys, workload::generateTraces(spec, tg));

    expectIdenticalSystemResults(co, plain);
}

TEST(CoAttack, SharedMaxHammerNeverExceedsIsolated)
{
    const auto tg = smallTracegen();
    const auto &spec = workload::findWorkload("roms");

    for (const char *mname : {"moat", "panopticon", "null"}) {
        for (const char *pattern : {"hammer", "round-robin"}) {
            const auto m = mitigation::Registry::parse(mname);
            CoAttackScenario sc;
            sc.pattern = pattern;
            const auto attack = resolveAttack(sc, tg);

            uint32_t shared = 0;
            runCoSystem(tg, CoreModel{}, spec, m, abo::Level::L1, attack,
                        &shared);

            // Isolated: the identical open-loop trace with no victim
            // traffic on an identically seeded System.
            const auto at = workload::generateAttackTrace(attack);
            System sys = manualSystem(
                tg, m, abo::Level::L1,
                coAttackCellSeed(tg, spec, m, abo::Level::L1, attack));
            runSystem(sys, {at.trace});
            uint32_t isolated = 0;
            const auto &sec =
                sys.subchannel(at.subchannel).security(at.bank);
            for (const RowId row : at.rows)
                isolated = std::max(isolated, sec.peakHammer(row));

            // Dominance holds up to one leaked ALERT window: victim
            // ACTs shift where the ALERT lands relative to the
            // attacker's burst (they also count toward the
            // inter-ALERT activation minimum), so the shared run can
            // jitter past the isolated one by at most the 3+L ACTs a
            // single ALERT-to-ALERT window leaks -- never by a
            // window's worth of real progress.
            const uint32_t slack = tg.timing.actsPerAlertWindow(
                abo::levelValue(abo::Level::L1));
            EXPECT_LE(shared, isolated + slack)
                << mname << "/" << pattern
                << ": contention must not meaningfully help the attacker";
            EXPECT_GT(isolated, 0u) << mname << "/" << pattern;
        }
    }
}

TEST(CoAttack, SweepCellsBitIdenticalAcrossJobCounts)
{
    const auto tg = smallTracegen();
    std::vector<CoAttackCell> cells;
    for (const char *w : {"roms", "xz"}) {
        for (const char *m : {"moat", "panopticon"}) {
            for (const char *p : {"hammer", "postponement", "none"}) {
                CoAttackScenario sc;
                sc.pattern = p;
                cells.push_back({workload::findWorkload(w),
                                 mitigation::Registry::parse(m),
                                 abo::Level::L1, sc});
            }
        }
    }

    std::vector<std::vector<CoAttackResult>> runs;
    for (const unsigned jobs : {1u, 8u}) {
        SweepConfig sc;
        sc.tracegen = tg;
        sc.jobs = jobs;
        CoAttackEngine engine(sc);
        runs.push_back(engine.run(cells));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (size_t i = 0; i < runs[0].size(); ++i)
        EXPECT_EQ(toJsonLine(runs[0][i]), toJsonLine(runs[1][i]))
            << "cell " << i;
}

TEST(CoAttack, AttackedRunReportsAttackActivity)
{
    // The attacked cell must attribute extra defence work to the
    // attack: alerts >= attack-free alerts, a positive attacker act
    // count, and a victim slowdown of at least 1.
    SweepConfig sc;
    sc.tracegen = smallTracegen();
    sc.jobs = 1;
    CoAttackEngine engine(sc);
    CoAttackScenario attack;
    attack.pattern = "hammer";
    const CoAttackResult r =
        engine.runCell({workload::findWorkload("xz"),
                        mitigation::Registry::parse("moat"),
                        abo::Level::L1, attack});
    EXPECT_GT(r.attackerActs, 0u);
    EXPECT_GT(r.attackerMaxHammer, 0u);
    EXPECT_GE(r.alerts, r.attackFreeAlerts);
    EXPECT_GE(r.victimSlowdown, 1.0);
    EXPECT_LE(r.victimNormPerf, 1.0);
    EXPECT_GT(r.victimActs, 0u);
}

TEST(CoAttack, ExperimentMatrixMatchesEngineCells)
{
    // The Experiment wiring fans the same cells through the same
    // engine; a (mitigator x attack) matrix must match per-cell runs.
    ExperimentConfig ec;
    ec.tracegen = smallTracegen();
    ec.workload = "xz";
    ec.jobs = 2;
    Experiment exp(ec);

    std::vector<CoAttackPoint> points;
    for (const char *m : {"moat", "panopticon"}) {
        CoAttackPoint p;
        p.mitigator = mitigation::Registry::parse(m);
        p.attack.pattern = "round-robin";
        points.push_back(p);
    }
    const auto matrix = exp.runCoAttackMatrix(points);
    ASSERT_EQ(matrix.size(), 2u);
    ASSERT_EQ(matrix[0].size(), 1u);

    SweepConfig sc;
    sc.tracegen = ec.tracegen;
    sc.jobs = 1;
    CoAttackEngine engine(sc);
    for (size_t i = 0; i < points.size(); ++i) {
        const CoAttackResult direct =
            engine.runCell({workload::findWorkload("xz"),
                            points[i].mitigator, points[i].level,
                            points[i].attack});
        EXPECT_EQ(toJsonLine(matrix[i][0]), toJsonLine(direct));
    }
}

TEST(CoAttack, ResultRoundTripsThroughJsonl)
{
    CoAttackResult r;
    r.workload = "we\"ird";
    r.mitigator = "moat:ath=64";
    r.pattern = "hammer";
    r.aboLevel = 4;
    r.attackerMaxHammer = 319;
    r.attackerActs = 9615;
    r.victimSlowdown = 1.0625;
    r.victimNormPerf = 0.9412;
    r.victimActs = 12345;
    r.alerts = 188;
    r.attackFreeAlerts = 53;
    r.rfms = 188;
    r.attackFreeRfms = 53;
    r.refs = 256;
    r.alertsPerRefi = 0.734375;
    r.attackFreeAlertsPerRefi = 0.20703125;
    const std::string line = toJsonLine(r);
    const CoAttackResult back = coAttackResultOfJsonLine(line);
    EXPECT_EQ(toJsonLine(back), line);
    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.attackerMaxHammer, r.attackerMaxHammer);
    EXPECT_EQ(back.attackFreeAlertsPerRefi, r.attackFreeAlertsPerRefi);
}

} // namespace
} // namespace moatsim::sim
