/**
 * @file
 * Tests of the memory-system performance model (single-sub-channel
 * runMemSystem and the full-system sim::System replay) and the
 * PerfRunner.
 */

#include <gtest/gtest.h>

#include "mitigation/null.hh"
#include "mitigation/registry.hh"
#include "sim/memsys.hh"
#include "sim/perf.hh"
#include "sim/system.hh"

namespace moatsim::sim
{
namespace
{

using subchannel::SubChannel;
using subchannel::SubChannelConfig;

SubChannel
nullChannel(uint32_t banks)
{
    SubChannelConfig sc;
    sc.numBanks = banks;
    return SubChannel(sc, [](BankId) {
        return std::make_unique<mitigation::NullMitigator>();
    });
}

workload::CoreTrace
simpleTrace(Time window, Time gap, BankId bank, RowId row, int n)
{
    workload::CoreTrace t;
    t.window = window;
    for (int i = 0; i < n; ++i)
        t.events.push_back({static_cast<Time>(i) * gap, bank, row});
    return t;
}

TEST(MemSys, EmptyTracesFinishAtWindow)
{
    auto ch = nullChannel(2);
    std::vector<workload::CoreTrace> traces(2);
    traces[0].window = fromNs(1000);
    traces[1].window = fromNs(1000);
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_EQ(r.totalActs, 0u);
    EXPECT_EQ(r.coreFinish[0], fromNs(1000));
}

TEST(MemSys, SparseTraceFinishesNearWindow)
{
    // Large gaps: memory is never the bottleneck, the finish time is
    // the trace window plus at most one access latency.
    auto ch = nullChannel(2);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(simpleTrace(fromNs(100000), fromNs(1000), 0, 100, 50));
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_NEAR(toNs(r.coreFinish[0]), 100000, 3000);
    EXPECT_EQ(r.totalActs, 50u);
}

TEST(MemSys, DenseTraceIsBankLimited)
{
    // Zero-gap trace to one bank: finish ~ n * tRC (plus REF time).
    auto ch = nullChannel(1);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(simpleTrace(fromNs(100), 0, 0, 100, 100));
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_GE(r.coreFinish[0], 100 * ch.timing().tRC);
}

TEST(MemSys, TwoCoresShareTheChannelFairly)
{
    auto ch = nullChannel(2);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(simpleTrace(fromNs(50000), fromNs(100), 0, 100, 200));
    traces.push_back(simpleTrace(fromNs(50000), fromNs(100), 1, 200, 200));
    const MemSysResult r = runMemSystem(ch, traces);
    const double ratio = static_cast<double>(r.coreFinish[0]) /
                         static_cast<double>(r.coreFinish[1]);
    EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(MemSys, MlpBoundsOutstandingRequests)
{
    // With mlp=1 a zero-gap stream serializes fully; with mlp=4 the
    // same stream to different banks overlaps and finishes faster.
    std::vector<workload::CoreTrace> traces;
    workload::CoreTrace t;
    t.window = fromNs(100000);
    for (int i = 0; i < 400; ++i)
        t.events.push_back({0, static_cast<BankId>(i % 4), 100});
    traces.push_back(t);

    auto ch1 = nullChannel(4);
    CoreModel m1;
    m1.mlp = 1;
    const auto r1 = runMemSystem(ch1, traces, m1);
    auto ch4 = nullChannel(4);
    CoreModel m4;
    m4.mlp = 4;
    const auto r4 = runMemSystem(ch4, traces, m4);
    EXPECT_LT(r4.coreFinish[0], r1.coreFinish[0]);
}

TEST(MemSys, CountsRefsAndAlerts)
{
    auto ch = nullChannel(1);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(
        simpleTrace(10 * ch.timing().tREFI, fromNs(100), 0, 100, 300));
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_GE(r.refs, 8u);
    EXPECT_EQ(r.alerts, 0u);
}

SystemConfig
moatSystem(uint32_t subchannels, uint32_t banks)
{
    SystemConfig sys;
    sys.channel.numBanks = banks;
    sys.channel.securityEnabled = false;
    sys.subchannels = subchannels;
    return sys;
}

/** A trace hammering one row on one sub-channel hard enough to ALERT. */
workload::CoreTrace
hammerTrace(uint32_t subchannel, int n)
{
    workload::CoreTrace t;
    t.window = fromNs(static_cast<int64_t>(n) * 100);
    for (int i = 0; i < n; ++i)
        t.events.push_back({static_cast<Time>(i) * fromNs(60), 0, 7,
                            subchannel});
    return t;
}

TEST(System, AlertsStayOnTheirSubChannel)
{
    // Sub-channels are independent ABO domains: hammering rows on
    // sub-channel 0 must raise ALERTs there and nowhere else.
    const auto moat = mitigation::Registry::parse("moat:ath=32,eth=16");
    System sys(moatSystem(2, 4), moat.factory());
    std::vector<workload::CoreTrace> traces;
    traces.push_back(hammerTrace(0, 600));
    const SystemResult r = runSystem(sys, traces);
    ASSERT_EQ(r.perSubchannel.size(), 2u);
    EXPECT_GT(r.perSubchannel[0].alerts, 0u);
    EXPECT_EQ(r.perSubchannel[1].alerts, 0u);
    EXPECT_EQ(r.perSubchannel[1].acts, 0u);
    EXPECT_EQ(r.perSubchannel[0].acts, 600u);
}

TEST(System, AggregatesAreTheSumOfSubChannels)
{
    const auto moat = mitigation::Registry::parse("moat:ath=32,eth=16");
    System sys(moatSystem(2, 4), moat.factory());
    std::vector<workload::CoreTrace> traces;
    traces.push_back(hammerTrace(0, 400));
    traces.push_back(hammerTrace(1, 400));
    const SystemResult r = runSystem(sys, traces);
    ASSERT_EQ(r.perSubchannel.size(), 2u);
    uint64_t acts = 0;
    uint64_t refs = 0;
    uint64_t alerts = 0;
    for (const auto &u : r.perSubchannel) {
        acts += u.acts;
        refs += u.refs;
        alerts += u.alerts;
    }
    EXPECT_EQ(acts, r.totalActs);
    EXPECT_EQ(refs, r.refs);
    EXPECT_EQ(alerts, r.alerts);
    // Both channels saw the same hammer pattern.
    EXPECT_EQ(r.perSubchannel[0].acts, r.perSubchannel[1].acts);
}

TEST(System, SingleSubChannelMatchesRunMemSystem)
{
    // The System loop with one sub-channel must reproduce the
    // runMemSystem compatibility wrapper bit for bit.
    const auto moat = mitigation::Registry::parse("moat:ath=32,eth=16");
    std::vector<workload::CoreTrace> traces;
    traces.push_back(hammerTrace(0, 500));
    traces.push_back(simpleTrace(fromNs(30000), fromNs(150), 1, 42, 150));

    System sys(moatSystem(1, 4), moat.factory());
    const SystemResult a = runSystem(sys, traces);

    subchannel::SubChannelConfig sc = moatSystem(1, 4).channel;
    sc.seed = sys.subchannel(0).config().seed; // same derived stream
    SubChannel ch(sc, moat.factory());
    const MemSysResult b = runMemSystem(ch, traces);

    EXPECT_EQ(a.coreFinish, b.coreFinish);
    EXPECT_EQ(a.totalActs, b.totalActs);
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_EQ(a.alerts, b.alerts);
}

TEST(System, FastAlertScanIsBehaviourNeutral)
{
    // The sticky-flag ALERT path is a pure optimization: a full run
    // with fastAlertScan off must match one with it on exactly.
    const auto moat = mitigation::Registry::parse("moat:ath=32,eth=16");
    std::vector<workload::CoreTrace> traces;
    traces.push_back(hammerTrace(0, 800));
    traces.push_back(hammerTrace(1, 800));

    SystemResult results[2];
    for (const bool fast : {false, true}) {
        SystemConfig cfg = moatSystem(2, 4);
        cfg.channel.fastAlertScan = fast;
        System sys(cfg, moat.factory());
        results[fast ? 1 : 0] = runSystem(sys, traces);
    }
    EXPECT_EQ(results[0].coreFinish, results[1].coreFinish);
    EXPECT_EQ(results[0].alerts, results[1].alerts);
    EXPECT_EQ(results[0].refs, results[1].refs);
    ASSERT_GT(results[0].alerts, 0u); // the comparison must bite
}

TEST(System, EmptyTracesFinishAtWindow)
{
    System sys(moatSystem(2, 2), [](BankId) {
        return std::make_unique<mitigation::NullMitigator>();
    });
    std::vector<workload::CoreTrace> traces(2);
    traces[0].window = fromNs(1000);
    traces[1].window = fromNs(1000);
    const SystemResult r = runSystem(sys, traces);
    EXPECT_EQ(r.totalActs, 0u);
    EXPECT_EQ(r.coreFinish[0], fromNs(1000));
    EXPECT_EQ(r.coreFinish[1], fromNs(1000));
}

TEST(PerfRunner, MultiSubChannelRunReportsBreakdown)
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.subchannels = 2;
    tg.windowFraction = 0.03125;
    PerfRunner runner(tg);
    const auto r = runner.run(workload::findWorkload("roms"),
                              mitigation::Registry::parse("moat"));
    ASSERT_EQ(r.perSubchannel.size(), 2u);
    // Traffic is routed across both sub-channels.
    EXPECT_GT(r.perSubchannel[0].acts, 0u);
    EXPECT_GT(r.perSubchannel[1].acts, 0u);
    EXPECT_EQ(r.perSubchannel[0].acts + r.perSubchannel[1].acts, r.acts);
    EXPECT_EQ(r.perSubchannel[0].alerts + r.perSubchannel[1].alerts,
              r.alerts);
}

TEST(PerfRunner, BaselineNormPerfIsOne)
{
    // Running the suite against an effectively-disabled MOAT
    // (ATH huge) must give ~1.0 normalized performance.
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.windowFraction = 0.03125;
    PerfRunner runner(tg);
    const auto moat =
        mitigation::Registry::parse("moat:ath=1048576,eth=524288");
    const auto r = runner.run(workload::findWorkload("x264"), moat);
    EXPECT_NEAR(r.normPerf, 1.0, 0.002);
    EXPECT_EQ(r.alerts, 0u);
}

TEST(PerfRunner, HotWorkloadSlowsMoreThanColdOne)
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.windowFraction = 0.0625;
    PerfRunner runner(tg);
    const mitigation::MitigatorSpec moat; // default: ATH 64
    const auto hot = runner.run(workload::findWorkload("roms"), moat);
    const auto cold = runner.run(workload::findWorkload("tc"), moat);
    EXPECT_GT(hot.alertsPerRefi, cold.alertsPerRefi);
    EXPECT_LE(cold.alertsPerRefi, 0.001);
    EXPECT_LT(hot.normPerf, 1.0);
}

TEST(PerfRunner, Ath128QuenchesAlerts)
{
    // Needs the full 32-bank sub-channel: every ALERT gives all banks
    // a free mitigation, so fewer banks means more residual alerts.
    workload::TraceGenConfig tg;
    tg.banksSimulated = dram::kTable3BanksPerSubchannel;
    tg.windowFraction = 0.0625;
    PerfRunner runner(tg);
    const auto a64 = mitigation::Registry::parse("moat");
    const auto a128 = mitigation::Registry::parse("moat:ath=128,eth=64");
    const auto &spec = workload::findWorkload("roms");
    const auto r64 = runner.run(spec, a64);
    const auto r128 = runner.run(spec, a128);
    EXPECT_LT(r128.alertsPerRefi, 0.1 * r64.alertsPerRefi + 1e-3);
}

} // namespace
} // namespace moatsim::sim
