/**
 * @file
 * Tests of the memory-system performance model and the PerfRunner.
 */

#include <gtest/gtest.h>

#include "mitigation/null.hh"
#include "sim/memsys.hh"
#include "sim/perf.hh"

namespace moatsim::sim
{
namespace
{

using subchannel::SubChannel;
using subchannel::SubChannelConfig;

SubChannel
nullChannel(uint32_t banks)
{
    SubChannelConfig sc;
    sc.numBanks = banks;
    return SubChannel(sc, [](BankId) {
        return std::make_unique<mitigation::NullMitigator>();
    });
}

workload::CoreTrace
simpleTrace(Time window, Time gap, BankId bank, RowId row, int n)
{
    workload::CoreTrace t;
    t.window = window;
    for (int i = 0; i < n; ++i)
        t.events.push_back({static_cast<Time>(i) * gap, bank, row});
    return t;
}

TEST(MemSys, EmptyTracesFinishAtWindow)
{
    auto ch = nullChannel(2);
    std::vector<workload::CoreTrace> traces(2);
    traces[0].window = fromNs(1000);
    traces[1].window = fromNs(1000);
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_EQ(r.totalActs, 0u);
    EXPECT_EQ(r.coreFinish[0], fromNs(1000));
}

TEST(MemSys, SparseTraceFinishesNearWindow)
{
    // Large gaps: memory is never the bottleneck, the finish time is
    // the trace window plus at most one access latency.
    auto ch = nullChannel(2);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(simpleTrace(fromNs(100000), fromNs(1000), 0, 100, 50));
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_NEAR(toNs(r.coreFinish[0]), 100000, 3000);
    EXPECT_EQ(r.totalActs, 50u);
}

TEST(MemSys, DenseTraceIsBankLimited)
{
    // Zero-gap trace to one bank: finish ~ n * tRC (plus REF time).
    auto ch = nullChannel(1);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(simpleTrace(fromNs(100), 0, 0, 100, 100));
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_GE(r.coreFinish[0], 100 * ch.timing().tRC);
}

TEST(MemSys, TwoCoresShareTheChannelFairly)
{
    auto ch = nullChannel(2);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(simpleTrace(fromNs(50000), fromNs(100), 0, 100, 200));
    traces.push_back(simpleTrace(fromNs(50000), fromNs(100), 1, 200, 200));
    const MemSysResult r = runMemSystem(ch, traces);
    const double ratio = static_cast<double>(r.coreFinish[0]) /
                         static_cast<double>(r.coreFinish[1]);
    EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(MemSys, MlpBoundsOutstandingRequests)
{
    // With mlp=1 a zero-gap stream serializes fully; with mlp=4 the
    // same stream to different banks overlaps and finishes faster.
    std::vector<workload::CoreTrace> traces;
    workload::CoreTrace t;
    t.window = fromNs(100000);
    for (int i = 0; i < 400; ++i)
        t.events.push_back({0, static_cast<BankId>(i % 4), 100});
    traces.push_back(t);

    auto ch1 = nullChannel(4);
    CoreModel m1;
    m1.mlp = 1;
    const auto r1 = runMemSystem(ch1, traces, m1);
    auto ch4 = nullChannel(4);
    CoreModel m4;
    m4.mlp = 4;
    const auto r4 = runMemSystem(ch4, traces, m4);
    EXPECT_LT(r4.coreFinish[0], r1.coreFinish[0]);
}

TEST(MemSys, CountsRefsAndAlerts)
{
    auto ch = nullChannel(1);
    std::vector<workload::CoreTrace> traces;
    traces.push_back(
        simpleTrace(10 * ch.timing().tREFI, fromNs(100), 0, 100, 300));
    const MemSysResult r = runMemSystem(ch, traces);
    EXPECT_GE(r.refs, 8u);
    EXPECT_EQ(r.alerts, 0u);
}

TEST(PerfRunner, BaselineNormPerfIsOne)
{
    // Running the suite against an effectively-disabled MOAT
    // (ATH huge) must give ~1.0 normalized performance.
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.windowFraction = 0.03125;
    PerfRunner runner(tg);
    const auto moat =
        mitigation::Registry::parse("moat:ath=1048576,eth=524288");
    const auto r = runner.run(workload::findWorkload("x264"), moat);
    EXPECT_NEAR(r.normPerf, 1.0, 0.002);
    EXPECT_EQ(r.alerts, 0u);
}

TEST(PerfRunner, HotWorkloadSlowsMoreThanColdOne)
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.windowFraction = 0.0625;
    PerfRunner runner(tg);
    const mitigation::MitigatorSpec moat; // default: ATH 64
    const auto hot = runner.run(workload::findWorkload("roms"), moat);
    const auto cold = runner.run(workload::findWorkload("tc"), moat);
    EXPECT_GT(hot.alertsPerRefi, cold.alertsPerRefi);
    EXPECT_LE(cold.alertsPerRefi, 0.001);
    EXPECT_LT(hot.normPerf, 1.0);
}

TEST(PerfRunner, Ath128QuenchesAlerts)
{
    // Needs the full 32-bank sub-channel: every ALERT gives all banks
    // a free mitigation, so fewer banks means more residual alerts.
    workload::TraceGenConfig tg;
    tg.banksSimulated = 32;
    tg.windowFraction = 0.0625;
    PerfRunner runner(tg);
    const auto a64 = mitigation::Registry::parse("moat");
    const auto a128 = mitigation::Registry::parse("moat:ath=128,eth=64");
    const auto &spec = workload::findWorkload("roms");
    const auto r64 = runner.run(spec, a64);
    const auto r128 = runner.run(spec, a128);
    EXPECT_LT(r128.alertsPerRefi, 0.1 * r64.alertsPerRefi + 1e-3);
}

} // namespace
} // namespace moatsim::sim
