/**
 * @file
 * The `moatsim serve` contract: a served request's cells are
 * byte-identical to a direct in-process run, concurrent clients
 * asking for the same cells compute each distinct cell exactly once
 * (the shared ResultStore's single-flight), malformed or invalid
 * requests get protocol errors without killing the daemon, the
 * admission budget never starves a lone oversize request, and the
 * self-healing loop: injected compute faults fail one request with a
 * retryable error while the daemon keeps serving, transient accept
 * errors are survived and counted, the deterministic retry backoff is
 * a pure function of (seed, attempt), and a chaos run under an armed
 * fault plan converges byte-identically to a clean run.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "sim/experiment.hh"
#include "sim/result_io.hh"
#include "sim/run_request.hh"
#include "sim/serve.hh"

namespace moatsim::sim
{
namespace
{

/** A deliberately tiny request: one workload, one sub-channel, a
 *  1/64 window, serial execution. */
RunRequest
smallRequest()
{
    RunRequest req;
    req.kind = "perf";
    req.workload = "x264";
    req.fraction = 0.015625;
    req.subchannels = 1;
    req.jobs = 1;
    return req;
}

std::string
socketPathOf(const std::string &name)
{
    return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/** In-memory result store, explicit (immune to ambient env knobs). */
ServeConfig
smallServeConfig(const std::string &socket)
{
    ServeConfig sc;
    sc.socketPath = socket;
    sc.resultStore = ResultStore::Config{};
    sc.resultStore.enabled = true;
    return sc;
}

// ------------------------------------------------------- request keys

TEST(RequestKey, SchedulingKnobsDoNotPerturbTheKey)
{
    // The key is the serve protocol's dedupe identity: two requests
    // that must produce identical bytes must collide, however they
    // are scheduled (keylint enforces the exemptions statically).
    const RunRequest base = smallRequest();
    RunRequest other = base;
    other.jobs = 16;
    other.traceStore = false;
    EXPECT_EQ(requestKey(base), requestKey(other));
}

TEST(RequestKey, ResultShapingFieldsPerturbTheKey)
{
    const RunRequest base = smallRequest();
    const uint64_t k = requestKey(base);
    RunRequest r = base;
    r.mitigator = "moat:eth=256";
    EXPECT_NE(requestKey(r), k);
    r = base;
    r.fraction = 0.03125;
    EXPECT_NE(requestKey(r), k);
    r = base;
    r.seed = 8;
    EXPECT_NE(requestKey(r), k);
    r = base;
    r.level = 2;
    EXPECT_NE(requestKey(r), k);
    r = base;
    r.device = "device:org=64gb";
    EXPECT_NE(requestKey(r), k);
}

TEST(RequestKey, AttackFieldsCountOnlyForCoattack)
{
    // toJsonLine() omits the attack block for perf requests; the key
    // mirrors that, so a perf request ignores attack-field noise...
    const RunRequest base = smallRequest();
    RunRequest r = base;
    r.pattern = "rowpress";
    r.attackSeed = 99;
    EXPECT_EQ(requestKey(base), requestKey(r));
    // ...while a coattack request folds the full scenario.
    RunRequest ca = base;
    ca.kind = "coattack";
    RunRequest ca2 = ca;
    ca2.pattern = "rowpress";
    EXPECT_NE(requestKey(ca), requestKey(ca2));
    EXPECT_NE(requestKey(ca), requestKey(base));
}

TEST(Serve, RoundTripMatchesDirectRun)
{
    const std::string socket = socketPathOf("moatsim_serve_rt.sock");
    Server server(smallServeConfig(socket));
    server.start();
    std::thread loop([&server] { server.serveForever(); });

    const RunRequest req = smallRequest();
    const ServeReply reply = serveRequest(socket, req);
    ASSERT_TRUE(reply.ok) << reply.error;
    ASSERT_EQ(reply.cells.size(), 1u);
    EXPECT_NE(reply.done.find("\"kind\":\"done\""), std::string::npos);
    EXPECT_NE(reply.done.find("\"cells\":1"), std::string::npos);
    // The done line reports the request's content-address, zero-padded
    // hex64, so clients can correlate sweeps across sessions.
    char key_hex[32];
    std::snprintf(key_hex, sizeof key_hex, "\"request\":\"%016llx\"",
                  static_cast<unsigned long long>(requestKey(req)));
    EXPECT_NE(reply.done.find(key_hex), std::string::npos);

    // The same request run directly, store disabled: same bytes.
    ExperimentConfig ec = experimentConfigOf(req);
    ec.resultStore = ResultStore::Config{};
    Experiment direct(ec);
    const auto results = direct.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(reply.cells[0], toJsonLine(results[0]));

    const auto bye = serveRequestLine(socket, "{\"kind\":\"shutdown\"}");
    EXPECT_TRUE(bye.ok) << bye.error;
    EXPECT_NE(bye.done.find("\"kind\":\"bye\""), std::string::npos);
    loop.join();
}

TEST(Serve, ConcurrentClientsComputeEachCellOnce)
{
    const std::string socket = socketPathOf("moatsim_serve_dedupe.sock");
    Server server(smallServeConfig(socket));
    server.start();
    std::thread loop([&server] { server.serveForever(); });

    constexpr int kClients = 4;
    std::vector<ServeReply> replies(kClients);
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (int i = 0; i < kClients; ++i) {
            clients.emplace_back([&replies, &socket, i] {
                replies[i] = serveRequest(socket, smallRequest());
            });
        }
        for (auto &c : clients)
            c.join();
    }

    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(replies[i].ok) << "client " << i << ": "
                                   << replies[i].error;
        ASSERT_EQ(replies[i].cells.size(), 1u) << "client " << i;
        EXPECT_EQ(replies[i].cells[0], replies[0].cells[0])
            << "client " << i;
    }
    // One distinct cell across 4 requests: one compute, three-plus
    // hits (in-flight or resolved, both count as dedupe).
    const auto st = server.resultStore()->stats();
    EXPECT_EQ(st.computes, 1u);
    EXPECT_EQ(st.hits, static_cast<uint64_t>(kClients - 1));

    const auto bye = serveRequestLine(socket, "{\"kind\":\"shutdown\"}");
    EXPECT_TRUE(bye.ok) << bye.error;
    loop.join();
}

TEST(Serve, RejectsBadRequestsWithoutDying)
{
    const std::string socket = socketPathOf("moatsim_serve_bad.sock");
    Server server(smallServeConfig(socket));
    server.start();
    std::thread loop([&server] { server.serveForever(); });

    const auto unknownWorkload = serveRequestLine(
        socket, "{\"kind\":\"perf\",\"workload\":\"nope\"}");
    EXPECT_FALSE(unknownWorkload.ok);
    EXPECT_NE(unknownWorkload.error.find("workload"), std::string::npos)
        << unknownWorkload.error;

    const auto noKind = serveRequestLine(socket, "{\"nokind\":1}");
    EXPECT_FALSE(noKind.ok);

    const auto unknownKind =
        serveRequestLine(socket, "{\"kind\":\"frobnicate\"}");
    EXPECT_FALSE(unknownKind.ok);
    EXPECT_NE(unknownKind.error.find("frobnicate"), std::string::npos);

    const auto badLevel = serveRequestLine(
        socket, "{\"kind\":\"perf\",\"level\":3}");
    EXPECT_FALSE(badLevel.ok);
    EXPECT_NE(badLevel.error.find("level"), std::string::npos);

    // The daemon survived all of it.
    const auto stats = serveRequestLine(socket, "{\"kind\":\"stats\"}");
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_NE(stats.done.find("\"kind\":\"stats\""), std::string::npos);
    EXPECT_NE(stats.done.find("\"computes\":0"), std::string::npos);

    const auto bye = serveRequestLine(socket, "{\"kind\":\"shutdown\"}");
    EXPECT_TRUE(bye.ok) << bye.error;
    loop.join();
}

TEST(Serve, OversizeRequestIsStillAdmittedAndMaxRequestsStops)
{
    const std::string socket = socketPathOf("moatsim_serve_admit.sock");
    ServeConfig sc = smallServeConfig(socket);
    // A budget far below any request's cost: the lone request must
    // still run (admission only queues against other running work).
    sc.maxCost = 1e-6;
    // ... and the server must exit on its own after serving it.
    sc.maxRequests = 1;
    Server server(sc);
    server.start();
    std::thread loop([&server] { server.serveForever(); });

    const ServeReply reply = serveRequest(socket, smallRequest());
    ASSERT_TRUE(reply.ok) << reply.error;
    ASSERT_EQ(reply.cells.size(), 1u);
    loop.join(); // maxRequests reached; no shutdown request needed
}

// ------------------------------------------------------- self-healing

TEST(Serve, TransientAcceptErrnosAreClassified)
{
    EXPECT_TRUE(transientAcceptError(EMFILE));
    EXPECT_TRUE(transientAcceptError(ENFILE));
    EXPECT_TRUE(transientAcceptError(ECONNABORTED));
    EXPECT_TRUE(transientAcceptError(ENOBUFS));
    EXPECT_TRUE(transientAcceptError(ENOMEM));
    EXPECT_FALSE(transientAcceptError(EBADF)) << "fatal listener error";
    EXPECT_FALSE(transientAcceptError(EINVAL));
}

TEST(Serve, RetryBackoffIsSeededDeterministicAndBounded)
{
    for (unsigned attempt = 0; attempt < 12; ++attempt) {
        const uint64_t ms = retryBackoffMs(7, attempt);
        EXPECT_EQ(ms, retryBackoffMs(7, attempt)) << "pure function";
        EXPECT_GT(ms, 0u);
        EXPECT_LE(ms, 250u) << "capped";
    }
    // Different seeds pace differently somewhere in the sequence.
    bool differs = false;
    for (unsigned attempt = 0; attempt < 12; ++attempt)
        differs |= retryBackoffMs(7, attempt) != retryBackoffMs(8, attempt);
    EXPECT_TRUE(differs);
}

TEST(Serve, InjectedComputeFaultFailsRetryablyAndDaemonSurvives)
{
    const std::string socket = socketPathOf("moatsim_serve_fault.sock");
    Server server(smallServeConfig(socket));
    server.start();
    std::thread loop([&server] { server.serveForever(); });

    fault::arm("sweep.compute@1");
    const ServeReply hurt = serveRequest(socket, smallRequest());
    fault::disarm();
    EXPECT_FALSE(hurt.ok);
    EXPECT_TRUE(hurt.retryable) << hurt.error;
    EXPECT_NE(hurt.error.find("cell compute failed"), std::string::npos)
        << hurt.error;
    EXPECT_NE(hurt.error.find("sweep.compute"), std::string::npos)
        << hurt.error;

    // The daemon outlived the fault: the same request now succeeds,
    // and the stats line counts the compute failure.
    const ServeReply fine = serveRequest(socket, smallRequest());
    ASSERT_TRUE(fine.ok) << fine.error;
    ASSERT_EQ(fine.cells.size(), 1u);
    const auto stats = serveRequestLine(socket, "{\"kind\":\"stats\"}");
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_NE(stats.done.find("\"compute_failures\":1"),
              std::string::npos)
        << stats.done;

    const auto bye = serveRequestLine(socket, "{\"kind\":\"shutdown\"}");
    EXPECT_TRUE(bye.ok) << bye.error;
    loop.join();
}

TEST(Serve, InjectedAcceptFaultsBackOffAndKeepServing)
{
    const std::string socket = socketPathOf("moatsim_serve_accept.sock");
    Server server(smallServeConfig(socket));
    server.start();
    fault::arm("serve.accept@0.5:2");
    std::thread loop([&server] { server.serveForever(); });

    // Every request lands despite the accept loop stumbling: a faulted
    // accept leaves the pending connection queued, backs off, and
    // retries, so clients only see added latency.
    for (int i = 0; i < 3; ++i) {
        const ServeReply reply = serveRequest(socket, smallRequest());
        ASSERT_TRUE(reply.ok) << "request " << i << ": " << reply.error;
    }
    fault::disarm();

    const auto stats = serveRequestLine(socket, "{\"kind\":\"stats\"}");
    ASSERT_TRUE(stats.ok) << stats.error;
    const size_t at = stats.done.find("\"accept_retries\":");
    ASSERT_NE(at, std::string::npos) << stats.done;
    EXPECT_NE(stats.done.find("\"accept_retries\":0"), at)
        << "the survived retries must be counted: " << stats.done;

    const auto bye = serveRequestLine(socket, "{\"kind\":\"shutdown\"}");
    EXPECT_TRUE(bye.ok) << bye.error;
    loop.join();
}

TEST(Serve, ChaosRunConvergesByteIdenticallyToACleanRun)
{
    // The clean reference, computed before any fault is armed.
    const RunRequest req = smallRequest();
    ExperimentConfig ec = experimentConfigOf(req);
    ec.resultStore = ResultStore::Config{};
    Experiment direct(ec);
    const auto results = direct.run();
    ASSERT_EQ(results.size(), 1u);
    const std::string clean = toJsonLine(results[0]);

    const std::string socket = socketPathOf("moatsim_serve_chaos.sock");
    Server server(smallServeConfig(socket));
    server.start();
    std::thread loop([&server] { server.serveForever(); });

    // Chaos: half the cell computes throw and some server sends are
    // dropped, yet seeded client retries converge -- the shared store
    // caches every cell that ever finished, so each attempt only
    // recomputes what actually failed.
    fault::arm("sweep.compute@0.5:3,serve.send@0.1:4");
    RetryPolicy policy;
    policy.retries = 25;
    policy.seed = 7;
    const ServeReply reply = serveRequestWithRetries(socket, req, policy);
    fault::disarm();

    ASSERT_TRUE(reply.ok)
        << "after " << reply.attempts << " attempts: " << reply.error;
    EXPECT_GT(reply.attempts, 1u) << "the chaos plan must actually bite";
    ASSERT_EQ(reply.cells.size(), 1u);
    EXPECT_EQ(reply.cells[0], clean) << "chaos converges to clean bytes";

    const auto bye = serveRequestLine(socket, "{\"kind\":\"shutdown\"}");
    EXPECT_TRUE(bye.ok) << bye.error;
    loop.join();
}

} // namespace
} // namespace moatsim::sim
