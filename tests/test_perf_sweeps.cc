/**
 * @file
 * Sweep-level invariants of the performance experiments: the
 * directional claims behind Tables 5/6/7 and Figure 17, checked on
 * reduced configurations so they run in seconds. The sweeps fan out
 * through the parallel SweepEngine (jobs=2), which is guaranteed to
 * be bit-identical to the serial path (see test_determinism.cc), so
 * these invariants also exercise the engine itself.
 */

#include <gtest/gtest.h>

#include "sim/sweep.hh"

namespace moatsim::sim
{
namespace
{

SweepEngine
smallEngine()
{
    SweepConfig sc;
    sc.tracegen.banksSimulated = 16;
    sc.tracegen.windowFraction = 0.03125;
    sc.jobs = 2;
    return SweepEngine(sc);
}

/** Hot workloads for quick sweeps (the paper's slowdown drivers). */
std::vector<workload::WorkloadSpec>
hotSpecs()
{
    return {workload::findWorkload("roms"),
            workload::findWorkload("parest"),
            workload::findWorkload("xz")};
}

std::vector<PerfResult>
runHot(SweepEngine &engine, const mitigation::MitigatorSpec &m,
       abo::Level level = abo::Level::L1)
{
    return engine.run(crossCells(hotSpecs(), {{m, level}}));
}

double
avgAlerts(SweepEngine &engine, const mitigation::MitigatorSpec &m,
          abo::Level level = abo::Level::L1)
{
    return meanAlertsPerRefi(runHot(engine, m, level));
}

double
avgMitigations(SweepEngine &engine, const mitigation::MitigatorSpec &m)
{
    return meanMitigations(runHot(engine, m));
}

mitigation::MitigatorSpec
moatSpecOf(const std::string &params)
{
    return mitigation::Registry::parse("moat:" + params);
}

TEST(PerfSweep, HigherEthMeansFewerMitigations)
{
    // Table 5's energy column: mitigation work falls as ETH rises.
    auto engine = smallEngine();
    double prev = 1e18;
    for (uint32_t eth : {0u, 16u, 32u, 48u}) {
        const double v = avgMitigations(
            engine, moatSpecOf("eth=" + std::to_string(eth)));
        EXPECT_LT(v, prev + 1) << "ETH " << eth;
        prev = v;
    }
}

TEST(PerfSweep, HigherEthMeansMoreAlerts)
{
    // Table 5's slowdown column: less proactive head start, more rows
    // race to ATH.
    auto engine = smallEngine();
    EXPECT_LE(avgAlerts(engine, moatSpecOf("eth=8")),
              avgAlerts(engine, moatSpecOf("eth=56")) + 1e-3);
}

TEST(PerfSweep, SlowerMitigationRateMeansMoreAlerts)
{
    // Table 6: rate 1/1 tREFI -> ~no ALERTs; ALERT-only -> most.
    auto engine = smallEngine();
    const double a_fast = avgAlerts(engine, moatSpecOf("period=1"));
    const double a_norm = avgAlerts(engine, moatSpecOf("period=5"));
    const double a_none = avgAlerts(engine, moatSpecOf("period=0"));
    EXPECT_LE(a_fast, a_norm + 1e-3);
    EXPECT_LT(a_norm, a_none);
    EXPECT_LT(a_fast, 0.01);
}

TEST(PerfSweep, HigherAthMeansFewerAlerts)
{
    // Figure 11 / Table 7: ATH 32 > 64 > 128 in ALERT rate.
    auto engine = smallEngine();
    double prev = 1e18;
    for (uint32_t ath : {32u, 64u, 128u}) {
        const auto m = moatSpecOf("ath=" + std::to_string(ath) +
                                  ",eth=" + std::to_string(ath / 2));
        const double v = avgAlerts(engine, m);
        EXPECT_LT(v, prev) << "ATH " << ath;
        prev = v;
    }
}

TEST(PerfSweep, HigherAboLevelMeansFewerAlertEpisodes)
{
    // Figure 17(b): each MOAT-L2/L4 ALERT mitigates more rows, so
    // episodes become rarer.
    auto engine = smallEngine();
    const double a1 = avgAlerts(engine,
                                mitigation::Registry::parse("moat"),
                                abo::Level::L1);
    const double a2 =
        avgAlerts(engine, moatSpecOf("entries=2"), abo::Level::L2);
    EXPECT_LE(a2, a1 + 1e-3);
}

TEST(PerfSweep, SlowdownTracksAlertRate)
{
    // The only slowdown mechanism is ALERT stalls: a config with more
    // alerts must not be faster.
    auto engine = smallEngine();
    const auto &spec = workload::findWorkload("roms");
    const auto r64 = engine.runCell(
        {spec, mitigation::Registry::parse("moat"), abo::Level::L1});
    const auto r32 =
        engine.runCell({spec, moatSpecOf("ath=32,eth=16"), abo::Level::L1});
    EXPECT_GT(r32.alertsPerRefi, r64.alertsPerRefi);
    EXPECT_LE(r32.normPerf, r64.normPerf + 0.002);
}

TEST(PerfSweep, MultiPointMatrixMatchesPerPointRuns)
{
    // One batched engine run over a (design x workload) matrix equals
    // the per-point runs cell for cell.
    auto engine = smallEngine();
    const auto m64 = mitigation::Registry::parse("moat");
    const auto m32 = moatSpecOf("ath=32,eth=16");
    const auto batched = engine.run(crossCells(
        hotSpecs(), {{m64, abo::Level::L1}, {m32, abo::Level::L1}}));
    const auto r64 = runHot(engine, m64);
    const auto r32 = runHot(engine, m32);
    ASSERT_EQ(batched.size(), r64.size() + r32.size());
    for (size_t i = 0; i < r64.size(); ++i) {
        EXPECT_EQ(batched[i].normPerf, r64[i].normPerf);
        EXPECT_EQ(batched[i].alerts, r64[i].alerts);
    }
    for (size_t i = 0; i < r32.size(); ++i) {
        EXPECT_EQ(batched[r64.size() + i].normPerf, r32[i].normPerf);
        EXPECT_EQ(batched[r64.size() + i].alerts, r32[i].alerts);
    }
}

} // namespace
} // namespace moatsim::sim
