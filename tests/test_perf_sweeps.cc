/**
 * @file
 * Sweep-level invariants of the performance experiments: the
 * directional claims behind Tables 5/6/7 and Figure 17, checked on
 * reduced configurations so they run in seconds.
 */

#include <gtest/gtest.h>

#include "sim/perf.hh"

namespace moatsim::sim
{
namespace
{

workload::TraceGenConfig
smallConfig()
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 16;
    tg.windowFraction = 0.03125;
    return tg;
}

/** Hot workloads for quick sweeps (the paper's slowdown drivers). */
std::vector<const workload::WorkloadSpec *>
hotSpecs()
{
    return {&workload::findWorkload("roms"),
            &workload::findWorkload("parest"),
            &workload::findWorkload("xz")};
}

double
avgAlerts(PerfRunner &runner, const mitigation::MitigatorSpec &m,
          abo::Level level = abo::Level::L1)
{
    double s = 0;
    for (const auto *spec : hotSpecs())
        s += runner.run(*spec, m, level).alertsPerRefi;
    return s / 3.0;
}

double
avgMitigations(PerfRunner &runner, const mitigation::MitigatorSpec &m)
{
    double s = 0;
    for (const auto *spec : hotSpecs())
        s += runner.run(*spec, m).mitigationsPerBankPerRefw;
    return s / 3.0;
}

mitigation::MitigatorSpec
moatSpecOf(const std::string &params)
{
    return mitigation::Registry::parse("moat:" + params);
}

TEST(PerfSweep, HigherEthMeansFewerMitigations)
{
    // Table 5's energy column: mitigation work falls as ETH rises.
    PerfRunner runner(smallConfig());
    double prev = 1e18;
    for (uint32_t eth : {0u, 16u, 32u, 48u}) {
        const double v = avgMitigations(
            runner, moatSpecOf("eth=" + std::to_string(eth)));
        EXPECT_LT(v, prev + 1) << "ETH " << eth;
        prev = v;
    }
}

TEST(PerfSweep, HigherEthMeansMoreAlerts)
{
    // Table 5's slowdown column: less proactive head start, more rows
    // race to ATH.
    PerfRunner runner(smallConfig());
    EXPECT_LE(avgAlerts(runner, moatSpecOf("eth=8")),
              avgAlerts(runner, moatSpecOf("eth=56")) + 1e-3);
}

TEST(PerfSweep, SlowerMitigationRateMeansMoreAlerts)
{
    // Table 6: rate 1/1 tREFI -> ~no ALERTs; ALERT-only -> most.
    PerfRunner runner(smallConfig());
    const double a_fast = avgAlerts(runner, moatSpecOf("period=1"));
    const double a_norm = avgAlerts(runner, moatSpecOf("period=5"));
    const double a_none = avgAlerts(runner, moatSpecOf("period=0"));
    EXPECT_LE(a_fast, a_norm + 1e-3);
    EXPECT_LT(a_norm, a_none);
    EXPECT_LT(a_fast, 0.01);
}

TEST(PerfSweep, HigherAthMeansFewerAlerts)
{
    // Figure 11 / Table 7: ATH 32 > 64 > 128 in ALERT rate.
    PerfRunner runner(smallConfig());
    double prev = 1e18;
    for (uint32_t ath : {32u, 64u, 128u}) {
        const auto m = moatSpecOf("ath=" + std::to_string(ath) +
                                  ",eth=" + std::to_string(ath / 2));
        const double v = avgAlerts(runner, m);
        EXPECT_LT(v, prev) << "ATH " << ath;
        prev = v;
    }
}

TEST(PerfSweep, HigherAboLevelMeansFewerAlertEpisodes)
{
    // Figure 17(b): each MOAT-L2/L4 ALERT mitigates more rows, so
    // episodes become rarer.
    PerfRunner runner(smallConfig());
    const double a1 = avgAlerts(runner, mitigation::Registry::parse("moat"),
                                abo::Level::L1);
    const double a2 =
        avgAlerts(runner, moatSpecOf("entries=2"), abo::Level::L2);
    EXPECT_LE(a2, a1 + 1e-3);
}

TEST(PerfSweep, SlowdownTracksAlertRate)
{
    // The only slowdown mechanism is ALERT stalls: a config with more
    // alerts must not be faster.
    PerfRunner runner(smallConfig());
    const auto &spec = workload::findWorkload("roms");
    const auto r64 = runner.run(spec, mitigation::Registry::parse("moat"));
    const auto r32 = runner.run(spec, moatSpecOf("ath=32,eth=16"));
    EXPECT_GT(r32.alertsPerRefi, r64.alertsPerRefi);
    EXPECT_LE(r32.normPerf, r64.normPerf + 0.002);
}

} // namespace
} // namespace moatsim::sim
