/**
 * @file
 * Unit tests for the idealized per-row-counter baseline (Section 2.5).
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/security.hh"
#include "mitigation/ideal_prc.hh"

namespace moatsim::mitigation
{
namespace
{

struct PrcFixture : public ::testing::Test
{
    dram::TimingParams timing = [] {
        dram::TimingParams t;
        t.rowsPerBank = 512;
        t.refreshGroups = 64;
        return t;
    }();
    dram::Bank bank{timing, dram::CounterInit::Zero};
    dram::SecurityMonitor security{512, 2};
    MitigationStats stats;
    MitigationContext ctx{bank, security, stats};

    void
    act(IdealPrcMitigator &m, RowId row, uint32_t times = 1)
    {
        for (uint32_t i = 0; i < times; ++i) {
            bank.activate(row);
            security.onActivate(row);
            m.onActivate(row, ctx);
        }
    }
};

TEST_F(PrcFixture, MitigatesArgmaxEveryPeriod)
{
    IdealPrcConfig cfg; // period 4
    IdealPrcMitigator m(cfg);
    act(m, 10, 5);
    act(m, 20, 9);
    act(m, 30, 7);
    for (int i = 0; i < 4; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(bank.counter(20), 0u); // argmax mitigated + reset
    EXPECT_EQ(bank.counter(30), 7u);
    EXPECT_EQ(stats.totalMitigations(), 1u);
}

TEST_F(PrcFixture, RescanFindsNextMax)
{
    IdealPrcConfig cfg;
    IdealPrcMitigator m(cfg);
    act(m, 10, 5);
    act(m, 20, 9);
    act(m, 30, 7);
    for (int i = 0; i < 8; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(bank.counter(30), 0u); // second period takes row 30
    EXPECT_EQ(bank.counter(10), 5u);
}

TEST_F(PrcFixture, NoWorkWhenIdle)
{
    IdealPrcConfig cfg;
    IdealPrcMitigator m(cfg);
    for (int i = 0; i < 20; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(stats.totalMitigations(), 0u);
}

TEST_F(PrcFixture, MinCountFilters)
{
    IdealPrcConfig cfg;
    cfg.minCount = 10;
    IdealPrcMitigator m(cfg);
    act(m, 10, 9);
    for (int i = 0; i < 4; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(stats.totalMitigations(), 0u);
    act(m, 10, 1);
    for (int i = 0; i < 4; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(stats.totalMitigations(), 1u);
}

TEST_F(PrcFixture, AutoRefreshResetsCounters)
{
    IdealPrcConfig cfg;
    IdealPrcMitigator m(cfg);
    act(m, 3, 6);
    m.onAutoRefresh(0, 7, ctx);
    EXPECT_EQ(bank.counter(3), 0u);
}

TEST_F(PrcFixture, NeverAlerts)
{
    IdealPrcConfig cfg;
    IdealPrcMitigator m(cfg);
    act(m, 10, 10000);
    EXPECT_FALSE(m.wantsAlert());
}

TEST_F(PrcFixture, PeriodOneMitigatesEveryRef)
{
    IdealPrcConfig cfg;
    cfg.mitigationPeriodRefis = 1;
    IdealPrcMitigator m(cfg);
    act(m, 10, 3);
    act(m, 20, 2);
    m.onRefCommand(ctx);
    m.onRefCommand(ctx);
    EXPECT_EQ(stats.totalMitigations(), 2u);
    EXPECT_EQ(bank.counter(10), 0u);
    EXPECT_EQ(bank.counter(20), 0u);
}

TEST(IdealPrcDeathTest, ZeroPeriodIsFatal)
{
    IdealPrcConfig cfg;
    cfg.mitigationPeriodRefis = 0;
    EXPECT_EXIT(IdealPrcMitigator{cfg}, testing::ExitedWithCode(1),
                "mitigationPeriodRefis");
}

} // namespace
} // namespace moatsim::mitigation
