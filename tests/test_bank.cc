/**
 * @file
 * Unit tests for the DRAM bank model with PRAC counters.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/bank.hh"

namespace moatsim::dram
{
namespace
{

TimingParams
smallTiming()
{
    TimingParams t;
    t.rowsPerBank = 1024;
    t.refreshGroups = 128;
    return t;
}

TEST(Bank, StartsClosedAndZeroed)
{
    Bank b(smallTiming(), CounterInit::Zero);
    EXPECT_EQ(b.openRow(), kInvalidRow);
    EXPECT_EQ(b.numRows(), 1024u);
    for (RowId r = 0; r < b.numRows(); r += 97)
        EXPECT_EQ(b.counter(r), 0u);
    EXPECT_EQ(b.totalActivations(), 0u);
}

TEST(Bank, ActivateIncrementsCounter)
{
    Bank b(smallTiming(), CounterInit::Zero);
    EXPECT_EQ(b.activate(5), 1u);
    EXPECT_EQ(b.activate(5), 2u);
    EXPECT_EQ(b.activate(7), 1u);
    EXPECT_EQ(b.counter(5), 2u);
    EXPECT_EQ(b.counter(7), 1u);
    EXPECT_EQ(b.totalActivations(), 3u);
}

TEST(Bank, ActivateOpensRowPrechargeCloses)
{
    Bank b(smallTiming(), CounterInit::Zero);
    b.activate(11);
    EXPECT_EQ(b.openRow(), 11u);
    b.precharge();
    EXPECT_EQ(b.openRow(), kInvalidRow);
}

TEST(Bank, ResetCounterZeroesOnlyThatRow)
{
    Bank b(smallTiming(), CounterInit::Zero);
    b.activate(3);
    b.activate(3);
    b.activate(4);
    b.resetCounter(3);
    EXPECT_EQ(b.counter(3), 0u);
    EXPECT_EQ(b.counter(4), 1u);
}

TEST(Bank, RandomInitStaysInByteRange)
{
    Rng rng(1);
    Bank b(smallTiming(), CounterInit::RandomByte, &rng);
    uint32_t nonzero = 0;
    for (RowId r = 0; r < b.numRows(); ++r) {
        EXPECT_LE(b.counter(r), 255u);
        nonzero += (b.counter(r) != 0);
    }
    EXPECT_GT(nonzero, b.numRows() / 2);
}

TEST(Bank, RandomInitIsSeedDeterministic)
{
    Rng r1(77), r2(77);
    Bank a(smallTiming(), CounterInit::RandomByte, &r1);
    Bank b(smallTiming(), CounterInit::RandomByte, &r2);
    for (RowId r = 0; r < a.numRows(); ++r)
        EXPECT_EQ(a.counter(r), b.counter(r));
}

TEST(BankDeathTest, RandomInitWithoutRngIsFatal)
{
    EXPECT_EXIT(Bank(smallTiming(), CounterInit::RandomByte, nullptr),
                testing::ExitedWithCode(1), "Rng");
}

TEST(Bank, CounterIsFreeRunningPastThresholdBits)
{
    Bank b(smallTiming(), CounterInit::Zero);
    for (int i = 0; i < 300; ++i)
        b.activate(0);
    EXPECT_EQ(b.counter(0), 300u);
}

} // namespace
} // namespace moatsim::dram
