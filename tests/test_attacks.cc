/**
 * @file
 * End-to-end tests of the attack suite against the paper's claims.
 * These are the repository's most important tests: they reproduce the
 * headline security numbers of Sections 3, 5, 7 and Appendices A/B.
 */

#include <gtest/gtest.h>

#include "analysis/ratchet_model.hh"
#include "attacks/feinting.hh"
#include "attacks/jailbreak.hh"
#include "attacks/postponement.hh"
#include "attacks/ratchet.hh"
#include "attacks/tsa.hh"

namespace moatsim::attacks
{
namespace
{

dram::TimingParams kT;

TEST(Jailbreak, DeterministicReaches1152)
{
    // Section 3.2: 128 + 8*128 = 1152 ACTs, 9x the threshold, with no
    // ALERT ever raised.
    JailbreakConfig cfg;
    const AttackResult r = runDeterministicJailbreak(cfg);
    EXPECT_EQ(r.maxHammer, 1152u);
    EXPECT_EQ(r.alerts, 0u);
}

TEST(Jailbreak, DeterministicScalesWithQueueDepth)
{
    // The accrual while queued is queueEntries * threshold on top of
    // the initial threshold, plus up to one more threshold of ACTs
    // while the target's own mitigation is in flight.
    JailbreakConfig cfg;
    cfg.panopticon.queueEntries = 4;
    const AttackResult r = runDeterministicJailbreak(cfg);
    EXPECT_GE(r.maxHammer, 128u * 5);
    EXPECT_LE(r.maxHammer, 128u * 6 + 8);
    EXPECT_EQ(r.alerts, 0u);
}

TEST(Jailbreak, RandomizedPartialFillsStillOvershoot)
{
    // Even without a full queue fill, the attack row rides behind the
    // partially-filled queue; a few hundred iterations already exceed
    // 2x the threshold (Figure 5's early points).
    JailbreakConfig cfg;
    RandomizedJailbreakResult r = runRandomizedJailbreak(cfg, 256);
    ASSERT_FALSE(r.curve.empty());
    EXPECT_GT(r.curve.back().maxHammer, 2 * cfg.panopticon.queueThreshold);
    // Checkpoints are cumulative and monotonic.
    for (size_t i = 1; i < r.curve.size(); ++i) {
        EXPECT_GE(r.curve[i].maxHammer, r.curve[i - 1].maxHammer);
        EXPECT_GE(r.curve[i].iterations, r.curve[i - 1].iterations);
    }
}

TEST(Ratchet, MicroExampleMatchesFigure9)
{
    // Four rows, ABO level 4: the last row reaches exactly ATH + 15.
    for (uint32_t ath : {32u, 64u}) {
        const AttackResult r = runRatchetMicroExample(kT, ath);
        EXPECT_EQ(r.maxHammer, ath + 15) << "ATH=" << ath;
    }
}

TEST(Ratchet, FullAttackApproachesAnalyticalBound)
{
    // ATH=64, L1: TRH_safe = 99; the simulated attack must come within
    // a few activations of the bound (and may slightly exceed it, the
    // model is approximate in F(N)).
    RatchetConfig cfg;
    cfg.timing = kT;
    const AttackResult r = runRatchet(cfg);
    const double bound = analysis::ratchetBound(kT, 64, 1).safeTrh;
    EXPECT_GE(r.maxHammer, bound - 6);
    EXPECT_LE(r.maxHammer, bound + 6);
    // One ALERT per pool row (the torrent mitigates one row each).
    EXPECT_NEAR(static_cast<double>(r.alerts),
                static_cast<double>(analysis::ratchetBound(kT, 64, 1)
                                        .maxPoolRows),
                16.0);
}

TEST(Ratchet, SmallerPoolYieldsFewerExtraActs)
{
    RatchetConfig small;
    small.timing = kT;
    small.poolRows = 64;
    RatchetConfig big;
    big.timing = kT;
    big.poolRows = 2048;
    const auto rs = runRatchet(small);
    const auto rb = runRatchet(big);
    EXPECT_LT(rs.maxHammer, rb.maxHammer);
    EXPECT_GT(rs.maxHammer, 64u); // still above ATH
}

TEST(Feinting, Table2Rates)
{
    // Simulated feinting lands within 5% of the analytical bound for
    // the paper's five mitigation rates (Table 2).
    const double expected[] = {638, 1188, 1702, 2195, 2669};
    for (uint32_t k = 4; k <= 5; ++k) { // longer rates in bench; 2 here
        FeintingConfig cfg;
        cfg.mitigationPeriodRefis = k;
        const AttackResult r = runFeinting(cfg);
        EXPECT_NEAR(r.maxHammer, expected[k - 1], expected[k - 1] * 0.05)
            << "k=" << k;
    }
}

TEST(Feinting, NoAlertsFromTransparentScheme)
{
    FeintingConfig cfg;
    cfg.mitigationPeriodRefis = 4;
    cfg.poolRows = 128; // quick run
    EXPECT_EQ(runFeinting(cfg).alerts, 0u);
}

TEST(Postponement, DrainAllBrokenAt328)
{
    // Figure 16: 128 + 200 = 328 activations (2.6x the threshold).
    PostponementConfig cfg;
    const AttackResult r = runRefreshPostponement(cfg);
    EXPECT_GE(r.maxHammer, 320u);
    EXPECT_LE(r.maxHammer, 336u);
}

TEST(Postponement, WithoutPostponementStaysNearThreshold)
{
    // Sanity: with no postponement allowed the same pattern caps near
    // threshold + one tREFI of activations.
    PostponementConfig cfg;
    cfg.maxPostponed = 0;
    cfg.trials = 64;
    const AttackResult r = runRefreshPostponement(cfg);
    EXPECT_LT(r.maxHammer, 220u);
}

TEST(PerfAttack, SingleRowKernelLosesUnderTenPercent)
{
    PerfAttackConfig cfg;
    cfg.cycles = 30;
    cfg.poolRows = 1;
    const auto r = runSingleBankKernel(cfg);
    EXPECT_GT(r.lossFraction, 0.02);
    EXPECT_LT(r.lossFraction, 0.12);
}

TEST(PerfAttack, FiveRowKernelLosesTenPercent)
{
    PerfAttackConfig cfg;
    cfg.cycles = 30;
    cfg.poolRows = 5;
    const auto r = runSingleBankKernel(cfg);
    EXPECT_NEAR(r.lossFraction, 0.10, 0.03);
}

TEST(PerfAttack, SynchronizedMultiBankSameAsSingle)
{
    // Section 7.2: synchronized multi-bank attacks gain nothing.
    PerfAttackConfig cfg;
    cfg.cycles = 20;
    cfg.numBanks = 4;
    const auto r = runSynchronizedMultiBank(cfg);
    EXPECT_LT(r.lossFraction, 0.2);
}

TEST(PerfAttack, TsaStaggeringBeatsSynchronized)
{
    PerfAttackConfig cfg;
    cfg.cycles = 10;
    cfg.numBanks = 4;
    const auto sync = runSynchronizedMultiBank(cfg);
    const auto tsa = runTsa(cfg);
    EXPECT_GT(tsa.lossFraction, 2 * sync.lossFraction);
}

TEST(PerfAttack, TsaLossGrowsWithBanks)
{
    PerfAttackConfig cfg;
    cfg.cycles = 10;
    double prev = 0;
    for (uint32_t k : {1u, 4u, 17u}) {
        cfg.numBanks = k;
        const double loss = runTsa(cfg).lossFraction;
        EXPECT_GT(loss, prev);
        prev = loss;
    }
}

} // namespace
} // namespace moatsim::attacks
