/**
 * @file
 * End-to-end tests of the attack suite against the paper's claims.
 * These are the repository's most important tests: they reproduce the
 * headline security numbers of Sections 3, 5, 7 and Appendices A/B.
 */

#include <gtest/gtest.h>

#include "analysis/ratchet_model.hh"
#include "attacks/attack.hh"
#include "attacks/feinting.hh"
#include "attacks/jailbreak.hh"
#include "attacks/postponement.hh"
#include "attacks/ratchet.hh"
#include "attacks/tsa.hh"
#include "mitigation/registry.hh"
#include "subchannel/subchannel.hh"

namespace moatsim::attacks
{
namespace
{

dram::TimingParams kT;

TEST(AttackDriver, DrainsToQuiescenceAtEveryAboLevel)
{
    // Regression for the hard-coded post-attack drain: a fixed
    // advanceTo(now + 2000 ns) cut off ALERT/recovery work that was
    // still pending at high ABO levels, so alerts and duration
    // undercounted. The driver must now match a manual replay of the
    // same command stream drained to full quiescence -- most
    // importantly at the highest level, L4, where the RFM block and
    // the inter-ALERT activation minimum stretch recovery the most.
    for (const abo::Level level :
         {abo::Level::L1, abo::Level::L2, abo::Level::L4}) {
        for (const char *mname : {"moat", "panopticon"}) {
            AttackConfig cfg;
            cfg.pattern = "hammer";
            cfg.budget = 512;
            cfg.aboLevel = level;
            const auto spec = mitigation::Registry::parse(mname);
            const AttackResult r = runAttack(cfg, spec);

            subchannel::SubChannelConfig sc;
            sc.timing = cfg.timing;
            sc.numBanks = 1;
            sc.aboLevel = level;
            sc.seed = cfg.seed;
            subchannel::SubChannel ch(sc, spec.factory());
            const RowId target = cfg.timing.rowsPerBank / 2;
            for (uint64_t i = 0; i < cfg.budget; ++i)
                ch.activate(0, target);
            ch.drainToQuiescence(ch.timing().tREFW);

            EXPECT_FALSE(ch.alertWorkPending())
                << mname << " L" << abo::levelValue(level)
                << ": drain left pending ALERT/mitigation work";
            EXPECT_EQ(r.alerts, ch.abo().alertCount())
                << mname << " L" << abo::levelValue(level);
            EXPECT_EQ(r.duration, ch.now())
                << mname << " L" << abo::levelValue(level);
            EXPECT_EQ(r.maxHammer, ch.security(0).maxHammer())
                << mname << " L" << abo::levelValue(level);
        }
    }
}

TEST(AttackDriver, DurationIsTheTrueEndOfRecoveryNotAFixedWindow)
{
    // The old driver reported duration = last ACT + 2000 ns
    // unconditionally: dead air when nothing was pending, and a
    // cut-off when the recovery (RFM block + REF busy) ran longer.
    // Against the null design nothing is ever pending, so duration is
    // exactly the last ACT's issue time.
    AttackConfig cfg;
    cfg.pattern = "hammer";
    cfg.budget = 256;
    const AttackResult r =
        runAttack(cfg, mitigation::Registry::parse("null"));

    subchannel::SubChannelConfig sc;
    sc.timing = cfg.timing;
    sc.numBanks = 1;
    sc.seed = cfg.seed;
    subchannel::SubChannel ch(sc,
                              mitigation::Registry::parse("null").factory());
    const RowId target = cfg.timing.rowsPerBank / 2;
    for (uint64_t i = 0; i < cfg.budget; ++i)
        ch.activate(0, target);
    EXPECT_FALSE(ch.alertWorkPending());
    EXPECT_EQ(r.duration, ch.now());
    EXPECT_EQ(r.alerts, 0u);
}

TEST(AttackDriver, HighestLevelRecoveryInFlightAtStreamEndIsServiced)
{
    // Find a budget whose final ACT leaves the L4 ALERT recovery
    // still in flight (the undercount scenario of the old fixed
    // window), then check the driver services it: the reported
    // duration strictly covers the post-attack recovery and the
    // channel the driver simulated reached quiescence.
    const auto spec = mitigation::Registry::parse("moat");
    auto makeChannel = [&] {
        subchannel::SubChannelConfig sc;
        sc.numBanks = 1;
        sc.aboLevel = abo::Level::L4;
        sc.seed = 1;
        return subchannel::SubChannel(sc, spec.factory());
    };

    uint64_t budget = 0;
    for (uint64_t b = 60; b <= 512 && budget == 0; ++b) {
        subchannel::SubChannel probe = makeChannel();
        const RowId target = probe.timing().rowsPerBank / 2;
        for (uint64_t i = 0; i < b; ++i)
            probe.activate(0, target);
        if (probe.alertWorkPending())
            budget = b;
    }
    ASSERT_NE(budget, 0u)
        << "no budget leaves recovery in flight; scenario extinct?";

    AttackConfig cfg;
    cfg.pattern = "hammer";
    cfg.budget = budget;
    cfg.aboLevel = abo::Level::L4;
    const AttackResult r = runAttack(cfg, spec);

    subchannel::SubChannel ch = makeChannel();
    const RowId target = ch.timing().rowsPerBank / 2;
    for (uint64_t i = 0; i < budget; ++i)
        ch.activate(0, target);
    const Time last_act = ch.now();
    ch.drainToQuiescence(ch.timing().tREFW);

    EXPECT_FALSE(ch.alertWorkPending());
    EXPECT_GT(r.duration, last_act);
    EXPECT_EQ(r.duration, ch.now());
    EXPECT_EQ(r.alerts, ch.abo().alertCount());
}

TEST(Jailbreak, DeterministicReaches1152)
{
    // Section 3.2: 128 + 8*128 = 1152 ACTs, 9x the threshold, with no
    // ALERT ever raised.
    JailbreakConfig cfg;
    const AttackResult r = runDeterministicJailbreak(cfg);
    EXPECT_EQ(r.maxHammer, 1152u);
    EXPECT_EQ(r.alerts, 0u);
}

TEST(Jailbreak, DeterministicScalesWithQueueDepth)
{
    // The accrual while queued is queueEntries * threshold on top of
    // the initial threshold, plus up to one more threshold of ACTs
    // while the target's own mitigation is in flight.
    JailbreakConfig cfg;
    cfg.panopticon.queueEntries = 4;
    const AttackResult r = runDeterministicJailbreak(cfg);
    EXPECT_GE(r.maxHammer, 128u * 5);
    EXPECT_LE(r.maxHammer, 128u * 6 + 8);
    EXPECT_EQ(r.alerts, 0u);
}

TEST(Jailbreak, RandomizedPartialFillsStillOvershoot)
{
    // Even without a full queue fill, the attack row rides behind the
    // partially-filled queue; a few hundred iterations already exceed
    // 2x the threshold (Figure 5's early points).
    JailbreakConfig cfg;
    RandomizedJailbreakResult r = runRandomizedJailbreak(cfg, 256);
    ASSERT_FALSE(r.curve.empty());
    EXPECT_GT(r.curve.back().maxHammer, 2 * cfg.panopticon.queueThreshold);
    // Checkpoints are cumulative and monotonic.
    for (size_t i = 1; i < r.curve.size(); ++i) {
        EXPECT_GE(r.curve[i].maxHammer, r.curve[i - 1].maxHammer);
        EXPECT_GE(r.curve[i].iterations, r.curve[i - 1].iterations);
    }
}

TEST(Ratchet, MicroExampleMatchesFigure9)
{
    // Four rows, ABO level 4: the last row reaches exactly ATH + 15.
    for (uint32_t ath : {32u, 64u}) {
        const AttackResult r = runRatchetMicroExample(kT, ath);
        EXPECT_EQ(r.maxHammer, ath + 15) << "ATH=" << ath;
    }
}

TEST(Ratchet, FullAttackApproachesAnalyticalBound)
{
    // ATH=64, L1: TRH_safe = 99; the simulated attack must come within
    // a few activations of the bound (and may slightly exceed it, the
    // model is approximate in F(N)).
    RatchetConfig cfg;
    cfg.timing = kT;
    const AttackResult r = runRatchet(cfg);
    const double bound = analysis::ratchetBound(kT, 64, 1).safeTrh;
    EXPECT_GE(r.maxHammer, bound - 6);
    EXPECT_LE(r.maxHammer, bound + 6);
    // One ALERT per pool row (the torrent mitigates one row each).
    EXPECT_NEAR(static_cast<double>(r.alerts),
                static_cast<double>(analysis::ratchetBound(kT, 64, 1)
                                        .maxPoolRows),
                16.0);
}

TEST(Ratchet, SmallerPoolYieldsFewerExtraActs)
{
    RatchetConfig small;
    small.timing = kT;
    small.poolRows = 64;
    RatchetConfig big;
    big.timing = kT;
    big.poolRows = 2048;
    const auto rs = runRatchet(small);
    const auto rb = runRatchet(big);
    EXPECT_LT(rs.maxHammer, rb.maxHammer);
    EXPECT_GT(rs.maxHammer, 64u); // still above ATH
}

TEST(Feinting, Table2Rates)
{
    // Simulated feinting lands within 5% of the analytical bound for
    // the paper's five mitigation rates (Table 2).
    const double expected[] = {638, 1188, 1702, 2195, 2669};
    for (uint32_t k = 4; k <= 5; ++k) { // longer rates in bench; 2 here
        FeintingConfig cfg;
        cfg.mitigationPeriodRefis = k;
        const AttackResult r = runFeinting(cfg);
        EXPECT_NEAR(r.maxHammer, expected[k - 1], expected[k - 1] * 0.05)
            << "k=" << k;
    }
}

TEST(Feinting, NoAlertsFromTransparentScheme)
{
    FeintingConfig cfg;
    cfg.mitigationPeriodRefis = 4;
    cfg.poolRows = 128; // quick run
    EXPECT_EQ(runFeinting(cfg).alerts, 0u);
}

TEST(Postponement, DrainAllBrokenAt328)
{
    // Figure 16: 128 + 200 = 328 activations (2.6x the threshold).
    PostponementConfig cfg;
    const AttackResult r = runRefreshPostponement(cfg);
    EXPECT_GE(r.maxHammer, 320u);
    EXPECT_LE(r.maxHammer, 336u);
}

TEST(Postponement, WithoutPostponementStaysNearThreshold)
{
    // Sanity: with no postponement allowed the same pattern caps near
    // threshold + one tREFI of activations.
    PostponementConfig cfg;
    cfg.maxPostponed = 0;
    cfg.trials = 64;
    const AttackResult r = runRefreshPostponement(cfg);
    EXPECT_LT(r.maxHammer, 220u);
}

TEST(PerfAttack, SingleRowKernelLosesUnderTenPercent)
{
    PerfAttackConfig cfg;
    cfg.cycles = 30;
    cfg.poolRows = 1;
    const auto r = runSingleBankKernel(cfg);
    EXPECT_GT(r.lossFraction, 0.02);
    EXPECT_LT(r.lossFraction, 0.12);
}

TEST(PerfAttack, FiveRowKernelLosesTenPercent)
{
    PerfAttackConfig cfg;
    cfg.cycles = 30;
    cfg.poolRows = 5;
    const auto r = runSingleBankKernel(cfg);
    EXPECT_NEAR(r.lossFraction, 0.10, 0.03);
}

TEST(PerfAttack, SynchronizedMultiBankSameAsSingle)
{
    // Section 7.2: synchronized multi-bank attacks gain nothing.
    PerfAttackConfig cfg;
    cfg.cycles = 20;
    cfg.numBanks = 4;
    const auto r = runSynchronizedMultiBank(cfg);
    EXPECT_LT(r.lossFraction, 0.2);
}

TEST(PerfAttack, TsaStaggeringBeatsSynchronized)
{
    PerfAttackConfig cfg;
    cfg.cycles = 10;
    cfg.numBanks = 4;
    const auto sync = runSynchronizedMultiBank(cfg);
    const auto tsa = runTsa(cfg);
    EXPECT_GT(tsa.lossFraction, 2 * sync.lossFraction);
}

TEST(PerfAttack, TsaLossGrowsWithBanks)
{
    PerfAttackConfig cfg;
    cfg.cycles = 10;
    double prev = 0;
    for (uint32_t k : {1u, 4u, 17u}) {
        cfg.numBanks = k;
        const double loss = runTsa(cfg).lossFraction;
        EXPECT_GT(loss, prev);
        prev = loss;
    }
}

} // namespace
} // namespace moatsim::attacks
