/**
 * @file
 * Tests of the DDR5 timing parameters and the paper's derived numbers.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"

namespace moatsim::dram
{
namespace
{

TEST(Timing, PaperTable1Defaults)
{
    TimingParams t;
    EXPECT_EQ(t.tACT, fromNs(12));
    EXPECT_EQ(t.tPRE, fromNs(36));
    EXPECT_EQ(t.tRAS, fromNs(16));
    EXPECT_EQ(t.tRC, fromNs(52));
    EXPECT_EQ(t.tREFW, fromNs(32'000'000));
    EXPECT_EQ(t.tREFI, fromNs(3900));
    EXPECT_EQ(t.tRFC, fromNs(410));
}

TEST(Timing, SixtySevenActsPerRefi)
{
    // Section 2.2: (3900 - 410) / 52 = 67 activations fit in a tREFI.
    TimingParams t;
    EXPECT_EQ(t.actsPerRefi(), 67u);
}

TEST(Timing, RefisPerRefw)
{
    TimingParams t;
    EXPECT_EQ(t.refisPerRefw(), 8205u);
}

TEST(Timing, EightRowsPerRefreshGroup)
{
    // 64K rows / 8192 groups = 8 rows per group (Section 4.3).
    TimingParams t;
    EXPECT_EQ(t.rowsPerGroup(), 8u);
}

TEST(Timing, AvailableWindowMatchesAppendixA)
{
    // Appendix A: tREFW minus refresh time = 28.64 ms.
    TimingParams t;
    EXPECT_NEAR(toMs(t.availableWindow()), 28.64, 0.01);
}

TEST(Timing, VictimsPerMitigation)
{
    TimingParams t;
    EXPECT_EQ(t.victimsPerMitigation(), 4u);
}

TEST(Timing, AlertToAlertPerLevel)
{
    // Appendix A: tA2A = 180ns + (350 + 52)ns * L.
    TimingParams t;
    EXPECT_EQ(t.alertToAlert(1), fromNs(582));
    EXPECT_EQ(t.alertToAlert(2), fromNs(984));
    EXPECT_EQ(t.alertToAlert(4), fromNs(1788));
}

TEST(Timing, ActsPerAlertWindow)
{
    // Figure 8: level 1 -> 4 ACTs, level 4 -> 7 ACTs.
    TimingParams t;
    EXPECT_EQ(t.actsPerAlertWindow(1), 4u);
    EXPECT_EQ(t.actsPerAlertWindow(2), 5u);
    EXPECT_EQ(t.actsPerAlertWindow(4), 7u);
}

TEST(TimingDeathTest, ValidateRejectsBadGeometry)
{
    TimingParams t;
    t.rowsPerBank = 100; // not a multiple of refreshGroups
    EXPECT_EXIT(t.validate(), testing::ExitedWithCode(1), "multiple");
}

TEST(TimingDeathTest, ValidateRejectsHugeRfc)
{
    TimingParams t;
    t.tRFC = t.tREFI + 1;
    EXPECT_EXIT(t.validate(), testing::ExitedWithCode(1), "tRFC");
}

TEST(Timing, ValidateAcceptsDefaults)
{
    TimingParams t;
    t.validate(); // must not exit
    SUCCEED();
}

} // namespace
} // namespace moatsim::dram
