/**
 * @file
 * Determinism guarantees of the parallel sweep engine: the same sweep
 * must produce bit-identical PerfResult vectors at jobs=1, jobs=2, and
 * jobs=8 (catches RNG or schedule leaks between cells), match the
 * serial PerfRunner path, and the baseline cache must key on the full
 * configuration, not just the workload name.
 */

#include <gtest/gtest.h>

#include "attacks/attack.hh"
#include "sim/result_io.hh"
#include "sim/sweep.hh"

namespace moatsim::sim
{
namespace
{

workload::TraceGenConfig
smallTracegen()
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.numCores = 4;
    tg.windowFraction = 0.015625;
    return tg;
}

std::vector<SweepCell>
sampleCells()
{
    std::vector<SweepCell> cells;
    for (const char *w : {"roms", "parest", "xz"}) {
        for (const char *m :
             {"moat", "moat:ath=32,eth=16", "panopticon"}) {
            cells.push_back({workload::findWorkload(w),
                             mitigation::Registry::parse(m),
                             abo::Level::L1});
        }
    }
    cells.push_back({workload::findWorkload("roms"),
                     mitigation::Registry::parse("moat:entries=2"),
                     abo::Level::L2});
    return cells;
}

/** Bit-exact comparison; serialized form covers every field. */
void
expectIdentical(const std::vector<PerfResult> &a,
                const std::vector<PerfResult> &b, const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(toJsonLine(a[i]), toJsonLine(b[i]))
            << label << " cell " << i;
}

TEST(SweepDeterminism, BitIdenticalAcrossJobCounts)
{
    const auto cells = sampleCells();
    std::vector<std::vector<PerfResult>> runs;
    for (const unsigned jobs : {1u, 2u, 8u}) {
        SweepConfig sc;
        sc.tracegen = smallTracegen();
        sc.jobs = jobs;
        SweepEngine engine(sc);
        runs.push_back(engine.run(cells));
    }
    expectIdentical(runs[0], runs[1], "jobs=1 vs jobs=2");
    expectIdentical(runs[0], runs[2], "jobs=1 vs jobs=8");
}

TEST(SweepDeterminism, MultiSubChannelBitIdenticalAcrossJobCounts)
{
    // Cross-sub-channel determinism: the full-system (2-sub-channel)
    // simulation fans the same cells and must stay bit-identical at
    // jobs=1 and jobs=4 -- the ISSUE's acceptance bar for the System
    // layer.
    auto tg = smallTracegen();
    tg.subchannels = 2;
    const auto cells = sampleCells();
    std::vector<std::vector<PerfResult>> runs;
    for (const unsigned jobs : {1u, 4u}) {
        SweepConfig sc;
        sc.tracegen = tg;
        sc.jobs = jobs;
        SweepEngine engine(sc);
        runs.push_back(engine.run(cells));
    }
    expectIdentical(runs[0], runs[1], "subchannels=2 jobs=1 vs jobs=4");
    // And the breakdown is really per-sub-channel (2 entries).
    for (const auto &r : runs[0])
        EXPECT_EQ(r.perSubchannel.size(), 2u);
}

TEST(SweepDeterminism, MatchesSerialPerfRunner)
{
    const auto cells = sampleCells();
    SweepConfig sc;
    sc.tracegen = smallTracegen();
    sc.jobs = 4;
    SweepEngine engine(sc);
    const auto parallel = engine.run(cells);

    PerfRunner runner(smallTracegen());
    std::vector<PerfResult> serial;
    for (const auto &cell : cells)
        serial.push_back(
            runner.run(cell.workload, cell.mitigator, cell.level));
    expectIdentical(parallel, serial, "engine vs PerfRunner");
}

TEST(SweepDeterminism, RepeatedRunsOnOneEngineAreIdentical)
{
    // The baseline cache is warm on the second run; results must not
    // depend on cache state.
    const auto cells = sampleCells();
    SweepConfig sc;
    sc.tracegen = smallTracegen();
    sc.jobs = 8;
    SweepEngine engine(sc);
    const auto first = engine.run(cells);
    const auto second = engine.run(cells);
    expectIdentical(first, second, "cold vs warm cache");
}

TEST(SweepDeterminism, CellSeedIsAStableCellKey)
{
    const auto tg = smallTracegen();
    const auto &roms = workload::findWorkload("roms");
    const auto &xz = workload::findWorkload("xz");
    const auto moat = mitigation::Registry::parse("moat");
    const auto moat32 = mitigation::Registry::parse("moat:ath=32");

    const uint64_t base = cellSeed(tg, roms, moat, abo::Level::L1);
    EXPECT_EQ(base, cellSeed(tg, roms, moat, abo::Level::L1));
    EXPECT_NE(base, cellSeed(tg, xz, moat, abo::Level::L1));
    EXPECT_NE(base, cellSeed(tg, roms, moat32, abo::Level::L1));
    EXPECT_NE(base, cellSeed(tg, roms, moat, abo::Level::L2));

    auto tg2 = tg;
    tg2.seed += 1;
    EXPECT_NE(base, cellSeed(tg2, roms, moat, abo::Level::L1));
}

TEST(BaselineCache, KeyIncludesConfigNotJustWorkloadName)
{
    // Regression: a shared cache serving two sweeps with different
    // trace configs must not return stale finish times for the second
    // config just because the workload name matches.
    const auto cache = std::make_shared<BaselineCache>();
    const auto &spec = workload::findWorkload("roms");

    auto tg1 = smallTracegen();
    auto tg2 = smallTracegen();
    tg2.windowFraction *= 2;

    const auto f1 = cache->get(tg1, CoreModel{}, spec);
    const auto f2 = cache->get(tg2, CoreModel{}, spec);
    EXPECT_EQ(cache->size(), 2u);
    ASSERT_EQ(f1->size(), f2->size());
    // Twice the window means later finish times under config 2.
    EXPECT_NE(*f1, *f2);

    // Different core model, same tracegen: also a distinct entry.
    CoreModel core2;
    core2.mlp = 1;
    cache->get(tg1, core2, spec);
    EXPECT_EQ(cache->size(), 3u);

    // Re-requesting an existing key hits the cache.
    const auto f1again = cache->get(tg1, CoreModel{}, spec);
    EXPECT_EQ(cache->size(), 3u);
    EXPECT_EQ(f1.get(), f1again.get());
}

TEST(BaselineCache, SharedAcrossRunnersGivesIdenticalResults)
{
    const auto cache = std::make_shared<BaselineCache>();
    const auto tg = smallTracegen();
    PerfRunner a(tg, CoreModel{}, cache);
    PerfRunner b(tg, CoreModel{}, cache);
    const auto &spec = workload::findWorkload("xz");
    const auto m = mitigation::Registry::parse("moat");
    EXPECT_EQ(toJsonLine(a.run(spec, m)), toJsonLine(b.run(spec, m)));
    EXPECT_EQ(cache->size(), 1u);
}

TEST(SweepDeterminism, TraceSeedIgnoresMitigator)
{
    // The mitigated run must replay the exact traces its cached
    // baseline ran on: trace seeding may depend on (seed, workload)
    // only.
    const auto tg = smallTracegen();
    const auto &spec = workload::findWorkload("parest");
    const uint64_t s = workload::traceSeed(spec, tg);
    auto tg2 = tg;
    tg2.banksSimulated = 16; // non-seed fields do not move the stream
    EXPECT_EQ(s, workload::traceSeed(spec, tg2));
    auto tg3 = tg;
    tg3.seed = 1234;
    EXPECT_NE(s, workload::traceSeed(spec, tg3));
}

TEST(ResultIo, EscapedStringsRoundTrip)
{
    // Quotes, backslashes, and control characters in names must
    // survive serialize -> parse -> serialize unchanged.
    PerfResult r;
    r.workload = "we\"ird\\name\nwith\tcontrols";
    r.mitigator = "moat";
    const std::string line = toJsonLine(r);
    const PerfResult back = perfResultOfJsonLine(line);
    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(toJsonLine(back), line);
}

TEST(ResultIo, WriterAndReaderAgreeOnEscapes)
{
    // Writer/reader symmetry across the whole escapable range: names
    // with quotes, backslashes, and every control character must
    // survive serialize -> parse -> serialize byte-identically.
    std::string nasty = "q\"b\\s";
    for (char c = 1; c < 0x20; ++c)
        nasty.push_back(c);
    PerfResult r;
    r.workload = nasty;
    r.mitigator = "m\"\\\t";
    const std::string line = toJsonLine(r);
    const PerfResult back = perfResultOfJsonLine(line);
    EXPECT_EQ(back.workload, nasty);
    EXPECT_EQ(back.mitigator, r.mitigator);
    EXPECT_EQ(toJsonLine(back), line);
}

TEST(ResultIo, StandardJsonEscapesDecodeToTheirCharacters)
{
    // Regression: \n used to decode to the bare letter 'n' (the
    // backslash was silently dropped). Externally produced lines with
    // the standard two-character escapes must decode correctly.
    const std::string line =
        "{\"kind\":\"perf\",\"workload\":\"a\\nb\\tc\\\"d\\\\e\\/f\\r\\b"
        "\\f\",\"mitigator\":\"m\",\"level\":1,\"norm_perf\":1,"
        "\"alerts_per_refi\":0,\"mitigations_per_bank_per_refw\":0,"
        "\"act_overhead\":0,\"alerts\":0,\"acts\":0}";
    const PerfResult r = perfResultOfJsonLine(line);
    EXPECT_EQ(r.workload, std::string("a\nb\tc\"d\\e/f\r\b\f"));
}

TEST(ResultIo, UnicodeEscapesAboveLatin1DecodeAsUtf8)
{
    // Regression: \u0100 and friends were a hard fatal(). They decode
    // to UTF-8 bytes, which the writer passes through raw, so the
    // decoded result re-serializes consistently.
    const std::string line =
        "{\"kind\":\"perf\",\"workload\":\"\\u0100\\u20ac\\u007e\","
        "\"mitigator\":\"m\",\"level\":1,\"norm_perf\":1,"
        "\"alerts_per_refi\":0,\"mitigations_per_bank_per_refw\":0,"
        "\"act_overhead\":0,\"alerts\":0,\"acts\":0}";
    const PerfResult r = perfResultOfJsonLine(line);
    EXPECT_EQ(r.workload, std::string("\xc4\x80\xe2\x82\xac~"));
    // And the decoded form is stable under a second round trip.
    const std::string re = toJsonLine(r);
    EXPECT_EQ(perfResultOfJsonLine(re).workload, r.workload);
}

TEST(ResultIo, MalformedEscapesAreRejectedNotMangled)
{
    const std::string prefix = "{\"kind\":\"perf\",\"workload\":\"";
    const std::string suffix =
        "\",\"mitigator\":\"m\",\"level\":1,\"norm_perf\":1,"
        "\"alerts_per_refi\":0,\"mitigations_per_bank_per_refw\":0,"
        "\"act_overhead\":0,\"alerts\":0,\"acts\":0}";
    EXPECT_EXIT(perfResultOfJsonLine(prefix + "a\\qb" + suffix),
                testing::ExitedWithCode(1), "unknown escape");
    EXPECT_EXIT(perfResultOfJsonLine(prefix + "a\\u12" + suffix),
                testing::ExitedWithCode(1), "escape");
    EXPECT_EXIT(perfResultOfJsonLine(prefix + "a\\ud800b" + suffix),
                testing::ExitedWithCode(1), "surrogate");
    // strtol-isms must not slip through: signs, spaces, 0x prefixes.
    EXPECT_EXIT(perfResultOfJsonLine(prefix + "a\\u-123b" + suffix),
                testing::ExitedWithCode(1), "escape");
    EXPECT_EXIT(perfResultOfJsonLine(prefix + "a\\u0x41b" + suffix),
                testing::ExitedWithCode(1), "escape");
}

TEST(ResultIo, PerSubChannelBreakdownRoundTrips)
{
    PerfResult r;
    r.workload = "w";
    r.mitigator = "moat";
    r.perSubchannel.resize(2);
    r.perSubchannel[0] = {123, 4, 0.125, 830.5};
    r.perSubchannel[1] = {456, 0, 0.0, 829.25};
    const std::string line = toJsonLine(r);
    const PerfResult back = perfResultOfJsonLine(line);
    ASSERT_EQ(back.perSubchannel.size(), 2u);
    EXPECT_EQ(back.perSubchannel[0].acts, 123u);
    EXPECT_EQ(back.perSubchannel[0].alerts, 4u);
    EXPECT_EQ(back.perSubchannel[0].alertsPerRefi, 0.125);
    EXPECT_EQ(back.perSubchannel[1].mitigationsPerBankPerRefw, 829.25);
    EXPECT_EQ(toJsonLine(back), line);

    // The empty breakdown (no System run) round-trips too.
    PerfResult none;
    none.workload = "w";
    none.mitigator = "null";
    const std::string line2 = toJsonLine(none);
    EXPECT_TRUE(perfResultOfJsonLine(line2).perSubchannel.empty());
    EXPECT_EQ(toJsonLine(perfResultOfJsonLine(line2)), line2);
}

TEST(ResultIo, PreSubChannelLinesStayParseable)
{
    // JSONL written before the per-sub-channel arrays existed has no
    // sc_* fields; it must parse to an empty breakdown, not fatal().
    const std::string old_line =
        "{\"kind\":\"perf\",\"workload\":\"roms\",\"mitigator\":\"moat\","
        "\"level\":1,\"norm_perf\":0.5,\"alerts_per_refi\":0.25,"
        "\"mitigations_per_bank_per_refw\":10,\"act_overhead\":0.125,"
        "\"alerts\":7,\"acts\":99}";
    const PerfResult r = perfResultOfJsonLine(old_line);
    EXPECT_EQ(r.workload, "roms");
    EXPECT_EQ(r.alerts, 7u);
    EXPECT_EQ(r.normPerf, 0.5);
    EXPECT_TRUE(r.perSubchannel.empty());
}

TEST(AttackTrials, DeterministicAcrossJobCounts)
{
    attacks::AttackConfig cfg;
    cfg.pattern = "round-robin";
    cfg.budget = 512;
    const auto m = mitigation::Registry::parse("moat");
    const auto serial = attacks::runAttackTrials(cfg, m, 4, 1);
    const auto parallel = attacks::runAttackTrials(cfg, m, 4, 8);
    EXPECT_EQ(toJsonLine(serial, cfg.pattern, m.describe()),
              toJsonLine(parallel, cfg.pattern, m.describe()));
}

} // namespace
} // namespace moatsim::sim
