/**
 * @file
 * Unit tests for the CoffeeLake-style address mapping.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/address_map.hh"

namespace moatsim::dram
{
namespace
{

TEST(AddressMap, CapacityMatchesGeometry)
{
    AddressMap m;
    // 13 (8KB row) + 1 (2 subch) + 5 (32 banks) + 16 (64K rows) = 35
    // bits = 32 GB.
    EXPECT_EQ(m.capacityBytes(), 32ULL * 1024 * 1024 * 1024);
}

TEST(AddressMap, DecodeZero)
{
    AddressMap m;
    const DramCoord c = m.decode(0);
    EXPECT_EQ(c.row, 0u);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.subchannel, 0u);
    EXPECT_EQ(c.column, 0u);
}

TEST(AddressMap, EncodeDecodeRoundTrip)
{
    AddressMap m;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        DramCoord c;
        c.row = static_cast<RowId>(rng.below(1u << 16));
        c.bank = static_cast<BankId>(rng.below(32));
        c.subchannel = static_cast<uint32_t>(rng.below(2));
        c.column = static_cast<uint32_t>(rng.below(1u << 13));
        EXPECT_EQ(m.decode(m.encode(c)), c);
    }
}

TEST(AddressMap, DecodeEncodeRoundTrip)
{
    AddressMap m;
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t addr = rng.below(m.capacityBytes());
        EXPECT_EQ(m.encode(m.decode(addr)), addr);
    }
}

TEST(AddressMap, NoHashKeepsBankBitsPlain)
{
    AddressMap::Config cfg;
    cfg.xorBankHash = false;
    AddressMap m(cfg);
    DramCoord c;
    c.row = 0x5555;
    c.bank = 7;
    c.column = 123;
    c.subchannel = 1;
    EXPECT_EQ(m.decode(m.encode(c)), c);
}

TEST(AddressMap, XorHashSpreadsRowStridesOverBanks)
{
    // Walking the row bits at fixed physical bank bits must visit
    // multiple banks when hashing is on (defeats naive row patterns).
    AddressMap m;
    const uint64_t row_stride = 1ULL << (13 + 1 + 5);
    std::set<BankId> banks;
    for (uint64_t i = 0; i < 32; ++i)
        banks.insert(m.decode(i * row_stride).bank);
    EXPECT_GT(banks.size(), 1u);
}

TEST(AddressMap, SubChannelBitRoundTripProperty)
{
    // Property over the sub-channel bit: for random addresses,
    // (1) encode(decode(a)) == a with the sub-channel field intact,
    // (2) flipping the sub-channel address bit flips only the decoded
    //     sub-channel -- bank, row, and column are sub-channel
    //     invariant, which is what lets the trace generator route a
    //     core's accesses across sub-channels without perturbing the
    //     per-bank row structure.
    AddressMap m;
    const uint32_t sc_shift = m.config().rowBits;
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t addr = rng.below(m.capacityBytes());
        const DramCoord c = m.decode(addr);
        EXPECT_LT(c.subchannel, 2u);
        EXPECT_EQ(m.encode(c), addr);

        const uint64_t flipped = addr ^ (1ULL << sc_shift);
        const DramCoord f = m.decode(flipped);
        EXPECT_EQ(f.subchannel, c.subchannel ^ 1u);
        EXPECT_EQ(f.bank, c.bank);
        EXPECT_EQ(f.row, c.row);
        EXPECT_EQ(f.column, c.column);
    }
}

TEST(AddressMap, SameRowDifferentColumnsShareBankAndRow)
{
    AddressMap m;
    DramCoord c1;
    c1.row = 42;
    c1.bank = 3;
    c1.column = 0;
    DramCoord c2 = c1;
    c2.column = 4096;
    const uint64_t a1 = m.encode(c1);
    const uint64_t a2 = m.encode(c2);
    EXPECT_EQ(m.decode(a1).row, m.decode(a2).row);
    EXPECT_EQ(m.decode(a1).bank, m.decode(a2).bank);
    EXPECT_NE(m.decode(a1).column, m.decode(a2).column);
}

} // namespace
} // namespace moatsim::dram
