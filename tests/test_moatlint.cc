/**
 * @file
 * Self-tests of the moatlint determinism linter (tools/moatlint).
 *
 * Four layers:
 *   - per-rule fixture snippets through lintSource(): each rule fires
 *     on its target idiom and stays quiet on the sanctioned
 *     alternative (comments and string literals never trigger);
 *   - the suppression machinery round-trip: same-line and standalone
 *     allow() comments, multi-line justifications, stacking, the
 *     bad-suppression diagnostics for unknown rules or missing
 *     justifications, and the stale-suppression audit;
 *   - the keylint semantic pass through lintFiles(): key-source
 *     coverage (direct folds, helper closures, member folds, nested
 *     delegation), key-exempt leaks, drift diagnostics, and the
 *     mutate-check oracle that proves the pass catches a dropped fold;
 *   - the real tree (MOATSIM_SOURCE_DIR) through lintTree()/
 *     lintFiles(): the clean-tree gate CI enforces -- zero
 *     unsuppressed findings across src/, tools/, and tests/ -- plus
 *     the invariants the linter exists to keep true (mitigators
 *     final, dispatch sealed, JSONL %.17g, cache keys sound).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "moatlint/keylint.hh"
#include "moatlint/lint.hh"

namespace
{

using moatlint::Finding;
using moatlint::lintFiles;
using moatlint::lintSource;
using moatlint::lintTree;
using moatlint::mutateCheck;
using moatlint::passOf;
using moatlint::reportJson;
using moatlint::reportSarif;
using moatlint::SourceFile;
using moatlint::unsuppressedCount;

/** Findings of @p rule (suppressed included). */
std::vector<Finding>
ofRule(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<Finding> out;
    for (const auto &f : findings) {
        if (f.rule == rule)
            out.push_back(f);
    }
    return out;
}

/** Lines of unsuppressed @p rule findings. */
std::vector<int>
linesOf(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<int> lines;
    for (const auto &f : ofRule(findings, rule)) {
        if (!f.suppressed)
            lines.push_back(f.line);
    }
    return lines;
}

// ------------------------------------------------------------ std-hash

TEST(MoatlintStdHash, FlagsInstantiation)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "uint64_t k = std::hash<std::string>{}(name);\n");
    EXPECT_EQ(linesOf(f, "std-hash"), (std::vector<int>{1}));
}

TEST(MoatlintStdHash, QuietOnStableHash)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "uint64_t k = common::stableHash64(name);\n"
        "uint64_t c = common::hashCombine(k, 7);\n");
    EXPECT_TRUE(ofRule(f, "std-hash").empty());
}

TEST(MoatlintStdHash, QuietInCommentAndString)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "// std::hash<int> is banned here\n"
        "const char *s = \"std::hash<int>\";\n");
    EXPECT_TRUE(ofRule(f, "std-hash").empty());
}

// ----------------------------------------------------------- libc-rand

TEST(MoatlintLibcRand, FlagsRandCalls)
{
    const auto f = lintSource("src/sim/x.cc",
                              "int a = rand() % 7;\n"
                              "int b = std::rand();\n"
                              "srand(42);\n"
                              "std::random_device rd;\n");
    EXPECT_EQ(linesOf(f, "libc-rand"), (std::vector<int>{1, 2, 3, 4}));
}

TEST(MoatlintLibcRand, QuietOnMemberAndPrefixNames)
{
    // Member functions and identifiers merely containing "rand" are
    // someone else's business.
    const auto f = lintSource("src/sim/x.cc",
                              "int a = rng.rand();\n"
                              "int b = gen->rand();\n"
                              "int operand = my_rand_count;\n"
                              "int c = brand();\n");
    EXPECT_TRUE(ofRule(f, "libc-rand").empty());
}

// ---------------------------------------------------------- wall-clock

TEST(MoatlintWallClock, FlagsClockReads)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n"
        "auto u = std::chrono::system_clock::now();\n"
        "time_t v = time(nullptr);\n"
        "clock_gettime(CLOCK_MONOTONIC, &ts);\n");
    EXPECT_EQ(linesOf(f, "wall-clock"), (std::vector<int>{1, 2, 3, 4}));
}

TEST(MoatlintWallClock, QuietOnSimulationTime)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "Time t = picoseconds(5);\n"
        "uint64_t lifetime = spec.lifetime;\n" // substring, not a call
        "double realtime_factor = 2.0;\n");
    EXPECT_TRUE(ofRule(f, "wall-clock").empty());
}

// ------------------------------------------------------ unordered-iter

TEST(MoatlintUnorderedIter, FlagsRangeForAndBegin)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "std::unordered_map<uint64_t, int> counts;\n"
        "void scan() {\n"
        "    for (const auto &[k, v] : counts) { use(k, v); }\n"
        "    for (auto it = counts.begin(); it != counts.end(); ++it)\n"
        "        use(*it);\n"
        "}\n");
    EXPECT_EQ(linesOf(f, "unordered-iter"), (std::vector<int>{3, 4}));
}

TEST(MoatlintUnorderedIter, QuietOnLookupAndEndSentinel)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "std::unordered_map<uint64_t, int> counts;\n"
        "bool has(uint64_t k) { return counts.find(k) != counts.end(); }\n"
        "auto sentinel() { return counts.end(); }\n"
        "int get(uint64_t k) { return counts.at(k); }\n");
    EXPECT_TRUE(ofRule(f, "unordered-iter").empty());
}

TEST(MoatlintUnorderedIter, QuietOnOrderedContainers)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "std::map<uint64_t, int> counts;\n"
        "void scan() { for (const auto &[k, v] : counts) use(k, v); }\n");
    EXPECT_TRUE(ofRule(f, "unordered-iter").empty());
}

TEST(MoatlintUnorderedIter, ExtraNamesCoverHeaderMembers)
{
    // A .cc iterating a member declared in its header is caught when
    // the header's declarations are passed through (lintTree does).
    const std::string cc =
        "void Store::scan() { for (const auto &e : entries_) use(e); }\n";
    EXPECT_TRUE(ofRule(lintSource("src/sim/x.cc", cc), "unordered-iter")
                    .empty());
    EXPECT_EQ(linesOf(lintSource("src/sim/x.cc", cc, {"entries_"}),
                      "unordered-iter"),
              (std::vector<int>{1}));
}

// ------------------------------------------------------- pointer-order

TEST(MoatlintPointerOrder, FlagsCastLessAndComparator)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "uint64_t k = reinterpret_cast<uintptr_t>(p);\n"
        "std::set<Foo *, std::less<Foo *>> s;\n"
        "auto cmp = [](const Foo *a, const Foo *b) { return a < b; };\n");
    EXPECT_EQ(linesOf(f, "pointer-order"), (std::vector<int>{1, 2, 3}));
}

TEST(MoatlintPointerOrder, QuietOnEqualityAndStableKeys)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "bool same = (a == b);\n"
        "auto cmp = [](const Foo *a, const Foo *b)\n"
        "    { return a->id < b->id; };\n");
    EXPECT_TRUE(ofRule(f, "pointer-order").empty());
}

TEST(MoatlintPointerOrder, ScopedToReplayAndSweepCode)
{
    // The same idiom outside src/{sim,subchannel,workload} -- e.g.
    // common/ debug utilities -- is out of scope.
    const auto f = lintSource(
        "src/common/x.cc",
        "uint64_t k = reinterpret_cast<uintptr_t>(p);\n");
    EXPECT_TRUE(ofRule(f, "pointer-order").empty());
}

// ----------------------------------------------------- mitigator-final

TEST(MoatlintMitigatorFinal, FlagsNonFinalDerivation)
{
    const auto f = lintSource(
        "src/mitigation/open.hh",
        "class Open : public IMitigator {\n};\n"
        "class Sealed final : public IMitigator {\n};\n");
    EXPECT_EQ(linesOf(f, "mitigator-final"), (std::vector<int>{1}));
}

TEST(MoatlintMitigatorFinal, ScopedToMitigationHeaders)
{
    const auto f = lintSource("src/sim/open.hh",
                              "class Open : public IMitigator {\n};\n");
    EXPECT_TRUE(ofRule(f, "mitigator-final").empty());
}

// ----------------------------------------------------- jsonl-stability

TEST(MoatlintJsonlStability, FlagsLooseFloatsInEmitters)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "// MOATSIM_JSONL emitter\n"
        // moatlint: allow(jsonl-stability): fixture bytes for the rule
        // under test (the marker above makes this file an emitter too)
        "void emit() { std::printf(\"%.6f\", v); }\n"
        "void also() { os << std::setprecision(9) << v; }\n"
        "void fine() { std::snprintf(b, n, \"%.17g\", v); }\n"
        "void ints() { std::printf(\"%d %s %u\", i, s, u); }\n");
    EXPECT_EQ(linesOf(f, "jsonl-stability"), (std::vector<int>{2, 3}));
}

TEST(MoatlintJsonlStability, QuietOffEmitters)
{
    // Human-readable CLI summaries may format floats freely.
    const auto f = lintSource(
        "src/tools/cli.cc",
        // moatlint: allow(jsonl-stability): fixture bytes for the rule
        // under test (this test file carries the emitter marker)
        "void show() { std::printf(\"%.2f ms\", toMs(d)); }\n");
    EXPECT_TRUE(ofRule(f, "jsonl-stability").empty());
}

// ------------------------------------------------------ magic-geometry

TEST(MoatlintMagicGeometry, FlagsRowAndBankLiterals)
{
    const auto f = lintSource(
        "src/workload/x.cc",
        "uint32_t rows = 64 * 1024;\n"
        "uint32_t rows2 = 64*1024;\n"
        "uint32_t rows3 = 65536;\n"
        "uint32_t banks_per_chip = 32;\n"
        "config.numBanks = 32;\n");
    EXPECT_EQ(linesOf(f, "magic-geometry"),
              (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(MoatlintMagicGeometry, QuietOnNamedConstantsAndOtherNumbers)
{
    const auto f = lintSource(
        "src/workload/x.cc",
        "uint32_t rows = dram::kTable3RowsPerBank;\n"
        "uint32_t banks = device.banksPerSubchannel();\n"
        "uint32_t eth = 32;\n"          // a threshold, not a bank count
        "uint32_t window = 32 * 1024;\n" // not the 64K row count
        "uint32_t x = 165536;\n");
    EXPECT_TRUE(ofRule(f, "magic-geometry").empty());
}

TEST(MoatlintMagicGeometry, QuietInCommentAndString)
{
    const auto f = lintSource(
        "src/workload/x.cc",
        "// the Table-3 system has 64 * 1024 rows, numBanks = 32\n"
        "const char *s = \"rows = 64 * 1024\";\n");
    EXPECT_TRUE(ofRule(f, "magic-geometry").empty());
}

TEST(MoatlintMagicGeometry, DeviceTablesAreExempt)
{
    const std::string body = "uint32_t rowsPerBank = 64 * 1024;\n"
                             "uint32_t banksPerChip = 32;\n";
    EXPECT_TRUE(
        ofRule(lintSource("src/dram/device.cc", body), "magic-geometry")
            .empty());
    EXPECT_TRUE(
        ofRule(lintSource("src/dram/device.hh", body), "magic-geometry")
            .empty());
    EXPECT_TRUE(
        ofRule(lintSource("src/dram/timing.hh", body), "magic-geometry")
            .empty());
    // Elsewhere in dram/ the rule applies.
    EXPECT_EQ(linesOf(lintSource("src/dram/bank.cc", body),
                      "magic-geometry"),
              (std::vector<int>{1, 2}));
}

// -------------------------------------------------------- suppressions

TEST(MoatlintSuppression, SameLineRoundTrip)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = rand(); // moatlint: allow(libc-rand): fixture only\n");
    const auto hits = ofRule(f, "libc-rand");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_TRUE(hits[0].suppressed);
    EXPECT_EQ(hits[0].justification, "fixture only");
    EXPECT_EQ(unsuppressedCount(f), 0u);
}

TEST(MoatlintSuppression, StandaloneCoversNextCodeLine)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "// moatlint: allow(libc-rand): seeding the fixture\n"
        "// (order does not matter here)\n"
        "int a = rand();\n");
    const auto hits = ofRule(f, "libc-rand");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_TRUE(hits[0].suppressed);
    EXPECT_EQ(unsuppressedCount(f), 0u);
}

TEST(MoatlintSuppression, StackedStandaloneSuppressions)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "// moatlint: allow(libc-rand): fixture\n"
        "// moatlint: allow(std-hash): fixture\n"
        "int a = rand() + std::hash<int>{}(7);\n");
    EXPECT_EQ(unsuppressedCount(f), 0u);
}

TEST(MoatlintSuppression, WrongRuleDoesNotSuppress)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = rand(); // moatlint: allow(std-hash): wrong rule\n");
    EXPECT_EQ(linesOf(f, "libc-rand"), (std::vector<int>{1}));
    // And the unused allow(std-hash) is itself flagged as stale.
    EXPECT_EQ(linesOf(f, "bad-suppression"), (std::vector<int>{1}));
}

TEST(MoatlintSuppression, StaleSuppressionIsBadSuppression)
{
    // A well-formed allow() whose target line no longer triggers the
    // rule must not linger: left in place it would silently mask the
    // next regression at that line.
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = 7; // moatlint: allow(libc-rand): was rand() once\n");
    const auto hits = ofRule(f, "bad-suppression");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 1);
    EXPECT_NE(hits[0].message.find("stale"), std::string::npos);
    EXPECT_FALSE(hits[0].suppressed);
}

TEST(MoatlintSuppression, LiveSuppressionIsNotStale)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = rand(); // moatlint: allow(libc-rand): fixture\n");
    EXPECT_TRUE(ofRule(f, "bad-suppression").empty());
}

TEST(MoatlintSuppression, AllowBadSuppressionKeepsAStaleOne)
{
    // An intentionally kept stale allow() can itself be suppressed --
    // and allow(bad-suppression) is never audited as stale, or the
    // pair would oscillate.
    const auto f = lintSource(
        "src/sim/x.cc",
        "// moatlint: allow(bad-suppression): kept for the pending\n"
        "// re-land of the rand() fixture\n"
        "int a = 7; // moatlint: allow(libc-rand): fixture to re-land\n");
    const auto hits = ofRule(f, "bad-suppression");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_TRUE(hits[0].suppressed);
    EXPECT_EQ(unsuppressedCount(f), 0u);
}

TEST(MoatlintSuppression, UnknownDirectiveIsBadSuppression)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = 7; // moatlint: disable(libc-rand): not a directive\n");
    const auto hits = ofRule(f, "bad-suppression");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("unknown moatlint directive"),
              std::string::npos);
}

TEST(MoatlintSuppression, UnknownRuleIsBadSuppression)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = rand(); // moatlint: allow(no-such-rule): nope\n");
    EXPECT_EQ(linesOf(f, "libc-rand"), (std::vector<int>{1}));
    EXPECT_EQ(linesOf(f, "bad-suppression"), (std::vector<int>{1}));
}

TEST(MoatlintSuppression, MissingJustificationIsBadSuppression)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = rand(); // moatlint: allow(libc-rand):\n"
        "int b = rand(); // moatlint: allow(libc-rand)\n");
    EXPECT_EQ(linesOf(f, "libc-rand"), (std::vector<int>{1, 2}));
    EXPECT_EQ(linesOf(f, "bad-suppression"), (std::vector<int>{1, 2}));
}

// --------------------------------------------------------- JSON report

TEST(MoatlintReport, JsonIsByteStableAndComplete)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = rand();\n"
        "int b = rand(); // moatlint: allow(libc-rand): fixture\n");
    const std::string json = reportJson(f);
    EXPECT_EQ(json, reportJson(f)) << "report must be deterministic";
    EXPECT_NE(json.find("\"rule\":\"libc-rand\""), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\":true"), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\":false"), std::string::npos);
    EXPECT_NE(json.find("\"justification\":\"fixture\""),
              std::string::npos);
    EXPECT_NE(json.find("\"total\":2"), std::string::npos);
    EXPECT_NE(json.find("\"unsuppressed\":1"), std::string::npos);
}

TEST(MoatlintReport, EscapesQuotesAndBackslashes)
{
    std::vector<Finding> f{
        {"src/a \"b\".cc", 1, "libc-rand", "back\\slash", false, ""}};
    const std::string json = reportJson(f);
    EXPECT_NE(json.find("src/a \\\"b\\\".cc"), std::string::npos);
    EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

TEST(MoatlintReport, PassLabelsSplitTextualFromSemantic)
{
    EXPECT_STREQ(passOf("key-coverage"), "semantic");
    EXPECT_STREQ(passOf("key-exempt-leak"), "semantic");
    EXPECT_STREQ(passOf("key-source-drift"), "semantic");
    EXPECT_STREQ(passOf("libc-rand"), "textual");
    EXPECT_STREQ(passOf("bad-suppression"), "textual");
    const auto f = lintSource("src/sim/x.cc", "int a = rand();\n");
    EXPECT_NE(reportJson(f).find("\"pass\":\"textual\""),
              std::string::npos);
}

TEST(MoatlintReport, SarifCarriesRulesResultsAndSuppressions)
{
    const auto f = lintSource(
        "src/sim/x.cc",
        "int a = rand();\n"
        "int b = rand(); // moatlint: allow(libc-rand): fixture\n");
    const std::string sarif = reportSarif(f);
    EXPECT_EQ(sarif, reportSarif(f)) << "report must be deterministic";
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\":\"moatlint\""), std::string::npos);
    // Every rule appears in the driver's rule list with its pass.
    EXPECT_NE(sarif.find("\"id\":\"key-coverage\""), std::string::npos);
    EXPECT_NE(sarif.find("\"pass\":\"semantic\""), std::string::npos);
    // The live finding is an error, the suppressed one a note with an
    // inSource suppression (code scanning then opens no alert for it).
    EXPECT_NE(sarif.find("\"ruleId\":\"libc-rand\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\":\"note\""), std::string::npos);
    EXPECT_NE(sarif.find("\"kind\":\"inSource\""), std::string::npos);
    EXPECT_NE(sarif.find("\"justification\":\"fixture\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\":1"), std::string::npos);
}

// -------------------------------------------------------------- keylint

/** A two-file key-source fixture: header with the annotated struct,
 *  impl with the fold. @p fold is the body of cfgKey. */
std::vector<SourceFile>
keyFixture(const std::string &fold,
           const std::string &extra_fields = "")
{
    return {
        {"src/sim/cfg.hh",
         "// moatlint: key-source(cfgKey)\n"
         "struct Cfg {\n"
         "    uint64_t seed = 0;\n"
         "    uint32_t banks = 0;\n" +
             extra_fields +
             "};\n"
             "uint64_t cfgKey(const Cfg &c);\n"},
        {"src/sim/cfg.cc",
         "uint64_t cfgKey(const Cfg &c)\n"
         "{\n" +
             fold + "}\n"}};
}

TEST(MoatlintKeylint, CoverageFlagsUnfoldedField)
{
    const auto f =
        lintFiles(keyFixture("    return hashCombine(7, c.seed);\n"));
    const auto hits = ofRule(f, "key-coverage");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "src/sim/cfg.hh");
    EXPECT_EQ(hits[0].line, 4);
    EXPECT_NE(hits[0].message.find("'Cfg::banks'"), std::string::npos);
    EXPECT_FALSE(hits[0].suppressed);
}

TEST(MoatlintKeylint, QuietWhenEveryFieldIsFolded)
{
    const auto f = lintFiles(keyFixture(
        "    return hashCombine(c.banks, c.seed);\n"));
    EXPECT_TRUE(ofRule(f, "key-coverage").empty());
    EXPECT_TRUE(ofRule(f, "key-source-drift").empty());
    EXPECT_EQ(unsuppressedCount(f), 0u);
}

TEST(MoatlintKeylint, CoverageReachesThroughHelperClosure)
{
    // configKey folds geometry via helpers (subchannelsOf et al.); a
    // field touched only inside a transitively called helper counts.
    auto files = keyFixture("    return hashCombine(banksOf(c), c.seed);\n");
    files[1].content =
        "static uint64_t widen(uint32_t v) { return v; }\n"
        "static uint64_t banksOf(const Cfg &c) { return widen(c.banks); }\n" +
        files[1].content;
    EXPECT_TRUE(ofRule(lintFiles(files), "key-coverage").empty());
}

TEST(MoatlintKeylint, MentionsInCommentsAndStringsDoNotCover)
{
    const auto f = lintFiles(keyFixture(
        "    // c.banks is deliberately not folded\n"
        "    const char *s = \"c.banks\";\n"
        "    (void) s;\n"
        "    return hashCombine(7, c.seed);\n"));
    EXPECT_EQ(linesOf(f, "key-coverage"), (std::vector<int>{4}));
}

TEST(MoatlintKeylint, ExemptQuietsCoverageAndLeakFiresOnFold)
{
    const std::string exempt_field =
        "    // moatlint: key-exempt(cfgKey): a storage knob, not a\n"
        "    // result input\n"
        "    bool cache = false;\n";
    // Exempt and absent from the fold: clean.
    const auto quiet = lintFiles(keyFixture(
        "    return hashCombine(c.banks, c.seed);\n", exempt_field));
    EXPECT_TRUE(ofRule(quiet, "key-coverage").empty());
    EXPECT_TRUE(ofRule(quiet, "key-exempt-leak").empty());
    // Exempt yet folded: the annotation lies; key-exempt-leak.
    const auto leak = lintFiles(keyFixture(
        "    return hashCombine(c.banks, c.seed ^ c.cache);\n",
        exempt_field));
    const auto hits = ofRule(leak, "key-exempt-leak");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 7);
    EXPECT_NE(hits[0].message.find("'Cfg::cache'"), std::string::npos);
}

TEST(MoatlintKeylint, ExemptWithoutJustificationIsBadSuppression)
{
    const auto f = lintFiles(keyFixture(
        "    return hashCombine(c.banks, c.seed);\n",
        "    // moatlint: key-exempt(cfgKey)\n"
        "    bool cache = false;\n"));
    const auto hits = ofRule(f, "bad-suppression");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("justification"), std::string::npos);
    // Without a valid exemption the field still needs folding.
    EXPECT_EQ(ofRule(f, "key-coverage").size(), 1u);
}

TEST(MoatlintKeylint, ExemptNamingWrongFunctionIsDrift)
{
    const auto f = lintFiles(keyFixture(
        "    return hashCombine(c.banks, c.seed);\n",
        "    // moatlint: key-exempt(otherKey): wrong function\n"
        "    bool cache = false;\n"));
    const auto hits = ofRule(f, "key-source-drift");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("otherKey"), std::string::npos);
}

TEST(MoatlintKeylint, AnnotationOffAStructIsDrift)
{
    const auto f = lintFiles(
        {{"src/sim/x.cc",
          "// moatlint: key-source(cfgKey)\n"
          "int not_a_struct = 0;\n"}});
    const auto hits = ofRule(f, "key-source-drift");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("does not precede a struct"),
              std::string::npos);
}

TEST(MoatlintKeylint, MissingDefinitionIsDriftOnTreesOnly)
{
    // On a full tree an undefined key fn means the contract checks
    // nothing; in a lone header the impl legitimately lives elsewhere.
    const std::string hh =
        "// moatlint: key-source(cfgKey)\n"
        "struct Cfg { uint64_t seed = 0; };\n"
        "uint64_t cfgKey(const Cfg &c);\n";
    const auto tree = lintFiles({{"src/sim/cfg.hh", hh}});
    const auto hits = ofRule(tree, "key-source-drift");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("no definition"), std::string::npos);
    EXPECT_TRUE(
        ofRule(lintSource("src/sim/cfg.hh", hh), "key-source-drift")
            .empty());
}

TEST(MoatlintKeylint, NestedKeySourceDelegates)
{
    const std::string common =
        "// moatlint: key-source(innerKey)\n"
        "struct Inner { uint64_t a = 0; };\n"
        "// moatlint: key-source(outerKey)\n"
        "struct Outer {\n"
        "    Inner in;\n"
        "    uint64_t b = 0;\n"
        "};\n"
        "uint64_t innerKey(const Inner &i) { return i.a; }\n";
    // Routing through the nested struct's own key fn: clean.
    const auto good = lintFiles(
        {{"src/sim/k.hh",
          common + "uint64_t outerKey(const Outer &o)\n"
                   "{ return hashCombine(innerKey(o.in), o.b); }\n"}});
    EXPECT_TRUE(ofRule(good, "key-coverage").empty());
    EXPECT_TRUE(ofRule(good, "key-source-drift").empty());
    // Restating the nested fields bypasses Inner's contract: drift.
    const auto bypass = lintFiles(
        {{"src/sim/k.hh",
          common + "uint64_t outerKey(const Outer &o)\n"
                   "{ return hashCombine(o.in.a, o.b); }\n"}});
    const auto hits = ofRule(bypass, "key-source-drift");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("nested key is bypassed"),
              std::string::npos);
}

TEST(MoatlintKeylint, MemberFoldCountsBareFieldMentions)
{
    // DeviceSpec::describe() is the live example: a member key fn
    // reaches fields without an object prefix.
    const auto f = lintFiles(
        {{"src/sim/spec.hh",
          "// moatlint: key-source(Spec::key)\n"
          "class Spec {\n"
          "  public:\n"
          "    uint64_t key() const;\n"
          "  private:\n"
          "    uint64_t org_ = 0;\n"
          "    uint64_t speed_ = 0;\n"
          "};\n"},
         {"src/sim/spec.cc",
          "uint64_t Spec::key() const\n"
          "{ return hashCombine(org_, speed_); }\n"}});
    EXPECT_TRUE(ofRule(f, "key-coverage").empty());
    EXPECT_TRUE(ofRule(f, "key-source-drift").empty());
}

// ---------------------------------------------------------- mutate-check

TEST(MoatlintMutateCheck, SoundFixturePassesAndMutantsAreCaught)
{
    const auto rep = mutateCheck(keyFixture(
        "    return hashCombine(c.banks, c.seed);\n"));
    EXPECT_TRUE(rep.baseline.empty());
    ASSERT_EQ(rep.mutants.size(), 2u);
    for (const auto &m : rep.mutants) {
        EXPECT_TRUE(m.caught)
            << m.structName << "::" << m.field << " via " << m.keyFn;
        EXPECT_FALSE(m.exempt);
    }
    EXPECT_TRUE(rep.ok());
}

TEST(MoatlintMutateCheck, ExemptMutantReinsertsAndIsCaught)
{
    const auto rep = mutateCheck(keyFixture(
        "    return hashCombine(c.banks, c.seed);\n",
        "    // moatlint: key-exempt(cfgKey): a knob, not an input\n"
        "    bool cache = false;\n"));
    ASSERT_EQ(rep.mutants.size(), 3u);
    bool saw_exempt = false;
    for (const auto &m : rep.mutants) {
        if (m.field == "cache") {
            saw_exempt = true;
            EXPECT_TRUE(m.exempt);
        }
        EXPECT_TRUE(m.caught) << m.field;
    }
    EXPECT_TRUE(saw_exempt);
    EXPECT_TRUE(rep.ok());
}

TEST(MoatlintMutateCheck, DirtyBaselineFailsClosed)
{
    const auto rep = mutateCheck(keyFixture(
        "    return hashCombine(7, c.seed);\n"));
    EXPECT_FALSE(rep.baseline.empty());
    EXPECT_TRUE(rep.mutants.empty());
    EXPECT_FALSE(rep.ok());
}

// ---------------------------------------------------- tree-level rules

class MoatlintTreeFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = std::filesystem::temp_directory_path() /
                ("moatlint_fixture_" +
                 std::to_string(::getpid()));
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(root_ / "src/mitigation");
        std::filesystem::create_directories(root_ / "src/subchannel");
        std::filesystem::create_directories(root_ / "src/workload");
    }

    void TearDown() override { std::filesystem::remove_all(root_); }

    void write(const std::string &rel, const std::string &content)
    {
        std::ofstream os(root_ / rel, std::ios::binary);
        os << content;
    }

    std::vector<Finding> lint()
    {
        return lintTree((root_ / "src").string());
    }

    std::filesystem::path root_;
};

TEST_F(MoatlintTreeFixture, SealedDispatchFlagsMissingCase)
{
    write("src/mitigation/mitigator.hh",
          "enum class MitigatorKind { Moat, Extra, Custom };\n"
          "struct IMitigator { virtual ~IMitigator() = default; };\n");
    write("src/subchannel/subchannel.cc",
          "void d() { switch (k) { case MitigatorKind::Moat: break; } }\n");
    const auto f = lint();
    const auto hits = ofRule(f, "sealed-dispatch");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("MitigatorKind::Extra"),
              std::string::npos);
    EXPECT_EQ(hits[0].file, "src/mitigation/mitigator.hh");
}

TEST_F(MoatlintTreeFixture, SealedDispatchCustomIsExemptAndFullIsClean)
{
    write("src/mitigation/mitigator.hh",
          "enum class MitigatorKind { Moat, Custom };\n");
    write("src/subchannel/subchannel.cc",
          "void d() { switch (k) { case MitigatorKind::Moat: break; } }\n");
    EXPECT_TRUE(ofRule(lint(), "sealed-dispatch").empty());
}

TEST_F(MoatlintTreeFixture, HeaderDeclsReachPairedSource)
{
    write("src/workload/store.hh",
          "struct Store { std::unordered_map<uint64_t, int> entries_; };\n");
    write("src/workload/store.cc",
          "void Store::scan() {\n"
          "    for (const auto &e : entries_) use(e);\n"
          "}\n");
    const auto f = lint();
    const auto hits = ofRule(f, "unordered-iter");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "src/workload/store.cc");
    EXPECT_EQ(hits[0].line, 2);
}

TEST_F(MoatlintTreeFixture, PathsAreRelativeAndSorted)
{
    write("src/workload/b.cc", "int b = rand();\n");
    write("src/workload/a.cc", "int a = rand();\n");
    const auto f = lint();
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0].file, "src/workload/a.cc");
    EXPECT_EQ(f[1].file, "src/workload/b.cc");
}

// ----------------------------------------------------- the real tree

#ifdef MOATSIM_SOURCE_DIR

/** src + tools + tests as one set, the way the moatlint binary and CI
 *  lint them (keylint resolves key fns across directory boundaries). */
std::vector<SourceFile>
realTree()
{
    std::vector<SourceFile> files;
    for (const char *dir : {"/src", "/tools", "/tests"}) {
        const auto part = moatlint::readSourceTree(
            std::string(MOATSIM_SOURCE_DIR) + dir);
        files.insert(files.end(), part.begin(), part.end());
    }
    return files;
}

/** The gate CI enforces: every finding in src/, tools/, and tests/
 *  carries a valid suppression with a written justification. */
TEST(MoatlintCleanTree, TreeHasZeroUnsuppressedFindings)
{
    const auto f = lintFiles(realTree());
    for (const auto &fi : f) {
        EXPECT_TRUE(fi.suppressed)
            << fi.file << ":" << fi.line << ": [" << fi.rule << "] "
            << fi.message;
        EXPECT_FALSE(fi.justification.empty());
    }
    EXPECT_EQ(unsuppressedCount(f), 0u);
}

/** The invariants the linter exists to keep true, asserted directly
 *  so a rule regression cannot silently exempt the real tree. */
TEST(MoatlintCleanTree, RealTreeExercisesTheRules)
{
    const auto f =
        lintTree(std::string(MOATSIM_SOURCE_DIR) + "/src");
    // The two sanctioned unordered-iter sites keep the suppression
    // machinery exercised in production code.
    EXPECT_GE(ofRule(f, "unordered-iter").size(), 2u);
    // And the hard invariants hold outright.
    EXPECT_TRUE(ofRule(f, "mitigator-final").empty());
    EXPECT_TRUE(ofRule(f, "sealed-dispatch").empty());
    EXPECT_TRUE(ofRule(f, "std-hash").empty());
    EXPECT_TRUE(ofRule(f, "libc-rand").empty());
    EXPECT_TRUE(ofRule(f, "wall-clock").empty());
    // Geometry literals live only in the device tables; everything
    // else derives from the DeviceModel (or the kTable3 constants).
    EXPECT_TRUE(ofRule(f, "magic-geometry").empty());
    EXPECT_TRUE(ofRule(f, "bad-suppression").empty());
}

/** The cache-key contracts the sweep pipeline rests on: every
 *  annotated key-source struct verifies, with zero findings -- a new
 *  config field that is not folded (or exempted) fails this test. */
TEST(MoatlintCleanTree, KeyContractsHold)
{
    const auto f = lintFiles(realTree());
    EXPECT_TRUE(ofRule(f, "key-coverage").empty());
    EXPECT_TRUE(ofRule(f, "key-exempt-leak").empty());
    EXPECT_TRUE(ofRule(f, "key-source-drift").empty());
}

/** The oracle: the pass is only trustworthy if deleting any single
 *  fold from a real key function is detected. Covers configKey,
 *  requestKey, coAttackCellKey, ResultStore::foldKey, and
 *  DeviceSpec::describe. */
TEST(MoatlintCleanTree, RealTreeMutantsAreAllCaught)
{
    const auto rep = mutateCheck(realTree());
    EXPECT_TRUE(rep.baseline.empty());
    // The five annotated contracts carry well over 30 fields between
    // them; a collapse of the mutant count means annotations were
    // dropped or the scanner stopped seeing the structs.
    EXPECT_GE(rep.mutants.size(), 30u);
    for (const auto &m : rep.mutants) {
        EXPECT_TRUE(m.caught)
            << m.structName << "::" << m.field << " via " << m.keyFn
            << (m.exempt ? " (exempt re-insertion)" : " (fold removal)");
    }
    EXPECT_TRUE(rep.ok());
}

#endif // MOATSIM_SOURCE_DIR

} // namespace
