/**
 * @file
 * Tests for the work-stealing thread pool the sweep engine runs on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.hh"

namespace moatsim
{
namespace
{

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::vector<std::atomic<int>> hits(512);
    for (auto &h : hits)
        h = 0;
    for (size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, SingleWorkerDrainsEverything)
{
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 32; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 32 * (round + 1));
    }
}

TEST(ThreadPool, JobsMaySubmitJobs)
{
    // wait() must cover work spawned by running jobs (a sweep cell
    // enqueuing follow-up cells).
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, MoreThreadsThanJobs)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

} // namespace
} // namespace moatsim
