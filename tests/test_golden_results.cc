/**
 * @file
 * Golden-result regression harness.
 *
 * Regenerates a small, fast sweep of every registered mitigator (perf
 * cells through the parallel SweepEngine, attack outcomes through
 * runAttack) and byte-compares the JSONL serialization against the
 * checked-in files under tests/golden/. Any intentional change to
 * simulation behaviour must regenerate them:
 *
 *     ./test_golden_results --update-golden
 *     (or MOATSIM_UPDATE_GOLDEN=1 ctest -R golden)
 *
 * Regenerated output is always also written to golden_actual/ in the
 * build directory, so CI can upload the diff as an artifact when the
 * comparison fails.
 *
 * This binary has its own main() (it must see argv before gtest eats
 * it), so CMake links it against gtest, not gtest_main.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/attack.hh"
#include "dram/device.hh"
#include "sim/coattack.hh"
#include "sim/result_io.hh"
#include "sim/sweep.hh"

#ifndef MOATSIM_GOLDEN_DIR
#error "MOATSIM_GOLDEN_DIR must point at the checked-in golden files"
#endif
#ifndef MOATSIM_GOLDEN_OUT
#define MOATSIM_GOLDEN_OUT "."
#endif

namespace moatsim::sim
{
namespace
{

bool g_update_golden = false;

workload::TraceGenConfig
goldenTracegen()
{
    workload::TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.numCores = 4;
    tg.windowFraction = 0.015625;
    return tg;
}

/** The golden perf sweep of one registered design: 2 workloads x L1,
 *  run through the parallel engine (jobs=2 exercises the pool). */
std::vector<std::string>
perfLinesFor(const std::string &mitigator, uint32_t subchannels = 1)
{
    SweepConfig sc;
    sc.tracegen = goldenTracegen();
    sc.tracegen.subchannels = subchannels;
    sc.jobs = 2;
    SweepEngine engine(sc);

    std::vector<SweepCell> cells;
    for (const char *w : {"roms", "xz"}) {
        cells.push_back({workload::findWorkload(w),
                         mitigation::Registry::parse(mitigator),
                         abo::Level::L1});
    }
    std::vector<std::string> lines;
    for (const auto &r : engine.run(cells))
        lines.push_back(toJsonLine(r));
    return lines;
}

/**
 * The golden adversary-under-load sweep of one registered design: the
 * hammer and postponement patterns co-scheduled with 2 workloads on
 * the full 2-sub-channel System, run through the parallel co-attack
 * engine (jobs=2 exercises the pool and the baseline cache).
 */
std::vector<std::string>
coattackLinesFor(const std::string &mitigator)
{
    SweepConfig sc;
    sc.tracegen = goldenTracegen();
    sc.tracegen.subchannels = 2;
    sc.jobs = 2;
    CoAttackEngine engine(sc);

    std::vector<CoAttackCell> cells;
    for (const char *p : {"hammer", "postponement"}) {
        for (const char *w : {"roms", "xz"}) {
            CoAttackScenario attack;
            attack.pattern = p;
            cells.push_back({workload::findWorkload(w),
                             mitigation::Registry::parse(mitigator),
                             abo::Level::L1, attack});
        }
    }
    std::vector<std::string> lines;
    for (const auto &r : engine.run(cells))
        lines.push_back(toJsonLine(r));
    return lines;
}

/** The golden attack matrix: the generic pattern against every design
 *  plus each specialized pattern against its natural target. */
std::vector<std::string>
attackLines()
{
    struct AttackCell
    {
        const char *pattern;
        const char *mitigator;
        uint64_t budget;
        uint32_t trials;
    };
    const AttackCell cells[] = {
        {"hammer", "null", 2048, 0},
        {"hammer", "moat", 2048, 0},
        {"hammer", "panopticon", 2048, 0},
        {"hammer", "panopticon-counter", 2048, 0},
        {"hammer", "ideal-prc", 2048, 0},
        {"round-robin", "moat", 1024, 0},
        {"ratchet", "moat", 0, 0},
        {"jailbreak", "panopticon", 0, 0},
        {"feinting", "ideal-prc", 0, 0},
        {"postponement", "panopticon", 0, 8},
    };
    std::vector<std::string> lines;
    for (const auto &cell : cells) {
        attacks::AttackConfig cfg;
        cfg.pattern = cell.pattern;
        cfg.budget = cell.budget;
        cfg.trials = cell.trials;
        const auto spec = mitigation::Registry::parse(cell.mitigator);
        const auto r = attacks::runAttack(cfg, spec);
        lines.push_back(toJsonLine(r, cell.pattern, spec.describe()));
    }
    return lines;
}

void
writeLines(const std::filesystem::path &path,
           const std::vector<std::string> &lines)
{
    std::filesystem::create_directories(path.parent_path());
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    for (const auto &line : lines)
        os << line << "\n";
}

std::vector<std::string>
readLines(const std::filesystem::path &path)
{
    std::ifstream is(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/**
 * Compare regenerated lines against the golden file (or rewrite it in
 * update mode). The regenerated lines always land in golden_actual/
 * next to the test binary for CI artifact upload.
 */
void
checkGolden(const std::string &name, const std::vector<std::string> &actual)
{
    const std::filesystem::path golden =
        std::filesystem::path(MOATSIM_GOLDEN_DIR) / name;
    writeLines(std::filesystem::path(MOATSIM_GOLDEN_OUT) / "golden_actual" /
                   name,
               actual);

    if (g_update_golden) {
        writeLines(golden, actual);
        std::cout << "updated " << golden << " (" << actual.size()
                  << " lines)\n";
        return;
    }

    ASSERT_TRUE(std::filesystem::exists(golden))
        << golden << " is missing; run with --update-golden to create it";
    const auto expected = readLines(golden);
    EXPECT_EQ(expected.size(), actual.size())
        << name << ": cell count changed; if intentional, regenerate "
        << "with --update-golden";
    const size_t n = std::min(expected.size(), actual.size());
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(expected[i], actual[i])
            << name << " line " << (i + 1) << " diverged\n"
            << "  golden: " << expected[i] << "\n"
            << "  actual: " << actual[i] << "\n"
            << "If the change is intentional, regenerate with "
            << "--update-golden and commit the diff.";
    }
}

class GoldenPerf : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenPerf, MatchesCheckedInResults)
{
    checkGolden("perf_" + GetParam() + ".jsonl", perfLinesFor(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllMitigators, GoldenPerf,
    ::testing::ValuesIn(mitigation::Registry::names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(GoldenAttacks, MatchCheckedInResults)
{
    checkGolden("attack_results.jsonl", attackLines());
}

class GoldenCoAttack : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenCoAttack, MatchesCheckedInResults)
{
    checkGolden("coattack_" + GetParam() + ".jsonl",
                coattackLinesFor(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllMitigators, GoldenCoAttack,
    ::testing::ValuesIn(mitigation::Registry::names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(GoldenFormat, CoAttackLinesRoundTripThroughParser)
{
    const auto lines = coattackLinesFor("moat");
    for (const auto &line : lines) {
        const CoAttackResult r = coAttackResultOfJsonLine(line);
        EXPECT_EQ(toJsonLine(r), line);
    }
}

TEST(GoldenSystem, FullSystemSweepMatchesCheckedInResults)
{
    // The 2-sub-channel System path, per-sub-channel breakdowns
    // included, locked down end to end.
    checkGolden("perf_system2_moat.jsonl", perfLinesFor("moat", 2));
}

/**
 * The golden device-grade sweep: a named non-default grade applied via
 * workload::withDevice. Locks the whole device axis end to end -- the
 * speed grade's timing swap, the 2-rank topology with its per-level
 * seed derivation, the device fold in the trace config key, and the
 * JSONL "device" field -- through the same parallel engine as the
 * default-grade goldens.
 */
std::vector<std::string>
deviceLinesFor(const std::string &mitigator, const std::string &device)
{
    SweepConfig sc;
    sc.tracegen = workload::withDevice(
        goldenTracegen(), dram::DeviceSpec::parse(device).resolve());
    sc.jobs = 2;
    SweepEngine engine(sc);

    std::vector<SweepCell> cells;
    for (const char *w : {"roms", "xz"}) {
        cells.push_back({workload::findWorkload(w),
                         mitigation::Registry::parse(mitigator),
                         abo::Level::L1});
    }
    std::vector<std::string> lines;
    for (const auto &r : engine.run(cells))
        lines.push_back(toJsonLine(r));
    return lines;
}

TEST(GoldenDevice, NamedGradeSweepMatchesCheckedInResults)
{
    checkGolden(
        "perf_device_64gb_2r_fast.jsonl",
        deviceLinesFor("moat", "device:org=64gb-2r,speed=ddr5-prac-fast"));
}

TEST(GoldenDevice, NamedGradeLinesCarryTheDeviceTag)
{
    const auto lines =
        deviceLinesFor("moat", "device:org=64gb-2r,speed=ddr5-prac-fast");
    for (const auto &line : lines) {
        EXPECT_NE(line.find("\"device\":\"device:org=64gb-2r,"
                            "speed=ddr5-prac-fast\""),
                  std::string::npos)
            << line;
        const PerfResult r = perfResultOfJsonLine(line);
        EXPECT_EQ(toJsonLine(r), line);
    }
}

TEST(GoldenFormat, PerfLinesRoundTripThroughParser)
{
    // The golden files stay useful to external tooling only if the
    // serialization is parseable; round-trip one file's worth.
    const auto lines = perfLinesFor("moat");
    for (const auto &line : lines) {
        const PerfResult r = perfResultOfJsonLine(line);
        EXPECT_EQ(toJsonLine(r), line);
    }
}

} // namespace
} // namespace moatsim::sim

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            moatsim::sim::g_update_golden = true;
    }
    if (const char *env = std::getenv("MOATSIM_UPDATE_GOLDEN")) {
        if (env[0] != '\0' && env[0] != '0')
            moatsim::sim::g_update_golden = true;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
