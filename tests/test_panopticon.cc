/**
 * @file
 * Unit tests for the Panopticon mitigator (Section 3, Appendix B).
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/security.hh"
#include "mitigation/panopticon.hh"

namespace moatsim::mitigation
{
namespace
{

struct PanoFixture : public ::testing::Test
{
    dram::TimingParams timing = [] {
        dram::TimingParams t;
        t.rowsPerBank = 1024;
        t.refreshGroups = 128;
        return t;
    }();
    dram::Bank bank{timing, dram::CounterInit::Zero};
    dram::SecurityMonitor security{1024, 2};
    MitigationStats stats;
    MitigationContext ctx{bank, security, stats};

    void
    act(PanopticonMitigator &m, RowId row, uint32_t times = 1)
    {
        for (uint32_t i = 0; i < times; ++i) {
            bank.activate(row);
            security.onActivate(row);
            m.onActivate(row, ctx);
        }
    }
};

TEST_F(PanoFixture, QueueInsertionAtThresholdCrossings)
{
    PanopticonConfig cfg; // threshold 128
    PanopticonMitigator m(cfg);
    act(m, 10, 127);
    EXPECT_EQ(m.queueSize(), 0u);
    act(m, 10, 1); // 128th activation toggles the threshold bit
    EXPECT_EQ(m.queueSize(), 1u);
    EXPECT_EQ(m.queueAt(0), 10u);
}

TEST_F(PanoFixture, FreeRunningCounterReinserts)
{
    PanopticonConfig cfg;
    PanopticonMitigator m(cfg);
    act(m, 10, 256); // crossings at 128 and 256
    EXPECT_EQ(m.queueSize(), 2u);
    EXPECT_EQ(m.queueAt(0), 10u);
    EXPECT_EQ(m.queueAt(1), 10u);
}

TEST_F(PanoFixture, FifoOrder)
{
    PanopticonConfig cfg;
    PanopticonMitigator m(cfg);
    act(m, 1, 128);
    act(m, 2, 128);
    act(m, 3, 128);
    EXPECT_EQ(m.queueAt(0), 1u);
    EXPECT_EQ(m.queueAt(2), 3u);
}

TEST_F(PanoFixture, GradualMitigationTakesFourRefsPerEntry)
{
    PanopticonConfig cfg;
    PanopticonMitigator m(cfg);
    act(m, 10, 128);
    act(m, 20, 128);
    // Entry 10 pops at the 1st REF, completes at the 4th; entry 20
    // pops at the 5th and completes at the 8th.
    for (int i = 0; i < 4; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(security.hammerCount(10), 0u);
    EXPECT_NE(security.hammerCount(20), 0u);
    for (int i = 0; i < 4; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(security.hammerCount(20), 0u);
    EXPECT_EQ(m.queueSize(), 0u);
    EXPECT_EQ(stats.proactiveMitigations, 2u);
}

TEST_F(PanoFixture, CounterNotResetByMitigation)
{
    PanopticonConfig cfg;
    PanopticonMitigator m(cfg);
    act(m, 1, 128);
    for (int i = 0; i < 4; ++i)
        m.onRefCommand(ctx);
    EXPECT_EQ(bank.counter(1), 128u); // free-running
}

TEST_F(PanoFixture, OverflowRaisesAlert)
{
    PanopticonConfig cfg; // 8 entries
    PanopticonMitigator m(cfg);
    for (RowId r = 1; r <= 8; ++r)
        act(m, r * 10, 128);
    EXPECT_FALSE(m.wantsAlert());
    act(m, 90, 128); // 9th insertion overflows
    EXPECT_TRUE(m.wantsAlert());
}

TEST_F(PanoFixture, RfmServicesHeadAndCompletesOverflowInsertion)
{
    PanopticonConfig cfg;
    PanopticonMitigator m(cfg);
    for (RowId r = 1; r <= 8; ++r)
        act(m, r * 10, 128);
    act(m, 90, 128); // overflow pending
    m.onRfm(ctx);
    EXPECT_FALSE(m.wantsAlert());
    EXPECT_EQ(m.queueSize(), 8u); // head popped, pending inserted
    EXPECT_EQ(stats.alertMitigations, 1u);
    EXPECT_EQ(security.hammerCount(10), 0u); // head (row 10) mitigated
}

TEST_F(PanoFixture, DrainAllMitigatesTwoPerRef)
{
    PanopticonConfig cfg;
    cfg.drainAllOnRef = true;
    PanopticonMitigator m(cfg);
    for (RowId r = 1; r <= 3; ++r)
        act(m, r * 10, 128);
    m.onRefCommand(ctx);
    EXPECT_EQ(m.queueSize(), 1u);
    EXPECT_EQ(stats.proactiveMitigations, 2u);
    // One entry left: drain-all arms an ALERT until empty.
    EXPECT_TRUE(m.wantsAlert());
    m.onRfm(ctx);
    EXPECT_EQ(m.queueSize(), 0u);
    EXPECT_FALSE(m.wantsAlert());
}

TEST_F(PanoFixture, DrainAllQuietWhenQueueSmall)
{
    PanopticonConfig cfg;
    cfg.drainAllOnRef = true;
    PanopticonMitigator m(cfg);
    act(m, 10, 128);
    act(m, 20, 128);
    m.onRefCommand(ctx);
    EXPECT_EQ(m.queueSize(), 0u);
    EXPECT_FALSE(m.wantsAlert());
}

TEST_F(PanoFixture, NoAlertBetweenRefsInDrainMode)
{
    // Appendix B: drain-all reacts at REF time, not at insertion.
    PanopticonConfig cfg;
    cfg.drainAllOnRef = true;
    PanopticonMitigator m(cfg);
    for (RowId r = 1; r <= 5; ++r)
        act(m, r * 10, 128);
    EXPECT_FALSE(m.wantsAlert()); // 5 entries but no REF yet
    m.onRefCommand(ctx);
    EXPECT_TRUE(m.wantsAlert()); // 3 left after draining 2
}

TEST_F(PanoFixture, SramBytes)
{
    PanopticonConfig cfg;
    PanopticonMitigator m(cfg);
    EXPECT_EQ(m.sramBytesPerBank(), 16u); // 8 entries x 2 bytes
}

TEST_F(PanoFixture, NameReflectsVariant)
{
    PanopticonConfig cfg;
    EXPECT_EQ(PanopticonMitigator(cfg).name(),
              "Panopticon(T=128,Q=8)");
    cfg.drainAllOnRef = true;
    EXPECT_EQ(PanopticonMitigator(cfg).name(),
              "Panopticon-DrainAll(T=128,Q=8)");
}

} // namespace
} // namespace moatsim::mitigation
