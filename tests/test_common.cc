/**
 * @file
 * Unit tests for the common utilities (rng, stats, histogram, table).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/time.hh"

namespace moatsim
{
namespace
{

TEST(Time, UnitConversions)
{
    EXPECT_EQ(fromNs(52), 52'000);
    EXPECT_DOUBLE_EQ(toNs(fromNs(3900)), 3900.0);
    EXPECT_DOUBLE_EQ(toUs(fromNs(1000)), 1.0);
    EXPECT_DOUBLE_EQ(toMs(32 * kMillisecond), 32.0);
}

TEST(Time, SubNanosecondResolutionIsExact)
{
    EXPECT_EQ(fromNs(0.5), 500);
    EXPECT_EQ(kMillisecond, 1'000'000'000);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int differ = 0;
    for (int i = 0; i < 16; ++i)
        differ += (a.next() != b.next());
    EXPECT_GT(differ, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = rng.inRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, GeomeanOfEqualValues)
{
    std::vector<double> xs(10, 3.0);
    EXPECT_NEAR(geomean(xs), 3.0, 1e-12);
}

TEST(Stats, GeomeanSimple)
{
    std::vector<double> xs = {1.0, 4.0};
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, HarmonicSmallValues)
{
    EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
    EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
    EXPECT_NEAR(harmonic(100), 5.1873775, 1e-6);
}

TEST(Stats, HarmonicLargeUsesAsymptotic)
{
    // H_n ~ ln n + gamma; check continuity across the exact/asymptotic
    // switchover at 1e6.
    const double below = harmonic(999'999);
    const double above = harmonic(1'000'001);
    EXPECT_NEAR(above - below, 2e-6, 1e-7);
}

TEST(Stats, FormatHelpers)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.0028), "0.28%");
    EXPECT_EQ(formatPercent(0.5, 0), "50%");
}

TEST(Histogram, CountsAndOverflow)
{
    Histogram h(10);
    h.add(0);
    h.add(5);
    h.add(5);
    h.add(12);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.maxValue(), 12u);
}

TEST(Histogram, CountAtLeast)
{
    Histogram h(100);
    for (uint64_t v : {10, 20, 30, 150, 200})
        h.add(v);
    EXPECT_EQ(h.countAtLeast(0), 5u);
    EXPECT_EQ(h.countAtLeast(20), 4u);
    EXPECT_EQ(h.countAtLeast(100), 2u);
    EXPECT_EQ(h.countAtLeast(151), 1u);
}

TEST(Histogram, ClearResets)
{
    Histogram h(10);
    h.add(3);
    h.add(30);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.countAtLeast(0), 0u);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter tp({"a", "long-header"});
    tp.addRow({"xxxx", "1"});
    std::ostringstream os;
    tp.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| a    | long-header |"), std::string::npos);
    EXPECT_NE(out.find("| xxxx | 1           |"), std::string::npos);
}

TEST(TablePrinter, SeparatorRows)
{
    TablePrinter tp({"x"});
    tp.addRow({"1"});
    tp.addSeparator();
    tp.addRow({"2"});
    std::ostringstream os;
    tp.print(os);
    // Header sep + mid sep + bottom sep + top = 4 separator lines.
    int seps = 0;
    std::istringstream is(os.str());
    std::string line;
    while (std::getline(is, line))
        seps += (line[0] == '+');
    EXPECT_EQ(seps, 4);
}

} // namespace
} // namespace moatsim
