/**
 * @file
 * Tests of the Table-4 workload specs and the synthetic trace
 * generator's calibration.
 */

#include <gtest/gtest.h>

#include "workload/spec.hh"
#include "workload/tracegen.hh"

namespace moatsim::workload
{
namespace
{

TEST(Spec, TwentyOneWorkloads)
{
    EXPECT_EQ(table4Workloads().size(), 21u);
}

TEST(Spec, TierCountsAreCumulative)
{
    for (const auto &w : table4Workloads()) {
        EXPECT_GE(w.act32, w.act64) << w.name;
        EXPECT_GE(w.act64, w.act128) << w.name;
    }
}

TEST(Spec, PaperSpotChecks)
{
    const auto &roms = findWorkload("roms");
    EXPECT_DOUBLE_EQ(roms.actPki, 9.6);
    EXPECT_EQ(roms.act64, 995u);
    EXPECT_EQ(roms.act128, 431u);
    const auto &cc = findWorkload("cc");
    EXPECT_TRUE(cc.isGap);
    EXPECT_DOUBLE_EQ(cc.actPki, 71.5);
    const auto &tc = findWorkload("tc");
    EXPECT_EQ(tc.act64, 0u);
}

TEST(SpecDeathTest, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(findWorkload("nosuch"), testing::ExitedWithCode(1),
                "unknown");
}

TEST(Spec, AverageAct64BelowMitigationCapacity)
{
    // Table 4's observation: average ACT-64+ rows < 1400, which the
    // REF-time mitigation (1638 per tREFW) can absorb.
    double sum = 0;
    for (const auto &w : table4Workloads())
        sum += w.act64;
    EXPECT_LT(sum / 21.0, 1400.0);
}

struct TraceGenTest : public ::testing::Test
{
    TraceGenConfig cfg = [] {
        TraceGenConfig c;
        c.banksSimulated = 8; // small and fast
        c.windowFraction = 0.0625;
        return c;
    }();
};

TEST_F(TraceGenTest, TracesAreSortedAndInWindow)
{
    const auto &spec = findWorkload("omnetpp");
    const auto traces = generateTraces(spec, cfg);
    ASSERT_EQ(traces.size(), cfg.numCores);
    for (const auto &t : traces) {
        EXPECT_GT(t.events.size(), 0u);
        for (size_t i = 1; i < t.events.size(); ++i)
            EXPECT_LE(t.events[i - 1].at, t.events[i].at);
        for (const auto &e : t.events) {
            EXPECT_GE(e.at, 0);
            EXPECT_LT(e.at, t.window);
            EXPECT_LT(e.bank, cfg.banksSimulated);
        }
    }
}

TEST_F(TraceGenTest, CoresUseDisjointRowRanges)
{
    const auto &spec = findWorkload("mcf");
    const auto traces = generateTraces(spec, cfg);
    const uint32_t rows_per_core =
        cfg.timing.rowsPerBank / cfg.numCores;
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        for (const auto &e : traces[c].events) {
            EXPECT_GE(e.row, c * rows_per_core);
            EXPECT_LT(e.row, (c + 1) * rows_per_core);
        }
    }
}

TEST_F(TraceGenTest, CensusMatchesTable4Tiers)
{
    // The generator's whole purpose: the per-bank-per-tREFW tier
    // census must reproduce Table 4 within sampling error.
    for (const char *name : {"roms", "lbm", "xalancbmk"}) {
        const auto &spec = findWorkload(name);
        const auto traces = generateTraces(spec, cfg);
        const TierCensus census = censusOf(traces, cfg, spec);
        EXPECT_NEAR(census.act32, spec.act32, spec.act32 * 0.15 + 40)
            << name;
        EXPECT_NEAR(census.act64, spec.act64, spec.act64 * 0.15 + 40)
            << name;
        EXPECT_NEAR(census.act128, spec.act128, spec.act128 * 0.15 + 40)
            << name;
    }
}

TEST_F(TraceGenTest, DeterministicForSameSeed)
{
    const auto &spec = findWorkload("bfs");
    const auto a = generateTraces(spec, cfg);
    const auto b = generateTraces(spec, cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
        ASSERT_EQ(a[c].events.size(), b[c].events.size());
        for (size_t i = 0; i < a[c].events.size(); i += 101) {
            EXPECT_EQ(a[c].events[i].row, b[c].events[i].row);
            EXPECT_EQ(a[c].events[i].at, b[c].events[i].at);
        }
    }
}

TEST_F(TraceGenTest, SubChannelEmissionSpansAndBalances)
{
    // Full-system emission: events carry a valid pre-decoded
    // sub-channel, both sub-channels see traffic, and the split is
    // roughly even (the address-map routing spreads every core's
    // banks across the system).
    auto cfg2 = cfg;
    cfg2.subchannels = 2;
    const auto &spec = findWorkload("omnetpp");
    const auto traces = generateTraces(spec, cfg2);
    uint64_t per_sc[2] = {0, 0};
    for (const auto &t : traces) {
        for (const auto &e : t.events) {
            ASSERT_LT(e.subchannel, 2u);
            EXPECT_LT(e.bank, cfg2.banksSimulated);
            ++per_sc[e.subchannel];
        }
    }
    ASSERT_GT(per_sc[0], 0u);
    ASSERT_GT(per_sc[1], 0u);
    const double ratio = static_cast<double>(per_sc[0]) /
                         static_cast<double>(per_sc[1]);
    EXPECT_NEAR(ratio, 1.0, 0.2);

    // Single-sub-channel emission stays on sub-channel 0.
    for (const auto &t : generateTraces(spec, cfg)) {
        for (const auto &e : t.events)
            ASSERT_EQ(e.subchannel, 0u);
    }
}

TEST_F(TraceGenTest, SubChannelCountMovesTheConfigKey)
{
    auto cfg2 = cfg;
    cfg2.subchannels = 2;
    EXPECT_NE(configKey(cfg), configKey(cfg2));
}

TEST_F(TraceGenTest, CensusHoldsOnTheFullSystem)
{
    // The per-bank tier census must survive the sub-channel split --
    // the whole point of routing instead of duplicating traffic.
    auto cfg2 = cfg;
    cfg2.subchannels = 2;
    const auto &spec = findWorkload("roms");
    const auto traces = generateTraces(spec, cfg2);
    const TierCensus census = censusOf(traces, cfg2, spec);
    EXPECT_NEAR(census.act64, spec.act64, spec.act64 * 0.15 + 40);
    EXPECT_NEAR(census.act128, spec.act128, spec.act128 * 0.15 + 40);
}

TEST_F(TraceGenTest, EffectiveIpcCapsMemoryBoundWorkloads)
{
    // cc at 71.5 ACT-PKI cannot run at the nominal IPC of 2.
    EXPECT_LT(effectiveIpc(findWorkload("cc"), cfg), 0.5);
    // xalancbmk at 0.9 ACT-PKI is compute bound: full IPC.
    EXPECT_DOUBLE_EQ(effectiveIpc(findWorkload("xalancbmk"), cfg), 2.0);
}

TEST_F(TraceGenTest, HotMassNeverExceedsBankTime)
{
    // Whatever the spec, the generated per-bank activation count must
    // fit the bank's command bandwidth in the window.
    for (const auto &spec : table4Workloads()) {
        const auto traces = generateTraces(spec, cfg);
        std::vector<uint64_t> per_bank(cfg.banksSimulated, 0);
        for (const auto &t : traces) {
            for (const auto &e : t.events)
                ++per_bank[e.bank];
        }
        const uint64_t capacity = static_cast<uint64_t>(
            traces.front().window / cfg.timing.tRC);
        for (uint32_t b = 0; b < cfg.banksSimulated; ++b) {
            EXPECT_LE(per_bank[b], capacity * 11 / 10)
                << spec.name << " bank " << b;
        }
    }
}

} // namespace
} // namespace moatsim::workload
