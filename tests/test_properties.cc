/**
 * @file
 * Parameterized property tests: invariants that must hold across
 * configuration sweeps (gtest TEST_P suites).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/ratchet_model.hh"
#include "attacks/ratchet.hh"
#include "common/rng.hh"
#include "dram/bank.hh"
#include "dram/security.hh"
#include "mitigation/mitigator.hh"
#include "mitigation/moat.hh"
#include "mitigation/null.hh"
#include "subchannel/subchannel.hh"

namespace moatsim
{
namespace
{

using subchannel::SubChannel;
using subchannel::SubChannelConfig;

/* -------------------------------------------------------------------
 * Property: command timing invariants hold under random traffic.
 * ----------------------------------------------------------------- */

class TimingProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TimingProperty, RandomTrafficRespectsAllTimingRules)
{
    SubChannelConfig sc;
    sc.numBanks = 4;
    sc.seed = GetParam();
    SubChannel ch(sc, [](BankId) {
        return std::make_unique<mitigation::NullMitigator>();
    });
    Rng rng(GetParam());
    const Time tRC = ch.timing().tRC;
    const Time tRRD = ch.timing().tRRD;

    std::vector<Time> last_bank(4, -tRC);
    Time last_any = -tRRD;
    for (int i = 0; i < 3000; ++i) {
        const BankId b = static_cast<BankId>(rng.below(4));
        const RowId r = static_cast<RowId>(rng.below(1000));
        const Time t = ch.activate(b, r);
        EXPECT_GE(t - last_bank[b], tRC);
        EXPECT_GE(t - last_any, tRRD);
        last_bank[b] = t;
        last_any = t;
    }
    // REF cadence: one REF per elapsed tREFI.
    EXPECT_EQ(ch.stats().refs,
              static_cast<uint64_t>(ch.now() / ch.timing().tREFI));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

/* -------------------------------------------------------------------
 * Property: MOAT's security guarantee. Under *adversarial* ratchet
 * traffic, no row ever exceeds the Appendix-A bound for its (ATH, L).
 * ----------------------------------------------------------------- */

class MoatGuarantee
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>>
{
};

TEST_P(MoatGuarantee, RatchetStaysWithinAnalyticalBound)
{
    const auto [ath, level] = GetParam();
    attacks::RatchetConfig cfg;
    cfg.moat.ath = ath;
    cfg.moat.eth = ath / 2;
    cfg.aboLevel = static_cast<abo::Level>(level);
    cfg.moat.trackerEntries = static_cast<uint32_t>(level);
    cfg.poolRows = 512; // sub-optimal pool: must stay under the bound
    const auto r = attacks::runRatchet(cfg);
    const auto bound =
        analysis::ratchetBound(cfg.timing, ath, level);
    EXPECT_LE(r.maxHammer, bound.safeTrh + 4)
        << "ATH=" << ath << " L=" << level;
    EXPECT_GT(r.maxHammer, ath); // the attack does exceed ATH itself
}

INSTANTIATE_TEST_SUITE_P(
    AthLevels, MoatGuarantee,
    ::testing::Combine(::testing::Values(32u, 64u, 128u),
                       ::testing::Values(1, 2, 4)));

/* -------------------------------------------------------------------
 * Property: MOAT under random benign traffic never lets any row's
 * hammer count grow past the stop-the-world bound by much, and every
 * ALERT mitigation resets the right counter.
 * ----------------------------------------------------------------- */

class MoatRandomTraffic : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MoatRandomTraffic, HammerBoundedUnderHotSpotTraffic)
{
    SubChannelConfig sc;
    sc.numBanks = 1;
    sc.seed = GetParam();
    mitigation::MoatConfig moat;
    SubChannel ch(sc, [&](BankId) {
        return std::make_unique<mitigation::MoatMitigator>(moat);
    });
    Rng rng(GetParam() * 7919);
    // Hot-spot traffic: 8 hot rows get half the accesses.
    const RowId hot_base = 30000;
    for (int i = 0; i < 40000; ++i) {
        RowId r;
        if (rng.chance(0.5))
            r = hot_base + 8 * static_cast<RowId>(rng.below(8));
        else
            r = static_cast<RowId>(rng.below(60000));
        ch.activate(0, r);
    }
    // Hammer counts stay below the ratchet bound for ATH=64, L1 (99),
    // with margin for the randomness.
    EXPECT_LE(ch.security(0).maxHammer(), 99u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoatRandomTraffic,
                         ::testing::Values(5, 23, 71));

/* -------------------------------------------------------------------
 * Property: MitigationJob refreshes exactly the victim set for any
 * blast radius and aggressor position.
 * ----------------------------------------------------------------- */

class JobProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, RowId>>
{
};

TEST_P(JobProperty, VictimSetExact)
{
    const auto [radius, aggressor] = GetParam();
    dram::TimingParams t;
    t.rowsPerBank = 64;
    t.refreshGroups = 8;
    dram::Bank bank(t, dram::CounterInit::Zero);
    dram::SecurityMonitor security(64, radius);
    mitigation::MitigationStats stats;
    mitigation::MitigationContext ctx(bank, security, stats);

    // Damage every row, then mitigate and check exactly the victims
    // were refreshed.
    for (RowId r = 1; r + 1 < 64; ++r)
        security.onActivate(r);

    mitigation::MitigationJob job(aggressor, radius, true);
    job.runToCompletion(ctx, false);

    uint32_t expected_victims = 0;
    for (int64_t off = -static_cast<int64_t>(radius);
         off <= static_cast<int64_t>(radius); ++off) {
        if (off == 0)
            continue;
        const int64_t v = static_cast<int64_t>(aggressor) + off;
        if (v < 0 || v >= 64)
            continue;
        ++expected_victims;
        EXPECT_EQ(security.damage(static_cast<RowId>(v)), 0u)
            << "victim " << v;
    }
    EXPECT_EQ(stats.victimRefreshes, expected_victims);
    EXPECT_EQ(bank.counter(aggressor), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RadiusPosition, JobProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values<RowId>(0, 1, 30, 62, 63)));

/* -------------------------------------------------------------------
 * Property: the analytical ratchet bound is monotone in ATH and
 * anti-monotone in level for every ATH in a fine sweep.
 * ----------------------------------------------------------------- */

class RatchetBoundSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RatchetBoundSweep, OrderedAcrossLevels)
{
    const uint32_t ath = GetParam();
    dram::TimingParams t;
    const double l1 = analysis::ratchetBound(t, ath, 1).safeTrh;
    const double l2 = analysis::ratchetBound(t, ath, 2).safeTrh;
    const double l4 = analysis::ratchetBound(t, ath, 4).safeTrh;
    EXPECT_GT(l1, l2);
    EXPECT_GT(l2, l4);
    EXPECT_GT(l4, static_cast<double>(ath));
}

INSTANTIATE_TEST_SUITE_P(AthSweep, RatchetBoundSweep,
                         ::testing::Range(8u, 129u, 8u));

/* -------------------------------------------------------------------
 * Property: SubChannel determinism — identical seeds and command
 * streams give identical timing and state.
 * ----------------------------------------------------------------- */

class Determinism : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Determinism, SameSeedSameTimeline)
{
    auto run = [&](uint64_t seed) {
        SubChannelConfig sc;
        sc.numBanks = 2;
        sc.seed = seed;
        mitigation::MoatConfig moat;
        SubChannel ch(sc, [&](BankId) {
            return std::make_unique<mitigation::MoatMitigator>(moat);
        });
        Rng rng(seed);
        for (int i = 0; i < 5000; ++i) {
            ch.activate(static_cast<BankId>(rng.below(2)),
                        static_cast<RowId>(rng.below(4000)));
        }
        return std::make_tuple(ch.now(), ch.abo().alertCount(),
                               ch.mitigationStats().totalMitigations(),
                               ch.security(0).maxHammer());
    };
    EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism,
                         ::testing::Values(11, 12, 13));

} // namespace
} // namespace moatsim
