/**
 * @file
 * The common/fault.hh contract: the site@rate[:seed] plan grammar
 * (with unknown-site and bad-rate rejection), deterministic seeded
 * firing sequences that reproduce across re-arms, rate-proportional
 * firing, wildcard site matching, failPoint() exceptions carrying
 * their site, per-spec evaluation counters, and a disarmed framework
 * that never fires.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.hh"

namespace moatsim::fault
{
namespace
{

/** Arms a plan for the test body and disarms on scope exit, so no
 *  test leaks an armed plan into the rest of the binary. */
class ArmedScope
{
  public:
    explicit ArmedScope(const std::string &text) { arm(text); }
    ~ArmedScope() { disarm(); }
    ArmedScope(const ArmedScope &) = delete;
    ArmedScope &operator=(const ArmedScope &) = delete;
};

/** The fired/not-fired sequence of @p site's next @p n evaluations. */
std::vector<bool>
drawSequence(const char *site, size_t n)
{
    std::vector<bool> fired;
    fired.reserve(n);
    for (size_t i = 0; i < n; ++i)
        fired.push_back(shouldFail(site));
    return fired;
}

TEST(FaultPlan, ParsesSpecsRatesAndSeeds)
{
    Plan plan;
    std::string err;
    ASSERT_TRUE(tryParsePlan("serve.send@0.25:7,sweep.compute@1", &plan,
                             &err))
        << err;
    ASSERT_EQ(plan.specs.size(), 2u);
    EXPECT_EQ(plan.specs[0].site, "serve.send");
    EXPECT_DOUBLE_EQ(plan.specs[0].rate, 0.25);
    EXPECT_EQ(plan.specs[0].seed, 7u);
    EXPECT_EQ(plan.specs[1].site, "sweep.compute");
    EXPECT_DOUBLE_EQ(plan.specs[1].rate, 1.0);
    EXPECT_EQ(plan.specs[1].seed, 1u) << "default seed";
}

TEST(FaultPlan, RejectsMalformedText)
{
    Plan plan;
    std::string err;
    // A typo must not silently arm nothing: unknown sites are errors.
    EXPECT_FALSE(tryParsePlan("serve.snd@0.5", &plan, &err));
    EXPECT_NE(err.find("serve.snd"), std::string::npos) << err;
    EXPECT_FALSE(tryParsePlan("serve.send@1.5", &plan, &err))
        << "rate > 1";
    EXPECT_FALSE(tryParsePlan("serve.send@-0.1", &plan, &err))
        << "rate < 0";
    EXPECT_FALSE(tryParsePlan("serve.send", &plan, &err)) << "no rate";
    EXPECT_FALSE(tryParsePlan("serve.send@abc", &plan, &err));
    EXPECT_FALSE(tryParsePlan("serve.send@0.5:", &plan, &err))
        << "empty seed";
    EXPECT_FALSE(tryParsePlan("@0.5", &plan, &err)) << "empty site";
    EXPECT_FALSE(tryParsePlan(",", &plan, &err));
}

TEST(FaultPlan, AcceptsEveryKnownSiteAndWildcards)
{
    Plan plan;
    std::string err;
    EXPECT_FALSE(knownSites().empty());
    for (const auto &site : knownSites())
        EXPECT_TRUE(tryParsePlan(site + "@0.5", &plan, &err))
            << site << ": " << err;
    EXPECT_TRUE(tryParsePlan("serve.*@0.5", &plan, &err)) << err;
    EXPECT_TRUE(tryParsePlan("*@0.01", &plan, &err)) << err;
    EXPECT_FALSE(tryParsePlan("nosuch.*@0.5", &plan, &err))
        << "a wildcard must cover at least one known site";
}

TEST(Fault, DisarmedNeverFiresAndCountsNothing)
{
    disarm();
    EXPECT_FALSE(armed());
    for (int i = 0; i < 64; ++i)
        EXPECT_FALSE(shouldFail("sweep.compute"));
    EXPECT_NO_THROW(failPoint("sweep.compute"));
    EXPECT_TRUE(stats().empty());
}

TEST(Fault, FiringSequenceIsSeededAndReproducible)
{
    constexpr size_t kDraws = 256;
    std::vector<bool> first;
    {
        ArmedScope plan("sweep.compute@0.5:11");
        first = drawSequence("sweep.compute", kDraws);
    }
    std::vector<bool> again;
    {
        ArmedScope plan("sweep.compute@0.5:11");
        again = drawSequence("sweep.compute", kDraws);
    }
    std::vector<bool> reseeded;
    {
        ArmedScope plan("sweep.compute@0.5:12");
        reseeded = drawSequence("sweep.compute", kDraws);
    }
    EXPECT_EQ(first, again) << "same seed, same sequence";
    EXPECT_NE(first, reseeded) << "different seed, different sequence";
    // The sequence mixes fires and passes (rate 0.5 over 256 draws).
    EXPECT_NE(first, std::vector<bool>(kDraws, true));
    EXPECT_NE(first, std::vector<bool>(kDraws, false));
}

TEST(Fault, FiredFractionTracksTheRate)
{
    ArmedScope plan("serve.send@0.25:3");
    constexpr size_t kDraws = 4096;
    size_t fired = 0;
    for (size_t i = 0; i < kDraws; ++i)
        fired += shouldFail("serve.send") ? 1 : 0;
    // A crude band, but the draw is a pure hash so this never flakes.
    EXPECT_GT(fired, kDraws / 8) << "well above zero";
    EXPECT_LT(fired, kDraws / 2) << "well below half";
}

TEST(Fault, RateZeroNeverFiresRateOneAlwaysFires)
{
    ArmedScope plan("serve.send@0,serve.recv@1");
    for (int i = 0; i < 128; ++i) {
        EXPECT_FALSE(shouldFail("serve.send"));
        EXPECT_TRUE(shouldFail("serve.recv"));
    }
}

TEST(Fault, WildcardCoversEveryPrefixedSite)
{
    ArmedScope plan("serve.*@1");
    EXPECT_TRUE(shouldFail("serve.send"));
    EXPECT_TRUE(shouldFail("serve.recv"));
    EXPECT_TRUE(shouldFail("serve.accept"));
    EXPECT_FALSE(shouldFail("sweep.compute"))
        << "outside the prefix, never covered";
    EXPECT_FALSE(shouldFail("result-store.read"));
}

TEST(Fault, FailPointThrowsInjectedFaultCarryingItsSite)
{
    ArmedScope plan("trace-store.generate@1");
    try {
        failPoint("trace-store.generate");
        FAIL() << "rate 1 must throw";
    } catch (const InjectedFault &e) {
        EXPECT_EQ(e.site(), "trace-store.generate");
        EXPECT_NE(std::string(e.what()).find("trace-store.generate"),
                  std::string::npos);
    }
    EXPECT_NO_THROW(failPoint("serve.send")) << "uncovered site";
}

TEST(Fault, StatsCountEvaluationsAndFiresPerSpec)
{
    ArmedScope plan("sweep.compute@1:5,serve.send@0:5");
    for (int i = 0; i < 10; ++i)
        shouldFail("sweep.compute");
    for (int i = 0; i < 4; ++i)
        shouldFail("serve.send");
    shouldFail("serve.recv"); // uncovered: counts nowhere
    const auto st = stats();
    ASSERT_EQ(st.size(), 2u);
    EXPECT_EQ(st[0].site, "sweep.compute");
    EXPECT_EQ(st[0].evaluations, 10u);
    EXPECT_EQ(st[0].fired, 10u);
    EXPECT_EQ(st[1].site, "serve.send");
    EXPECT_EQ(st[1].evaluations, 4u);
    EXPECT_EQ(st[1].fired, 0u);
}

TEST(Fault, RearmingResetsCounters)
{
    ArmedScope plan("sweep.compute@0.5:9");
    drawSequence("sweep.compute", 32);
    arm("sweep.compute@0.5:9");
    const auto st = stats();
    ASSERT_EQ(st.size(), 1u);
    EXPECT_EQ(st[0].evaluations, 0u);
    EXPECT_EQ(st[0].fired, 0u);
}

} // namespace
} // namespace moatsim::fault
