/**
 * @file
 * Tests of the analytical models against the paper's published numbers
 * (Tables 2 and 7, Figures 10, 13, 15; Sections 6.5 and 7).
 */

#include <gtest/gtest.h>

#include "analysis/feinting_model.hh"
#include "analysis/ratchet_model.hh"
#include "analysis/storage_model.hh"
#include "analysis/throughput_model.hh"

namespace moatsim::analysis
{
namespace
{

dram::TimingParams kT;

TEST(RatchetModel, Table7SafeTrh)
{
    // Paper Table 7 (Safe-TRH column), reproduced to the integer.
    struct Case
    {
        uint32_t ath;
        int level;
        int expected;
    };
    const Case cases[] = {
        {32, 1, 69},  {32, 2, 56},  {32, 4, 50},
        {64, 1, 99},  {64, 2, 87},  {64, 4, 82},
        {128, 1, 161}, {128, 2, 150}, {128, 4, 145},
    };
    for (const auto &c : cases) {
        const auto b = ratchetBound(kT, c.ath, c.level);
        EXPECT_NEAR(b.safeTrh, c.expected, 1.0)
            << "ATH=" << c.ath << " L=" << c.level;
    }
}

TEST(RatchetModel, HeadlineNumbers)
{
    // Figure 10: MOAT with ATH 64 tolerates TRH 99; 128 -> 161.
    EXPECT_EQ(static_cast<int>(ratchetBound(kT, 64, 1).safeTrh + 0.5), 99);
    EXPECT_EQ(static_cast<int>(ratchetBound(kT, 128, 1).safeTrh + 0.5),
              161);
}

TEST(RatchetModel, PoolSizeForAth64)
{
    // H(N) <= 28.64 ms with ATH 64, L1 gives Nc ~ 7325.
    EXPECT_NEAR(ratchetBound(kT, 64, 1).maxPoolRows, 7325, 5);
}

TEST(RatchetModel, MonotonicInAth)
{
    double prev = 0;
    for (uint32_t ath = 8; ath <= 128; ath += 8) {
        const double v = ratchetBound(kT, ath, 1).safeTrh;
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(RatchetModel, HigherLevelToleratesLowerTrh)
{
    // Fig 15: for fixed ATH, larger ABO level -> smaller TRH_safe
    // (fewer ALERTs needed, more mitigations each).
    for (uint32_t ath : {32u, 64u, 128u}) {
        EXPECT_GT(ratchetBound(kT, ath, 1).safeTrh,
                  ratchetBound(kT, ath, 2).safeTrh);
        EXPECT_GT(ratchetBound(kT, ath, 2).safeTrh,
                  ratchetBound(kT, ath, 4).safeTrh);
    }
}

TEST(RatchetModel, SubFiftyTrhImpractical)
{
    // Section 5.3: delayed ALERTs make TRH below ~40-50 unreachable
    // even at ATH = 0-ish.
    EXPECT_GT(ratchetBound(kT, 8, 1).safeTrh, 40.0);
}

TEST(RatchetModel, StopTheWorldBound)
{
    EXPECT_EQ(stopTheWorldTrh(64), 66u); // Section 4.4
}

TEST(RatchetModelDeathTest, BadLevelIsFatal)
{
    EXPECT_EXIT(ratchetBound(kT, 64, 3), testing::ExitedWithCode(1),
                "level");
}

TEST(FeintingModel, Table2Bounds)
{
    // Paper Table 2 within 2%: 638 / 1188 / 1702 / 2195 / 2669.
    const double expected[] = {638, 1188, 1702, 2195, 2669};
    for (uint32_t k = 1; k <= 5; ++k) {
        const auto b = feintingBound(kT, k);
        EXPECT_NEAR(b.trhBound, expected[k - 1],
                    expected[k - 1] * 0.02)
            << "k=" << k;
    }
}

TEST(FeintingModel, BudgetIs67PerRefi)
{
    EXPECT_EQ(feintingBound(kT, 1).actsPerPeriod, 67u);
    EXPECT_EQ(feintingBound(kT, 4).actsPerPeriod, 268u);
}

TEST(FeintingModel, SlowerMitigationMeansHigherBound)
{
    double prev = 0;
    for (uint32_t k = 1; k <= 8; ++k) {
        const double v = feintingBound(kT, k).trhBound;
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(ThroughputModel, ContinuousAlertFloor)
{
    // Section 7.1: 4 ACTs per 11 units -> 0.36x; App. D: 2.8x/3.8x/4.9x
    // max slowdown for L1/L2/L4.
    EXPECT_NEAR(continuousAlertFloor(kT, 1).relative, 0.357, 0.01);
    EXPECT_NEAR(1.0 / continuousAlertFloor(kT, 1).relative, 2.8, 0.1);
    EXPECT_NEAR(1.0 / continuousAlertFloor(kT, 2).relative, 3.8, 0.1);
    EXPECT_NEAR(1.0 / continuousAlertFloor(kT, 4).relative, 4.9, 0.1);
}

TEST(ThroughputModel, SingleBankKernelsLoseTenPercent)
{
    // Figure 13: both kernels lose ~10%.
    EXPECT_NEAR(singleBankKernel(kT, 64, 1, 1).lossFraction, 0.10, 0.02);
    EXPECT_NEAR(singleBankKernel(kT, 64, 5, 1).lossFraction, 0.10, 0.02);
}

TEST(ThroughputModel, TsaLossesMatchFigure12)
{
    // Figure 12: ~24% at 4 banks, ~52% at 17 banks.
    EXPECT_NEAR(tsaAttack(kT, 64, 5, 4, 1).lossFraction, 0.24, 0.05);
    EXPECT_NEAR(tsaAttack(kT, 64, 5, 17, 1).lossFraction, 0.52, 0.06);
}

TEST(ThroughputModel, TsaGrowsWithBanks)
{
    double prev = 0;
    for (uint32_t k = 1; k <= 17; k += 4) {
        const double v = tsaAttack(kT, 64, 5, k, 1).lossFraction;
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(StorageModel, PaperBudgets)
{
    // Appendix D: 7/10/16 bytes per bank; 224/320/512 per 32-bank chip.
    // The bank count comes from the default device grade's geometry.
    const dram::DeviceModel device;
    EXPECT_EQ(device.banksPerSubchannel(), 32u);
    EXPECT_EQ(moatStorage(1, device).bytesPerBank, 7u);
    EXPECT_EQ(moatStorage(2, device).bytesPerBank, 10u);
    EXPECT_EQ(moatStorage(4, device).bytesPerBank, 16u);
    EXPECT_EQ(moatStorage(1, device).bytesPerChip, 224u);
    EXPECT_EQ(moatStorage(2, device).bytesPerChip, 320u);
    EXPECT_EQ(moatStorage(4, device).bytesPerChip, 512u);
    // An eight-bank-per-group org would scale the chip figure; the
    // per-bank figure is geometry-independent.
    EXPECT_EQ(moatStorage(1, 64u).bytesPerChip, 448u);
}

TEST(StorageModel, EnergyModel)
{
    // Section 6.5: +2.3% activations at <=20% activation-energy share
    // is <0.5% total DRAM energy.
    const auto e = mitigationEnergy(23, 1000, 0.2);
    EXPECT_NEAR(e.activationIncrease, 0.023, 1e-9);
    EXPECT_LT(e.dramEnergyIncrease, 0.005);
}

TEST(StorageModel, ZeroBaselineIsSafe)
{
    const auto e = mitigationEnergy(100, 0);
    EXPECT_DOUBLE_EQ(e.activationIncrease, 0.0);
}

} // namespace
} // namespace moatsim::analysis
