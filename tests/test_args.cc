/**
 * @file
 * CLI flag parser: happy paths and, above all, the error paths of the
 * checked count-valued getters. Regression for the wrap-around bug:
 * `--subchannels -1` and `--subchannels 4294967297` must be rejected,
 * not silently become 4294967295 / 1 through static_cast.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/args.hh"

namespace moatsim
{
namespace
{

/** Build an Args from a flag list (argv[0] is skipped by position). */
Args
argsOf(std::vector<const char *> flags)
{
    flags.insert(flags.begin(), "moatsim");
    return Args(static_cast<int>(flags.size()),
                const_cast<char **>(flags.data()), 1);
}

TEST(Args, ParsesValuedAndBooleanFlags)
{
    const Args a = argsOf({"--ath", "128", "--postpone", "--eth", "64"});
    EXPECT_TRUE(a.has("ath"));
    EXPECT_TRUE(a.has("postpone"));
    EXPECT_FALSE(a.has("missing"));
    EXPECT_EQ(a.getInt("ath", 0), 128u);
    EXPECT_EQ(a.getInt("eth", 0), 64u);
    EXPECT_TRUE(a.getBool("postpone", false));
    EXPECT_EQ(a.getInt("absent", 7), 7u);
    EXPECT_EQ(a.get("absent", "dflt"), "dflt");
}

TEST(Args, GetIntRejectsNegativeAndJunk)
{
    EXPECT_EXIT(argsOf({"--subchannels", "-1"}).getInt("subchannels", 2),
                testing::ExitedWithCode(1), "unsigned integer");
    EXPECT_EXIT(argsOf({"--ath", "12abc"}).getInt("ath", 0),
                testing::ExitedWithCode(1), "unsigned integer");
    EXPECT_EXIT(argsOf({"--ath", "99999999999999999999"}).getInt("ath", 0),
                testing::ExitedWithCode(1), "unsigned integer");
}

TEST(Args, GetUint32RejectsValuesAboveThe32BitRange)
{
    // 2^32 + 1 wrapped to 1 through static_cast before the checked
    // getter existed, sailing past every == 0 guard.
    EXPECT_EXIT(
        argsOf({"--subchannels", "4294967297"}).getUint32("subchannels", 2),
        testing::ExitedWithCode(1), "at most");
    EXPECT_EXIT(
        argsOf({"--subchannels", "4294967296"}).getUint32("subchannels", 2),
        testing::ExitedWithCode(1), "at most");
    // The boundary itself is representable.
    EXPECT_EQ(
        argsOf({"--pool", "4294967295"}).getUint32("pool", 0), 4294967295u);
    EXPECT_EQ(argsOf({}).getUint32("pool", 3), 3u);
}

TEST(Args, GetPositiveRejectsZero)
{
    EXPECT_EXIT(argsOf({"--subchannels", "0"}).getPositive("subchannels", 2),
                testing::ExitedWithCode(1), "at least 1");
    EXPECT_EQ(argsOf({"--subchannels", "2"}).getPositive("subchannels", 1),
              2u);
    EXPECT_EQ(argsOf({}).getPositive("subchannels", 2), 2u);
}

TEST(Args, ValuedFlagWithoutValueIsReportedByName)
{
    // `--ath` followed by another flag is boolean; asking for its
    // value must name the offending flag.
    EXPECT_EXIT(argsOf({"--ath", "--eth", "1"}).get("ath", "0"),
                testing::ExitedWithCode(1), "--ath requires a value");
}

TEST(Args, MalformedFlagListIsRejected)
{
    EXPECT_EXIT(argsOf({"stray"}), testing::ExitedWithCode(1),
                "expected a --flag");
    EXPECT_EXIT(argsOf({"--"}), testing::ExitedWithCode(1),
                "empty flag name");
}

TEST(Args, GetDoubleAndBoolValidate)
{
    EXPECT_DOUBLE_EQ(argsOf({"--fraction", "0.25"}).getDouble("fraction", 1),
                     0.25);
    EXPECT_EXIT(argsOf({"--fraction", "x"}).getDouble("fraction", 1),
                testing::ExitedWithCode(1), "expects a number");
    EXPECT_FALSE(argsOf({"--postpone", "false"}).getBool("postpone", true));
    EXPECT_EXIT(argsOf({"--postpone", "maybe"}).getBool("postpone", false),
                testing::ExitedWithCode(1), "true/false");
}

} // namespace
} // namespace moatsim
