/**
 * @file
 * The sim::ResultStore contract: content-addressed whole-cell caching
 * with single-flight first touch, byte-identical warm re-runs at any
 * jobs count (with zero recomputation and zero trace generation),
 * explicit epoch-bump invalidation, corrupt/truncated shard records
 * degrading to misses instead of bad results, crash recovery
 * (quarantine + atomic compaction, byte-identical warm re-runs over
 * damaged shards), the fsck scan/repair pass, fault-injected append
 * failures degrading to memory-only service, and single-flight
 * computes that throw propagating without being cached.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "mitigation/registry.hh"
#include "sim/experiment.hh"
#include "sim/perf.hh"
#include "sim/result_io.hh"
#include "sim/result_store.hh"

namespace moatsim::sim
{
namespace
{

namespace fs = std::filesystem;

/** A fresh, empty shard directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

ResultStore::Config
persistentConfig(const std::string &dir)
{
    ResultStore::Config cfg;
    cfg.enabled = true;
    cfg.dir = dir;
    return cfg;
}

ResultStore::Config
memoryConfig()
{
    ResultStore::Config cfg;
    cfg.enabled = true;
    return cfg;
}

/** A deliberately tiny experiment (one workload, two sweep points). */
ExperimentConfig
smallConfig()
{
    ExperimentConfig ec;
    ec.tracegen.banksSimulated = 8;
    ec.tracegen.numCores = 4;
    ec.tracegen.windowFraction = 0.015625;
    ec.workload = "x264";
    return ec;
}

std::vector<SweepPoint>
smallMatrix()
{
    return {{mitigation::Registry::parse("moat:ath=64"), abo::Level::L1},
            {mitigation::Registry::parse("moat:ath=128,eth=64"),
             abo::Level::L2}};
}

/** Run the small matrix and return its results as one JSONL blob. */
std::string
runSuite(ExperimentConfig ec, unsigned jobs, ResultStore::Stats *stats,
         uint64_t *trace_misses)
{
    ec.jobs = jobs;
    Experiment exp(ec);
    std::string out;
    for (const auto &row : exp.runMatrix(smallMatrix())) {
        for (const auto &r : row)
            out += toJsonLine(r) + "\n";
    }
    if (stats != nullptr)
        *stats = exp.resultStore()->stats();
    if (trace_misses != nullptr)
        *trace_misses = exp.traceStore()->stats().misses;
    return out;
}

TEST(ResultStore, DisabledIsAPassThrough)
{
    ResultStore disabled{ResultStore::Config{}};
    std::atomic<int> computes{0};
    const auto a = disabled.getOrCompute(7, [&] {
        ++computes;
        return std::string("payload");
    });
    const auto b = disabled.getOrCompute(7, [&] {
        ++computes;
        return std::string("payload");
    });
    EXPECT_EQ(*a, "payload");
    EXPECT_EQ(*b, "payload");
    EXPECT_EQ(computes.load(), 2);
    EXPECT_EQ(disabled.stats().computes, 2u);
    EXPECT_EQ(disabled.stats().hits, 0u);
    EXPECT_EQ(disabled.stats().entries, 0u);
}

TEST(ResultStore, SingleFlightComputesEachKeyOnce)
{
    ResultStore store(memoryConfig());
    std::atomic<int> computes{0};
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const std::string>> results(kThreads);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            threads.emplace_back([&store, &computes, &results, i] {
                results[i] = store.getOrCompute(42, [&computes] {
                    ++computes;
                    return std::string("cell");
                });
            });
        }
        for (auto &t : threads)
            t.join();
    }
    EXPECT_EQ(computes.load(), 1);
    for (const auto &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r.get(), results[0].get()) << "one shared payload";
        EXPECT_EQ(*r, "cell");
    }
    const auto st = store.stats();
    EXPECT_EQ(st.computes, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, static_cast<uint64_t>(kThreads - 1));
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.inFlight, 0u);
}

TEST(ResultStore, WarmRerunIsByteIdenticalAndComputesNothing)
{
    const std::string dir = freshDir("moatsim_rs_warm");
    ExperimentConfig ec = smallConfig();
    ec.resultStore = persistentConfig(dir);

    ResultStore::Stats cold;
    const std::string first = runSuite(ec, 1, &cold, nullptr);
    EXPECT_EQ(cold.computes, 2u) << "2 points x 1 workload";
    EXPECT_GT(cold.entries, 0u);

    // Warm re-runs -- serial and parallel -- serve every cell from the
    // shards: zero computes, zero trace generations, identical bytes.
    for (const unsigned jobs : {1u, 8u}) {
        ResultStore::Stats warm;
        uint64_t trace_misses = ~0ull;
        const std::string again = runSuite(ec, jobs, &warm, &trace_misses);
        EXPECT_EQ(again, first) << "jobs=" << jobs;
        EXPECT_EQ(warm.computes, 0u) << "jobs=" << jobs;
        EXPECT_EQ(warm.loaded, cold.computes) << "jobs=" << jobs;
        EXPECT_EQ(trace_misses, 0u)
            << "a warm run must not regenerate traces (jobs=" << jobs
            << ")";
    }
}

TEST(ResultStore, EpochBumpOrphansTheShards)
{
    const std::string dir = freshDir("moatsim_rs_epoch");
    ExperimentConfig ec = smallConfig();
    ec.resultStore = persistentConfig(dir);

    ResultStore::Stats cold;
    const std::string first = runSuite(ec, 1, &cold, nullptr);
    ASSERT_GT(cold.computes, 0u);

    // Same directory, bumped epoch: every lookup misses (the old
    // records are orphaned, not misread) and the bytes still match.
    ec.resultStore.epoch = kResultStoreEpoch + 1;
    ResultStore::Stats bumped;
    const std::string again = runSuite(ec, 1, &bumped, nullptr);
    EXPECT_EQ(again, first);
    EXPECT_EQ(bumped.computes, cold.computes);
    EXPECT_EQ(bumped.hits, cold.hits);
}

TEST(ResultStore, CorruptAndTruncatedRecordsDegradeToMisses)
{
    const std::string dir = freshDir("moatsim_rs_corrupt");
    {
        ResultStore store(persistentConfig(dir));
        store.getOrCompute(1, [] { return std::string("payload-one"); });
    }

    // Mangle the shards: append garbage to each, truncate the last
    // valid record's tail. Every damaged record must load as a miss.
    size_t shards = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        ++shards;
        std::string text;
        {
            std::ifstream is(entry.path());
            std::getline(is, text, '\0');
        }
        ASSERT_FALSE(text.empty());
        text.resize(text.size() - 6); // truncate mid-record
        text += "\nnot json at all\n";
        std::ofstream os(entry.path(), std::ios::trunc);
        os << text;
    }
    ASSERT_GT(shards, 0u);

    ResultStore store(persistentConfig(dir));
    EXPECT_EQ(store.stats().loaded, 0u);
    EXPECT_GE(store.stats().corrupt, shards);
    std::atomic<int> computes{0};
    const auto a = store.getOrCompute(1, [&computes] {
        ++computes;
        return std::string("payload-one");
    });
    EXPECT_EQ(*a, "payload-one");
    EXPECT_EQ(computes.load(), 1) << "damaged record = miss, recompute";
}

/** The non-empty shard files under @p dir, sorted by path. */
std::vector<fs::path>
shardFiles(const std::string &dir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().filename().string().rfind("shard-", 0) == 0)
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
readAll(const fs::path &path)
{
    std::ifstream is(path);
    std::string text;
    std::getline(is, text, '\0');
    return text;
}

size_t
lineCount(const fs::path &path)
{
    std::ifstream is(path);
    size_t lines = 0;
    std::string line;
    while (std::getline(is, line))
        ++lines;
    return lines;
}

TEST(ResultStore, CrashRecoveryIsByteIdenticalAndSelfHealing)
{
    const std::string dir = freshDir("moatsim_rs_crash");
    ExperimentConfig ec = smallConfig();
    ec.resultStore = persistentConfig(dir);
    const std::string clean = runSuite(ec, 1, nullptr, nullptr);

    // Simulate a crash mid-append plus on-disk rot: truncate one
    // record mid-line (a torn write) and flip a payload byte in
    // another (bit rot) -- in different shards when possible.
    const auto files = shardFiles(dir);
    ASSERT_GE(files.size(), 1u);
    uint64_t damaged = 0;
    {
        const fs::path &victim = files.front();
        std::string text = readAll(victim);
        ASSERT_GT(text.size(), 10u);
        text.resize(text.size() - 10); // tear the record's tail off
        std::ofstream os(victim, std::ios::trunc);
        os << text;
        ++damaged;
    }
    if (files.size() > 1) {
        const fs::path &victim = files.back();
        std::string text = readAll(victim);
        const size_t payload_at = text.find("\"payload\":");
        ASSERT_NE(payload_at, std::string::npos);
        text[payload_at + 12] ^= 0x20; // flip one payload byte
        std::ofstream os(victim, std::ios::trunc);
        os << text;
        ++damaged;
    }

    // A warm run over the damaged store recomputes exactly the
    // damaged cells and reproduces the clean bytes; the load pass
    // quarantines and compacts.
    ResultStore::Stats warm;
    const std::string again = runSuite(ec, 1, &warm, nullptr);
    EXPECT_EQ(again, clean) << "recovery must be byte-identical";
    EXPECT_EQ(warm.corrupt, damaged);
    EXPECT_EQ(warm.quarantined, damaged);
    EXPECT_EQ(warm.compactions, damaged) << "one rewrite per hurt shard";
    EXPECT_EQ(warm.computes, damaged) << "only damaged cells recompute";
    EXPECT_EQ(lineCount(fs::path(dir) / "quarantine.jsonl"), damaged);

    // The heal is durable: a third run loads everything cleanly.
    ResultStore::Stats healed;
    const std::string third = runSuite(ec, 1, &healed, nullptr);
    EXPECT_EQ(third, clean);
    EXPECT_EQ(healed.corrupt, 0u);
    EXPECT_EQ(healed.computes, 0u);
}

TEST(ResultStore, FsckReportsAndRepairsEveryInjectedCorruption)
{
    const std::string dir = freshDir("moatsim_rs_fsck");
    {
        ResultStore store(persistentConfig(dir));
        store.getOrCompute(1, [] { return std::string("payload-one"); });
        store.getOrCompute(2, [] { return std::string("payload-two"); });
    }
    const auto files = shardFiles(dir);
    ASSERT_GE(files.size(), 1u);

    // A clean store fscks clean.
    const auto before = ResultStore::fsck(dir, /*repair=*/false);
    EXPECT_TRUE(before.clean());
    EXPECT_EQ(before.shards, files.size());
    EXPECT_EQ(before.valid, 2u);

    // Inject one torn tail and one garbage line.
    {
        const fs::path &victim = files.front();
        std::string text = readAll(victim);
        text.resize(text.size() - 10);
        text += "\n{\"kind\":\"result\" and then the disk gave up\n";
        std::ofstream os(victim, std::ios::trunc);
        os << text;
    }

    // Report mode sees the damage and changes nothing on disk.
    const auto report = ResultStore::fsck(dir, /*repair=*/false);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.corrupt, 2u);
    EXPECT_EQ(report.repaired, 0u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "quarantine.jsonl"));

    // Repair quarantines the damage and rewrites the shard; a second
    // fsck is clean and ignores the quarantine file itself.
    const auto repair = ResultStore::fsck(dir, /*repair=*/true);
    EXPECT_EQ(repair.corrupt, 2u);
    EXPECT_EQ(repair.repaired, 1u);
    EXPECT_EQ(lineCount(fs::path(dir) / "quarantine.jsonl"), 2u);
    const auto after = ResultStore::fsck(dir, /*repair=*/false);
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.corrupt, 0u);

    // The surviving records still serve.
    ResultStore store(persistentConfig(dir));
    EXPECT_GE(store.stats().loaded, 1u);
}

TEST(ResultStore, InjectedAppendFailureDegradesToMemoryOnly)
{
    const std::string dir = freshDir("moatsim_rs_appendfault");
    fault::arm("result-store.append@1");
    {
        ResultStore store(persistentConfig(dir));
        const auto a =
            store.getOrCompute(1, [] { return std::string("payload"); });
        EXPECT_EQ(*a, "payload") << "the value still serves";
        const auto b =
            store.getOrCompute(1, [] { return std::string("payload"); });
        EXPECT_EQ(a.get(), b.get()) << "memory entry intact";
        EXPECT_EQ(store.stats().appendFailures, 1u);
    }
    fault::disarm();
    EXPECT_TRUE(shardFiles(dir).empty()) << "nothing persisted";

    // With the fault gone the same store persists again.
    std::atomic<int> computes{0};
    {
        ResultStore store(persistentConfig(dir));
        store.getOrCompute(1, [&computes] {
            ++computes;
            return std::string("payload");
        });
    }
    EXPECT_EQ(computes.load(), 1) << "the lost append costs a recompute";
    ResultStore store(persistentConfig(dir));
    EXPECT_EQ(store.stats().loaded, 1u);
    EXPECT_EQ(store.stats().appendFailures, 0u);
}

TEST(ResultStore, ThrowingComputeIsNeverCachedAndWakesWaiters)
{
    ResultStore store(memoryConfig());
    std::atomic<int> computes{0};
    EXPECT_THROW(store.getOrCompute(7,
                                    [&computes]() -> std::string {
                                        ++computes;
                                        throw std::runtime_error("boom");
                                    }),
                 std::runtime_error);
    EXPECT_EQ(store.stats().entries, 0u) << "failure not cached";
    EXPECT_EQ(store.stats().inFlight, 0u);

    // The next touch recomputes and succeeds.
    const auto a = store.getOrCompute(7, [&computes] {
        ++computes;
        return std::string("ok");
    });
    EXPECT_EQ(*a, "ok");
    EXPECT_EQ(computes.load(), 2);

    // Waiters blocked on the in-flight future see the exception too.
    std::atomic<bool> entered{false};
    std::atomic<int> waiter_throws{0};
    std::thread loser([&] {
        while (!entered.load())
            std::this_thread::yield();
        try {
            store.getOrCompute(8, [] { return std::string("never"); });
        } catch (const std::runtime_error &) {
            ++waiter_throws;
        }
    });
    try {
        store.getOrCompute(8, [&]() -> std::string {
            entered = true;
            // Give the loser a chance to join the in-flight entry;
            // the yield loop makes this overwhelmingly likely, and
            // either interleaving keeps the assertions below valid.
            for (int i = 0; i < 1000; ++i)
                std::this_thread::yield();
            throw std::runtime_error("boom");
        });
    } catch (const std::runtime_error &) {
    }
    loser.join();
    // The loser either shared the failed flight (and saw its
    // exception, leaving no entry) or arrived after the erase and
    // computed "never" fresh -- but a failure is never cached.
    const auto b =
        store.getOrCompute(8, [] { return std::string("fresh"); });
    if (waiter_throws.load() == 1)
        EXPECT_EQ(*b, "fresh") << "the failed flight left no entry";
    else
        EXPECT_EQ(*b, "never") << "the loser recomputed on its own";
}

TEST(ResultStore, PerfCellKeySeparatesEveryAxis)
{
    const ExperimentConfig ec = smallConfig();
    const CoreModel core{};
    const auto &w1 = workload::findWorkload("x264");
    const auto &w2 = workload::findWorkload("wrf");
    const auto m1 = mitigation::Registry::parse("moat:ath=64");
    const auto m2 = mitigation::Registry::parse("moat:ath=128");

    const uint64_t base =
        perfCellKey(ec.tracegen, core, w1, m1, abo::Level::L1);
    EXPECT_NE(base, perfCellKey(ec.tracegen, core, w2, m1, abo::Level::L1));
    EXPECT_NE(base, perfCellKey(ec.tracegen, core, w1, m2, abo::Level::L1));
    EXPECT_NE(base, perfCellKey(ec.tracegen, core, w1, m1, abo::Level::L2));

    auto tg = ec.tracegen;
    tg.seed += 1;
    EXPECT_NE(base, perfCellKey(tg, core, w1, m1, abo::Level::L1));
    tg = ec.tracegen;
    tg.windowFraction *= 2.0;
    EXPECT_NE(base, perfCellKey(tg, core, w1, m1, abo::Level::L1));
}

} // namespace
} // namespace moatsim::sim
