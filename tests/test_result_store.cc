/**
 * @file
 * The sim::ResultStore contract: content-addressed whole-cell caching
 * with single-flight first touch, byte-identical warm re-runs at any
 * jobs count (with zero recomputation and zero trace generation),
 * explicit epoch-bump invalidation, and corrupt/truncated shard
 * records degrading to misses instead of bad results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "mitigation/registry.hh"
#include "sim/experiment.hh"
#include "sim/perf.hh"
#include "sim/result_io.hh"
#include "sim/result_store.hh"

namespace moatsim::sim
{
namespace
{

namespace fs = std::filesystem;

/** A fresh, empty shard directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

ResultStore::Config
persistentConfig(const std::string &dir)
{
    ResultStore::Config cfg;
    cfg.enabled = true;
    cfg.dir = dir;
    return cfg;
}

ResultStore::Config
memoryConfig()
{
    ResultStore::Config cfg;
    cfg.enabled = true;
    return cfg;
}

/** A deliberately tiny experiment (one workload, two sweep points). */
ExperimentConfig
smallConfig()
{
    ExperimentConfig ec;
    ec.tracegen.banksSimulated = 8;
    ec.tracegen.numCores = 4;
    ec.tracegen.windowFraction = 0.015625;
    ec.workload = "x264";
    return ec;
}

std::vector<SweepPoint>
smallMatrix()
{
    return {{mitigation::Registry::parse("moat:ath=64"), abo::Level::L1},
            {mitigation::Registry::parse("moat:ath=128,eth=64"),
             abo::Level::L2}};
}

/** Run the small matrix and return its results as one JSONL blob. */
std::string
runSuite(ExperimentConfig ec, unsigned jobs, ResultStore::Stats *stats,
         uint64_t *trace_misses)
{
    ec.jobs = jobs;
    Experiment exp(ec);
    std::string out;
    for (const auto &row : exp.runMatrix(smallMatrix())) {
        for (const auto &r : row)
            out += toJsonLine(r) + "\n";
    }
    if (stats != nullptr)
        *stats = exp.resultStore()->stats();
    if (trace_misses != nullptr)
        *trace_misses = exp.traceStore()->stats().misses;
    return out;
}

TEST(ResultStore, DisabledIsAPassThrough)
{
    ResultStore disabled{ResultStore::Config{}};
    std::atomic<int> computes{0};
    const auto a = disabled.getOrCompute(7, [&] {
        ++computes;
        return std::string("payload");
    });
    const auto b = disabled.getOrCompute(7, [&] {
        ++computes;
        return std::string("payload");
    });
    EXPECT_EQ(*a, "payload");
    EXPECT_EQ(*b, "payload");
    EXPECT_EQ(computes.load(), 2);
    EXPECT_EQ(disabled.stats().computes, 2u);
    EXPECT_EQ(disabled.stats().hits, 0u);
    EXPECT_EQ(disabled.stats().entries, 0u);
}

TEST(ResultStore, SingleFlightComputesEachKeyOnce)
{
    ResultStore store(memoryConfig());
    std::atomic<int> computes{0};
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const std::string>> results(kThreads);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            threads.emplace_back([&store, &computes, &results, i] {
                results[i] = store.getOrCompute(42, [&computes] {
                    ++computes;
                    return std::string("cell");
                });
            });
        }
        for (auto &t : threads)
            t.join();
    }
    EXPECT_EQ(computes.load(), 1);
    for (const auto &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r.get(), results[0].get()) << "one shared payload";
        EXPECT_EQ(*r, "cell");
    }
    const auto st = store.stats();
    EXPECT_EQ(st.computes, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, static_cast<uint64_t>(kThreads - 1));
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.inFlight, 0u);
}

TEST(ResultStore, WarmRerunIsByteIdenticalAndComputesNothing)
{
    const std::string dir = freshDir("moatsim_rs_warm");
    ExperimentConfig ec = smallConfig();
    ec.resultStore = persistentConfig(dir);

    ResultStore::Stats cold;
    const std::string first = runSuite(ec, 1, &cold, nullptr);
    EXPECT_EQ(cold.computes, 2u) << "2 points x 1 workload";
    EXPECT_GT(cold.entries, 0u);

    // Warm re-runs -- serial and parallel -- serve every cell from the
    // shards: zero computes, zero trace generations, identical bytes.
    for (const unsigned jobs : {1u, 8u}) {
        ResultStore::Stats warm;
        uint64_t trace_misses = ~0ull;
        const std::string again = runSuite(ec, jobs, &warm, &trace_misses);
        EXPECT_EQ(again, first) << "jobs=" << jobs;
        EXPECT_EQ(warm.computes, 0u) << "jobs=" << jobs;
        EXPECT_EQ(warm.loaded, cold.computes) << "jobs=" << jobs;
        EXPECT_EQ(trace_misses, 0u)
            << "a warm run must not regenerate traces (jobs=" << jobs
            << ")";
    }
}

TEST(ResultStore, EpochBumpOrphansTheShards)
{
    const std::string dir = freshDir("moatsim_rs_epoch");
    ExperimentConfig ec = smallConfig();
    ec.resultStore = persistentConfig(dir);

    ResultStore::Stats cold;
    const std::string first = runSuite(ec, 1, &cold, nullptr);
    ASSERT_GT(cold.computes, 0u);

    // Same directory, bumped epoch: every lookup misses (the old
    // records are orphaned, not misread) and the bytes still match.
    ec.resultStore.epoch = kResultStoreEpoch + 1;
    ResultStore::Stats bumped;
    const std::string again = runSuite(ec, 1, &bumped, nullptr);
    EXPECT_EQ(again, first);
    EXPECT_EQ(bumped.computes, cold.computes);
    EXPECT_EQ(bumped.hits, cold.hits);
}

TEST(ResultStore, CorruptAndTruncatedRecordsDegradeToMisses)
{
    const std::string dir = freshDir("moatsim_rs_corrupt");
    {
        ResultStore store(persistentConfig(dir));
        store.getOrCompute(1, [] { return std::string("payload-one"); });
    }

    // Mangle the shards: append garbage to each, truncate the last
    // valid record's tail. Every damaged record must load as a miss.
    size_t shards = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        ++shards;
        std::string text;
        {
            std::ifstream is(entry.path());
            std::getline(is, text, '\0');
        }
        ASSERT_FALSE(text.empty());
        text.resize(text.size() - 6); // truncate mid-record
        text += "\nnot json at all\n";
        std::ofstream os(entry.path(), std::ios::trunc);
        os << text;
    }
    ASSERT_GT(shards, 0u);

    ResultStore store(persistentConfig(dir));
    EXPECT_EQ(store.stats().loaded, 0u);
    EXPECT_GE(store.stats().corrupt, shards);
    std::atomic<int> computes{0};
    const auto a = store.getOrCompute(1, [&computes] {
        ++computes;
        return std::string("payload-one");
    });
    EXPECT_EQ(*a, "payload-one");
    EXPECT_EQ(computes.load(), 1) << "damaged record = miss, recompute";
}

TEST(ResultStore, PerfCellKeySeparatesEveryAxis)
{
    const ExperimentConfig ec = smallConfig();
    const CoreModel core{};
    const auto &w1 = workload::findWorkload("x264");
    const auto &w2 = workload::findWorkload("wrf");
    const auto m1 = mitigation::Registry::parse("moat:ath=64");
    const auto m2 = mitigation::Registry::parse("moat:ath=128");

    const uint64_t base =
        perfCellKey(ec.tracegen, core, w1, m1, abo::Level::L1);
    EXPECT_NE(base, perfCellKey(ec.tracegen, core, w2, m1, abo::Level::L1));
    EXPECT_NE(base, perfCellKey(ec.tracegen, core, w1, m2, abo::Level::L1));
    EXPECT_NE(base, perfCellKey(ec.tracegen, core, w1, m1, abo::Level::L2));

    auto tg = ec.tracegen;
    tg.seed += 1;
    EXPECT_NE(base, perfCellKey(tg, core, w1, m1, abo::Level::L1));
    tg = ec.tracegen;
    tg.windowFraction *= 2.0;
    EXPECT_NE(base, perfCellKey(tg, core, w1, m1, abo::Level::L1));
}

} // namespace
} // namespace moatsim::sim
