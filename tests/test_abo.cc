/**
 * @file
 * Unit tests for the ALERT-Back-Off protocol engine.
 */

#include <gtest/gtest.h>

#include "abo/abo.hh"

namespace moatsim::abo
{
namespace
{

dram::TimingParams kT;

TEST(Abo, LevelValues)
{
    EXPECT_EQ(levelValue(Level::L1), 1);
    EXPECT_EQ(levelValue(Level::L2), 2);
    EXPECT_EQ(levelValue(Level::L4), 4);
}

TEST(Abo, FirstAlertIsUngated)
{
    AboEngine abo(kT, Level::L1);
    EXPECT_TRUE(abo.canAssert(0));
}

TEST(Abo, WindowGeometryLevel1)
{
    AboEngine abo(kT, Level::L1);
    abo.assertAlert(fromNs(1000));
    EXPECT_EQ(abo.rfmBlockStart(), fromNs(1180));
    EXPECT_EQ(abo.rfmBlockEnd(), fromNs(1530));
    EXPECT_TRUE(abo.inNormalWindow(fromNs(1100)));
    EXPECT_FALSE(abo.inNormalWindow(fromNs(1200)));
    EXPECT_TRUE(abo.inRfmBlock(fromNs(1300)));
    EXPECT_FALSE(abo.inRfmBlock(fromNs(1600)));
}

TEST(Abo, WindowGeometryLevel4)
{
    AboEngine abo(kT, Level::L4);
    abo.assertAlert(0);
    // 4 RFMs of 350 ns each after the 180 ns normal window.
    EXPECT_EQ(abo.rfmBlockEnd(), fromNs(180 + 4 * 350));
    EXPECT_EQ(abo.rfmsPerAlert(), 4);
}

TEST(Abo, CannotAssertWhileInFlight)
{
    AboEngine abo(kT, Level::L1);
    abo.assertAlert(0);
    EXPECT_FALSE(abo.canAssert(fromNs(100)));
}

TEST(Abo, InterAlertActivationMinimum)
{
    // Figure 8 / Section 5.1: at least L activations between ALERTs.
    for (Level l : {Level::L1, Level::L2, Level::L4}) {
        AboEngine abo(kT, l);
        abo.assertAlert(0);
        abo.completeAlert();
        const Time after = abo.alertToAlert() + fromNs(100);
        for (int acts = 0; acts < levelValue(l); ++acts) {
            EXPECT_FALSE(abo.canAssert(after))
                << "level " << levelValue(l) << " after " << acts;
            abo.onActCompleted(after);
        }
        EXPECT_TRUE(abo.canAssert(after));
    }
}

TEST(Abo, StallAccounting)
{
    AboEngine abo(kT, Level::L2);
    abo.assertAlert(0);
    abo.completeAlert();
    EXPECT_EQ(abo.totalStallTime(), 2 * fromNs(350));
    EXPECT_EQ(abo.alertCount(), 1u);
}

TEST(Abo, AlertToAlertMatchesAppendixA)
{
    EXPECT_EQ(AboEngine(kT, Level::L1).alertToAlert(), fromNs(582));
    EXPECT_EQ(AboEngine(kT, Level::L2).alertToAlert(), fromNs(984));
    EXPECT_EQ(AboEngine(kT, Level::L4).alertToAlert(), fromNs(1788));
}

TEST(Abo, AlertNoLongerInFlightAfterBlockEnd)
{
    AboEngine abo(kT, Level::L1);
    abo.assertAlert(0);
    EXPECT_TRUE(abo.alertInFlight(fromNs(500)));
    EXPECT_FALSE(abo.alertInFlight(fromNs(531)));
}

} // namespace
} // namespace moatsim::abo
