/**
 * @file
 * Tests for the trace serialization round trip and error handling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace_io.hh"

namespace moatsim::workload
{
namespace
{

std::vector<CoreTrace>
sampleTraces()
{
    std::vector<CoreTrace> traces(2);
    traces[0].window = fromNs(1000);
    traces[0].events = {{fromNs(10), 0, 100},
                        {fromNs(20), 1, 200},
                        {fromNs(20), 0, 100}};
    traces[1].window = fromNs(2000);
    traces[1].events = {{fromNs(5), 3, 7}};
    return traces;
}

TEST(TraceIo, RoundTrip)
{
    const auto in = sampleTraces();
    std::stringstream ss;
    writeTraces(ss, in);
    const auto out = readTraces(ss);
    ASSERT_EQ(out.size(), in.size());
    for (size_t c = 0; c < in.size(); ++c) {
        EXPECT_EQ(out[c].window, in[c].window);
        ASSERT_EQ(out[c].events.size(), in[c].events.size());
        for (size_t i = 0; i < in[c].events.size(); ++i) {
            EXPECT_EQ(out[c].events[i].at, in[c].events[i].at);
            EXPECT_EQ(out[c].events[i].bank, in[c].events[i].bank);
            EXPECT_EQ(out[c].events[i].row, in[c].events[i].row);
        }
    }
}

TEST(TraceIo, GeneratedTracesRoundTrip)
{
    TraceGenConfig cfg;
    cfg.banksSimulated = 4;
    cfg.numCores = 2;
    cfg.windowFraction = 0.01;
    const auto in = generateTraces(findWorkload("x264"), cfg);
    std::stringstream ss;
    writeTraces(ss, in);
    const auto out = readTraces(ss);
    ASSERT_EQ(out.size(), in.size());
    for (size_t c = 0; c < in.size(); ++c)
        EXPECT_EQ(out[c].events.size(), in[c].events.size());
}

TEST(TraceIo, MultiSubChannelRoundTrip)
{
    // Events on a non-zero sub-channel switch the file to the v2
    // 4-column format; the sub-channel must survive the round trip.
    std::vector<CoreTrace> in(1);
    in[0].window = fromNs(1000);
    in[0].events = {{fromNs(10), 0, 100, 0},
                    {fromNs(20), 1, 200, 1},
                    {fromNs(30), 2, 300, 1}};
    std::stringstream ss;
    writeTraces(ss, in);
    EXPECT_NE(ss.str().find("trace v2"), std::string::npos);
    const auto out = readTraces(ss);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].events.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(out[0].events[i].subchannel, in[0].events[i].subchannel);
        EXPECT_EQ(out[0].events[i].bank, in[0].events[i].bank);
        EXPECT_EQ(out[0].events[i].row, in[0].events[i].row);
    }
}

TEST(TraceIo, SingleSubChannelKeepsV1Format)
{
    // All-sub-channel-0 traces stay in the 3-column v1 format so
    // external tooling written against it keeps working.
    const auto in = sampleTraces();
    std::stringstream ss;
    writeTraces(ss, in);
    EXPECT_NE(ss.str().find("trace v1"), std::string::npos);
    EXPECT_EQ(ss.str().find("trace v2"), std::string::npos);
}

TEST(TraceIoDeathTest, NegativeSubChannelFatal)
{
    std::stringstream ss;
    ss << "core 0\nwindow 100\n10 0 5 -1\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1), "bad event");
}

TEST(TraceIo, CommentsAndBlankLinesIgnored)
{
    std::stringstream ss;
    ss << "# header\n\ncore 0\nwindow 1000\n# mid comment\n10 1 2\n";
    const auto out = readTraces(ss);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].events.size(), 1u);
    EXPECT_EQ(out[0].events[0].row, 2u);
}

TEST(TraceIo, MissingWindowDerivedFromLastEvent)
{
    std::stringstream ss;
    ss << "core 0\n10 0 1\n50 0 2\n";
    const auto out = readTraces(ss);
    EXPECT_EQ(out[0].window, 51);
}

TEST(TraceIo, EmptyStreamGivesNoTraces)
{
    std::stringstream ss;
    EXPECT_TRUE(readTraces(ss).empty());
}

TEST(TraceIo, EmptyTraceListRoundTrip)
{
    std::stringstream ss;
    writeTraces(ss, {});
    EXPECT_TRUE(readTraces(ss).empty());
}

TEST(TraceIo, EmptyCoreRoundTrip)
{
    // A core that issued no activations (e.g. idle during the traced
    // window) must survive the round trip.
    std::vector<CoreTrace> in(2);
    in[0].window = fromNs(500);
    in[1].window = fromNs(500);
    in[1].events = {{fromNs(5), 0, 1}};
    std::stringstream ss;
    writeTraces(ss, in);
    const auto out = readTraces(ss);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].window, fromNs(500));
    EXPECT_TRUE(out[0].events.empty());
    ASSERT_EQ(out[1].events.size(), 1u);
}

TEST(TraceIo, UnsetWindowOmittedAndRederived)
{
    // window == 0 is not serialized (the reader rejects "window 0");
    // it is re-derived from the last event on load.
    std::vector<CoreTrace> in(1);
    in[0].events = {{10, 0, 1}, {50, 0, 2}};
    std::stringstream ss;
    writeTraces(ss, in);
    EXPECT_EQ(ss.str().find("window"), std::string::npos);
    const auto out = readTraces(ss);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].window, 51);
}

TEST(TraceIoDeathTest, TruncatedWindowLineFatal)
{
    std::stringstream ss;
    ss << "core 0\nwindow\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1), "bad window");
}

TEST(TraceIoDeathTest, TruncatedCoreHeaderFatal)
{
    std::stringstream ss;
    ss << "core\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1),
                "bad core header");
}

TEST(TraceIoDeathTest, TruncatedEventLineFatal)
{
    // An event line cut off mid-file (e.g. a partial download) must be
    // rejected, not silently zero-filled.
    std::stringstream ss;
    ss << "core 0\nwindow 100\n10 0\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1), "bad event");
}

TEST(TraceIoDeathTest, WindowBeforeCoreFatal)
{
    std::stringstream ss;
    ss << "window 100\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1),
                "before any core");
}

TEST(TraceIoDeathTest, NegativeEventFieldFatal)
{
    std::stringstream ss;
    ss << "core 0\nwindow 100\n10 -1 5\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1), "bad event");
}

TEST(TraceIoDeathTest, OutOfOrderEventsFatal)
{
    std::stringstream ss;
    ss << "core 0\nwindow 100\n50 0 1\n10 0 2\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1),
                "out of order");
}

TEST(TraceIoDeathTest, EventBeforeCoreFatal)
{
    std::stringstream ss;
    ss << "10 0 1\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1),
                "before any core");
}

TEST(TraceIoDeathTest, NonContiguousCoresFatal)
{
    std::stringstream ss;
    ss << "core 1\n";
    EXPECT_EXIT(readTraces(ss), testing::ExitedWithCode(1), "in order");
}

} // namespace
} // namespace moatsim::workload
