/**
 * @file
 * Unit tests for MitigationJob and the MitigationContext accounting.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/security.hh"
#include "mitigation/mitigator.hh"

namespace moatsim::mitigation
{
namespace
{

struct JobFixture : public ::testing::Test
{
    dram::TimingParams timing = [] {
        dram::TimingParams t;
        t.rowsPerBank = 256;
        t.refreshGroups = 32;
        return t;
    }();
    dram::Bank bank{timing, dram::CounterInit::Zero};
    dram::SecurityMonitor security{256, 2};
    MitigationStats stats;
    MitigationContext ctx{bank, security, stats};
};

TEST_F(JobFixture, FourVictimsNoReset)
{
    for (int i = 0; i < 10; ++i) {
        bank.activate(100);
        security.onActivate(100);
    }
    MitigationJob job(100, 2, /*reset_counter=*/false);
    int steps = 0;
    while (!job.step(ctx, false))
        ++steps;
    EXPECT_EQ(steps + 1, 4); // completes exactly on the 4th victim
    EXPECT_EQ(stats.victimRefreshes, 4u);
    EXPECT_EQ(stats.counterResets, 0u);
    EXPECT_EQ(stats.proactiveMitigations, 1u);
    EXPECT_EQ(bank.counter(100), 10u); // free-running counter kept
    EXPECT_EQ(security.hammerCount(100), 0u);
    EXPECT_EQ(security.damage(101), 0u);
}

TEST_F(JobFixture, FiveStepsWithReset)
{
    for (int i = 0; i < 10; ++i)
        bank.activate(100);
    MitigationJob job(100, 2, /*reset_counter=*/true);
    int steps = 0;
    while (!job.step(ctx, true))
        ++steps;
    EXPECT_EQ(steps + 1, 5); // 4 victims + 1 counter reset
    EXPECT_EQ(bank.counter(100), 0u);
    EXPECT_EQ(stats.alertMitigations, 1u);
    EXPECT_EQ(stats.counterResets, 1u);
}

TEST_F(JobFixture, RunToCompletion)
{
    MitigationJob job(50, 2, true);
    job.runToCompletion(ctx, false);
    EXPECT_FALSE(job.active());
    EXPECT_EQ(stats.victimRefreshes, 4u);
    EXPECT_EQ(stats.totalMitigations(), 1u);
}

TEST_F(JobFixture, EdgeRowHasFewerVictims)
{
    MitigationJob job(0, 2, false);
    job.runToCompletion(ctx, false);
    EXPECT_EQ(stats.victimRefreshes, 2u); // only rows 1 and 2 exist
}

TEST_F(JobFixture, CancelStopsWork)
{
    MitigationJob job(100, 2, true);
    job.step(ctx, false);
    job.cancel();
    EXPECT_FALSE(job.active());
    EXPECT_EQ(stats.victimRefreshes, 1u);
    EXPECT_EQ(stats.totalMitigations(), 0u);
}

TEST_F(JobFixture, VictimDamageClearedProgressively)
{
    for (int i = 0; i < 6; ++i)
        security.onActivate(100);
    MitigationJob job(100, 2, false);
    job.step(ctx, false); // refreshes row 98
    EXPECT_EQ(security.damage(98), 0u);
    EXPECT_EQ(security.damage(99), 6u);
}

TEST_F(JobFixture, BlastRadiusOneJob)
{
    MitigationJob job(100, 1, true);
    int steps = 0;
    while (!job.step(ctx, false))
        ++steps;
    EXPECT_EQ(steps + 1, 3); // 2 victims + reset
}

TEST_F(JobFixture, StatsTotalCombinesBothKinds)
{
    MitigationJob a(10, 2, false);
    a.runToCompletion(ctx, false);
    MitigationJob b(20, 2, false);
    b.runToCompletion(ctx, true);
    EXPECT_EQ(stats.proactiveMitigations, 1u);
    EXPECT_EQ(stats.alertMitigations, 1u);
    EXPECT_EQ(stats.totalMitigations(), 2u);
}

} // namespace
} // namespace moatsim::mitigation
