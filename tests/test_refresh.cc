/**
 * @file
 * Unit tests for the refresh scheduler (grouping, wrap, postponement).
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/refresh.hh"

namespace moatsim::dram
{
namespace
{

TimingParams
smallTiming()
{
    TimingParams t;
    t.rowsPerBank = 64;
    t.refreshGroups = 8;
    return t;
}

TEST(Refresh, GroupRowsAreContiguous)
{
    RefreshScheduler rs(smallTiming());
    EXPECT_EQ(rs.groupRows(0), (std::pair<RowId, RowId>{0, 7}));
    EXPECT_EQ(rs.groupRows(1), (std::pair<RowId, RowId>{8, 15}));
    EXPECT_EQ(rs.groupRows(7), (std::pair<RowId, RowId>{56, 63}));
}

TEST(Refresh, IssueAdvancesAndWraps)
{
    RefreshScheduler rs(smallTiming());
    for (uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(rs.issueRef(), i);
    EXPECT_EQ(rs.issueRef(), 0u); // wrapped
    EXPECT_EQ(rs.refsIssued(), 9u);
}

TEST(Refresh, PostponeLimit)
{
    RefreshScheduler rs(smallTiming(), 2);
    EXPECT_TRUE(rs.postpone());
    EXPECT_TRUE(rs.postpone());
    EXPECT_FALSE(rs.postpone()); // DDR5 allows at most 2 owed
    EXPECT_EQ(rs.owed(), 2u);
}

TEST(Refresh, IssueRepaysOwed)
{
    RefreshScheduler rs(smallTiming(), 2);
    rs.postpone();
    rs.postpone();
    rs.issueRef();
    EXPECT_EQ(rs.owed(), 1u);
    rs.issueRef();
    EXPECT_EQ(rs.owed(), 0u);
    EXPECT_TRUE(rs.postpone());
}

TEST(Refresh, FullWindowCoversEveryRowOnce)
{
    const TimingParams t = smallTiming();
    RefreshScheduler rs(t);
    std::vector<int> refreshed(t.rowsPerBank, 0);
    for (uint32_t i = 0; i < t.refreshGroups; ++i) {
        const auto [lo, hi] = rs.groupRows(rs.issueRef());
        for (RowId r = lo; r <= hi; ++r)
            ++refreshed[r];
    }
    for (RowId r = 0; r < t.rowsPerBank; ++r)
        EXPECT_EQ(refreshed[r], 1) << "row " << r;
}

TEST(Refresh, DefaultGeometryGroups)
{
    TimingParams t; // 64K rows, 8192 groups
    RefreshScheduler rs(t);
    EXPECT_EQ(rs.numGroups(), 8192u);
    EXPECT_EQ(rs.groupRows(8191).second, 65535u);
}

} // namespace
} // namespace moatsim::dram
