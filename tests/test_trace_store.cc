/**
 * @file
 * The workload::TraceStore contract: content-addressed sharing (one
 * generation per distinct (spec, config), baselines included, at any
 * jobs count), bit-identical results with the store on or off,
 * bounded size with LRU eviction, and safe concurrent first-touch
 * from thread-pool workers.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "common/fault.hh"
#include "common/thread_pool.hh"
#include "sim/result_io.hh"
#include "sim/sweep.hh"
#include "workload/trace_store.hh"

namespace moatsim::workload
{
namespace
{

TraceGenConfig
smallTracegen()
{
    TraceGenConfig tg;
    tg.banksSimulated = 8;
    tg.numCores = 4;
    tg.windowFraction = 0.015625;
    return tg;
}

void
expectSameTraces(const TraceSet &a, const TraceSet &b)
{
    ASSERT_EQ(a.numCores(), b.numCores());
    ASSERT_EQ(a.totalEvents(), b.totalEvents());
    for (size_t c = 0; c < a.numCores(); ++c) {
        const CoreTraceView &va = a.views()[c];
        const CoreTraceView &vb = b.views()[c];
        ASSERT_EQ(va.count, vb.count) << "core " << c;
        EXPECT_EQ(va.window, vb.window) << "core " << c;
        for (size_t i = 0; i < va.count; ++i) {
            const TraceEvent &ea = va.events[i];
            const TraceEvent &eb = vb.events[i];
            ASSERT_TRUE(ea.at == eb.at && ea.bank == eb.bank &&
                        ea.row == eb.row &&
                        ea.subchannel == eb.subchannel)
                << "core " << c << " event " << i;
        }
    }
}

/** Explicitly enabled store config, immune to ambient
 *  MOATSIM_TRACE_STORE / _BYTES environment overrides. */
TraceStore::Config
enabledConfig()
{
    return TraceStore::Config{};
}

TEST(TraceStore, SharedHandoutPerKey)
{
    TraceStore store(enabledConfig());
    const auto tg = smallTracegen();
    const auto &spec = findWorkload("roms");

    const auto a = store.get(spec, tg);
    const auto b = store.get(spec, tg);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().entries, 1u);

    // A different workload or a different config is a different key.
    const auto c = store.get(findWorkload("xz"), tg);
    EXPECT_NE(a.get(), c.get());
    auto tg2 = tg;
    tg2.windowFraction *= 2;
    const auto d = store.get(spec, tg2);
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(store.stats().misses, 3u);
}

TEST(TraceStore, InjectedGenerateFaultIsNeverCached)
{
    TraceStore store(enabledConfig());
    const auto tg = smallTracegen();
    const auto &spec = findWorkload("roms");

    // A faulted generation throws out of get() and leaves no poisoned
    // entry behind: the next get regenerates cleanly and the content
    // matches an undisturbed store's.
    fault::arm("trace-store.generate@1");
    EXPECT_THROW(store.get(spec, tg), fault::InjectedFault);
    fault::disarm();
    EXPECT_EQ(store.stats().entries, 0u) << "failure not cached";

    const auto healed = store.get(spec, tg);
    ASSERT_NE(healed, nullptr);
    TraceStore pristine(enabledConfig());
    expectSameTraces(*healed, *pristine.get(spec, tg));
}

TEST(TraceStore, FlattenedSetMatchesGenerator)
{
    TraceStore store(enabledConfig());
    const auto tg = smallTracegen();
    const auto &spec = findWorkload("parest");
    const auto set = store.get(spec, tg);

    const auto raw = generateTraces(spec, tg);
    ASSERT_EQ(set->numCores(), raw.size());
    uint64_t total = 0;
    for (size_t c = 0; c < raw.size(); ++c) {
        const CoreTraceView &v = set->views()[c];
        ASSERT_EQ(v.count, raw[c].events.size());
        EXPECT_EQ(v.window, raw[c].window);
        for (size_t i = 0; i < v.count; ++i) {
            ASSERT_TRUE(v.events[i].at == raw[c].events[i].at &&
                        v.events[i].bank == raw[c].events[i].bank &&
                        v.events[i].row == raw[c].events[i].row &&
                        v.events[i].subchannel ==
                            raw[c].events[i].subchannel);
        }
        total += v.count;
    }
    EXPECT_EQ(set->totalEvents(), total);
}

TEST(TraceStore, MatrixGeneratesEachDistinctTraceExactlyOnce)
{
    // The regression the store exists for: a full matrix run --
    // mitigated cells and their baselines -- must invoke
    // generateTraces exactly once per distinct (spec, config).
    sim::SweepConfig sc;
    sc.tracegen = smallTracegen();
    sc.jobs = 1;
    sc.traceStore = std::make_shared<TraceStore>(enabledConfig());
    sim::SweepEngine engine(sc);

    std::vector<sim::SweepCell> cells;
    for (const char *w : {"roms", "parest", "xz"}) {
        for (const char *m : {"moat", "panopticon"}) {
            cells.push_back({findWorkload(w),
                             mitigation::Registry::parse(m),
                             abo::Level::L1});
        }
    }

    const uint64_t before = traceGenInvocations();
    engine.run(cells);
    EXPECT_EQ(traceGenInvocations() - before, 3u);

    // A second run over the same matrix regenerates nothing at all.
    engine.run(cells);
    EXPECT_EQ(traceGenInvocations() - before, 3u);
}

TEST(TraceStore, CacheOnAndOffAreBitIdenticalAtAnyJobs)
{
    std::vector<sim::SweepCell> cells;
    for (const char *w : {"roms", "parest", "xz"}) {
        for (const char *m : {"moat", "moat:ath=32,eth=16"}) {
            cells.push_back({findWorkload(w),
                             mitigation::Registry::parse(m),
                             abo::Level::L1});
        }
    }

    auto jsonl = [&](bool enabled, unsigned jobs) {
        sim::SweepConfig sc;
        sc.tracegen = smallTracegen();
        sc.jobs = jobs;
        TraceStore::Config cfg;
        cfg.enabled = enabled;
        sc.traceStore = std::make_shared<TraceStore>(cfg);
        sim::SweepEngine engine(sc);
        std::string out;
        for (const auto &r : engine.run(cells))
            out += sim::toJsonLine(r) + "\n";
        return out;
    };

    const std::string reference = jsonl(true, 1);
    for (const unsigned jobs : {1u, 2u, 8u}) {
        EXPECT_EQ(reference, jsonl(true, jobs)) << "store on, jobs=" << jobs;
        EXPECT_EQ(reference, jsonl(false, jobs))
            << "store off, jobs=" << jobs;
    }
}

TEST(TraceStore, EvictsLeastRecentlyUsedUnderSizeBound)
{
    TraceStore::Config cfg;
    cfg.maxBytes = 1; // every resolved entry exceeds the bound
    TraceStore store(cfg);
    const auto tg = smallTracegen();

    const auto roms = store.get(findWorkload("roms"), tg);
    EXPECT_EQ(store.stats().entries, 1u);
    EXPECT_EQ(store.stats().evictions, 0u);

    // The second key evicts the first (LRU); the handout stays alive.
    const auto xz = store.get(findWorkload("xz"), tg);
    EXPECT_EQ(store.stats().entries, 1u);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_GT(roms->totalEvents(), 0u);

    // Re-touching the evicted key regenerates an identical set.
    const auto roms2 = store.get(findWorkload("roms"), tg);
    EXPECT_NE(roms.get(), roms2.get());
    expectSameTraces(*roms, *roms2);
}

TEST(TraceStore, DisabledStoreRegeneratesIdenticalContent)
{
    TraceStore::Config cfg;
    cfg.enabled = false;
    TraceStore store(cfg);
    const auto tg = smallTracegen();
    const auto &spec = findWorkload("roms");

    const auto a = store.get(spec, tg);
    const auto b = store.get(spec, tg);
    EXPECT_NE(a.get(), b.get()); // nothing cached...
    expectSameTraces(*a, *b);    // ...but byte-for-byte the same trace
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_EQ(store.stats().misses, 2u);
    EXPECT_EQ(store.stats().entries, 0u);
}

TEST(TraceStore, ConcurrentFirstTouchGeneratesOnce)
{
    // Many pool workers racing on the same cold key must block on one
    // generation and all receive the same set (TSan covers the
    // synchronization; this asserts the single-flight semantics).
    TraceStore store(enabledConfig());
    const auto tg = smallTracegen();
    const auto &spec = findWorkload("roms");

    const uint64_t before = traceGenInvocations();
    constexpr unsigned kWorkers = 8;
    std::vector<std::shared_ptr<const TraceSet>> sets(kWorkers);
    {
        ThreadPool pool(kWorkers);
        for (unsigned i = 0; i < kWorkers; ++i) {
            pool.submit([&, i] { sets[i] = store.get(spec, tg); });
        }
        pool.wait();
    }
    EXPECT_EQ(traceGenInvocations() - before, 1u);
    for (unsigned i = 1; i < kWorkers; ++i)
        EXPECT_EQ(sets[0].get(), sets[i].get());
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().hits, kWorkers - 1);
}

} // namespace
} // namespace moatsim::workload
