/**
 * @file
 * Integration tests for the command-level SubChannel: DDR5 timing,
 * REF cadence, ABO flow, and refresh postponement.
 */

#include <gtest/gtest.h>

#include "mitigation/moat.hh"
#include "mitigation/null.hh"
#include "mitigation/panopticon.hh"
#include "subchannel/subchannel.hh"

namespace moatsim::subchannel
{
namespace
{

SubChannelConfig
baseConfig(uint32_t banks = 2)
{
    SubChannelConfig sc;
    sc.numBanks = banks;
    return sc;
}

SubChannel
nullChannel(const SubChannelConfig &sc)
{
    return SubChannel(sc, [](BankId) {
        return std::make_unique<mitigation::NullMitigator>();
    });
}

SubChannel
moatChannel(const SubChannelConfig &sc, const mitigation::MoatConfig &m)
{
    return SubChannel(sc, [&](BankId) {
        return std::make_unique<mitigation::MoatMitigator>(m);
    });
}

TEST(SubChannel, SameBankActsSpacedByTrc)
{
    auto ch = nullChannel(baseConfig());
    const Time t0 = ch.activate(0, 100);
    const Time t1 = ch.activate(0, 200);
    EXPECT_EQ(t1 - t0, ch.timing().tRC);
}

TEST(SubChannel, CrossBankActsSpacedByTrrd)
{
    auto ch = nullChannel(baseConfig());
    const Time t0 = ch.activate(0, 100);
    const Time t1 = ch.activate(1, 100);
    EXPECT_EQ(t1 - t0, ch.timing().tRRD);
}

TEST(SubChannel, SixtySevenActsFitPerRefi)
{
    // Section 2.2's headline number, measured end to end in a steady
    // tREFI window (one that starts with the REF's tRFC busy time).
    auto ch = nullChannel(baseConfig(1));
    const Time lo = ch.timing().tREFI;
    const Time hi = 2 * ch.timing().tREFI;
    uint32_t in_window = 0;
    for (int i = 0; i < 160; ++i) {
        const Time t = ch.activate(0, 100);
        if (t >= lo && t + ch.timing().tRC <= hi)
            ++in_window;
    }
    EXPECT_EQ(in_window, 67u);
}

TEST(SubChannel, RefBlocksActs)
{
    auto ch = nullChannel(baseConfig(1));
    ch.advanceTo(ch.timing().tREFI - fromNs(10));
    const Time t = ch.activate(0, 5);
    // The ACT cannot straddle the REF: it issues after the tRFC busy
    // window.
    EXPECT_GE(t, ch.timing().tREFI + ch.timing().tRFC);
    EXPECT_EQ(ch.stats().refs, 1u);
}

TEST(SubChannel, AutoRefreshFollowsSchedule)
{
    auto ch = nullChannel(baseConfig(1));
    ch.advanceTo(10 * ch.timing().tREFI + 1);
    EXPECT_EQ(ch.stats().refs, 10u);
    EXPECT_EQ(ch.refreshScheduler(0).nextGroup(), 10u);
}

TEST(SubChannel, RefreshResetsHammerState)
{
    auto ch = nullChannel(baseConfig(1));
    // Row 0 belongs to group 0, refreshed by the very first REF.
    for (int i = 0; i < 5; ++i)
        ch.activate(0, 0);
    ch.advanceTo(ch.timing().tREFI + 1);
    EXPECT_EQ(ch.security(0).hammerCount(0), 0u);
}

TEST(SubChannel, MoatAlertStallsAndMitigates)
{
    mitigation::MoatConfig m; // ATH 64
    auto ch = moatChannel(baseConfig(1), m);
    const RowId row = 30000;
    for (uint32_t i = 0; i < m.ath + 1; ++i)
        ch.activate(0, row);
    EXPECT_EQ(ch.abo().alertCount(), 1u);
    // The row is mitigated by the RFM once the alert window elapses.
    ch.advanceTo(ch.now() + fromNs(600));
    EXPECT_EQ(ch.bank(0).counter(row), 0u);
    EXPECT_EQ(ch.mitigationStats().alertMitigations, 1u);
}

TEST(SubChannel, ThreeActsFitInAlertNormalWindow)
{
    // Section 5.1: 3 ACTs fit in the 180 ns window before the RFM.
    mitigation::MoatConfig m;
    auto ch = moatChannel(baseConfig(1), m);
    const RowId row = 30000;
    for (uint32_t i = 0; i < m.ath + 1; ++i)
        ch.activate(0, row);
    const Time assert_time = ch.now() + ch.timing().tRC;
    uint32_t in_window = 0;
    for (int i = 0; i < 6; ++i) {
        const Time t = ch.activate(0, 40000 + 8 * i);
        if (t + ch.timing().tRC <= assert_time + fromNs(180))
            ++in_window;
    }
    EXPECT_EQ(in_window, 3u);
}

TEST(SubChannel, MinimumActsBetweenAlerts)
{
    // After an ALERT's RFM, at least L activations must complete
    // before the next assertion (Figure 8).
    mitigation::MoatConfig m;
    auto ch = moatChannel(baseConfig(1), m);
    // Prime two rows just below ATH, then push both over.
    const RowId a = 30000, b = 30008;
    for (uint32_t i = 0; i < m.ath; ++i)
        ch.activate(0, a);
    for (uint32_t i = 0; i < m.ath; ++i)
        ch.activate(0, b);
    ch.activate(0, a); // alert 1 asserted for a
    ch.activate(0, b); // b now above ATH too
    ch.activate(0, b);
    ch.activate(0, b);
    ch.activate(0, b); // post-RFM act enables alert 2
    ch.activate(0, b);
    EXPECT_EQ(ch.abo().alertCount(), 2u);
    EXPECT_GE(ch.abo().totalStallTime(), 2 * fromNs(350));
}

TEST(SubChannel, AlertMitigatesOneRowInEveryBank)
{
    // Section 7.2: a synchronized multi-bank pattern gains nothing;
    // each ALERT mitigates one row from each bank.
    mitigation::MoatConfig m;
    auto ch = moatChannel(baseConfig(2), m);
    const RowId a = 30000, b = 40000;
    for (uint32_t i = 0; i < m.ath; ++i) {
        ch.activate(0, a);
        ch.activate(1, b);
    }
    ch.activate(0, a); // alert for bank 0
    ch.advanceTo(ch.now() + fromNs(600)); // let the RFM run
    EXPECT_EQ(ch.bank(0).counter(a), 0u);
    EXPECT_EQ(ch.bank(1).counter(b), 0u) << "bank 1's CTA mitigated too";
}

TEST(SubChannel, PostponementBatchesThreeRefs)
{
    auto ch = nullChannel(baseConfig(1));
    ch.setPostponeRefresh(true);
    // Two boundaries postponed, the third issues a batch of three.
    ch.advanceTo(3 * ch.timing().tREFI + 1);
    EXPECT_EQ(ch.stats().postponedRefs, 2u);
    EXPECT_EQ(ch.stats().refs, 3u);
}

TEST(SubChannel, PostponementWindowAllows201Acts)
{
    // Appendix B: up to 201 activations between REF batches.
    auto ch = nullChannel(baseConfig(1));
    ch.setPostponeRefresh(true);
    ch.advanceTo(3 * ch.timing().tREFI + 1); // first batch done
    const Time batch_end = ch.now() + 3 * ch.timing().tRFC;
    uint32_t acts = 0;
    for (int i = 0; i < 250; ++i) {
        ch.activate(0, 100);
        if (ch.stats().refs > 3)
            break;
        ++acts;
    }
    (void)batch_end;
    EXPECT_NEAR(acts, 201, 2);
}

TEST(SubChannel, StatsCountActs)
{
    auto ch = nullChannel(baseConfig());
    for (int i = 0; i < 10; ++i)
        ch.activate(0, 1 + 8 * i);
    EXPECT_EQ(ch.stats().acts, 10u);
}

TEST(SubChannel, SecurityDisabledSkipsTracking)
{
    // The sealed hot path elides the oracle's storage entirely when
    // tracking is off; the aggregate view reports nothing tracked.
    SubChannelConfig sc = baseConfig(1);
    sc.securityEnabled = false;
    auto ch = nullChannel(sc);
    for (int i = 0; i < 10; ++i)
        ch.activate(0, 100);
    EXPECT_EQ(ch.maxHammerAnyBank(), 0u);

    // The reference path keeps the monitor allocated (pre-overhaul
    // cost model) but still tracks nothing.
    SubChannelConfig ref = baseConfig(1);
    ref.securityEnabled = false;
    ref.sealedDispatch = false;
    auto ch_ref = nullChannel(ref);
    for (int i = 0; i < 10; ++i)
        ch_ref.activate(0, 100);
    EXPECT_EQ(ch_ref.security(0).maxHammer(), 0u);
}

TEST(SubChannel, RefreshResetsRowsDisabledKeepsCounters)
{
    SubChannelConfig sc = baseConfig(1);
    sc.refreshResetsRows = false;
    mitigation::MoatConfig m;
    auto ch = moatChannel(sc, m);
    for (int i = 0; i < 10; ++i)
        ch.activate(0, 0); // group 0: would be reset by first REF
    ch.advanceTo(2 * ch.timing().tREFI);
    EXPECT_EQ(ch.bank(0).counter(0), 10u);
    EXPECT_EQ(ch.security(0).hammerCount(0), 10u);
}

TEST(SubChannel, DefaultBankCountFromTiming)
{
    SubChannelConfig sc;
    auto ch = nullChannel(sc);
    EXPECT_EQ(ch.numBanks(), 32u);
}

TEST(SubChannel, FawLimitsBurstsAcrossManyBanks)
{
    SubChannelConfig sc = baseConfig(8);
    auto ch = nullChannel(sc);
    // Issue one ACT to each of 8 banks; the 5th must wait for tFAW
    // after the 1st.
    std::vector<Time> times;
    for (BankId b = 0; b < 8; ++b)
        times.push_back(ch.activate(b, 100));
    EXPECT_GE(times[4] - times[0], ch.timing().tFAW);
}

} // namespace
} // namespace moatsim::subchannel
