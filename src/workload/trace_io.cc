#include "workload/trace_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace moatsim::workload
{

void
writeTraces(std::ostream &os, const std::vector<CoreTrace> &traces)
{
    // Single-sub-channel traces keep the v1 3-column format so older
    // tooling can read them; any event on a sub-channel other than 0
    // switches the whole file to the v2 4-column format.
    bool multi = false;
    for (const auto &t : traces) {
        for (const auto &e : t.events)
            multi = multi || e.subchannel != 0;
    }
    if (multi)
        os << "# moatsim trace v2: time_ps bank row subchannel\n";
    else
        os << "# moatsim trace v1: time_ps bank row\n";
    for (size_t c = 0; c < traces.size(); ++c) {
        os << "core " << c << "\n";
        // The reader rejects "window 0" as malformed; an unset window
        // is simply omitted and re-derived from the last event.
        if (traces[c].window > 0)
            os << "window " << traces[c].window << "\n";
        for (const auto &e : traces[c].events) {
            os << e.at << ' ' << e.bank << ' ' << e.row;
            if (multi)
                os << ' ' << e.subchannel;
            os << "\n";
        }
    }
}

std::vector<CoreTrace>
readTraces(std::istream &is)
{
    std::vector<CoreTrace> traces;
    CoreTrace *current = nullptr;
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string first;
        ls >> first;
        if (first == "core") {
            size_t index = 0;
            if (!(ls >> index))
                fatal("trace line " + std::to_string(lineno) +
                      ": bad core header");
            if (index != traces.size())
                fatal("trace line " + std::to_string(lineno) +
                      ": core sections must be in order");
            traces.emplace_back();
            current = &traces.back();
        } else if (first == "window") {
            if (current == nullptr)
                fatal("trace line " + std::to_string(lineno) +
                      ": window before any core");
            if (!(ls >> current->window) || current->window <= 0)
                fatal("trace line " + std::to_string(lineno) +
                      ": bad window");
        } else {
            if (current == nullptr)
                fatal("trace line " + std::to_string(lineno) +
                      ": event before any core");
            TraceEvent e;
            std::istringstream es(line);
            int64_t bank = 0;
            int64_t row = 0;
            if (!(es >> e.at >> bank >> row) || e.at < 0 || bank < 0 ||
                row < 0)
                fatal("trace line " + std::to_string(lineno) +
                      ": bad event");
            // Optional v2 fourth column: the target sub-channel.
            int64_t subchannel = 0;
            if (es >> subchannel) {
                if (subchannel < 0)
                    fatal("trace line " + std::to_string(lineno) +
                          ": bad event");
            }
            e.bank = static_cast<BankId>(bank);
            e.row = static_cast<RowId>(row);
            e.subchannel = static_cast<uint32_t>(subchannel);
            if (!current->events.empty() &&
                e.at < current->events.back().at)
                fatal("trace line " + std::to_string(lineno) +
                      ": events out of order");
            current->events.push_back(e);
        }
    }
    for (auto &t : traces) {
        if (t.window == 0 && !t.events.empty())
            t.window = t.events.back().at + 1;
    }
    return traces;
}

void
saveTraces(const std::string &path, const std::vector<CoreTrace> &traces)
{
    std::ofstream os(path);
    if (!os)
        fatal("saveTraces: cannot open " + path);
    writeTraces(os, traces);
}

std::vector<CoreTrace>
loadTraces(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("loadTraces: cannot open " + path);
    return readTraces(is);
}

} // namespace moatsim::workload
