/**
 * @file
 * Plain-text trace serialization.
 *
 * moatsim's performance experiments run on synthetic traces, but the
 * memory-system model accepts any workload::CoreTrace, so users with
 * real activation traces (e.g. extracted from DRAMsim3/Ramulator runs)
 * can replay them. The format is one event per line:
 *
 *   # comment
 *   window <picoseconds>          (once per core section)
 *   core <index>
 *   <time_ps> <bank> <row>
 *
 * Events must be sorted by time within a core.
 */

#ifndef MOATSIM_WORKLOAD_TRACE_IO_HH
#define MOATSIM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/tracegen.hh"

namespace moatsim::workload
{

/** Write traces to a stream in the text format above. */
void writeTraces(std::ostream &os, const std::vector<CoreTrace> &traces);

/**
 * Parse traces from a stream.
 * Calls fatal() on malformed input (bad numbers, unsorted times).
 */
std::vector<CoreTrace> readTraces(std::istream &is);

/** Convenience wrappers over files. */
void saveTraces(const std::string &path,
                const std::vector<CoreTrace> &traces);
std::vector<CoreTrace> loadTraces(const std::string &path);

} // namespace moatsim::workload

#endif // MOATSIM_WORKLOAD_TRACE_IO_HH
