/**
 * @file
 * Plain-text trace serialization.
 *
 * moatsim's performance experiments run on synthetic traces, but the
 * memory-system model accepts any workload::CoreTrace, so users with
 * real activation traces (e.g. extracted from DRAMsim3/Ramulator runs)
 * can replay them. The format is one event per line:
 *
 *   # comment
 *   window <picoseconds>          (once per core section)
 *   core <index>
 *   <time_ps> <bank> <row> [subchannel]
 *
 * Events must be sorted by time within a core. The fourth column is
 * the v2 extension for multi-sub-channel systems; files whose events
 * all target sub-channel 0 are written in the 3-column v1 format and
 * both are accepted on read.
 */

#ifndef MOATSIM_WORKLOAD_TRACE_IO_HH
#define MOATSIM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/tracegen.hh"

namespace moatsim::workload
{

/** Write traces to a stream in the text format above. */
void writeTraces(std::ostream &os, const std::vector<CoreTrace> &traces);

/**
 * Parse traces from a stream.
 * Calls fatal() on malformed input (bad numbers, unsorted times).
 */
std::vector<CoreTrace> readTraces(std::istream &is);

/** Convenience wrappers over files. */
void saveTraces(const std::string &path,
                const std::vector<CoreTrace> &traces);
std::vector<CoreTrace> loadTraces(const std::string &path);

} // namespace moatsim::workload

#endif // MOATSIM_WORKLOAD_TRACE_IO_HH
