/**
 * @file
 * Workload characterizations from Table 4 of the paper.
 *
 * The paper evaluates 15 SPEC-2017 and 6 GAP benchmarks on a
 * proprietary trace-driven simulator. Those traces are not available,
 * so moatsim regenerates each workload synthetically from the paper's
 * own published characterization: activations per kilo-instruction
 * (ACT-PKI) and the number of rows per bank per tREFW that receive at
 * least 32 / 64 / 128 activations. Those marginals are exactly what
 * determines MOAT's mitigation and ALERT behaviour, so reproducing
 * them reproduces the shape of the performance results (DESIGN.md
 * records this substitution).
 */

#ifndef MOATSIM_WORKLOAD_SPEC_HH
#define MOATSIM_WORKLOAD_SPEC_HH

#include <cstdint>
#include <span>
#include <string>

namespace moatsim::workload
{

/** One row of Table 4. */
struct WorkloadSpec
{
    /** Benchmark name (SPEC-2017 or GAP). */
    std::string name;
    /** Activations per kilo-instruction. */
    double actPki = 0.0;
    /** Rows per bank per tREFW with >= 32 activations. */
    uint32_t act32 = 0;
    /** Rows per bank per tREFW with >= 64 activations. */
    uint32_t act64 = 0;
    /** Rows per bank per tREFW with >= 128 activations. */
    uint32_t act128 = 0;
    /** Whether the benchmark belongs to the GAP suite. */
    bool isGap = false;
};

/** All 21 workloads of Table 4, in the paper's order. */
std::span<const WorkloadSpec> table4Workloads();

/** Look up a workload by name; fatal() if unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

/** Look up a workload by name; null if unknown. Callers validating
 *  untrusted input (the serve protocol) use this instead of the
 *  fatal() path. */
const WorkloadSpec *tryFindWorkload(const std::string &name);

} // namespace moatsim::workload

#endif // MOATSIM_WORKLOAD_SPEC_HH
