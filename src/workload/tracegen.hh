/**
 * @file
 * Synthetic activation-trace generator calibrated to Table 4.
 *
 * For each core (rate mode: every core runs its own copy of the
 * workload on its own rows), the generator emits a time-sorted stream
 * of activations over one refresh window composed of:
 *
 *  - Hot-row episodes: the Table-4 tier rows. A row destined for C
 *    activations per window receives them as one contiguous episode
 *    (C activations paced a fixed intra-episode gap apart) starting at
 *    a uniformly random point in the window. Uniform starts produce
 *    the Poisson clumping of concurrently-hot rows that drives MOAT's
 *    ALERT rate: the per-REF mitigation absorbs the average tier load,
 *    and ALERTs fire exactly when episodes overlap faster than one
 *    mitigation per period -- the mechanism Section 6.3 describes.
 *  - Background traffic: the remaining ACT-PKI budget as uniformly
 *    distributed single activations over the core's row range.
 *
 * Traces carry *intended* times; the memory-system model stretches the
 * gaps elastically when the channel stalls (back-pressure).
 */

#ifndef MOATSIM_WORKLOAD_TRACEGEN_HH
#define MOATSIM_WORKLOAD_TRACEGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/time.hh"
#include "common/types.hh"
#include "dram/device.hh"
#include "dram/timing.hh"
#include "workload/spec.hh"

namespace moatsim::workload
{

/**
 * One intended activation. The DRAM coordinates are pre-decoded at
 * trace build time (routed through dram::AddressMap, including the
 * XOR bank hash), so the replay hot loop never touches the address
 * mapping: it dispatches straight on (subchannel, bank, row).
 */
struct TraceEvent
{
    /** Intended time within the window (pre-back-pressure). */
    Time at = 0;
    BankId bank = 0;
    RowId row = 0;
    /**
     * Target sub-channel replay slot (0 when the system has only
     * one). On a multi-channel/multi-rank system this is the flat
     * slot index ((channel * ranks) + rank) * subchannels +
     * subchannel, matching sim::System's construction order, so the
     * replay hot loop dispatches on one integer regardless of the
     * topology.
     */
    uint32_t subchannel = 0;
};

/** The activation stream of one core, sorted by intended time. */
struct CoreTrace
{
    std::vector<TraceEvent> events;
    /** Length of the traced window (trace time). */
    Time window = 0;
};

/**
 * Non-owning view of one core's activation stream. The replay loops
 * consume views so that shared, immutable trace storage (one flat
 * event slab per workload::TraceSet) replays without copying; a view
 * of a CoreTrace is the same thing by construction.
 */
struct CoreTraceView
{
    const TraceEvent *events = nullptr;
    size_t count = 0;
    /** Length of the traced window (trace time). */
    Time window = 0;
};

/** View of @p trace (borrows; the trace must outlive the view). */
inline CoreTraceView
viewOf(const CoreTrace &trace)
{
    return {trace.events.data(), trace.events.size(), trace.window};
}

/** Generator parameters. Every field shapes the generated traces, so
 *  every field must be folded into configKey() -- the TraceStore
 *  serves cached traces by that key, and keylint proves the coverage
 *  on every build (see tools/moatlint/keylint.hh). */
// moatlint: key-source(configKey)
struct TraceGenConfig
{
    dram::TimingParams timing{};
    /** Cores in the system (rate mode). */
    uint32_t numCores = 8;
    /** Banks simulated per sub-channel. */
    uint32_t banksSimulated = dram::kTable3BanksPerSubchannel;
    /**
     * Sub-channels simulated per (channel, rank), power of two. Each
     * core's traffic is routed across every replay slot (subchannels
     * x channels x ranks) x banksSimulated banks through
     * dram::AddressMap, and the events carry the decoded coordinates.
     * The full-system configuration of Table 3 is 2; the default of 1
     * keeps single-sub-channel experiments cheap.
     */
    uint32_t subchannels = 1;
    /** Memory channels (device topology; Table 3: 1). */
    uint32_t channels = 1;
    /** Ranks per channel (device topology; Table 3: 1). */
    uint32_t ranks = 1;
    /** Banks in the whole system (traffic divides across them). */
    uint32_t systemBanks = 2 * dram::kTable3BanksPerSubchannel;
    /** Non-memory IPC used to convert ACT-PKI into a time rate. */
    double baseIpc = 2.0;
    /** Core clock in GHz. */
    double cpuGhz = 4.0;
    /** Memory-level parallelism assumed per core (pacing cap). */
    uint32_t coreMlp = 4;
    /** Target bank utilization cap when deriving the effective IPC. */
    double bankUtilizationCap = 0.65;
    /** Per-core memory-bandwidth utilization cap. */
    double coreUtilizationCap = 0.8;
    /**
     * Fraction of a tREFW to generate. Tier row counts (defined per
     * tREFW) scale down proportionally, preserving the load balance
     * between hot rows and the mitigation rate.
     */
    double windowFraction = 0.125;
    /**
     * Gap between activations within a hot-row episode. The default
     * (1.5 activations per tREFI) is calibrated so that the suite
     * reproduces the paper's average slowdown and ALERT rate at
     * ATH=64 (see EXPERIMENTS.md, calibration note).
     */
    Time intraEpisodeGap = fromNs(2600);
    uint64_t seed = 7;
    /**
     * Canonical device spec text (dram::DeviceSpec::describe()) when
     * the configuration was derived from a named device grade via
     * withDevice(); empty for hand-assembled configs. Folded into
     * configKey() (a device axis must never collide with a
     * hand-tuned config of equal parameters) and carried through to
     * the JSONL results.
     */
    std::string device;
};

/**
 * Copy of @p config with the resolved @p device applied: the grade's
 * timing and geometry, the channels x ranks topology, the system bank
 * count (device.totalBanks()), and the canonical device text. The
 * sub-channels-per-channel and banks-simulated counts are left as
 * configured (experiments may still simulate a slice of each grade).
 * The default grade maps to an empty device tag -- it *is* the
 * hand-assembled Table-3 system, and the result is field-for-field
 * identical to a default-constructed config, so naming it changes no
 * key, seed, or output byte.
 */
TraceGenConfig withDevice(const TraceGenConfig &config,
                          const dram::DeviceModel &device);

/** Generate the per-core traces of one workload. */
std::vector<CoreTrace> generateTraces(const WorkloadSpec &spec,
                                      const TraceGenConfig &config);

/**
 * Process-wide count of generateTraces() invocations. Trace
 * generation is the redundant work the workload::TraceStore exists to
 * eliminate, so the counter is the observable the store's regression
 * tests and bench_sweep_scale assert on: a full matrix run must
 * invoke the generator exactly once per distinct (spec, config).
 */
uint64_t traceGenInvocations();

/**
 * Stable hash of every generator parameter (including the timing
 * block). Two configs with equal keys generate identical traces for
 * equal workloads; baseline caches key on it so one cache can serve
 * sweeps with different configurations.
 */
uint64_t configKey(const TraceGenConfig &config);

/**
 * The RNG seed generateTraces uses for @p spec: a stable function of
 * (config.seed, spec.name) only — deliberately independent of the
 * mitigator under test, so a cell's mitigated run replays exactly the
 * traces its no-ALERT baseline was measured on.
 */
uint64_t traceSeed(const WorkloadSpec &spec, const TraceGenConfig &config);

/**
 * Effective IPC of a workload: baseIpc capped so that the implied
 * activation rate stays within the banks' and the core's achievable
 * memory bandwidth (memory-bound workloads run at lower IPC, exactly
 * as on real hardware; the per-instruction ACT-PKI is preserved).
 */
double effectiveIpc(const WorkloadSpec &spec, const TraceGenConfig &config);

/** Per-bank tier census of a set of traces (Table-4 self-check). */
struct TierCensus
{
    /** Average rows per simulated bank with >= 32/64/128 ACTs,
     *  rescaled to a full tREFW. */
    double act32 = 0.0;
    double act64 = 0.0;
    double act128 = 0.0;
    /** Realized activations per kilo-instruction. */
    double actPki = 0.0;
};

/** Measure the census the generator actually produced. */
TierCensus censusOf(const std::vector<CoreTrace> &traces,
                    const TraceGenConfig &config,
                    const WorkloadSpec &spec);

} // namespace moatsim::workload

#endif // MOATSIM_WORKLOAD_TRACEGEN_HH
