#include "workload/attack_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moatsim::workload
{

namespace
{

/** Builder state shared by the pattern synthesizers. */
struct Builder
{
    const AttackTraceConfig &cfg;
    AttackTrace out;
    /** Intended-time cursor. */
    Time t = 0;
    /** Default pacing between attacker ACTs. */
    Time gap;

    explicit Builder(const AttackTraceConfig &config)
        : cfg(config),
          gap(config.actGap > 0 ? config.actGap : config.timing.tRC)
    {
        out.subchannel = config.subchannel;
        out.bank = config.bank;
    }

    void
    emit(RowId row)
    {
        out.trace.events.push_back(
            {t, cfg.bank, row, cfg.subchannel});
        t += gap;
    }

    void
    emit(RowId row, Time at)
    {
        out.trace.events.push_back(
            {at, cfg.bank, row, cfg.subchannel});
        t = std::max(t, at + gap);
    }
};

/** Resolved activation budget: explicit, else sized to the window,
 *  else a fixed default matching the isolated driver's scale. */
uint64_t
budgetOf(const AttackTraceConfig &cfg, const Builder &b)
{
    if (cfg.budget != 0)
        return cfg.budget;
    if (cfg.window > 0)
        return std::max<uint64_t>(
            1024, static_cast<uint64_t>(cfg.window / b.gap));
    return 4096;
}

/** Single mid-bank row as fast as the pacing allows. */
void
buildHammer(Builder &b)
{
    const uint64_t budget = budgetOf(b.cfg, b);
    b.out.rows = {attackBaseRow(b.cfg.timing)};
    for (uint64_t i = 0; i < budget; ++i)
        b.emit(b.out.rows[0]);
}

/** Circular many-sided pool. */
void
buildRoundRobin(Builder &b)
{
    const uint32_t pool = b.cfg.poolRows != 0 ? b.cfg.poolRows : 8;
    b.out.rows = attackRowPool(b.cfg.timing, pool);
    const uint64_t budget = budgetOf(b.cfg, b);
    for (uint64_t i = 0; i < budget; ++i)
        b.emit(b.out.rows[i % pool]);
}

/**
 * Ratchet funnel: sweep a pool, halve it every few sweeps (the
 * survivors soak up the leaked per-ALERT activations), and spend the
 * remaining budget on the last survivor.
 */
void
buildRatchet(Builder &b)
{
    const uint32_t pool = b.cfg.poolRows != 0 ? b.cfg.poolRows : 64;
    b.out.rows = attackRowPool(b.cfg.timing, pool);
    const uint64_t budget = budgetOf(b.cfg, b);
    constexpr uint32_t kSweepsPerStage = 4;

    uint64_t acts = 0;
    uint32_t live = pool;
    while (live > 1 && acts < budget) {
        for (uint32_t s = 0; s < kSweepsPerStage && acts < budget; ++s) {
            for (uint32_t i = 0; i < live && acts < budget; ++i) {
                b.emit(b.out.rows[i]);
                ++acts;
            }
        }
        live = live / 2;
    }
    for (; acts < budget; ++acts)
        b.emit(b.out.rows[0]);
}

/**
 * Jailbreak shape: prime a queue-sized decoy set, then hammer the
 * target at the paper's 32-ACTs-per-tREFI pace, re-touching one decoy
 * per period to keep the queue populated without overflowing.
 */
void
buildJailbreak(Builder &b)
{
    const uint32_t decoys = b.cfg.poolRows != 0 ? b.cfg.poolRows : 8;
    b.out.rows = attackRowPool(b.cfg.timing, decoys + 1);
    const RowId target = b.out.rows[0];
    const uint64_t budget = budgetOf(b.cfg, b);
    constexpr uint32_t kActsPerRefi = 32;
    const Time pace = b.cfg.timing.tREFI / (kActsPerRefi + 1);

    uint64_t acts = 0;
    for (uint32_t d = 0; d < decoys && acts < budget; ++d, ++acts)
        b.emit(b.out.rows[1 + d]);

    uint64_t period = 0;
    while (acts < budget) {
        const Time start = b.t;
        for (uint32_t i = 0; i < kActsPerRefi && acts < budget;
             ++i, ++acts) {
            b.emit(target, start + static_cast<Time>(i) * pace);
        }
        if (acts < budget) {
            b.emit(b.out.rows[1 + (period % decoys)]);
            ++acts;
        }
        ++period;
    }
}

/**
 * Feinting: spread each sacrifice period's budget evenly over the
 * surviving pool, dropping the last row every period; the first row
 * survives every period and accumulates the sum.
 */
void
buildFeinting(Builder &b)
{
    const uint32_t pool = b.cfg.poolRows != 0 ? b.cfg.poolRows : 16;
    b.out.rows = attackRowPool(b.cfg.timing, pool);
    const uint64_t budget = budgetOf(b.cfg, b);
    const uint64_t per_period = std::max<uint64_t>(1, budget / pool);

    uint64_t acts = 0;
    for (uint32_t live = pool; live >= 1 && acts < budget; --live) {
        const uint64_t share = std::max<uint64_t>(1, per_period / live);
        for (uint32_t r = 0; r < live && acts < budget; ++r) {
            for (uint64_t i = 0; i < share && acts < budget;
                 ++i, ++acts) {
                b.emit(b.out.rows[r]);
            }
        }
    }
    for (; acts < budget; ++acts)
        b.emit(b.out.rows[0]);
}

} // namespace

AttackTrace
generateAttackTrace(const AttackTraceConfig &config)
{
    Builder b(config);
    if (config.pattern == "none") {
        // Empty stream: the attack-free co-run replays through the
        // same engine path with the attacker core contributing nothing.
    } else if (config.pattern == "hammer" ||
               config.pattern == "postponement") {
        // Postponement pressure is continuous hammering; the attack's
        // bite comes from the System-level REF postponement the
        // co-attack engine enables (attackPostponesRefresh).
        buildHammer(b);
    } else if (config.pattern == "round-robin") {
        buildRoundRobin(b);
    } else if (config.pattern == "ratchet") {
        buildRatchet(b);
    } else if (config.pattern == "jailbreak") {
        buildJailbreak(b);
    } else if (config.pattern == "feinting") {
        buildFeinting(b);
    } else {
        fatal("generateAttackTrace: unknown pattern '" + config.pattern +
              "'");
    }

    std::sort(b.out.trace.events.begin(), b.out.trace.events.end(),
              [](const TraceEvent &x, const TraceEvent &y) {
                  return x.at < y.at;
              });
    b.out.trace.window =
        std::max(config.window,
                 b.out.trace.events.empty()
                     ? Time{0}
                     : b.out.trace.events.back().at + b.gap);
    return b.out;
}

bool
attackPostponesRefresh(const std::string &pattern)
{
    return pattern == "postponement";
}

RowId
attackBaseRow(const dram::TimingParams &timing)
{
    return timing.rowsPerBank / 2;
}

uint32_t
attackRowStride(const dram::TimingParams &timing)
{
    // One stride keeps neighbouring pool rows' blast radii disjoint.
    return 2 * timing.blastRadius + 2;
}

std::vector<RowId>
attackRowPool(const dram::TimingParams &timing, uint32_t pool)
{
    const RowId base = attackBaseRow(timing);
    const uint32_t stride = attackRowStride(timing);
    const uint32_t max_fit = (timing.rowsPerBank - base) / stride;
    if (pool > max_fit) {
        fatal("attack pool of " + std::to_string(pool) +
              " rows does not fit in the bank (max " +
              std::to_string(max_fit) + ")");
    }
    std::vector<RowId> rows;
    rows.reserve(pool);
    for (uint32_t i = 0; i < pool; ++i)
        rows.push_back(base + static_cast<RowId>(i) * stride);
    return rows;
}

} // namespace moatsim::workload
