/**
 * @file
 * Attacker-core activation traces for the adversary-under-load
 * scenario engine (sim/coattack.hh).
 *
 * attacks::runAttack drives an isolated single-bank SubChannel with a
 * closed feedback loop (the tuned drivers react to ALERTs online).
 * Measuring what an attack costs co-running victims instead requires
 * the attacker to be *one more core* in sim::System's merged event
 * loop, so each pattern is re-expressed here as an open-loop intended
 * activation stream (workload::CoreTrace) that pins one sub-channel
 * and one bank: the shape of the pattern is preserved (hammer bursts,
 * round-robin pools, ratchet funnelling, jailbreak queue priming,
 * feinting sacrifice periods, postponement pressure), while the memory
 * system's back-pressure paces it exactly like demand traffic.
 */

#ifndef MOATSIM_WORKLOAD_ATTACK_TRACE_HH
#define MOATSIM_WORKLOAD_ATTACK_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hh"
#include "common/types.hh"
#include "dram/timing.hh"
#include "workload/tracegen.hh"

namespace moatsim::workload
{

/** Parameters of one synthesized attack trace. */
struct AttackTraceConfig
{
    dram::TimingParams timing{};
    /** Pattern name (attacks::attackPatterns()), or "none". */
    std::string pattern = "hammer";
    /** Sub-channel the attacker pins. */
    uint32_t subchannel = 0;
    /** Bank (within the sub-channel) the attacker pins. */
    BankId bank = 0;
    /** Rows in the attack pool (0 = pattern-specific default). */
    uint32_t poolRows = 0;
    /** Activation budget (0 = fill @p window, or a pattern default). */
    uint64_t budget = 0;
    /**
     * Co-run window the attack should span. With budget == 0 the
     * attack is sized to hammer for the whole window (the
     * adversary-under-load default); 0 falls back to a fixed budget.
     */
    Time window = 0;
    /** Intended gap between attacker ACTs (0 = tRC, as fast as legal). */
    Time actGap = 0;
    uint64_t seed = 1;
};

/** A synthesized attack stream plus its accounting metadata. */
struct AttackTrace
{
    /** The attacker core's intended activation stream. */
    CoreTrace trace;
    /** Distinct rows the attacker activates (per-class accounting
     *  reads their peak hammer counts after the co-run). */
    std::vector<RowId> rows;
    /** The pinned sub-channel and bank. */
    uint32_t subchannel = 0;
    BankId bank = 0;
};

/**
 * Synthesize the configured pattern. Pattern "none" (or an explicit
 * budget of 0 events) yields an empty trace: the attack-free co-run
 * replays through exactly the same code path as an attacked one.
 * fatal()s on an unknown pattern or a pool that does not fit the bank.
 */
AttackTrace generateAttackTrace(const AttackTraceConfig &config);

/** Whether the pattern relies on attacker-controlled REF postponement
 *  (the co-attack engine enables it on the System for these). */
bool attackPostponesRefresh(const std::string &pattern);

/**
 * The attack-row placement convention shared by the isolated driver
 * (attacks::runAttack) and the trace synthesizer, so the two variants
 * of one pattern stay comparable: pools start at the mid-bank row and
 * space rows one stride apart so their blast radii never overlap.
 */
RowId attackBaseRow(const dram::TimingParams &timing);
uint32_t attackRowStride(const dram::TimingParams &timing);

/** The rows of an attack pool; fatal()s when it does not fit. */
std::vector<RowId> attackRowPool(const dram::TimingParams &timing,
                                 uint32_t pool);

} // namespace moatsim::workload

#endif // MOATSIM_WORKLOAD_ATTACK_TRACE_HH
