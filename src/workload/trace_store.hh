/**
 * @file
 * Content-addressed, thread-safe store of generated workload traces.
 *
 * Every figure/table of the paper is a (workload x mitigator x level)
 * matrix, and each cell replays the *same* workload trace: the trace
 * seed is deliberately independent of the mitigator under test (see
 * workload::traceSeed). Before the store, every cell -- baselines
 * included -- regenerated and re-decoded that trace from scratch, so a
 * four-point matrix paid for each workload's generation five times or
 * more. The store generates each distinct trace exactly once and hands
 * out std::shared_ptr<const TraceSet> values that sweep cells share
 * across the ThreadPool.
 *
 * A TraceSet is immutable and flattened: every core's events live in
 * one contiguous slab, pre-decoded once through dram::AddressMap at
 * generation time, and the replay loops (sim/system.hh) consume
 * CoreTraceView spans straight out of the slab.
 *
 * Keys are content addresses: hashCombine(traceSeed(spec, config),
 * configKey(config)) covers everything that shapes a generated trace,
 * so equal keys mean bit-identical traces and results never depend on
 * whether the store was hit, missed, or disabled. The store is bounded
 * (approximate bytes; least-recently-used entries are evicted once the
 * bound is exceeded -- outstanding shared_ptr holders keep evicted
 * sets alive) and surfaces hit/miss/eviction stats for
 * bench_sweep_scale and the sweep engines.
 *
 * Disable it with MOATSIM_TRACE_STORE=0 (or the CLI --no-trace-store
 * flag, or Config::enabled = false): get() then generates a fresh set
 * per call, which the determinism suite uses to prove cached and
 * uncached runs emit byte-identical JSONL.
 */

#ifndef MOATSIM_WORKLOAD_TRACE_STORE_HH
#define MOATSIM_WORKLOAD_TRACE_STORE_HH

#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.hh"
#include "workload/spec.hh"
#include "workload/tracegen.hh"

namespace moatsim::workload
{

/**
 * One immutable, shareable set of per-core traces: the events of all
 * cores flattened into a single slab (coordinates pre-decoded at
 * generation time), plus per-core spans. Always held behind
 * std::shared_ptr<const TraceSet>; non-copyable and non-movable so the
 * views into the slab stay valid for every holder.
 */
class TraceSet
{
  public:
    /** Flatten @p cores (as returned by generateTraces). */
    explicit TraceSet(std::vector<CoreTrace> cores);

    TraceSet(const TraceSet &) = delete;
    TraceSet &operator=(const TraceSet &) = delete;

    /** Number of cores. */
    size_t numCores() const { return views_.size(); }

    /** Per-core spans into the shared event slab. */
    const std::vector<CoreTraceView> &views() const { return views_; }

    /** Events across all cores. */
    uint64_t totalEvents() const { return events_.size(); }

    /** Approximate heap footprint (for the store's size bound). */
    size_t bytes() const
    {
        return events_.capacity() * sizeof(TraceEvent) +
               views_.capacity() * sizeof(CoreTraceView);
    }

  private:
    std::vector<TraceEvent> events_;
    std::vector<CoreTraceView> views_;
};

/** Shared, bounded cache of generated TraceSets. */
class TraceStore
{
  public:
    struct Config
    {
        /** false: get() generates fresh sets and caches nothing. */
        bool enabled = true;
        /** Approximate byte bound; LRU entries evicted beyond it. */
        size_t maxBytes = size_t{1} << 30;
    };

    /** Counters of store activity (monotonic over the store's life). */
    struct Stats
    {
        /** get() calls served from a cached (or in-flight) entry. */
        uint64_t hits = 0;
        /** get() calls that generated (store disabled included). */
        uint64_t misses = 0;
        /** Entries dropped by the size bound. */
        uint64_t evictions = 0;
        /** Entries currently resident. */
        size_t entries = 0;
        /** Approximate bytes currently resident. */
        size_t bytes = 0;

        /** Fraction of get() calls served without regenerating. */
        double hitRate() const
        {
            const uint64_t total = hits + misses;
            return total > 0 ? static_cast<double>(hits) /
                                   static_cast<double>(total)
                             : 0.0;
        }
    };

    /** Store configured from the environment (envConfig()). */
    TraceStore();

    explicit TraceStore(const Config &config);

    /**
     * The trace set of @p spec under @p config; generated on first
     * touch, shared afterwards. Concurrent first-touchers of one key
     * block on the single generation. Thread-safe.
     */
    std::shared_ptr<const TraceSet> get(const WorkloadSpec &spec,
                                        const TraceGenConfig &config)
        EXCLUDES(mu_);

    /** Whether the store caches at all. */
    bool enabled() const { return config_.enabled; }

    const Config &config() const { return config_; }

    Stats stats() const EXCLUDES(mu_);

    /** Content address: everything that shapes the generated trace. */
    static uint64_t key(const WorkloadSpec &spec,
                        const TraceGenConfig &config);

    /**
     * Config from the environment: MOATSIM_TRACE_STORE=0 disables,
     * MOATSIM_TRACE_STORE_BYTES overrides the size bound.
     */
    static Config envConfig();

  private:
    struct Entry
    {
        std::shared_future<std::shared_ptr<const TraceSet>> future;
        /** LRU tick of the last get() that touched this entry. */
        uint64_t lastUse = 0;
        /** Resident bytes; 0 until the generation resolves. */
        size_t bytes = 0;
    };

    /** Drop LRU resolved entries until the bound holds (mu_ held).
     *  Never drops @p keep (the entry the caller is handing out). */
    void evictLocked(uint64_t keep) REQUIRES(mu_);

    /** Immutable after construction. */
    Config config_;
    mutable Mutex mu_;
    std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
    uint64_t tick_ GUARDED_BY(mu_) = 0;
    uint64_t hits_ GUARDED_BY(mu_) = 0;
    uint64_t misses_ GUARDED_BY(mu_) = 0;
    uint64_t evictions_ GUARDED_BY(mu_) = 0;
    size_t bytes_ GUARDED_BY(mu_) = 0;
};

} // namespace moatsim::workload

#endif // MOATSIM_WORKLOAD_TRACE_STORE_HH
