#include "workload/tracegen.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.hh"
#include "common/logging.hh"
#include "dram/address_map.hh"

namespace moatsim::workload
{

namespace
{

/** Stochastic rounding: 2.3 -> 2 (70%) or 3 (30%). */
uint32_t
roundStochastic(double x, Rng &rng)
{
    const double fl = std::floor(x);
    const double frac = x - fl;
    return static_cast<uint32_t>(fl) + (rng.chance(frac) ? 1u : 0u);
}

/** Effective sub-channel count (0 means 1). */
uint32_t
subchannelsOf(const TraceGenConfig &config)
{
    return std::max(1u, config.subchannels);
}

/** Effective channel count (0 means 1). */
uint32_t
channelsOf(const TraceGenConfig &config)
{
    return std::max(1u, config.channels);
}

/** Effective rank count (0 means 1). */
uint32_t
ranksOf(const TraceGenConfig &config)
{
    return std::max(1u, config.ranks);
}

/**
 * Independent sub-channel replay slots of the simulated system:
 * channels x ranks x sub-channels. TraceEvent.subchannel carries the
 * flat slot index, in sim::System's construction order.
 */
uint32_t
slotsOf(const TraceGenConfig &config)
{
    return channelsOf(config) * ranksOf(config) * subchannelsOf(config);
}

/**
 * The address map that routes generated traffic onto the simulated
 * system: bankBits/subchannelBits sized to the configuration, bank
 * XOR hashing on (the CoffeeLake baseline of Table 3).
 */
dram::AddressMap
addressMapOf(const TraceGenConfig &config)
{
    const uint32_t scs = subchannelsOf(config);
    const uint32_t ranks = ranksOf(config);
    const uint32_t chans = channelsOf(config);
    if (!std::has_single_bit(config.banksSimulated) ||
        !std::has_single_bit(scs))
        fatal("generateTraces: banksSimulated and subchannels must be "
              "powers of two (address-bit routing)");
    if (!std::has_single_bit(ranks) || !std::has_single_bit(chans))
        fatal("generateTraces: channels and ranks must be powers of "
              "two (address-bit routing)");
    dram::AddressMap::Config amc;
    amc.bankBits = static_cast<uint32_t>(std::bit_width(
        config.banksSimulated) - 1);
    amc.subchannelBits = static_cast<uint32_t>(std::bit_width(scs) - 1);
    amc.rankBits = static_cast<uint32_t>(std::bit_width(ranks) - 1);
    amc.channelBits = static_cast<uint32_t>(std::bit_width(chans) - 1);
    amc.rowIndexBits = static_cast<uint32_t>(
        std::bit_width(std::max(1u, config.timing.rowsPerBank - 1)));
    return dram::AddressMap(amc);
}

/**
 * Route one generated access through the address map: compose the raw
 * physical address of (subchannel, bank, row) and decode it, so the
 * emitted coordinates carry the bank XOR hash exactly like demand
 * traffic on the modeled system. Decoding happens here, at trace
 * build time -- the replay loop consumes final coordinates.
 */
dram::DramCoord
routeCoord(const dram::AddressMap &map, uint32_t channel, uint32_t rank,
           uint32_t subchannel, uint32_t raw_bank, RowId row)
{
    const auto &amc = map.config();
    uint64_t a = row;
    a = (a << amc.channelBits) | channel;
    a = (a << amc.rankBits) | rank;
    a = (a << amc.bankBits) | raw_bank;
    a = (a << amc.subchannelBits) | subchannel;
    a <<= amc.rowBits;
    return map.decode(a);
}

/** Flat replay-slot index of decoded coordinates (System order). */
uint32_t
slotOfCoord(const dram::DramCoord &c, const TraceGenConfig &config)
{
    return ((c.channel * ranksOf(config)) + c.rank) *
               subchannelsOf(config) +
           c.subchannel;
}

/** Invocation counter behind traceGenInvocations(). */
std::atomic<uint64_t> gen_invocations{0};

} // namespace

uint64_t
traceGenInvocations()
{
    return gen_invocations.load(std::memory_order_relaxed);
}

uint64_t
configKey(const TraceGenConfig &config)
{
    const dram::TimingParams &t = config.timing;
    // v2: sub-channel-aware emission (events routed through the
    // address map and pre-decoded).
    uint64_t h = stableHash64("moatsim.tracegen.v2");
    for (const Time v :
         {t.tACT, t.tPRE, t.tRAS, t.tRC, t.tREFW, t.tREFI, t.tRFC, t.tRRD,
          t.tFAW, t.tRFM, t.tAlertNormal})
        h = hashCombine(h, static_cast<uint64_t>(v));
    for (const uint64_t v :
         {static_cast<uint64_t>(t.rowsPerBank),
          static_cast<uint64_t>(t.banksPerSubchannel),
          static_cast<uint64_t>(t.refreshGroups),
          static_cast<uint64_t>(t.blastRadius),
          static_cast<uint64_t>(config.numCores),
          static_cast<uint64_t>(config.banksSimulated),
          static_cast<uint64_t>(subchannelsOf(config)),
          static_cast<uint64_t>(config.systemBanks),
          static_cast<uint64_t>(config.coreMlp),
          static_cast<uint64_t>(config.intraEpisodeGap), config.seed})
        h = hashCombine(h, v);
    for (const double v :
         {config.baseIpc, config.cpuGhz, config.bankUtilizationCap,
          config.coreUtilizationCap, config.windowFraction})
        h = hashCombine(h, hashDouble(v));
    // Device-model extensions fold in only when they depart from the
    // flat single-channel, single-rank system, so every pre-device
    // configuration keeps its v2 key (golden results, trace-store
    // cache contract).
    if (channelsOf(config) != 1 || ranksOf(config) != 1) {
        h = hashCombine(h, channelsOf(config));
        h = hashCombine(h, ranksOf(config));
    }
    if (!config.device.empty())
        h = hashCombine(h, stableHash64(config.device));
    return h;
}

TraceGenConfig
withDevice(const TraceGenConfig &config, const dram::DeviceModel &device)
{
    TraceGenConfig out = config;
    out.timing = device.timing();
    // Protocol knobs (refresh granularity, blast radius) are not
    // device-grade properties; keep whatever the caller configured.
    out.timing.refreshGroups = config.timing.refreshGroups;
    out.timing.blastRadius = config.timing.blastRadius;
    out.channels = device.channels();
    out.ranks = device.ranks();
    out.systemBanks = device.totalBanks();
    // The default grade IS today's hand-assembled Table-3 system;
    // leaving its tag empty keeps the config key, every derived seed,
    // and the JSONL output bit-identical to the pre-device pipeline.
    out.device = device.isDefault() ? "" : device.describe();
    return out;
}

uint64_t
traceSeed(const WorkloadSpec &spec, const TraceGenConfig &config)
{
    return hashCombine(hashMix(config.seed), stableHash64(spec.name));
}

double
effectiveIpc(const WorkloadSpec &spec, const TraceGenConfig &config)
{
    double ipc = config.baseIpc;
    const double trc_s = toNs(config.timing.tRC) * 1e-9;
    // Activations per second per core, per unit of IPC.
    const double act_rate = spec.actPki * 1e-3 * config.cpuGhz * 1e9;
    if (act_rate <= 0 || trc_s <= 0)
        return ipc;
    const double bank_sat =
        config.bankUtilizationCap * config.systemBanks /
        (act_rate * config.numCores * trc_s);
    const double core_sat = config.coreUtilizationCap * config.coreMlp /
                            (act_rate * trc_s);
    return std::min({ipc, bank_sat, core_sat});
}

std::vector<CoreTrace>
generateTraces(const WorkloadSpec &spec, const TraceGenConfig &config)
{
    gen_invocations.fetch_add(1, std::memory_order_relaxed);

    const dram::TimingParams &t = config.timing;
    if (config.numCores == 0 || config.banksSimulated == 0)
        fatal("generateTraces: cores and banks must be non-zero");
    if (config.banksSimulated * slotsOf(config) > config.systemBanks)
        fatal("generateTraces: simulated banks exceed system banks");

    // Stable per-workload stream: equal (seed, name) pairs regenerate
    // identical traces on any platform, and the mitigated run of a cell
    // replays exactly the traces its cached baseline ran on.
    Rng rng(traceSeed(spec, config));

    const Time window =
        static_cast<Time>(static_cast<double>(t.tREFW) *
                          config.windowFraction);

    // Exclusive tier populations (Table 4 counts are cumulative),
    // scaled to the generated window and divided across the cores.
    const double scale = config.windowFraction /
                         static_cast<double>(config.numCores);
    const double e32 = (spec.act32 - spec.act64) * scale;
    const double e64 = (spec.act64 - spec.act128) * scale;
    const double e128 = spec.act128 * scale;

    // ACT budget per core per simulated bank: the ACT-PKI rate over the
    // window's instruction stream, but never less than the tier mass
    // itself (some Table-4 workloads have nearly all traffic in hot
    // rows).
    const double instr_per_core = effectiveIpc(spec, config) *
                                  config.cpuGhz * 1e9 * toMs(window) * 1e-3;
    const double pki_budget = spec.actPki * 1e-3 * instr_per_core /
                              static_cast<double>(config.systemBanks);

    const uint32_t rows_per_core = t.rowsPerBank / config.numCores;
    const uint32_t scs = subchannelsOf(config);
    const uint32_t ranks = ranksOf(config);
    const uint32_t slots = slotsOf(config);
    const dram::AddressMap map = addressMapOf(config);
    std::vector<CoreTrace> traces(config.numCores);

    for (uint32_t core = 0; core < config.numCores; ++core) {
        CoreTrace &trace = traces[core];
        trace.window = window;
        const RowId row_base = core * rows_per_core;

        // Traffic spans the whole simulated system: banksSimulated
        // banks on each replay slot (channels x ranks x
        // sub-channels). The flat index is split into a raw (channel,
        // rank, sub-channel, bank) tuple and every access is routed
        // through the address map, which XOR-hashes the final bank
        // with the row bits.
        const uint32_t flat_banks = config.banksSimulated * slots;
        for (uint32_t fb = 0; fb < flat_banks; ++fb) {
            const uint32_t slot = fb / config.banksSimulated;
            const uint32_t raw_bank = fb % config.banksSimulated;
            const uint32_t sc = slot % scs;
            const uint32_t rank = (slot / scs) % ranks;
            const uint32_t chan = slot / (scs * ranks);
            // Hot rows for this (core, bank): distinct rows from the
            // core's range with per-tier target counts.
            struct HotRow
            {
                RowId row;
                uint32_t count;
            };
            std::vector<HotRow> hot;
            std::unordered_set<RowId> used;
            auto add_tier = [&](double rows, uint32_t lo, uint32_t hi) {
                const uint32_t n = roundStochastic(rows, rng);
                for (uint32_t i = 0; i < n; ++i) {
                    RowId r;
                    do {
                        r = row_base + static_cast<RowId>(
                                           rng.below(rows_per_core));
                    } while (!used.insert(r).second);
                    hot.push_back(
                        {r, static_cast<uint32_t>(rng.inRange(lo, hi))});
                }
            };
            add_tier(e32, 32, 63);
            add_tier(e64, 64, 127);
            add_tier(e128, 128, 255);

            uint64_t hot_acts = 0;
            for (const auto &h : hot)
                hot_acts += h.count;

            // Background budget, computed up front (RNG-free, so the
            // hoist cannot perturb the stream) so the bank's events
            // land in at most one grow. Growth stays geometric --
            // reserving the exact need per bank would degrade the
            // whole loop to one reallocation-and-copy per bank.
            const double budget =
                std::max(pki_budget, static_cast<double>(hot_acts));
            const uint64_t n_bg = static_cast<uint64_t>(
                std::max(0.0, budget - static_cast<double>(hot_acts)));
            const size_t need = trace.events.size() + hot_acts + n_bg;
            if (need > trace.events.capacity())
                trace.events.reserve(
                    std::max(need, trace.events.capacity() * 2));

            // Hot-row episodes: contiguous pacing from a uniform start.
            for (const auto &h : hot) {
                Time gap = config.intraEpisodeGap;
                Time span = static_cast<Time>(h.count) * gap;
                if (span >= window) {
                    gap = window / (h.count + 1);
                    span = static_cast<Time>(h.count) * gap;
                }
                const Time start = static_cast<Time>(
                    rng.below(static_cast<uint64_t>(window - span)));
                const dram::DramCoord c =
                    routeCoord(map, chan, rank, sc, raw_bank, h.row);
                const uint32_t c_slot = slotOfCoord(c, config);
                for (uint32_t i = 0; i < h.count; ++i) {
                    trace.events.push_back(
                        {start + static_cast<Time>(i) * gap, c.bank,
                         c.row, c_slot});
                }
            }

            // Background fill up to the ACT budget.
            for (uint64_t i = 0; i < n_bg; ++i) {
                const RowId r = row_base + static_cast<RowId>(
                                               rng.below(rows_per_core));
                const Time at = static_cast<Time>(
                    rng.below(static_cast<uint64_t>(window)));
                const dram::DramCoord c =
                    routeCoord(map, chan, rank, sc, raw_bank, r);
                trace.events.push_back(
                    {at, c.bank, c.row, slotOfCoord(c, config)});
            }
        }

        std::sort(trace.events.begin(), trace.events.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      return a.at < b.at;
                  });
    }
    return traces;
}

TierCensus
censusOf(const std::vector<CoreTrace> &traces, const TraceGenConfig &config,
         const WorkloadSpec &spec)
{
    // Count ACTs per (subchannel, bank, row) across all cores.
    std::unordered_map<uint64_t, uint32_t> counts;
    uint64_t total_acts = 0;
    for (const auto &trace : traces) {
        for (const auto &e : trace.events) {
            ++counts[(static_cast<uint64_t>(e.subchannel) << 56) |
                     (static_cast<uint64_t>(e.bank) << 32) | e.row];
            ++total_acts;
        }
    }

    TierCensus census;
    // moatlint: allow(unordered-iter): commutative accumulation only;
    // each entry bumps independent census counters, so visit order
    // cannot reach the totals
    for (const auto &[key, c] : counts) {
        (void)key;
        if (c >= 32)
            census.act32 += 1;
        if (c >= 64)
            census.act64 += 1;
        if (c >= 128)
            census.act128 += 1;
    }
    // Rescale: counts were per simulated bank per generated window,
    // across every simulated replay slot.
    const double denom = static_cast<double>(config.banksSimulated) *
                         static_cast<double>(slotsOf(config)) *
                         config.windowFraction;
    census.act32 /= denom;
    census.act64 /= denom;
    census.act128 /= denom;

    const double instr_total = effectiveIpc(spec, config) * config.cpuGhz *
                               1e9 *
                               (traces.empty()
                                    ? 0.0
                                    : toMs(traces.front().window) * 1e-3) *
                               static_cast<double>(config.numCores);
    const double system_acts =
        static_cast<double>(total_acts) *
        static_cast<double>(config.systemBanks) /
        static_cast<double>(config.banksSimulated * slotsOf(config));
    if (instr_total > 0)
        census.actPki = system_acts / instr_total * 1000.0;
    return census;
}

} // namespace moatsim::workload
