#include "workload/spec.hh"

#include <array>

#include "common/logging.hh"

namespace moatsim::workload
{

namespace
{

const std::array<WorkloadSpec, 21> kTable4 = {{
    {"bwaves", 29.3, 1871, 199, 4, false},
    {"fotonik3d", 25.0, 2175, 113, 11, false},
    {"lbm", 20.9, 3145, 1325, 13, false},
    {"mcf", 19.8, 1772, 380, 113, false},
    {"omnetpp", 11.1, 1224, 142, 41, false},
    {"roms", 9.6, 2302, 995, 431, false},
    {"parest", 8.9, 2259, 1014, 406, false},
    {"xz", 8.8, 3409, 1255, 384, false},
    {"cactuBSSN", 3.6, 4187, 1180, 466, false},
    {"cam4", 3.0, 821, 89, 3, false},
    {"blender", 1.1, 1016, 358, 91, false},
    {"xalancbmk", 0.9, 585, 163, 36, false},
    {"wrf", 0.8, 567, 90, 0, false},
    {"x264", 0.6, 310, 59, 0, false},
    {"gcc", 0.6, 424, 107, 19, false},
    {"cc", 71.5, 1357, 215, 18, true},
    {"pr", 29.1, 1489, 349, 52, true},
    {"bfs", 22.8, 529, 64, 16, true},
    {"tc", 18.2, 81, 0, 0, true},
    {"bc", 9.0, 289, 43, 9, true},
    {"sssp", 7.0, 1817, 620, 127, true},
}};

} // namespace

std::span<const WorkloadSpec>
table4Workloads()
{
    return kTable4;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    if (const WorkloadSpec *w = tryFindWorkload(name))
        return *w;
    fatal("findWorkload: unknown workload '" + name + "'");
}

const WorkloadSpec *
tryFindWorkload(const std::string &name)
{
    for (const auto &w : kTable4) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

} // namespace moatsim::workload
