#include "workload/trace_store.hh"

#include <cstdlib>
#include <utility>

#include "common/fault.hh"
#include "common/hash.hh"

namespace moatsim::workload
{

TraceSet::TraceSet(std::vector<CoreTrace> cores)
{
    size_t total = 0;
    for (const auto &c : cores)
        total += c.events.size();
    events_.reserve(total);
    views_.reserve(cores.size());
    for (const auto &c : cores) {
        const size_t offset = events_.size();
        events_.insert(events_.end(), c.events.begin(), c.events.end());
        views_.push_back(
            {events_.data() + offset, c.events.size(), c.window});
    }
}

TraceStore::TraceStore() : TraceStore(envConfig())
{
}

TraceStore::TraceStore(const Config &config) : config_(config)
{
}

uint64_t
TraceStore::key(const WorkloadSpec &spec, const TraceGenConfig &config)
{
    // traceSeed covers (config.seed, workload); configKey covers every
    // other generator parameter (timing included). Together they are
    // the full content address of a generated trace.
    return hashCombine(traceSeed(spec, config), configKey(config));
}

TraceStore::Config
TraceStore::envConfig()
{
    Config cfg;
    // getenv is read at startup before any worker threads exist, and
    // nothing in the process mutates the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *s = std::getenv("MOATSIM_TRACE_STORE"))
        cfg.enabled = !(s[0] == '0' && s[1] == '\0');
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *s = std::getenv("MOATSIM_TRACE_STORE_BYTES")) {
        const long long v = std::atoll(s);
        if (v > 0)
            cfg.maxBytes = static_cast<size_t>(v);
    }
    return cfg;
}

std::shared_ptr<const TraceSet>
TraceStore::get(const WorkloadSpec &spec, const TraceGenConfig &config)
{
    if (!config_.enabled) {
        fault::failPoint("trace-store.generate");
        auto set =
            std::make_shared<const TraceSet>(generateTraces(spec, config));
        MutexLock lock(mu_);
        ++misses_;
        return set;
    }

    const uint64_t k = key(spec, config);
    std::shared_future<std::shared_ptr<const TraceSet>> future;
    std::promise<std::shared_ptr<const TraceSet>> promise;
    bool compute = false;
    {
        MutexLock lock(mu_);
        auto it = entries_.find(k);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            Entry e;
            e.future = future;
            e.lastUse = ++tick_;
            entries_.emplace(k, e);
            ++misses_;
            compute = true;
        } else {
            it->second.lastUse = ++tick_;
            future = it->second.future;
            ++hits_;
        }
    }

    if (compute) {
        std::shared_ptr<const TraceSet> set;
        try {
            fault::failPoint("trace-store.generate");
            set = std::make_shared<const TraceSet>(
                generateTraces(spec, config));
        } catch (...) {
            // A failed generation is never cached: drop the entry so
            // the next touch regenerates, and propagate the exception
            // to every waiter blocked on the shared future.
            {
                MutexLock lock(mu_);
                entries_.erase(k);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        promise.set_value(set);
        MutexLock lock(mu_);
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            // Account the resolved size, then enforce the bound (the
            // entry just produced is exempt: its holder has it anyway).
            it->second.bytes = set->bytes();
            bytes_ += set->bytes();
            evictLocked(k);
        }
        return set;
    }
    return future.get();
}

void
TraceStore::evictLocked(uint64_t keep)
{
    while (bytes_ > config_.maxBytes && entries_.size() > 1) {
        auto victim = entries_.end();
        // moatlint: allow(unordered-iter): min-by-lastUse scan; the
        // LRU tick picks the victim regardless of visit order, and
        // eviction is invisible to results (equal keys regenerate
        // bit-identical traces on a later miss)
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == keep || it->second.bytes == 0)
                continue; // unresolved entries have no cost yet
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == entries_.end())
            break;
        bytes_ -= victim->second.bytes;
        entries_.erase(victim);
        ++evictions_;
    }
}

TraceStore::Stats
TraceStore::stats() const
{
    MutexLock lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = entries_.size();
    s.bytes = bytes_;
    return s;
}

} // namespace moatsim::workload
