#include "abo/abo.hh"

#include <cassert>

namespace moatsim::abo
{

AboEngine::AboEngine(const dram::TimingParams &timing, Level level)
    : timing_(timing),
      level_(level),
      // Power-up: no RFM outstanding, so the first ALERT is ungated.
      acts_since_rfm_(static_cast<uint32_t>(levelValue(level)))
{
}

bool
AboEngine::canAssert(Time t) const
{
    if (in_flight_ && t < rfmBlockEnd())
        return false;
    return acts_since_rfm_ >= static_cast<uint32_t>(levelValue(level_));
}

void
AboEngine::assertAlert(Time t)
{
    assert(canAssert(t));
    in_flight_ = true;
    assert_time_ = t;
    ++alert_count_;
    total_stall_ += static_cast<Time>(rfmsPerAlert()) * timing_.tRFM;
}

bool
AboEngine::alertInFlight(Time t) const
{
    return in_flight_ && t < rfmBlockEnd();
}

bool
AboEngine::inNormalWindow(Time t) const
{
    return in_flight_ && t >= assert_time_ && t < rfmBlockStart();
}

bool
AboEngine::inRfmBlock(Time t) const
{
    return in_flight_ && t >= rfmBlockStart() && t < rfmBlockEnd();
}

Time
AboEngine::rfmBlockStart() const
{
    assert(in_flight_);
    return assert_time_ + timing_.tAlertNormal;
}

Time
AboEngine::rfmBlockEnd() const
{
    assert(in_flight_);
    return rfmBlockStart() + static_cast<Time>(rfmsPerAlert()) * timing_.tRFM;
}

void
AboEngine::onActCompleted(Time t)
{
    (void)t;
    ++acts_since_rfm_;
}

void
AboEngine::completeAlert()
{
    assert(in_flight_);
    in_flight_ = false;
    acts_since_rfm_ = 0;
}

Time
AboEngine::alertToAlert() const
{
    return timing_.alertToAlert(levelValue(level_));
}

} // namespace moatsim::abo
