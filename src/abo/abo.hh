/**
 * @file
 * ALERT-Back-Off (ABO) protocol engine.
 *
 * Models the JEDEC DDR5 ABO extension as described in Sections 2.6 and
 * 5.1 of the paper. When the DRAM asserts ALERT at time Ta the memory
 * controller may keep operating normally for 180 ns, then must stall
 * the whole sub-channel and issue L RFM commands of 350 ns each
 * (L = MR71 op[1:0] mitigation level, 1/2/4). After the RFMs, at least
 * L activations must be issued before ALERT may be asserted again.
 *
 * The engine is a passive timing calculator: the SubChannel drives it
 * with assertion requests and completed activations and queries it for
 * legality windows.
 */

#ifndef MOATSIM_ABO_ABO_HH
#define MOATSIM_ABO_ABO_HH

#include <cstdint>

#include "common/time.hh"
#include "dram/timing.hh"

namespace moatsim::abo
{

/** ABO mitigation level (MR71 op[1:0]); legal values 1, 2, 4. */
enum class Level : int
{
    L1 = 1,
    L2 = 2,
    L4 = 4,
};

/** Convert a Level to its integer multiplier. */
constexpr int levelValue(Level l) { return static_cast<int>(l); }

/** ABO state machine for one sub-channel. */
class AboEngine
{
  public:
    AboEngine(const dram::TimingParams &timing, Level level);

    /** Configured mitigation level. */
    Level level() const { return level_; }

    /** Number of RFMs per ALERT (== level). */
    int rfmsPerAlert() const { return levelValue(level_); }

    /**
     * Whether an ALERT may be asserted at time @p t: no ALERT in
     * flight and at least `level` activations completed since the last
     * RFM block (the inter-ALERT activation minimum).
     */
    bool canAssert(Time t) const;

    /**
     * Assert ALERT at time @p t.
     * @pre canAssert(t).
     */
    void assertAlert(Time t);

    /** Whether an ALERT is currently in flight at time @p t. */
    bool alertInFlight(Time t) const;

    /** Whether @p t falls inside the post-assert 180 ns normal window. */
    bool inNormalWindow(Time t) const;

    /** Whether @p t falls inside the RFM stall block. */
    bool inRfmBlock(Time t) const;

    /** Start of the RFM stall block of the in-flight ALERT. */
    Time rfmBlockStart() const;

    /** End of the RFM stall block of the in-flight ALERT. */
    Time rfmBlockEnd() const;

    /** Record a completed activation (for the inter-ALERT minimum). */
    void onActCompleted(Time t);

    /**
     * Notify that the RFM block finished (SubChannel calls this after
     * servicing the RFMs). Resets the inter-ALERT activation count.
     */
    void completeAlert();

    /** Total ALERTs asserted. */
    uint64_t alertCount() const { return alert_count_; }

    /** Total time the sub-channel was stalled by RFM blocks. */
    Time totalStallTime() const { return total_stall_; }

    /** Minimum ALERT-to-ALERT spacing for this level (Appendix A tA2A). */
    Time alertToAlert() const;

  private:
    const dram::TimingParams &timing_;
    Level level_;
    bool in_flight_ = false;
    Time assert_time_ = 0;
    /** Activations completed since the last RFM block ended. */
    uint32_t acts_since_rfm_;
    uint64_t alert_count_ = 0;
    Time total_stall_ = 0;
};

} // namespace moatsim::abo

#endif // MOATSIM_ABO_ABO_HH
