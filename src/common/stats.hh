/**
 * @file
 * Small statistics helpers used by experiments and benches.
 */

#ifndef MOATSIM_COMMON_STATS_HH
#define MOATSIM_COMMON_STATS_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace moatsim
{

/**
 * Running summary of a stream of samples (count, mean, min, max,
 * variance via Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added so far. */
    size_t count() const { return count_; }
    /** Mean of the samples (0 if empty). */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance of the samples (0 if fewer than 2). */
    double variance() const;
    /** Standard deviation. */
    double stddev() const;
    /** Smallest sample (0 if empty). */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample (0 if empty). */
    double max() const { return count_ ? max_ : 0.0; }
    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Arithmetic mean of a span (0 if empty). */
double mean(std::span<const double> xs);

/** Geometric mean of a span of positive values (0 if empty). */
double geomean(std::span<const double> xs);

/** Exact harmonic number H_n = sum_{i=1..n} 1/i. */
double harmonic(uint64_t n);

/** Format a double with the given number of decimals. */
std::string formatFixed(double x, int decimals);

/** Format a value as a percentage string, e.g. 0.0028 -> "0.28%". */
std::string formatPercent(double fraction, int decimals = 2);

} // namespace moatsim

#endif // MOATSIM_COMMON_STATS_HH
