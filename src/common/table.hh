/**
 * @file
 * Plain-text table printer used by all bench binaries.
 *
 * Every bench prints the paper's table/figure rows side by side with
 * the values measured by moatsim; TablePrinter keeps that output
 * aligned and uniform.
 */

#ifndef MOATSIM_COMMON_TABLE_HH
#define MOATSIM_COMMON_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace moatsim
{

/** Column-aligned text table with a header row and separators. */
class TablePrinter
{
  public:
    /** Construct with column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to the stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    /** Empty row means "separator". */
    std::vector<std::vector<std::string>> rows_;
};

/** Print a boxed section title (used to label each experiment). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace moatsim

#endif // MOATSIM_COMMON_TABLE_HH
