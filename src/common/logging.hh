/**
 * @file
 * Minimal logging/error helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration) and exits cleanly;
 * panic() is for internal invariant violations and aborts. warn() and
 * inform() are status messages and never stop the run.
 */

#ifndef MOATSIM_COMMON_LOGGING_HH
#define MOATSIM_COMMON_LOGGING_HH

#include <string>

namespace moatsim
{

/** Terminate due to a user/configuration error (exit(1)). */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate due to an internal bug (abort()). */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (used by tests). */
void setQuiet(bool quiet);

} // namespace moatsim

#endif // MOATSIM_COMMON_LOGGING_HH
