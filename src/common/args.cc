#include "common/args.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "common/stats.hh"

namespace moatsim
{

Args::Args(int argc, char **argv, int first)
{
    for (int i = first; i < argc;) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            fatal(std::string("expected a --flag, got '") + argv[i] + "'");
        const std::string name = argv[i] + 2;
        if (name.empty())
            fatal("empty flag name '--'");
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            values_.emplace_back(name, argv[i + 1]);
            i += 2;
        } else {
            // Valueless boolean flag.
            values_.emplace_back(name, "");
            i += 1;
        }
    }
}

bool
Args::has(const std::string &name) const
{
    for (const auto &[k, v] : values_) {
        if (k == name)
            return true;
    }
    return false;
}

std::string
Args::get(const std::string &name, const std::string &def) const
{
    for (const auto &[k, v] : values_) {
        if (k == name) {
            if (v.empty())
                fatal("flag --" + name + " requires a value");
            return v;
        }
    }
    return def;
}

uint64_t
Args::getInt(const std::string &name, uint64_t def) const
{
    const std::string v = get(name, std::to_string(def));
    // strtoull would wrap a leading minus and saturate silently on
    // overflow; insist on digits and check the range.
    errno = 0;
    char *end = nullptr;
    const uint64_t out = std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || !std::isdigit(static_cast<unsigned char>(v[0])) ||
        end == v.c_str() || *end != '\0' || errno == ERANGE)
        fatal("flag --" + name + " expects an unsigned integer, got '" + v +
              "'");
    return out;
}

uint32_t
Args::getUint32(const std::string &name, uint32_t def) const
{
    const uint64_t out = getInt(name, def);
    if (out > std::numeric_limits<uint32_t>::max())
        fatal("flag --" + name + " expects a value at most " +
              std::to_string(std::numeric_limits<uint32_t>::max()) +
              ", got '" + get(name, std::to_string(def)) + "'");
    return static_cast<uint32_t>(out);
}

uint32_t
Args::getPositive(const std::string &name, uint32_t def) const
{
    const uint32_t out = getUint32(name, def);
    if (out == 0)
        fatal("flag --" + name + " must be at least 1");
    return out;
}

double
Args::getDouble(const std::string &name, double def) const
{
    const std::string v = get(name, formatFixed(def, 6));
    char *end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("flag --" + name + " expects a number, got '" + v + "'");
    return out;
}

bool
Args::getBool(const std::string &name, bool def) const
{
    for (const auto &[k, v] : values_) {
        if (k == name) {
            if (v.empty() || v == "true" || v == "1")
                return true;
            if (v == "false" || v == "0")
                return false;
            fatal("flag --" + name + " expects true/false, got '" + v +
                  "'");
        }
    }
    return def;
}

} // namespace moatsim
