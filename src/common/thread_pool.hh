/**
 * @file
 * Work-stealing thread pool for independent simulation jobs.
 *
 * Sweep matrices fan out as many independent cells; the pool keeps one
 * job deque per worker. A worker pops from the back of its own deque
 * (LIFO, cache-warm) and steals from the front of a sibling's deque
 * when its own runs dry, so a handful of long cells submitted early
 * cannot serialize the tail of a sweep. Submission round-robins across
 * the deques; submit() is safe from any thread, including from inside
 * a running job.
 *
 * Jobs must not throw: simulation errors go through fatal() or are
 * reported in the job's own result slot.
 */

#ifndef MOATSIM_COMMON_THREAD_POOL_HH
#define MOATSIM_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hh"

namespace moatsim
{

/** Fixed-size work-stealing pool; see the file header. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins the workers; pending jobs are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. */
    void submit(std::function<void()> job) EXCLUDES(mu_);

    /**
     * Block until every job submitted so far (including jobs submitted
     * by running jobs) has finished. The pool is reusable afterwards.
     */
    void wait() EXCLUDES(mu_);

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    /** One worker's deque; owner pops the back, thieves take the front. */
    struct Queue
    {
        Mutex mu;
        std::deque<std::function<void()>> jobs GUARDED_BY(mu);
    };

    /** Claim-and-take one job; @p self biases toward the own deque.
     *  A claim (queued_ decrement) must precede the call. */
    std::function<void()> take(unsigned self) EXCLUDES(mu_);

    void workerLoop(unsigned self) EXCLUDES(mu_);

    /** Immutable after construction (workers read them unlocked). */
    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    Mutex mu_;
    /** Signals workers that queued_ grew or stop_ was set. */
    CondVar work_cv_;
    /** Signals wait() that pending_ hit zero. */
    CondVar idle_cv_;
    /** Jobs submitted but not yet claimed by a worker. */
    std::size_t queued_ GUARDED_BY(mu_) = 0;
    /** Jobs submitted but not yet finished. */
    std::size_t pending_ GUARDED_BY(mu_) = 0;
    std::size_t next_queue_ GUARDED_BY(mu_) = 0;
    bool stop_ GUARDED_BY(mu_) = false;
};

} // namespace moatsim

#endif // MOATSIM_COMMON_THREAD_POOL_HH
