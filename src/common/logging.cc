#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace moatsim
{

namespace
{
bool quiet_mode = false;
} // namespace

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    if (!quiet_mode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quiet_mode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quiet_mode = quiet;
}

} // namespace moatsim
