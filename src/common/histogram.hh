/**
 * @file
 * Fixed-bucket histogram for activation-count distributions.
 */

#ifndef MOATSIM_COMMON_HISTOGRAM_HH
#define MOATSIM_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace moatsim
{

/**
 * Histogram over non-negative integer values with unit-width buckets up
 * to a cap; values at or above the cap land in the overflow bucket.
 */
class Histogram
{
  public:
    /** Construct with the number of unit buckets before overflow. */
    explicit Histogram(uint32_t cap);

    /** Record one observation of value v. */
    void add(uint64_t v);

    /** Count of observations equal to v (v < cap). */
    uint64_t bucket(uint32_t v) const;

    /** Count of observations >= cap. */
    uint64_t overflow() const { return overflow_; }

    /** Total observations. */
    uint64_t total() const { return total_; }

    /** Number of observations with value >= threshold. */
    uint64_t countAtLeast(uint64_t threshold) const;

    /** Largest observed value. */
    uint64_t maxValue() const { return max_value_; }

    /** Reset all buckets. */
    void clear();

  private:
    std::vector<uint64_t> buckets_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    uint64_t max_value_ = 0;
    /** Sum of raw values of overflow observations (for countAtLeast). */
    std::vector<uint64_t> overflow_values_;
};

} // namespace moatsim

#endif // MOATSIM_COMMON_HISTOGRAM_HH
