/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * moatsim uses an explicit xoshiro256** generator rather than
 * std::mt19937 so that experiments are reproducible bit-for-bit across
 * standard-library implementations. All randomized attacks and workload
 * generators take an Rng by reference; nothing in the library touches
 * global random state.
 */

#ifndef MOATSIM_COMMON_RNG_HH
#define MOATSIM_COMMON_RNG_HH

#include <cstdint>

namespace moatsim
{

/**
 * xoshiro256** 1.0 pseudo-random generator (public-domain algorithm by
 * Blackman and Vigna), seeded via splitmix64.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    uint64_t inRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

  private:
    uint64_t state_[4];
};

} // namespace moatsim

#endif // MOATSIM_COMMON_RNG_HH
