/**
 * @file
 * Fundamental integer types and identifiers shared across moatsim.
 */

#ifndef MOATSIM_COMMON_TYPES_HH
#define MOATSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace moatsim
{

/** Index of a DRAM row within a bank. */
using RowId = uint32_t;

/** Index of a bank within a sub-channel. */
using BankId = uint16_t;

/** Per-row activation counter value (PRAC counter). */
using ActCount = uint32_t;

/** Sentinel for "no row". */
inline constexpr RowId kInvalidRow = std::numeric_limits<RowId>::max();

/** Sentinel for "no bank". */
inline constexpr BankId kInvalidBank = std::numeric_limits<BankId>::max();

} // namespace moatsim

#endif // MOATSIM_COMMON_TYPES_HH
