#include "common/fault.hh"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/mutex.hh"

namespace moatsim::fault
{

namespace
{

/**
 * The registered sites, one per I/O boundary in the serving stack.
 * Plans are validated against this list at arm time; a new I/O path
 * registers its site here (CONTRIBUTING.md makes this a review rule).
 */
const std::vector<std::string> kKnownSites = {
    "result-store.append", // shard append after a compute
    "result-store.read",   // per-record shard parse at load
    "trace-store.generate", // trace generation inside the store
    "serve.accept",        // the daemon's accept() call
    "serve.send",          // a server->client protocol line
    "serve.recv",          // a server-side request read
    "sweep.compute",       // one perf / co-attack cell computation
};

/** Probability denominator: rates are quantized to 1/2^20. */
constexpr uint64_t kScale = 1ULL << 20;

/** One armed spec plus its decision counter. */
struct ArmedSpec
{
    SiteSpec spec;
    /** Site name (and seed) diffused once at arm time. */
    uint64_t seed_mix = 0;
    /** rate quantized to [0, kScale]. */
    uint64_t scaled_rate = 0;
    uint64_t evaluations = 0;
    uint64_t fired = 0;

    bool matches(const char *site) const
    {
        const std::string &pattern = spec.site;
        if (!pattern.empty() && pattern.back() == '*')
            return std::string_view(site).starts_with(
                std::string_view(pattern).substr(0, pattern.size() - 1));
        return pattern == site;
    }
};

/** The process-wide armed plan. armed_flag is the hot-path gate;
 *  everything else changes only under mu. */
struct State
{
    std::atomic<bool> armed_flag{false};
    Mutex mu;
    std::vector<ArmedSpec> specs GUARDED_BY(mu);
};

State &
state()
{
    static State s;
    return s;
}

/** Whether @p site names a known site or a prefix wildcard that
 *  covers at least one. */
bool
validSite(const std::string &site)
{
    if (!site.empty() && site.back() == '*') {
        const std::string_view prefix =
            std::string_view(site).substr(0, site.size() - 1);
        for (const auto &known : kKnownSites) {
            if (std::string_view(known).starts_with(prefix))
                return true;
        }
        return false;
    }
    for (const auto &known : kKnownSites) {
        if (known == site)
            return true;
    }
    return false;
}

/** Parse one site@rate[:seed] token into @p spec. */
bool
tryParseSpec(const std::string &token, SiteSpec *spec, std::string *err)
{
    const size_t at = token.find('@');
    if (at == std::string::npos || at == 0) {
        *err = "fault spec '" + token + "' is not site@rate[:seed]";
        return false;
    }
    spec->site = token.substr(0, at);
    if (!validSite(spec->site)) {
        *err = "unknown fault site '" + spec->site + "'";
        return false;
    }
    std::string rate_text = token.substr(at + 1);
    spec->seed = 1;
    if (const size_t colon = rate_text.find(':');
        colon != std::string::npos) {
        const std::string seed_text = rate_text.substr(colon + 1);
        rate_text.resize(colon);
        char *end = nullptr;
        spec->seed = std::strtoull(seed_text.c_str(), &end, 10);
        if (seed_text.empty() || end == seed_text.c_str() ||
            *end != '\0') {
            *err = "fault spec '" + token + "' has a malformed seed '" +
                   seed_text + "'";
            return false;
        }
    }
    char *end = nullptr;
    spec->rate = std::strtod(rate_text.c_str(), &end);
    if (rate_text.empty() || end == rate_text.c_str() || *end != '\0' ||
        spec->rate < 0.0 || spec->rate > 1.0) {
        *err = "fault spec '" + token + "' needs a rate in [0, 1], got '" +
               rate_text + "'";
        return false;
    }
    return true;
}

} // namespace

InjectedFault::InjectedFault(const std::string &site)
    : std::runtime_error("injected fault at site " + site), site_(site)
{
}

bool
tryParsePlan(const std::string &text, Plan *plan, std::string *err)
{
    plan->specs.clear();
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(start, comma - start);
        start = comma + 1;
        if (token.empty()) {
            *err = "fault plan has an empty spec";
            return false;
        }
        SiteSpec spec;
        if (!tryParseSpec(token, &spec, err))
            return false;
        plan->specs.push_back(spec);
        if (comma == text.size())
            break;
    }
    if (plan->specs.empty()) {
        *err = "fault plan is empty";
        return false;
    }
    return true;
}

void
arm(const Plan &plan)
{
    State &s = state();
    MutexLock lock(s.mu);
    s.specs.clear();
    for (const auto &spec : plan.specs) {
        ArmedSpec armed_spec;
        armed_spec.spec = spec;
        armed_spec.seed_mix =
            hashCombine(hashMix(spec.seed), stableHash64(spec.site));
        // llround-free quantization keeps this constexpr-friendly and
        // exact at the endpoints (0 never fires, 1 always fires).
        armed_spec.scaled_rate =
            static_cast<uint64_t>(spec.rate * static_cast<double>(kScale));
        if (spec.rate >= 1.0)
            armed_spec.scaled_rate = kScale;
        s.specs.push_back(armed_spec);
    }
    s.armed_flag.store(!s.specs.empty(), std::memory_order_relaxed);
}

void
arm(const std::string &text)
{
    Plan plan;
    std::string err;
    if (!tryParsePlan(text, &plan, &err))
        fatal("faults: " + err +
              " (see README.md \"Failure model\" for the site catalog)");
    arm(plan);
}

void
armFromEnv()
{
    // getenv is read at startup before any worker threads exist, and
    // nothing in the process mutates the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *s = std::getenv("MOATSIM_FAULTS")) {
        if (*s != '\0')
            arm(std::string(s));
    }
}

void
disarm()
{
    State &s = state();
    MutexLock lock(s.mu);
    s.specs.clear();
    s.armed_flag.store(false, std::memory_order_relaxed);
}

bool
armed()
{
    return state().armed_flag.load(std::memory_order_relaxed);
}

bool
shouldFail(const char *site)
{
    if (!armed())
        return false;
    State &s = state();
    MutexLock lock(s.mu);
    bool fire = false;
    for (auto &spec : s.specs) {
        if (!spec.matches(site))
            continue;
        // The n-th evaluation of a spec fires as a pure function of
        // (site, seed, n) -- reproducible, clock-free, RNG-free.
        const uint64_t draw =
            hashCombine(spec.seed_mix, spec.evaluations) % kScale;
        ++spec.evaluations;
        if (draw < spec.scaled_rate) {
            ++spec.fired;
            fire = true;
        }
    }
    return fire;
}

void
failPoint(const char *site)
{
    if (shouldFail(site))
        throw InjectedFault(site);
}

std::vector<SiteStats>
stats()
{
    State &s = state();
    MutexLock lock(s.mu);
    std::vector<SiteStats> out;
    out.reserve(s.specs.size());
    for (const auto &spec : s.specs) {
        SiteStats st;
        st.site = spec.spec.site;
        st.evaluations = spec.evaluations;
        st.fired = spec.fired;
        out.push_back(st);
    }
    return out;
}

const std::vector<std::string> &
knownSites()
{
    return kKnownSites;
}

} // namespace moatsim::fault
