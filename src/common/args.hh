/**
 * @file
 * Tiny command-line flag parser shared by the moatsim CLI tools.
 *
 * Flags come after the subcommand as either `--name value` pairs or
 * valueless booleans (`--name` followed by another flag or the end of
 * the line). Typed getters report the offending flag by name when its
 * value is missing or malformed, and the count-valued getters check
 * the 32-bit range instead of silently truncating: before them,
 * `--subchannels 4294967297` wrapped to 1 through static_cast and a
 * negative count sailed past `== 0` guards.
 */

#ifndef MOATSIM_COMMON_ARGS_HH
#define MOATSIM_COMMON_ARGS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace moatsim
{

/** Parsed `--flag [value]` list of one CLI invocation. */
class Args
{
  public:
    /** Parse argv[first..argc); fatal()s on a malformed flag. */
    Args(int argc, char **argv, int first);

    /** Whether the flag was given (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of the flag, or @p def when absent. */
    std::string get(const std::string &name, const std::string &def) const;

    /** Unsigned integer value; rejects signs, junk, and overflow. */
    uint64_t getInt(const std::string &name, uint64_t def) const;

    /**
     * Count-valued flag that must fit in 32 bits (--trials, --pool,
     * --jobs, ...). fatal()s on anything getInt rejects and on values
     * above UINT32_MAX, which an unchecked static_cast would wrap.
     */
    uint32_t getUint32(const std::string &name, uint32_t def) const;

    /** getUint32 that additionally rejects 0 (--subchannels, ...). */
    uint32_t getPositive(const std::string &name, uint32_t def) const;

    /** Floating-point value. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean flag: bare, true/1, or false/0. */
    bool getBool(const std::string &name, bool def) const;

  private:
    std::vector<std::pair<std::string, std::string>> values_;
};

} // namespace moatsim

#endif // MOATSIM_COMMON_ARGS_HH
