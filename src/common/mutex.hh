/**
 * @file
 * Annotated mutex, scoped lock, and condition variable.
 *
 * Thin wrappers over std::mutex / std::condition_variable that carry
 * the Clang Thread Safety Analysis attributes
 * (common/thread_annotations.hh). libstdc++'s std::mutex is not an
 * annotated capability, so locking it through std::lock_guard is
 * invisible to the analysis; locking a moatsim::Mutex through a
 * MutexLock is not. All mutex-protected state in the concurrency core
 * (ThreadPool, TraceStore, BaselineCache, CoAttackEngine) is declared
 * GUARDED_BY one of these, which is what lets the static-analysis CI
 * leg prove the lock discipline instead of sampling it under TSan.
 *
 * CondVar deliberately has no predicate-taking wait: the predicate
 * lambda would be analyzed as a separate unannotated function and
 * spuriously warn on every guarded member it reads. Callers write the
 * standard `while (!cond) cv.wait(lock);` loop in the function that
 * holds the capability, which the analysis checks exactly.
 */

#ifndef MOATSIM_COMMON_MUTEX_HH
#define MOATSIM_COMMON_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace moatsim
{

/** std::mutex as an annotated capability. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool tryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/** RAII lock of a Mutex (std::lock_guard, visibly to the analysis). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    Mutex &mu_;
};

/** Condition variable usable with a held MutexLock. */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /**
     * Atomically release @p lock's mutex, sleep, reacquire. As far as
     * the analysis is concerned the capability is held throughout,
     * which matches what the caller may assume before and after.
     */
    void wait(MutexLock &lock)
    {
        std::unique_lock<std::mutex> native(lock.mu_.mu_,
                                            std::adopt_lock);
        cv_.wait(native);
        // The mutex stays locked; ownership returns to the MutexLock.
        native.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace moatsim

#endif // MOATSIM_COMMON_MUTEX_HH
