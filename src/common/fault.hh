/**
 * @file
 * Deterministic fault injection for the serving stack.
 *
 * Robustness code is only trustworthy when its failure paths run, so
 * every I/O boundary in moatsim carries a *named fault site* -- a
 * single call that, when a fault plan is armed, deterministically
 * fails some fraction of the operations passing through it. A plan is
 * the grammar shared by the MOATSIM_FAULTS environment variable and
 * the CLI --faults flag:
 *
 *   site@rate[:seed][,site@rate[:seed]...]
 *
 * e.g. "serve.send@0.1:7,sweep.compute@0.25" -- fail ~10% of server
 * socket writes (seed 7) and ~25% of cell computations (default seed).
 * A trailing "*" in a site name matches every site with that prefix
 * ("serve.*@0.5"). Rates are probabilities in [0, 1]; unknown sites
 * are rejected when the plan is parsed, so a typo cannot silently arm
 * nothing.
 *
 * Determinism: firing decisions come from a per-spec counter hashed
 * with the spec's seed (common/hash.hh) -- never from wall clock or a
 * shared RNG -- so the n-th evaluation of a site fires or not as a
 * pure function of (site, seed, n). Two runs that evaluate a site in
 * the same order inject the same faults; this is what makes the chaos
 * smoke in verify.sh reproducible and lets tests assert exact fired
 * sequences. The counters are process-global (guarded by an internal
 * mutex, so evaluation is thread-safe and TSan-clean), which means a
 * multi-threaded run's *assignment* of faults to operations follows
 * the evaluation interleaving -- convergence tests therefore assert
 * on outcomes (byte-identical results), not on which operation failed.
 *
 * Disarmed cost: armed() is one relaxed atomic load and every
 * shouldFail()/failPoint() checks it first, so an unarmed process
 * pays nothing measurable on its hot paths.
 *
 * Registering a new site (required for new I/O paths; see
 * CONTRIBUTING.md): add the name to kKnownSites in fault.cc, call
 * shouldFail()/failPoint() at the boundary, and extend the catalog
 * table in README.md "Failure model".
 */

#ifndef MOATSIM_COMMON_FAULT_HH
#define MOATSIM_COMMON_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace moatsim::fault
{

/** The exception failPoint() throws when a site fires. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &site);

    /** The site that fired. */
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** One parsed site@rate[:seed] spec. */
struct SiteSpec
{
    /** Exact site name, or a "prefix.*" wildcard. */
    std::string site;
    /** Firing probability in [0, 1]. */
    double rate = 0.0;
    /** Decision-sequence seed (default 1). */
    uint64_t seed = 1;
};

/** A full fault plan (every spec evaluates independently). */
struct Plan
{
    std::vector<SiteSpec> specs;
};

/** Evaluation counters of one armed spec. */
struct SiteStats
{
    std::string site;
    uint64_t evaluations = 0;
    uint64_t fired = 0;
};

/** Parse @p text into @p plan; false with @p err set on malformed
 *  grammar, an unknown site, or a rate outside [0, 1]. */
bool tryParsePlan(const std::string &text, Plan *plan, std::string *err);

/** Arm @p plan, replacing any armed plan and resetting counters. */
void arm(const Plan &plan);

/** Arm the plan @p text denotes; fatal() when it does not parse. */
void arm(const std::string &text);

/** Arm from MOATSIM_FAULTS when set (CLI startup hook); fatal() on a
 *  malformed plan -- a typo must not silently run faultless. */
void armFromEnv();

/** Drop the armed plan; every site goes quiet. Idempotent. */
void disarm();

/** Whether any plan is armed (one relaxed atomic load). */
bool armed();

/** Evaluate @p site: true when an armed spec covering it fires this
 *  evaluation. Counts one evaluation per covering spec. Disarmed or
 *  uncovered sites never fire and count nothing. */
bool shouldFail(const char *site);

/** As shouldFail(), but throws InjectedFault when the site fires. */
void failPoint(const char *site);

/** Counters of every armed spec, in plan order. */
std::vector<SiteStats> stats();

/** The fixed catalog of registered site names. */
const std::vector<std::string> &knownSites();

} // namespace moatsim::fault

#endif // MOATSIM_COMMON_FAULT_HH
