#include "common/table.hh"

#include <algorithm>
#include <cassert>

namespace moatsim
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.emplace_back();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_sep = [&] {
        os << '+';
        for (size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    print_sep();
    print_cells(headers_);
    print_sep();
    for (const auto &row : rows_) {
        if (row.empty())
            print_sep();
        else
            print_cells(row);
    }
    print_sep();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    const std::string bar(title.size() + 4, '=');
    os << bar << "\n= " << title << " =\n" << bar << "\n";
}

} // namespace moatsim
