#include "common/stats.hh"

#include <cmath>
#include <cstdio>

namespace moatsim
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
harmonic(uint64_t n)
{
    // Exact summation below a threshold; asymptotic expansion above it.
    if (n == 0)
        return 0.0;
    if (n <= 1'000'000) {
        double h = 0.0;
        for (uint64_t i = 1; i <= n; ++i)
            h += 1.0 / static_cast<double>(i);
        return h;
    }
    const double dn = static_cast<double>(n);
    constexpr double euler_gamma = 0.57721566490153286;
    return std::log(dn) + euler_gamma + 1.0 / (2 * dn) - 1.0 / (12 * dn * dn);
}

std::string
formatFixed(double x, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, x);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatFixed(fraction * 100.0, decimals) + "%";
}

} // namespace moatsim
