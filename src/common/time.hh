/**
 * @file
 * Simulation time base.
 *
 * moatsim keeps time as a signed 64-bit count of picoseconds. All DDR5
 * parameters of interest (52 ns tRC, 3900 ns tREFI, 32 ms tREFW) are
 * exact in picoseconds, and a 64-bit count overflows only after ~106
 * days of simulated time, far beyond any experiment in the paper.
 */

#ifndef MOATSIM_COMMON_TIME_HH
#define MOATSIM_COMMON_TIME_HH

#include <cstdint>

namespace moatsim
{

/** Simulation time in picoseconds. */
using Time = int64_t;

/** One picosecond. */
inline constexpr Time kPicosecond = 1;
/** One nanosecond in picoseconds. */
inline constexpr Time kNanosecond = 1000;
/** One microsecond in picoseconds. */
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
/** One millisecond in picoseconds. */
inline constexpr Time kMillisecond = 1000 * kMicrosecond;

/** Construct a Time from a nanosecond count. */
constexpr Time fromNs(double ns) { return static_cast<Time>(ns * kNanosecond); }

/** Convert a Time to (double) nanoseconds. */
constexpr double toNs(Time t) { return static_cast<double>(t) / kNanosecond; }

/** Convert a Time to (double) microseconds. */
constexpr double toUs(Time t) { return static_cast<double>(t) / kMicrosecond; }

/** Convert a Time to (double) milliseconds. */
constexpr double toMs(Time t) { return static_cast<double>(t) / kMillisecond; }

} // namespace moatsim

#endif // MOATSIM_COMMON_TIME_HH
