#include "common/thread_pool.hh"

namespace moatsim
{

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads > 0 ? threads : hardwareThreads();
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(mu_);
        target = next_queue_++ % queues_.size();
        ++queued_;
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mu);
        queues_[target]->jobs.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

std::function<void()>
ThreadPool::take(unsigned self)
{
    // A claim (queued_ decrement) is only made when a job exists, so
    // scanning until a pop succeeds always terminates: jobs in deques
    // always >= outstanding claims.
    const std::size_t n = queues_.size();
    for (;;) {
        {
            // Own deque: LIFO for locality.
            Queue &own = *queues_[self];
            std::lock_guard<std::mutex> lock(own.mu);
            if (!own.jobs.empty()) {
                auto job = std::move(own.jobs.back());
                own.jobs.pop_back();
                return job;
            }
        }
        for (std::size_t k = 1; k < n; ++k) {
            Queue &victim = *queues_[(self + k) % n];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.jobs.empty()) {
                // Steal the oldest job (FIFO end).
                auto job = std::move(victim.jobs.front());
                victim.jobs.pop_front();
                return job;
            }
        }
    }
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
            if (queued_ == 0)
                return; // stop_ set and nothing left to run
            --queued_;
        }
        auto job = take(self);
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --pending_;
            if (pending_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

} // namespace moatsim
