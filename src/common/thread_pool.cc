#include "common/thread_pool.hh"

namespace moatsim
{

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads > 0 ? threads : hardwareThreads();
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    work_cv_.notifyAll();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    std::size_t target;
    {
        MutexLock lock(mu_);
        target = next_queue_++ % queues_.size();
        ++queued_;
        ++pending_;
    }
    {
        Queue &q = *queues_[target];
        MutexLock lock(q.mu);
        q.jobs.push_back(std::move(job));
    }
    work_cv_.notifyOne();
}

std::function<void()>
ThreadPool::take(unsigned self)
{
    // A claim (queued_ decrement) is only made when a job exists, so
    // scanning until a pop succeeds always terminates: jobs in deques
    // always >= outstanding claims.
    const std::size_t n = queues_.size();
    for (;;) {
        {
            // Own deque: LIFO for locality.
            Queue &own = *queues_[self];
            MutexLock lock(own.mu);
            if (!own.jobs.empty()) {
                auto job = std::move(own.jobs.back());
                own.jobs.pop_back();
                return job;
            }
        }
        for (std::size_t k = 1; k < n; ++k) {
            Queue &victim = *queues_[(self + k) % n];
            MutexLock lock(victim.mu);
            if (!victim.jobs.empty()) {
                // Steal the oldest job (FIFO end).
                auto job = std::move(victim.jobs.front());
                victim.jobs.pop_front();
                return job;
            }
        }
    }
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        {
            MutexLock lock(mu_);
            while (!stop_ && queued_ == 0)
                work_cv_.wait(lock);
            if (queued_ == 0)
                return; // stop_ set and nothing left to run
            --queued_;
        }
        auto job = take(self);
        job();
        {
            MutexLock lock(mu_);
            --pending_;
            if (pending_ == 0)
                idle_cv_.notifyAll();
        }
    }
}

void
ThreadPool::wait()
{
    MutexLock lock(mu_);
    while (pending_ != 0)
        idle_cv_.wait(lock);
}

} // namespace moatsim
