#include "common/rng.hh"

#include <cassert>

namespace moatsim
{

namespace
{

/** splitmix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::inRange(uint64_t lo, uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace moatsim
