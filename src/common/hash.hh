/**
 * @file
 * Stable 64-bit hashing for reproducible seeding and cache keys.
 *
 * The sweep engine derives per-cell RNG seeds and baseline-cache keys
 * from workload names, mitigator specs, and configuration values.
 * std::hash is implementation-defined, so two builds (or two stdlib
 * versions) could disagree on every derived seed; these helpers are
 * fixed algorithms (FNV-1a over bytes, the splitmix64 finalizer) whose
 * outputs are part of the golden-result contract.
 */

#ifndef MOATSIM_COMMON_HASH_HH
#define MOATSIM_COMMON_HASH_HH

#include <bit>
#include <cstdint>
#include <string_view>

namespace moatsim
{

/** FNV-1a over the bytes of @p s; stable across platforms. */
constexpr uint64_t
stableHash64(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** splitmix64 finalizer: diffuses the bits of a raw value. */
constexpr uint64_t
hashMix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Order-sensitive combination of a running hash with one value. */
constexpr uint64_t
hashCombine(uint64_t seed, uint64_t value)
{
    return hashMix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                           (seed >> 2)));
}

/** Hash a double by its bit pattern (exact, not value-rounded). */
inline uint64_t
hashDouble(double d)
{
    return hashMix(std::bit_cast<uint64_t>(d));
}

/**
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over the bytes
 * of @p s. Unlike the FNV hashes above, this is a burst-error
 * detection code: the result-store shard records frame themselves
 * with it so a torn or bit-flipped line is detected no matter which
 * field the damage lands in.
 */
constexpr uint32_t
crc32(std::string_view s)
{
    uint32_t c = 0xffffffffU;
    for (const char ch : s) {
        c ^= static_cast<unsigned char>(ch);
        for (int bit = 0; bit < 8; ++bit)
            c = (c >> 1) ^ (0xedb88320U & (0U - (c & 1U)));
    }
    return c ^ 0xffffffffU;
}

} // namespace moatsim

#endif // MOATSIM_COMMON_HASH_HH
