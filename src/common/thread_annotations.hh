/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * The sweep engines promise bit-identical results at any --jobs count,
 * and that promise rests on a small set of lock-discipline invariants
 * (every shared member has one owning mutex; helpers that assume a
 * held lock say so). These macros let the compiler check those
 * invariants statically: under clang the CI static-analysis leg builds
 * with -Wthread-safety -Wthread-safety-beta promoted to errors, so a
 * member read without its GUARDED_BY mutex, or a REQUIRES helper
 * called unlocked, fails the build instead of waiting for a lucky TSan
 * interleaving. Under every other compiler the macros expand to
 * nothing.
 *
 * The analysis only understands capabilities it can see, and
 * libstdc++'s std::mutex carries no annotations -- which is why the
 * concurrency core locks through moatsim::Mutex / MutexLock
 * (common/mutex.hh) instead of std::mutex / std::lock_guard.
 *
 * Macro names follow the clang documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
 */

#ifndef MOATSIM_COMMON_THREAD_ANNOTATIONS_HH
#define MOATSIM_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define MOATSIM_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define MOATSIM_THREAD_ATTRIBUTE(x) // no-op off clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define CAPABILITY(x) MOATSIM_THREAD_ATTRIBUTE(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define SCOPED_CAPABILITY MOATSIM_THREAD_ATTRIBUTE(scoped_lockable)

/** The member may only be touched while @p x is held. */
#define GUARDED_BY(x) MOATSIM_THREAD_ATTRIBUTE(guarded_by(x))

/** The pointee may only be touched while @p x is held. */
#define PT_GUARDED_BY(x) MOATSIM_THREAD_ATTRIBUTE(pt_guarded_by(x))

/** The function must be called with the capabilities already held. */
#define REQUIRES(...)                                                   \
    MOATSIM_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** Shared (reader) variant of REQUIRES. */
#define REQUIRES_SHARED(...)                                            \
    MOATSIM_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/** The function acquires the capability and holds it on return. */
#define ACQUIRE(...)                                                    \
    MOATSIM_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/** The function releases a capability the caller held. */
#define RELEASE(...)                                                    \
    MOATSIM_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))

/** Acquires on a @p ret return value (e.g. try_lock returning true). */
#define TRY_ACQUIRE(...)                                                \
    MOATSIM_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/** The function must NOT be called with the capabilities held. */
#define EXCLUDES(...) MOATSIM_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Declares that the capability is held (a dynamic assertion). */
#define ASSERT_CAPABILITY(x)                                            \
    MOATSIM_THREAD_ATTRIBUTE(assert_capability(x))

/** The function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) MOATSIM_THREAD_ATTRIBUTE(lock_returned(x))

/** Opts a function out of the analysis (use sparingly, say why). */
#define NO_THREAD_SAFETY_ANALYSIS                                       \
    MOATSIM_THREAD_ATTRIBUTE(no_thread_safety_analysis)

#endif // MOATSIM_COMMON_THREAD_ANNOTATIONS_HH
