#include "common/histogram.hh"

#include <algorithm>
#include <cassert>

namespace moatsim
{

Histogram::Histogram(uint32_t cap)
    : buckets_(cap, 0)
{
    assert(cap > 0);
}

void
Histogram::add(uint64_t v)
{
    ++total_;
    max_value_ = std::max(max_value_, v);
    if (v < buckets_.size()) {
        ++buckets_[v];
    } else {
        ++overflow_;
        overflow_values_.push_back(v);
    }
}

uint64_t
Histogram::bucket(uint32_t v) const
{
    assert(v < buckets_.size());
    return buckets_[v];
}

uint64_t
Histogram::countAtLeast(uint64_t threshold) const
{
    uint64_t n = 0;
    for (uint64_t v = threshold; v < buckets_.size(); ++v)
        n += buckets_[v];
    if (threshold >= buckets_.size()) {
        n = 0;
        for (uint64_t v : overflow_values_) {
            if (v >= threshold)
                ++n;
        }
    } else {
        n += overflow_;
    }
    return n;
}

void
Histogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_values_.clear();
    overflow_ = 0;
    total_ = 0;
    max_value_ = 0;
}

} // namespace moatsim
