/**
 * @file
 * Full-system, multi-sub-channel memory model.
 *
 * The paper's baseline (Table 3) is a 32 GB system with two DDR5
 * sub-channels of 32 banks each. A System instantiates N SubChannel
 * instances -- each with its own per-bank mitigator set built from the
 * same mitigation::MitigatorSpec factory and an independently derived
 * RNG stream -- and replays every core's pre-decoded activation trace
 * (workload::TraceEvent carries the dram::AddressMap-routed
 * coordinates) through one merged event loop: cores issue in global
 * intended-arrival order, each ACT dispatches to its event's
 * sub-channel, and the per-core memory-level-parallelism bound
 * back-pressures the instruction stream across all sub-channels a
 * core touches.
 *
 * The replay loop is the simulator's hot path, so it is flattened:
 * per-core in-flight completions live in fixed ring buffers (no deque
 * allocation per ACT), trace events are consumed through raw pointers,
 * and the sub-channels run the fastAlertScan path (see
 * subchannel/subchannel.hh). bench_core_loop measures the resulting
 * acts/sec against the pre-flattening loop.
 */

#ifndef MOATSIM_SIM_SYSTEM_HH
#define MOATSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hh"
#include "sim/memsys.hh"
#include "subchannel/subchannel.hh"
#include "workload/tracegen.hh"

namespace moatsim::sim
{

/** Configuration of a multi-sub-channel system. */
struct SystemConfig
{
    /**
     * Per-sub-channel configuration; every sub-channel is built from
     * this template with an independently derived RNG seed. On the
     * flat single-channel, single-rank system, slot i seeds from
     * hashCombine(channel.seed, i) (the historical scheme -- golden
     * results depend on it); with channels or ranks above 1, slot
     * (c, r, s) seeds from the per-level derivation
     * hashCombine(hashCombine(hashCombine(seed, c), r), s) so streams
     * never collide at any topology.
     */
    subchannel::SubChannelConfig channel{};
    /** Sub-channels per (channel, rank) (Table 3 baseline: 2). */
    uint32_t subchannels = 2;
    /** Memory channels (device topology; Table 3: 1). */
    uint32_t channels = 1;
    /** Ranks per channel (device topology; Table 3: 1). */
    uint32_t ranks = 1;
};

/** Activity of one sub-channel during a replay. */
struct SubChannelUsage
{
    /** Demand activations issued on this sub-channel. */
    uint64_t acts = 0;
    /** REF commands executed. */
    uint64_t refs = 0;
    /** ALERTs asserted. */
    uint64_t alerts = 0;
    /** RFM commands executed. */
    uint64_t rfms = 0;
    /** Mitigation work performed by this sub-channel's banks. */
    mitigation::MitigationStats mitigation{};
};

/** Result of replaying one set of traces on a System. */
struct SystemResult
{
    /** Per-core completion time (last ACT completion + trailing gap). */
    std::vector<Time> coreFinish;
    /** Total activations replayed (all sub-channels). */
    uint64_t totalActs = 0;
    /** REF commands executed (summed over sub-channels). */
    uint64_t refs = 0;
    /** ALERTs asserted (summed over sub-channels). */
    uint64_t alerts = 0;
    /** Per-sub-channel breakdown (one entry per sub-channel). */
    std::vector<SubChannelUsage> perSubchannel;
};

/** N sub-channels sharing one mitigator design and timing. */
class System
{
  public:
    System(const SystemConfig &config,
           const subchannel::SubChannel::MitigatorFactory &factory);

    /** Number of sub-channel slots (channels x ranks x subchannels). */
    uint32_t numSubchannels() const
    {
        return static_cast<uint32_t>(channels_.size());
    }

    /** One sub-channel slot by flat index. */
    subchannel::SubChannel &subchannel(uint32_t i)
    {
        return *channels_.at(i);
    }
    const subchannel::SubChannel &subchannel(uint32_t i) const
    {
        return *channels_.at(i);
    }

    /** Flat slot index of (channel, rank, subchannel). */
    uint32_t slotIndex(uint32_t channel, uint32_t rank,
                       uint32_t subchannel) const
    {
        return ((channel * config_.ranks) + rank) * config_.subchannels +
               subchannel;
    }

    /** Enable/disable refresh postponement on every sub-channel. */
    void setPostponeRefresh(bool on);

    /** Mitigation-work counters summed over every sub-channel. */
    mitigation::MitigationStats mitigationStats() const;

    /** Max hammer count across every bank of every sub-channel. */
    uint32_t maxHammerAnyBank() const;

    /** Total banks across all sub-channels. */
    uint32_t totalBanks() const;

    const SystemConfig &config() const { return config_; }

  private:
    SystemConfig config_;
    std::vector<std::unique_ptr<subchannel::SubChannel>> channels_;
};

/**
 * Replay per-core trace views across an explicit sub-channel set in
 * one merged event loop; event.subchannel indexes @p channels (reduced
 * modulo its size, so single-sub-channel replays accept any trace).
 * Views borrow their event storage (typically a shared
 * workload::TraceSet slab out of the TraceStore, or a CoreTrace owned
 * by the caller), so a whole sweep matrix replays one immutable copy
 * of each workload's trace. This is the implementation shared by every
 * replay entry point: the CoreTrace overload, runSystem(), and the
 * single-channel runMemSystem() wrapper.
 */
SystemResult
runOnSubChannels(const std::vector<subchannel::SubChannel *> &channels,
                 const std::vector<workload::CoreTraceView> &traces,
                 const CoreModel &core = CoreModel{});

/** Convenience overload over owned traces (borrows them as views). */
SystemResult
runOnSubChannels(const std::vector<subchannel::SubChannel *> &channels,
                 const std::vector<workload::CoreTrace> &traces,
                 const CoreModel &core = CoreModel{});

/** Replay @p traces on @p system until every core consumed its trace. */
SystemResult runSystem(System &system,
                       const std::vector<workload::CoreTraceView> &traces,
                       const CoreModel &core = CoreModel{});

/** Convenience overload over owned traces (borrows them as views). */
SystemResult runSystem(System &system,
                       const std::vector<workload::CoreTrace> &traces,
                       const CoreModel &core = CoreModel{});

} // namespace moatsim::sim

#endif // MOATSIM_SIM_SYSTEM_HH
