#include "sim/experiment.hh"

namespace moatsim::sim
{

Experiment::Experiment(const ExperimentConfig &config)
    : config_(config), runner_(config.tracegen, config.core)
{
}

std::vector<PerfResult>
Experiment::run()
{
    return run(config_.mitigator, config_.aboLevel);
}

std::vector<PerfResult>
Experiment::run(const mitigation::MitigatorSpec &mitigator, abo::Level level)
{
    if (config_.workload == "all")
        return runner_.runSuite(mitigator, level);
    std::vector<PerfResult> results;
    results.push_back(
        runner_.run(workload::findWorkload(config_.workload), mitigator,
                    level));
    return results;
}

PerfResult
Experiment::runWorkload(const workload::WorkloadSpec &spec,
                        const mitigation::MitigatorSpec &mitigator,
                        abo::Level level)
{
    return runner_.run(spec, mitigator, level);
}

} // namespace moatsim::sim
