#include "sim/experiment.hh"

#include "dram/device.hh"

namespace moatsim::sim
{

namespace
{

SweepConfig
sweepConfigOf(const ExperimentConfig &config,
              const ExperimentStores &stores)
{
    SweepConfig sc;
    sc.tracegen = config.tracegen;
    if (!config.device.empty()) {
        const dram::DeviceModel device =
            dram::DeviceSpec::parse(config.device).resolve();
        sc.tracegen = workload::withDevice(sc.tracegen, device);
    }
    sc.core = config.core;
    sc.jobs = config.jobs;
    // One store of each kind for the whole experiment -- or the
    // caller's long-lived ones (`moatsim serve` shares stores across
    // every client request). For the trace store the environment can
    // disable it on top of the config (both must opt in).
    if (stores.traces) {
        sc.traceStore = stores.traces;
    } else {
        workload::TraceStore::Config tsc =
            workload::TraceStore::envConfig();
        tsc.enabled = tsc.enabled && config.traceStore;
        sc.traceStore = std::make_shared<workload::TraceStore>(tsc);
    }
    sc.resultStore = stores.results
                         ? stores.results
                         : std::make_shared<ResultStore>(config.resultStore);
    return sc;
}

} // namespace

Experiment::Experiment(const ExperimentConfig &config)
    : Experiment(config, ExperimentStores{})
{
}

Experiment::Experiment(const ExperimentConfig &config,
                       const ExperimentStores &stores)
    : config_(config),
      engine_(sweepConfigOf(config, stores),
              stores.baselines ? stores.baselines
                               : std::make_shared<BaselineCache>()),
      // The co-attack engine shares the perf engine's resolved config
      // -- trace and result stores included -- so both replay one copy
      // of each workload's traces and fill one result store.
      coattack_(engine_.config())
{
}

std::vector<workload::WorkloadSpec>
Experiment::selectedWorkloads() const
{
    if (config_.workload == "all") {
        const auto all = workload::table4Workloads();
        return {all.begin(), all.end()};
    }
    return {workload::findWorkload(config_.workload)};
}

std::vector<PerfResult>
Experiment::run()
{
    return run(config_.mitigator, config_.aboLevel);
}

std::vector<PerfResult>
Experiment::run(const SweepEngine::CellSink &sink)
{
    return engine_.run(crossCells(selectedWorkloads(),
                                  {{config_.mitigator, config_.aboLevel}}),
                       sink);
}

std::vector<PerfResult>
Experiment::run(const mitigation::MitigatorSpec &mitigator, abo::Level level)
{
    return engine_.run(crossCells(selectedWorkloads(), {{mitigator, level}}));
}

std::vector<std::vector<PerfResult>>
Experiment::runMatrix(const std::vector<SweepPoint> &points)
{
    const auto workloads = selectedWorkloads();
    std::vector<std::pair<mitigation::MitigatorSpec, abo::Level>> pts;
    pts.reserve(points.size());
    for (const auto &p : points)
        pts.emplace_back(p.mitigator, p.level);

    const auto flat = engine_.run(crossCells(workloads, pts));

    std::vector<std::vector<PerfResult>> out(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        out[i].assign(flat.begin() + static_cast<ptrdiff_t>(
                                         i * workloads.size()),
                      flat.begin() + static_cast<ptrdiff_t>(
                                         (i + 1) * workloads.size()));
    }
    return out;
}

PerfResult
Experiment::runWorkload(const workload::WorkloadSpec &spec,
                        const mitigation::MitigatorSpec &mitigator,
                        abo::Level level)
{
    return engine_.runCell({spec, mitigator, level});
}

std::vector<CoAttackResult>
Experiment::runCoAttack(const CoAttackScenario &attack)
{
    return coattack_.run(crossCoAttackCells(
        selectedWorkloads(), {config_.mitigator}, config_.aboLevel,
        attack));
}

std::vector<CoAttackResult>
Experiment::runCoAttack(const CoAttackScenario &attack,
                        const CoAttackEngine::CellSink &sink)
{
    return coattack_.run(
        crossCoAttackCells(selectedWorkloads(), {config_.mitigator},
                           config_.aboLevel, attack),
        sink);
}

std::vector<std::vector<CoAttackResult>>
Experiment::runCoAttackMatrix(const std::vector<CoAttackPoint> &points)
{
    const auto workloads = selectedWorkloads();
    std::vector<CoAttackCell> cells;
    cells.reserve(points.size() * workloads.size());
    for (const auto &p : points) {
        for (const auto &w : workloads)
            cells.push_back({w, p.mitigator, p.level, p.attack});
    }

    const auto flat = coattack_.run(cells);

    std::vector<std::vector<CoAttackResult>> out(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        out[i].assign(flat.begin() + static_cast<ptrdiff_t>(
                                         i * workloads.size()),
                      flat.begin() + static_cast<ptrdiff_t>(
                                         (i + 1) * workloads.size()));
    }
    return out;
}

} // namespace moatsim::sim
