/**
 * @file
 * Adversary-under-load scenario engine.
 *
 * The paper's security results run the attacker on an isolated
 * sub-channel; its performance results replay only benign traffic.
 * This engine closes the gap between the two: it appends a synthesized
 * attacker core (workload/attack_trace.hh) to a workload's benign
 * tracegen cores and replays all of them through sim::System's merged
 * multi-sub-channel event loop, then reports per-core-class metrics --
 * the attacker's residual maxHammer under real contention, the
 * victims' slowdown against an attack-free co-run of the *same*
 * mitigator (isolating the attack's cost from the mitigation's own
 * overhead), and the ALERT/RFM activity attributable to the attack.
 *
 * Cells of a (workload x mitigator x attack x level) sweep are
 * independent simulations seeded from stable cell keys, so the engine
 * fans them across a thread pool with bit-identical results at any
 * jobs count; attack-free baselines are computed once per
 * (configuration, workload, mitigator, level) in a thread-safe cache.
 */

#ifndef MOATSIM_SIM_COATTACK_HH
#define MOATSIM_SIM_COATTACK_HH

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "abo/abo.hh"
#include "common/mutex.hh"
#include "mitigation/registry.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/attack_trace.hh"
#include "workload/spec.hh"

namespace moatsim::sim
{

/** The attack side of one co-attack cell (placement + shape). Every
 *  field shapes the cell's results, so every field must be folded
 *  into coAttackCellKey() -- the ResultStore serves cached co-attack
 *  lines by that key; keylint proves it on every build. */
// moatlint: key-source(coAttackCellKey)
struct CoAttackScenario
{
    /** Pattern name (attacks::attackPatterns()), or "none". */
    std::string pattern = "hammer";
    /** Rows in the attack pool (0 = pattern default). */
    uint32_t poolRows = 0;
    /** Activation budget (0 = span the benign window). */
    uint64_t budget = 0;
    /** Sub-channel replay slot the attacker pins (flat index over
     *  channels x ranks x sub-channels, sim::System slot order). */
    uint32_t subchannel = 0;
    /** Bank (within that sub-channel) the attacker pins. */
    uint32_t bank = 0;
    uint64_t seed = 1;
};

/** One independent (workload, mitigator, level, attack) cell. Folded
 *  into coAttackCellKey() in full (the attack side delegates to
 *  CoAttackScenario's own key-source contract). */
// moatlint: key-source(coAttackCellKey)
struct CoAttackCell
{
    workload::WorkloadSpec workload;
    mitigation::MitigatorSpec mitigator;
    abo::Level level = abo::Level::L1;
    CoAttackScenario attack{};
};

/** Per-core-class outcome of one adversary-under-load cell. */
struct CoAttackResult
{
    std::string workload;
    /** Canonical spec of the design under test. */
    std::string mitigator;
    /** Canonical device spec the cell ran on; empty for the
     *  hand-assembled default configuration. */
    std::string device;
    /** Attack pattern ("none" for an attack-free co-run). */
    std::string pattern;
    int aboLevel = 1;

    // ----- attacker class ------------------------------------------
    /** Peak unmitigated ACTs over the attacker's rows (under load). */
    uint32_t attackerMaxHammer = 0;
    /** Activations the attacker core issued. */
    uint64_t attackerActs = 0;

    // ----- victim class --------------------------------------------
    /** Mean per-victim finish-time ratio vs the attack-free co-run of
     *  the same mitigator (>= 1; the attack's denial-of-service). */
    double victimSlowdown = 1.0;
    /** Inverse view (mean attack-free/attacked, <= 1). */
    double victimNormPerf = 1.0;
    /** Activations the benign cores issued. */
    uint64_t victimActs = 0;

    // ----- defence activity attributable to the attack -------------
    /** ALERTs during the co-run / during the attack-free baseline. */
    uint64_t alerts = 0;
    uint64_t attackFreeAlerts = 0;
    /** RFM commands during the co-run / the attack-free baseline. */
    uint64_t rfms = 0;
    uint64_t attackFreeRfms = 0;
    /** REF commands during the co-run. */
    uint64_t refs = 0;
    /** ALERTs per tREFI (all sub-channels) with / without the attack. */
    double alertsPerRefi = 0.0;
    double attackFreeAlertsPerRefi = 0.0;
};

/**
 * Channel seed of a co-attack cell: the perf cell seed re-keyed for
 * the co-attack domain. Deliberately independent of @p attack: the
 * attacked run and its attack-free baseline share one system state
 * (seeding, counter init) and differ only in the command stream,
 * exactly like a real co-tenant attack.
 */
uint64_t coAttackCellSeed(const workload::TraceGenConfig &config,
                          const workload::WorkloadSpec &spec,
                          const mitigation::MitigatorSpec &mitigator,
                          abo::Level level,
                          const workload::AttackTraceConfig &attack);

/**
 * Content address of one co-attack cell for the sim::ResultStore:
 * perfCellKey() (configuration, workload, mitigator, level) extended
 * with every CoAttackScenario field -- unlike the cell *seed*, the
 * cell *key* must separate attacked results by attack shape. Equal
 * keys produce byte-identical toJsonLine(CoAttackResult) payloads.
 */
uint64_t coAttackCellKey(const workload::TraceGenConfig &config,
                         const CoreModel &core, const CoAttackCell &cell);

/**
 * Replay @p spec's benign traces -- plus the attacker stream unless
 * @p attack is "none" -- on a fresh System of
 * config.subchannels sub-channels (security tracking on). The benign
 * cores occupy result indices [0, numCores); the attacker, when
 * present, is the last core. When @p attacker_max_hammer is non-null
 * it receives the peak hammer count over the attacker's rows. When
 * @p benign is non-null it supplies the benign traces (a shared
 * TraceStore handout); otherwise they are generated locally.
 */
SystemResult runCoSystem(const workload::TraceGenConfig &config,
                         const CoreModel &core,
                         const workload::WorkloadSpec &spec,
                         const mitigation::MitigatorSpec &mitigator,
                         abo::Level level,
                         const workload::AttackTraceConfig &attack,
                         uint32_t *attacker_max_hammer = nullptr,
                         const workload::TraceSet *benign = nullptr);

/** The AttackTraceConfig a scenario resolves to under a benign
 *  configuration (timing and window filled in). */
workload::AttackTraceConfig
resolveAttack(const CoAttackScenario &scenario,
              const workload::TraceGenConfig &config);

/** Runs co-attack cells in parallel with bit-identical results. */
class CoAttackEngine
{
  public:
    explicit CoAttackEngine(const SweepConfig &config);

    /** Streaming completion callback; see SweepEngine::CellSink. */
    using CellSink = std::function<void(size_t, const CoAttackResult &)>;

    /** Run every cell; results are in cell order regardless of the
     *  execution schedule. */
    std::vector<CoAttackResult> run(const std::vector<CoAttackCell> &cells);

    /** As run(cells), additionally streaming each finished cell to
     *  @p sink (null = none); the sink must be thread-safe. */
    std::vector<CoAttackResult> run(const std::vector<CoAttackCell> &cells,
                                    const CellSink &sink);

    /** Run one cell inline (shares the baseline cache and stores). */
    CoAttackResult runCell(const CoAttackCell &cell);

    /** Resolved worker count. */
    unsigned jobs() const { return jobs_; }

    const SweepConfig &config() const { return config_; }

    /** The result store (config.resultStore, or the engine's own). */
    const std::shared_ptr<ResultStore> &resultStore() const
    {
        return config_.resultStore;
    }

  private:
    /** Attack-free co-run of (workload, mitigator, level): the victim
     *  baseline every attacked cell of that tuple compares against. */
    struct Baseline
    {
        std::vector<Time> coreFinish;
        /** Benign activations (the victim-class act count). */
        uint64_t totalActs = 0;
        uint64_t alerts = 0;
        uint64_t rfms = 0;
        uint64_t refs = 0;
    };

    std::shared_ptr<const Baseline> baseline(const CoAttackCell &cell)
        EXCLUDES(mu_);

    /** Simulate one cell (the result store's compute path). */
    CoAttackResult computeCell(const CoAttackCell &cell);

    SweepConfig config_;
    unsigned jobs_;
    Mutex mu_;
    /** Single-flight futures: concurrent first-requesters of one
     *  (workload, mitigator, level) tuple block on one computation. */
    std::unordered_map<uint64_t,
                       std::shared_future<std::shared_ptr<const Baseline>>>
        baselines_ GUARDED_BY(mu_);
};

/** Cross product: every workload at every (mitigator, level, attack)
 *  point. */
std::vector<CoAttackCell>
crossCoAttackCells(const std::vector<workload::WorkloadSpec> &workloads,
                   const std::vector<mitigation::MitigatorSpec> &mitigators,
                   abo::Level level, const CoAttackScenario &attack);

} // namespace moatsim::sim

#endif // MOATSIM_SIM_COATTACK_HH
