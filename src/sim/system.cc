#include "sim/system.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"

namespace moatsim::sim
{

System::System(const SystemConfig &config,
               const subchannel::SubChannel::MitigatorFactory &factory)
    : config_(config)
{
    if (config_.subchannels == 0)
        fatal("System: at least one sub-channel is required");
    if (config_.channels == 0 || config_.ranks == 0)
        fatal("System: channels and ranks must be at least 1");
    const uint32_t slots =
        config_.channels * config_.ranks * config_.subchannels;
    channels_.reserve(slots);
    if (config_.channels == 1 && config_.ranks == 1) {
        // Flat single-channel, single-rank system: the historical
        // seeding scheme, which the golden results are a function of.
        for (uint32_t i = 0; i < config_.subchannels; ++i) {
            subchannel::SubChannelConfig sc = config_.channel;
            sc.seed = hashCombine(config_.channel.seed, i);
            channels_.push_back(
                std::make_unique<subchannel::SubChannel>(sc, factory));
        }
        return;
    }
    // Per-level derivation: fold each topology coordinate in turn so
    // streams never collide and every slot's seed is independent of
    // the sibling counts (slot (c, r, s) keeps its seed when the
    // sweep changes another level's population).
    for (uint32_t c = 0; c < config_.channels; ++c) {
        const uint64_t chan_seed = hashCombine(config_.channel.seed, c);
        for (uint32_t r = 0; r < config_.ranks; ++r) {
            const uint64_t rank_seed = hashCombine(chan_seed, r);
            for (uint32_t s = 0; s < config_.subchannels; ++s) {
                subchannel::SubChannelConfig sc = config_.channel;
                sc.seed = hashCombine(rank_seed, s);
                channels_.push_back(
                    std::make_unique<subchannel::SubChannel>(sc, factory));
            }
        }
    }
}

void
System::setPostponeRefresh(bool on)
{
    for (auto &ch : channels_)
        ch->setPostponeRefresh(on);
}

mitigation::MitigationStats
System::mitigationStats() const
{
    mitigation::MitigationStats total;
    for (const auto &ch : channels_) {
        const auto s = ch->mitigationStats();
        total.proactiveMitigations += s.proactiveMitigations;
        total.alertMitigations += s.alertMitigations;
        total.victimRefreshes += s.victimRefreshes;
        total.counterResets += s.counterResets;
    }
    return total;
}

uint32_t
System::maxHammerAnyBank() const
{
    uint32_t best = 0;
    for (const auto &ch : channels_)
        best = std::max(best, ch->maxHammerAnyBank());
    return best;
}

uint32_t
System::totalBanks() const
{
    uint32_t n = 0;
    for (const auto &ch : channels_)
        n += ch->numBanks();
    return n;
}

SystemResult
runOnSubChannels(const std::vector<subchannel::SubChannel *> &channels,
                 const std::vector<workload::CoreTraceView> &traces,
                 const CoreModel &core)
{
    if (channels.empty())
        fatal("runOnSubChannels: at least one sub-channel is required");
    const size_t nsc = channels.size();
    const Time tRC = channels[0]->timing().tRC;

    // Snapshot the per-channel counters so a reused channel reports
    // only this replay's activity.
    struct ChannelStart
    {
        subchannel::SubChannelStats stats;
        uint64_t alerts;
        mitigation::MitigationStats mitigation;
    };
    std::vector<ChannelStart> before(nsc);
    Time start = 0;
    for (size_t i = 0; i < nsc; ++i) {
        before[i] = {channels[i]->stats(), channels[i]->abo().alertCount(),
                     channels[i]->mitigationStats()};
        start = std::max(start, channels[i]->now());
    }

    // Flattened per-core replay state: events are consumed through raw
    // pointers and the bounded in-flight completion queue is a fixed
    // ring (one flat slab, mlp slots per core) instead of a deque.
    struct CoreState
    {
        const workload::TraceEvent *next = nullptr;
        const workload::TraceEvent *end = nullptr;
        /** Earliest time the next ACT may be requested. */
        Time arrival = 0;
        Time last_intended = 0;
        Time last_completion = 0;
        uint32_t ring_head = 0;
        uint32_t ring_count = 0;
    };

    const uint32_t mlp = std::max(1u, core.mlp);
    std::vector<Time> rings(traces.size() * mlp);
    std::vector<CoreState> cores(traces.size());
    // Unfinished cores in index order (the stable order keeps the
    // earliest-arrival tie-break identical to a full scan).
    std::vector<uint32_t> active;
    active.reserve(traces.size());
    for (size_t c = 0; c < traces.size(); ++c) {
        if (traces[c].count == 0)
            continue;
        cores[c].next = traces[c].events;
        cores[c].end = cores[c].next + traces[c].count;
        cores[c].arrival = start + traces[c].events[0].at;
        active.push_back(static_cast<uint32_t>(c));
    }

    // Issue in global arrival order: repeatedly pick the core whose
    // next request is ready earliest (FCFS memory scheduling under the
    // closed-page policy) and dispatch to the event's sub-channel.
    while (!active.empty()) {
        size_t best_pos = 0;
        Time best_arrival = cores[active[0]].arrival;
        for (size_t i = 1; i < active.size(); ++i) {
            const Time a = cores[active[i]].arrival;
            if (a < best_arrival) {
                best_arrival = a;
                best_pos = i;
            }
        }

        const uint32_t c = active[best_pos];
        CoreState &cs = cores[c];
        const workload::TraceEvent &ev = *cs.next;
        Time *ring = rings.data() + static_cast<size_t>(c) * mlp;

        // The core may have at most `mlp` activations outstanding; the
        // request waits for the oldest one to complete otherwise.
        Time ready = cs.arrival;
        if (cs.ring_count >= mlp)
            ready = std::max(ready, ring[cs.ring_head]);

        subchannel::SubChannel &ch = *channels[ev.subchannel % nsc];
        const Time issue = ch.activateAt(ev.bank, ev.row, ready);
        const Time completion = issue + tRC;

        if (cs.ring_count >= mlp) {
            cs.ring_head = (cs.ring_head + 1) % mlp;
            --cs.ring_count;
        }
        ring[(cs.ring_head + cs.ring_count) % mlp] = completion;
        ++cs.ring_count;
        cs.last_completion = completion;

        // Next request: preserve the intended inter-request gap (the
        // instruction work between the two accesses).
        ++cs.next;
        if (cs.next != cs.end) {
            const workload::TraceEvent &nx = *cs.next;
            // Warm the next counter while other cores' events
            // interleave; the random-row PRAC update is the loop's
            // dominant cache miss.
            channels[nx.subchannel % nsc]->prefetchActivate(nx.bank,
                                                            nx.row);
            const Time gap = nx.at - ev.at;
            cs.arrival = std::max(cs.arrival, issue) + gap;
        }
        cs.last_intended = ev.at;
        if (cs.next == cs.end) {
            active.erase(active.begin() +
                         static_cast<ptrdiff_t>(best_pos));
        }
    }

    SystemResult result;
    result.coreFinish.resize(traces.size());
    for (size_t c = 0; c < traces.size(); ++c) {
        const Time tail = traces[c].count == 0
                              ? traces[c].window
                              : traces[c].window - cores[c].last_intended;
        result.coreFinish[c] =
            (cores[c].last_completion - start) + std::max<Time>(tail, 0);
        result.totalActs += traces[c].count;
    }

    result.perSubchannel.resize(nsc);
    for (size_t i = 0; i < nsc; ++i) {
        SubChannelUsage &u = result.perSubchannel[i];
        const auto &s = channels[i]->stats();
        u.acts = s.acts - before[i].stats.acts;
        u.refs = s.refs - before[i].stats.refs;
        u.rfms = s.rfms - before[i].stats.rfms;
        u.alerts = channels[i]->abo().alertCount() - before[i].alerts;
        const auto m = channels[i]->mitigationStats();
        u.mitigation.proactiveMitigations =
            m.proactiveMitigations - before[i].mitigation.proactiveMitigations;
        u.mitigation.alertMitigations =
            m.alertMitigations - before[i].mitigation.alertMitigations;
        u.mitigation.victimRefreshes =
            m.victimRefreshes - before[i].mitigation.victimRefreshes;
        u.mitigation.counterResets =
            m.counterResets - before[i].mitigation.counterResets;
        result.refs += u.refs;
        result.alerts += u.alerts;
    }
    return result;
}

SystemResult
runOnSubChannels(const std::vector<subchannel::SubChannel *> &channels,
                 const std::vector<workload::CoreTrace> &traces,
                 const CoreModel &core)
{
    std::vector<workload::CoreTraceView> views;
    views.reserve(traces.size());
    for (const auto &t : traces)
        views.push_back(workload::viewOf(t));
    return runOnSubChannels(channels, views, core);
}

SystemResult
runSystem(System &system, const std::vector<workload::CoreTraceView> &traces,
          const CoreModel &core)
{
    std::vector<subchannel::SubChannel *> channels;
    channels.reserve(system.numSubchannels());
    for (uint32_t i = 0; i < system.numSubchannels(); ++i)
        channels.push_back(&system.subchannel(i));
    return runOnSubChannels(channels, traces, core);
}

SystemResult
runSystem(System &system, const std::vector<workload::CoreTrace> &traces,
          const CoreModel &core)
{
    std::vector<workload::CoreTraceView> views;
    views.reserve(traces.size());
    for (const auto &t : traces)
        views.push_back(workload::viewOf(t));
    return runSystem(system, views, core);
}

} // namespace moatsim::sim
