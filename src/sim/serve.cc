#include "sim/serve.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/result_io.hh"

namespace moatsim::sim
{

namespace
{

/** Copy @p path into an AF_UNIX address; false when it cannot fit. */
bool
unixAddressOf(const std::string &path, sockaddr_un *addr)
{
    if (path.empty() || path.size() >= sizeof(addr->sun_path))
        return false;
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** Write all of @p data; false once the peer is gone. MSG_NOSIGNAL
 *  turns a dead-peer SIGPIPE into an error return. */
bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
writeLine(int fd, const std::string &line)
{
    return sendAll(fd, line + "\n");
}

/** A server->client protocol line; the serve.send fault site fails it
 *  like a broken pipe would (the client-side sends stay clean -- the
 *  site models the daemon's I/O, not the peer's). */
bool
serverWriteLine(int fd, const std::string &line)
{
    if (fault::shouldFail("serve.send"))
        return false;
    return writeLine(fd, line);
}

std::string
errorLine(const std::string &message, bool retryable)
{
    return "{\"kind\":\"error\",\"message\":" + jsonQuote(message) +
           (retryable ? ",\"retryable\":true}" : "}");
}

std::string
cellLine(size_t index, const std::string &payload)
{
    return "{\"kind\":\"cell\",\"index\":" + std::to_string(index) +
           ",\"payload\":" + jsonQuote(payload) + "}";
}

/** Fixed-width lowercase hex of a 64-bit key (16 digits). */
std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
doneLine(size_t cells, double cost, uint64_t request_key)
{
    return "{\"kind\":\"done\",\"cells\":" + std::to_string(cells) +
           ",\"cost\":" + jsonDouble(cost) + ",\"request\":\"" +
           hex16(request_key) + "\"}";
}

/** Strict base-10 parse of a bare JSON number token. */
bool
parseIndex(const std::string &text, size_t *out)
{
    if (text.empty() || text.size() > 18)
        return false;
    size_t v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<size_t>(c - '0');
    }
    *out = v;
    return true;
}

} // namespace

bool
transientAcceptError(int err)
{
    // Resource-exhaustion bursts and aborted handshakes: the listener
    // is still good, so ending the loop would turn a load spike into
    // an outage. Everything else (EBADF, EINVAL after shutdown, ...)
    // means the listening socket itself is gone.
    return err == EMFILE || err == ENFILE || err == ECONNABORTED ||
           err == ENOBUFS || err == ENOMEM || err == EAGAIN ||
           err == EWOULDBLOCK;
}

Server::Server(const ServeConfig &config) : config_(config)
{
    stores_.traces =
        std::make_shared<workload::TraceStore>(config_.traceStore);
    stores_.results = std::make_shared<ResultStore>(config_.resultStore);
    stores_.baselines = std::make_shared<BaselineCache>();
}

Server::~Server()
{
    stop();
    std::vector<std::thread> threads;
    {
        MutexLock lock(mu_);
        threads.swap(threads_);
    }
    for (auto &t : threads)
        t.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(config_.socketPath.c_str());
    }
}

void
Server::start()
{
    sockaddr_un addr{};
    if (!unixAddressOf(config_.socketPath, &addr))
        fatal("serve: socket path is empty or too long for AF_UNIX: '" +
              config_.socketPath + "'");
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("serve: cannot create socket (errno " +
              std::to_string(errno) + ")");
    // Replace a stale socket file from a previous run; a live server
    // on the same path would have to be stopped first anyway.
    ::unlink(config_.socketPath.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("serve: cannot bind " + config_.socketPath + " (errno " +
              std::to_string(errno) + ")");
    if (::listen(listen_fd_, 64) != 0)
        fatal("serve: cannot listen on " + config_.socketPath +
              " (errno " + std::to_string(errno) + ")");
}

void
Server::serveForever()
{
    unsigned backoff_step = 0;
    while (true) {
        // The serve.accept fault models one transient accept()
        // failure (an EMFILE burst); the pending connection is left
        // queued and picked up after the backoff.
        const bool injected = fault::shouldFail("serve.accept");
        const int fd =
            injected ? -1 : ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            const int err = injected ? EMFILE : errno;
            if (err == EINTR)
                continue;
            bool stop_now = false;
            {
                MutexLock lock(mu_);
                stop_now = stopping_;
            }
            if (stop_now)
                break;
            if (transientAcceptError(err)) {
                // Self-healing: count it, back off (bounded,
                // deterministic -- a fixed sleep, not a clock read),
                // and keep listening. Only stop() or a fatal listener
                // error may end the accept loop.
                {
                    MutexLock lock(mu_);
                    ++accept_retries_;
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    1ULL << backoff_step));
                if (backoff_step < 5)
                    ++backoff_step;
                continue;
            }
            // The listening socket itself is broken; the loop is over.
            warn("serve: accept failed fatally (errno " +
                 std::to_string(err) + "); stopping");
            break;
        }
        backoff_step = 0;
        MutexLock lock(mu_);
        if (stopping_) {
            ::close(fd);
            break;
        }
        conn_fds_.push_back(fd);
        threads_.emplace_back(&Server::handleConnection, this, fd);
    }

    std::vector<std::thread> threads;
    {
        MutexLock lock(mu_);
        threads.swap(threads_);
    }
    for (auto &t : threads)
        t.join();
}

void
Server::stop()
{
    {
        MutexLock lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        // Half-close: unblock every connection read without severing
        // the write side, so in-flight replies drain to their peers
        // (each bounded by config_.drainCells -- see runOnConnection).
        for (const int fd : conn_fds_)
            ::shutdown(fd, SHUT_RD);
        cv_.notifyAll();
    }
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
}

void
Server::handleConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    bool open = true;
    while (open) {
        // The serve.recv fault models a failed request read: the
        // connection drops (the client reconnects and retries) but
        // the daemon keeps serving.
        if (fault::shouldFail("serve.recv"))
            break;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        buf.append(chunk, static_cast<size_t>(n));
        size_t nl = 0;
        while (open && (nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty())
                open = handleLine(fd, line);
        }
    }
    ::close(fd);
    MutexLock lock(mu_);
    std::erase(conn_fds_, fd);
}

bool
Server::handleLine(int fd, const std::string &line)
{
    std::string kind;
    std::string err;
    if (!tryJsonField(line, "kind", &kind, &err))
        return serverWriteLine(fd, errorLine(err, false));
    if (kind == "stats")
        return serverWriteLine(fd, statsLine());
    if (kind == "shutdown") {
        serverWriteLine(fd, "{\"kind\":\"bye\"}");
        stop();
        return false;
    }
    if (kind == "perf" || kind == "coattack") {
        RunRequest req;
        if (!tryRunRequestOfJsonLine(line, &req, &err))
            return serverWriteLine(fd, errorLine(err, false));
        const bool keep = runOnConnection(fd, req);
        bool last = false;
        {
            MutexLock lock(mu_);
            ++served_requests_;
            last = config_.maxRequests > 0 &&
                   served_requests_ >= config_.maxRequests;
        }
        if (last)
            stop();
        return keep;
    }
    return serverWriteLine(
        fd, errorLine("unknown request kind \"" + kind + "\"", false));
}

bool
Server::runOnConnection(int fd, const RunRequest &req)
{
    std::string err;
    if (!validateRunRequest(req, &err)) {
        // Rejections are not retryable: the same bytes cannot pass
        // validation on a re-send.
        return serverWriteLine(fd, errorLine(err, false));
    }
    const double cost = estimatedCost(req);
    admit(cost);

    // The shared stores do the cross-request deduplication; the
    // experiment itself is per-request (its own worker pool, sized by
    // the request's jobs field).
    Experiment exp(experimentConfigOf(req), stores_);
    size_t cells = 0;
    bool io_ok = true;
    uint64_t drained_after_stop = 0;
    std::string failure;
    {
        // Cells stream from worker threads; serialize the socket.
        // Once a send fails, stop writing but let the sweep finish:
        // every completed cell still lands in the shared stores, so
        // the client's retry recomputes nothing.
        Mutex write_mu;
        const auto emit = [&](size_t index,
                              const std::string &payload) {
            MutexLock lock(write_mu);
            ++cells;
            if (!io_ok)
                return;
            if (config_.drainCells > 0) {
                bool stopping = false;
                {
                    MutexLock state_lock(mu_);
                    stopping = stopping_;
                }
                // Shutdown drain budget: after stop(), this reply may
                // stream at most drainCells more cells before the
                // socket is severed (bounded shutdown, no clock).
                if (stopping &&
                    ++drained_after_stop > config_.drainCells) {
                    ::shutdown(fd, SHUT_RDWR);
                    io_ok = false;
                    return;
                }
            }
            if (!serverWriteLine(fd, cellLine(index, payload)))
                io_ok = false;
        };
        try {
            if (req.kind == "perf") {
                exp.run([&](size_t index, const PerfResult &r) {
                    emit(index, toJsonLine(r));
                });
            } else {
                exp.runCoAttack(
                    coAttackScenarioOf(req),
                    [&](size_t index, const CoAttackResult &r) {
                        emit(index, toJsonLine(r));
                    });
            }
        } catch (const std::exception &e) {
            // A failed cell compute fails this request, not the
            // daemon: tag it retryable -- the stores cached every
            // cell that did finish, so a re-send converges.
            release(cost);
            {
                MutexLock lock(mu_);
                ++compute_failures_;
            }
            return serverWriteLine(
                fd, errorLine(std::string("cell compute failed: ") +
                                  e.what(),
                              true));
        }
    }

    release(cost);
    if (!io_ok)
        return false; // close: the truncated stream is the retry cue
    // The request's content-address closes the reply: clients can
    // correlate identical sweeps across sessions without re-deriving
    // the key themselves.
    return serverWriteLine(fd, doneLine(cells, cost, requestKey(req)));
}

void
Server::admit(double cost)
{
    MutexLock lock(mu_);
    while (!stopping_ && config_.maxCost > 0.0 && admitted_cost_ > 0.0 &&
           admitted_cost_ + cost > config_.maxCost)
        cv_.wait(lock);
    admitted_cost_ += cost;
    ++active_requests_;
}

void
Server::release(double cost)
{
    MutexLock lock(mu_);
    admitted_cost_ -= cost;
    --active_requests_;
    cv_.notifyAll();
}

std::string
Server::statsLine()
{
    const ResultStore::Stats rs = stores_.results->stats();
    const workload::TraceStore::Stats ts = stores_.traces->stats();
    uint64_t active = 0;
    uint64_t accept_retries = 0;
    uint64_t compute_failures = 0;
    double admitted = 0.0;
    {
        MutexLock lock(mu_);
        active = active_requests_;
        accept_retries = accept_retries_;
        compute_failures = compute_failures_;
        admitted = admitted_cost_;
    }
    return "{\"kind\":\"stats\",\"entries\":" +
           std::to_string(rs.entries) +
           ",\"hits\":" + std::to_string(rs.hits) +
           ",\"misses\":" + std::to_string(rs.misses) +
           ",\"computes\":" + std::to_string(rs.computes) +
           ",\"loaded\":" + std::to_string(rs.loaded) +
           ",\"corrupt\":" + std::to_string(rs.corrupt) +
           ",\"quarantined\":" + std::to_string(rs.quarantined) +
           ",\"compactions\":" + std::to_string(rs.compactions) +
           ",\"append_failures\":" + std::to_string(rs.appendFailures) +
           ",\"in_flight\":" + std::to_string(rs.inFlight) +
           ",\"trace_hits\":" + std::to_string(ts.hits) +
           ",\"trace_misses\":" + std::to_string(ts.misses) +
           ",\"active\":" + std::to_string(active) +
           ",\"accept_retries\":" + std::to_string(accept_retries) +
           ",\"compute_failures\":" + std::to_string(compute_failures) +
           ",\"admitted_cost\":" + jsonDouble(admitted) + "}";
}

namespace
{

/** Connect to @p path; -1 with @p err set on failure. */
int
connectTo(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    if (!unixAddressOf(path, &addr)) {
        *err = "socket path is empty or too long for AF_UNIX: '" +
               path + "'";
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = "cannot create socket (errno " + std::to_string(errno) +
               ")";
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *err = "cannot connect to " + path + " (errno " +
               std::to_string(errno) + ")";
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Fold one server line into @p reply; sets @p finished on the
 *  terminal line (done/stats/bye/error). */
void
foldReplyLine(const std::string &line, ServeReply *reply,
              bool *finished)
{
    std::string kind;
    std::string err;
    if (!tryJsonField(line, "kind", &kind, &err)) {
        reply->error = "malformed reply: " + err;
        reply->retryable = true;
        *finished = true;
        return;
    }
    if (kind == "cell") {
        std::string indexText;
        std::string payload;
        size_t index = 0;
        if (!tryJsonField(line, "index", &indexText, &err) ||
            !tryJsonField(line, "payload", &payload, &err) ||
            !parseIndex(indexText, &index)) {
            reply->error = "malformed cell line: " + line;
            reply->retryable = true;
            *finished = true;
            return;
        }
        if (index >= reply->cells.size())
            reply->cells.resize(index + 1);
        reply->cells[index] = payload;
        return;
    }
    if (kind == "error") {
        std::string message;
        if (!tryJsonField(line, "message", &message, nullptr))
            message = line;
        reply->error = message;
        // The server tags transient failures; a bare token "true"
        // comes back verbatim from the flat-JSON field scan.
        std::string retry_text;
        reply->retryable =
            tryJsonField(line, "retryable", &retry_text, nullptr) &&
            retry_text == "true";
        *finished = true;
        return;
    }
    // done / stats / bye all terminate one request's reply.
    reply->ok = true;
    reply->done = line;
    *finished = true;
}

} // namespace

ServeReply
serveRequestLine(const std::string &socketPath, const std::string &line)
{
    ServeReply reply;
    const int fd = connectTo(socketPath, &reply.error);
    if (fd < 0) {
        // The daemon may be restarting or the listen queue full;
        // reconnecting is exactly what a retry does.
        reply.retryable = true;
        return reply;
    }
    if (!sendAll(fd, line + "\n")) {
        reply.error = "cannot send request (errno " +
                      std::to_string(errno) + ")";
        reply.retryable = true;
        ::close(fd);
        return reply;
    }

    std::string buf;
    char chunk[4096];
    bool finished = false;
    while (!finished) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            // A truncated stream (the server's send failed, or it
            // severed the socket at the drain budget): every cell
            // already received is in the store server-side, so a
            // retry is cheap.
            reply.error = "connection closed before the reply finished";
            reply.retryable = true;
            break;
        }
        buf.append(chunk, static_cast<size_t>(n));
        size_t nl = 0;
        while (!finished && (nl = buf.find('\n')) != std::string::npos) {
            const std::string replyLine = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!replyLine.empty())
                foldReplyLine(replyLine, &reply, &finished);
        }
    }
    ::close(fd);
    return reply;
}

ServeReply
serveRequest(const std::string &socketPath, const RunRequest &req)
{
    return serveRequestLine(socketPath, toJsonLine(req));
}

uint64_t
retryBackoffMs(uint64_t seed, unsigned attempt)
{
    // Seeded jitter (1..8 ms) doubled per attempt, capped: pure
    // function of (seed, attempt), so a chaos run's pacing is as
    // reproducible as its fault plan.
    const uint64_t jitter =
        hashCombine(hashMix(seed), attempt) % 8 + 1;
    const uint64_t ms = jitter << (attempt < 5 ? attempt : 5);
    return ms < 250 ? ms : 250;
}

ServeReply
serveRequestWithRetries(const std::string &socketPath,
                        const RunRequest &req, const RetryPolicy &policy)
{
    ServeReply reply;
    for (unsigned attempt = 0;; ++attempt) {
        reply = serveRequest(socketPath, req);
        reply.attempts = attempt + 1;
        if (reply.ok || !reply.retryable || attempt >= policy.retries)
            return reply;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            retryBackoffMs(policy.seed, attempt)));
    }
}

} // namespace moatsim::sim
