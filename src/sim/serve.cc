#include "sim/serve.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "sim/result_io.hh"

namespace moatsim::sim
{

namespace
{

/** Copy @p path into an AF_UNIX address; false when it cannot fit. */
bool
unixAddressOf(const std::string &path, sockaddr_un *addr)
{
    if (path.empty() || path.size() >= sizeof(addr->sun_path))
        return false;
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** Write all of @p data; false once the peer is gone. MSG_NOSIGNAL
 *  turns a dead-peer SIGPIPE into an error return. */
bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
writeLine(int fd, const std::string &line)
{
    return sendAll(fd, line + "\n");
}

std::string
errorLine(const std::string &message)
{
    return "{\"kind\":\"error\",\"message\":" + jsonQuote(message) + "}";
}

std::string
cellLine(size_t index, const std::string &payload)
{
    return "{\"kind\":\"cell\",\"index\":" + std::to_string(index) +
           ",\"payload\":" + jsonQuote(payload) + "}";
}

/** Fixed-width lowercase hex of a 64-bit key (16 digits). */
std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
doneLine(size_t cells, double cost, uint64_t request_key)
{
    return "{\"kind\":\"done\",\"cells\":" + std::to_string(cells) +
           ",\"cost\":" + jsonDouble(cost) + ",\"request\":\"" +
           hex16(request_key) + "\"}";
}

/** Strict base-10 parse of a bare JSON number token. */
bool
parseIndex(const std::string &text, size_t *out)
{
    if (text.empty() || text.size() > 18)
        return false;
    size_t v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<size_t>(c - '0');
    }
    *out = v;
    return true;
}

} // namespace

Server::Server(const ServeConfig &config) : config_(config)
{
    stores_.traces =
        std::make_shared<workload::TraceStore>(config_.traceStore);
    stores_.results = std::make_shared<ResultStore>(config_.resultStore);
    stores_.baselines = std::make_shared<BaselineCache>();
}

Server::~Server()
{
    stop();
    std::vector<std::thread> threads;
    {
        MutexLock lock(mu_);
        threads.swap(threads_);
    }
    for (auto &t : threads)
        t.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(config_.socketPath.c_str());
    }
}

void
Server::start()
{
    sockaddr_un addr{};
    if (!unixAddressOf(config_.socketPath, &addr))
        fatal("serve: socket path is empty or too long for AF_UNIX: '" +
              config_.socketPath + "'");
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("serve: cannot create socket (errno " +
              std::to_string(errno) + ")");
    // Replace a stale socket file from a previous run; a live server
    // on the same path would have to be stopped first anyway.
    ::unlink(config_.socketPath.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("serve: cannot bind " + config_.socketPath + " (errno " +
              std::to_string(errno) + ")");
    if (::listen(listen_fd_, 64) != 0)
        fatal("serve: cannot listen on " + config_.socketPath +
              " (errno " + std::to_string(errno) + ")");
}

void
Server::serveForever()
{
    while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // stop() shut the listening socket down (or it broke);
            // either way the accept loop is over.
            break;
        }
        MutexLock lock(mu_);
        if (stopping_) {
            ::close(fd);
            break;
        }
        conn_fds_.push_back(fd);
        threads_.emplace_back(&Server::handleConnection, this, fd);
    }

    std::vector<std::thread> threads;
    {
        MutexLock lock(mu_);
        threads.swap(threads_);
    }
    for (auto &t : threads)
        t.join();
}

void
Server::stop()
{
    {
        MutexLock lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        // Unblock every connection read; queued response bytes still
        // drain to the peers.
        for (const int fd : conn_fds_)
            ::shutdown(fd, SHUT_RDWR);
        cv_.notifyAll();
    }
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
}

void
Server::handleConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    bool open = true;
    while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        buf.append(chunk, static_cast<size_t>(n));
        size_t nl = 0;
        while (open && (nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty())
                open = handleLine(fd, line);
        }
    }
    ::close(fd);
    MutexLock lock(mu_);
    std::erase(conn_fds_, fd);
}

bool
Server::handleLine(int fd, const std::string &line)
{
    std::string kind;
    std::string err;
    if (!tryJsonField(line, "kind", &kind, &err)) {
        writeLine(fd, errorLine(err));
        return true;
    }
    if (kind == "stats") {
        writeLine(fd, statsLine());
        return true;
    }
    if (kind == "shutdown") {
        writeLine(fd, "{\"kind\":\"bye\"}");
        stop();
        return false;
    }
    if (kind == "perf" || kind == "coattack") {
        RunRequest req;
        if (!tryRunRequestOfJsonLine(line, &req, &err)) {
            writeLine(fd, errorLine(err));
            return true;
        }
        runOnConnection(fd, req);
        bool last = false;
        {
            MutexLock lock(mu_);
            ++served_requests_;
            last = config_.maxRequests > 0 &&
                   served_requests_ >= config_.maxRequests;
        }
        if (last)
            stop();
        return true;
    }
    writeLine(fd, errorLine("unknown request kind \"" + kind + "\""));
    return true;
}

void
Server::runOnConnection(int fd, const RunRequest &req)
{
    std::string err;
    if (!validateRunRequest(req, &err)) {
        writeLine(fd, errorLine(err));
        return;
    }
    const double cost = estimatedCost(req);
    admit(cost);

    // The shared stores do the cross-request deduplication; the
    // experiment itself is per-request (its own worker pool, sized by
    // the request's jobs field).
    Experiment exp(experimentConfigOf(req), stores_);
    size_t cells = 0;
    {
        // Cells stream from worker threads; serialize the socket.
        Mutex write_mu;
        const auto emit = [&](size_t index,
                              const std::string &payload) {
            MutexLock lock(write_mu);
            ++cells;
            writeLine(fd, cellLine(index, payload));
        };
        if (req.kind == "perf") {
            exp.run([&](size_t index, const PerfResult &r) {
                emit(index, toJsonLine(r));
            });
        } else {
            exp.runCoAttack(coAttackScenarioOf(req),
                            [&](size_t index, const CoAttackResult &r) {
                                emit(index, toJsonLine(r));
                            });
        }
    }

    release(cost);
    // The request's content-address closes the reply: clients can
    // correlate identical sweeps across sessions without re-deriving
    // the key themselves.
    writeLine(fd, doneLine(cells, cost, requestKey(req)));
}

void
Server::admit(double cost)
{
    MutexLock lock(mu_);
    while (!stopping_ && config_.maxCost > 0.0 && admitted_cost_ > 0.0 &&
           admitted_cost_ + cost > config_.maxCost)
        cv_.wait(lock);
    admitted_cost_ += cost;
    ++active_requests_;
}

void
Server::release(double cost)
{
    MutexLock lock(mu_);
    admitted_cost_ -= cost;
    --active_requests_;
    cv_.notifyAll();
}

std::string
Server::statsLine()
{
    const ResultStore::Stats rs = stores_.results->stats();
    const workload::TraceStore::Stats ts = stores_.traces->stats();
    uint64_t active = 0;
    double admitted = 0.0;
    {
        MutexLock lock(mu_);
        active = active_requests_;
        admitted = admitted_cost_;
    }
    return "{\"kind\":\"stats\",\"entries\":" +
           std::to_string(rs.entries) +
           ",\"hits\":" + std::to_string(rs.hits) +
           ",\"misses\":" + std::to_string(rs.misses) +
           ",\"computes\":" + std::to_string(rs.computes) +
           ",\"loaded\":" + std::to_string(rs.loaded) +
           ",\"corrupt\":" + std::to_string(rs.corrupt) +
           ",\"in_flight\":" + std::to_string(rs.inFlight) +
           ",\"trace_hits\":" + std::to_string(ts.hits) +
           ",\"trace_misses\":" + std::to_string(ts.misses) +
           ",\"active\":" + std::to_string(active) +
           ",\"admitted_cost\":" + jsonDouble(admitted) + "}";
}

namespace
{

/** Connect to @p path; -1 with @p err set on failure. */
int
connectTo(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    if (!unixAddressOf(path, &addr)) {
        *err = "socket path is empty or too long for AF_UNIX: '" +
               path + "'";
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = "cannot create socket (errno " + std::to_string(errno) +
               ")";
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *err = "cannot connect to " + path + " (errno " +
               std::to_string(errno) + ")";
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Fold one server line into @p reply; sets @p finished on the
 *  terminal line (done/stats/bye/error). */
void
foldReplyLine(const std::string &line, ServeReply *reply,
              bool *finished)
{
    std::string kind;
    std::string err;
    if (!tryJsonField(line, "kind", &kind, &err)) {
        reply->error = "malformed reply: " + err;
        *finished = true;
        return;
    }
    if (kind == "cell") {
        std::string indexText;
        std::string payload;
        size_t index = 0;
        if (!tryJsonField(line, "index", &indexText, &err) ||
            !tryJsonField(line, "payload", &payload, &err) ||
            !parseIndex(indexText, &index)) {
            reply->error = "malformed cell line: " + line;
            *finished = true;
            return;
        }
        if (index >= reply->cells.size())
            reply->cells.resize(index + 1);
        reply->cells[index] = payload;
        return;
    }
    if (kind == "error") {
        std::string message;
        if (!tryJsonField(line, "message", &message, nullptr))
            message = line;
        reply->error = message;
        *finished = true;
        return;
    }
    // done / stats / bye all terminate one request's reply.
    reply->ok = true;
    reply->done = line;
    *finished = true;
}

} // namespace

ServeReply
serveRequestLine(const std::string &socketPath, const std::string &line)
{
    ServeReply reply;
    const int fd = connectTo(socketPath, &reply.error);
    if (fd < 0)
        return reply;
    if (!sendAll(fd, line + "\n")) {
        reply.error = "cannot send request (errno " +
                      std::to_string(errno) + ")";
        ::close(fd);
        return reply;
    }

    std::string buf;
    char chunk[4096];
    bool finished = false;
    while (!finished) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            reply.error = "connection closed before the reply finished";
            break;
        }
        buf.append(chunk, static_cast<size_t>(n));
        size_t nl = 0;
        while (!finished && (nl = buf.find('\n')) != std::string::npos) {
            const std::string replyLine = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!replyLine.empty())
                foldReplyLine(replyLine, &reply, &finished);
        }
    }
    ::close(fd);
    return reply;
}

ServeReply
serveRequest(const std::string &socketPath, const RunRequest &req)
{
    return serveRequestLine(socketPath, toJsonLine(req));
}

} // namespace moatsim::sim
