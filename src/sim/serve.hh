/**
 * @file
 * `moatsim serve`: sweep-as-a-service over a local socket.
 *
 * A Server listens on an AF_UNIX stream socket and runs sim
 * experiments on behalf of clients. The protocol is line-oriented
 * JSON, and a request is literally a sim::RunRequest line (the same
 * struct the CLI subcommands parse -- sim/run_request.hh), so the
 * socket API has no request grammar of its own:
 *
 *   client -> server, one JSON object per line:
 *     {"kind":"perf",...}       run a perf sweep (RunRequest codec)
 *     {"kind":"coattack",...}   run a co-attack sweep
 *     {"kind":"stats"}          report store / admission counters
 *     {"kind":"shutdown"}       stop accepting and drain
 *
 *   server -> client:
 *     {"kind":"cell","index":N,"payload":"<result JSONL>"}
 *                               one line per finished cell, streamed
 *                               in completion order; index is the
 *                               cell's position in the request's
 *                               workload selection
 *     {"kind":"done","cells":N,"cost":C}
 *                               the request finished
 *     {"kind":"stats",...}      the counters (stats request)
 *     {"kind":"bye"}            shutdown acknowledged
 *     {"kind":"error","message":"...","retryable":true}
 *                               the request failed; the connection
 *                               stays usable. "retryable":true tags
 *                               transient failures (a cell compute
 *                               that threw) where re-sending the same
 *                               request converges -- the result store
 *                               makes already-finished cells free.
 *                               Rejections (validation, protocol)
 *                               carry no retryable tag: re-sending
 *                               the same bytes cannot succeed.
 *
 * Failure containment: the daemon outlives its requests. A failed
 * cell compute (exception or injected fault -- common/fault.hh sites
 * `sweep.compute`, `serve.send`, `serve.recv`, `serve.accept`) fails
 * that one request with a retryable error line; transient accept()
 * errors (EMFILE/ENFILE/ECONNABORTED -- transientAcceptError()) back
 * off boundedly and keep listening, and only stop() or a fatal
 * listener error ends the accept loop. When a reply send fails the
 * connection is closed (the client sees a truncated stream, which is
 * retryable); the request's compute keeps running so its cells still
 * land in the shared stores. Graceful shutdown: stop() half-closes
 * connections (reads only), letting in-flight replies drain -- each
 * bounded by ServeConfig::drainCells -- before the sockets go away.
 *
 * Every connection gets its own thread, but all of them share one
 * ExperimentStores -- one TraceStore, one ResultStore, one
 * BaselineCache -- so concurrent clients asking for overlapping cells
 * dedupe down to a single computation per distinct cell (the stores'
 * single-flight futures), and a warm on-disk result store serves
 * repeat sweeps without recomputing anything. Admission control
 * bounds the estimatedCost() of concurrently *running* requests by
 * ServeConfig::maxCost; excess requests queue on a condition
 * variable (a lone request larger than the budget still runs --
 * admission never deadlocks an empty server).
 *
 * The server uses no wall-clock anywhere (the determinism lint bans
 * clocks in src/): every wait is a blocking read, accept, or
 * condition wait -- the accept/retry backoffs are fixed sleeps, never
 * time reads -- and shutdown works by shutting the sockets down,
 * which unblocks all of them.
 */

#ifndef MOATSIM_SIM_SERVE_HH
#define MOATSIM_SIM_SERVE_HH

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "sim/experiment.hh"
#include "sim/run_request.hh"

namespace moatsim::sim
{

/** Everything a Server needs. */
struct ServeConfig
{
    /** Filesystem path of the AF_UNIX listening socket. */
    std::string socketPath;
    /**
     * Cost budget for concurrently running requests (the unitless
     * estimatedCost() scale); 0 = unlimited. A request that alone
     * exceeds the budget still runs when the server is idle.
     */
    double maxCost = 0.0;
    /** The shared trace store all requests use (server policy; a
     *  request's trace_store field does not override it). */
    workload::TraceStore::Config traceStore =
        workload::TraceStore::envConfig();
    /** The shared result store all requests fill and hit. */
    ResultStore::Config resultStore = ResultStore::envConfig();
    /** Stop after serving this many run requests; 0 = only on a
     *  shutdown request or stop(). Tests use this to bound a serve
     *  loop without any clock. */
    uint64_t maxRequests = 0;
    /** After stop(), each in-flight request may stream at most this
     *  many more cells before its socket is severed; 0 = drain fully.
     *  Bounds shutdown latency without any clock. */
    uint64_t drainCells = 0;
};

/** Whether an accept() errno is transient resource exhaustion worth
 *  backing off and retrying (vs a fatal listener error). */
bool transientAcceptError(int err);

/** The `moatsim serve` daemon core (socket loop + shared stores). */
class Server
{
  public:
    explicit Server(const ServeConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind and listen on config().socketPath (replacing a stale
     *  socket file); fatal() on failure. After start() returns,
     *  clients can connect. */
    void start();

    /**
     * Accept connections and serve requests until a shutdown request
     * arrives, stop() is called, or maxRequests run requests have
     * completed; joins every connection thread before returning.
     * Transient accept() failures back off and continue.
     */
    void serveForever() EXCLUDES(mu_);

    /** Request shutdown from any thread: stops the accept loop and
     *  unblocks every connection read; in-flight replies drain
     *  (bounded by config().drainCells). Idempotent. */
    void stop() EXCLUDES(mu_);

    const ServeConfig &config() const { return config_; }

    /** The store shared across all requests (test hook: its computes
     *  counter proves cross-client dedupe). */
    const std::shared_ptr<ResultStore> &resultStore() const
    {
        return stores_.results;
    }

    /** The trace store shared across all requests. */
    const std::shared_ptr<workload::TraceStore> &traceStore() const
    {
        return stores_.traces;
    }

  private:
    void handleConnection(int fd) EXCLUDES(mu_);
    /** Serve one request line; false = close the connection. */
    bool handleLine(int fd, const std::string &line) EXCLUDES(mu_);
    /** Run one request; false = the reply could not be delivered and
     *  the connection must close (the client retries on the EOF). */
    bool runOnConnection(int fd, const RunRequest &req) EXCLUDES(mu_);
    /** Block until @p cost fits under the admission budget. */
    void admit(double cost) EXCLUDES(mu_);
    void release(double cost) EXCLUDES(mu_);
    std::string statsLine() EXCLUDES(mu_);

    ServeConfig config_;
    /** Shared across every request; built once in the constructor and
     *  immutable afterwards (the stores synchronize internally). */
    ExperimentStores stores_;
    /** Listening socket; set once by start() before any thread runs. */
    int listen_fd_ = -1;

    mutable Mutex mu_;
    CondVar cv_;
    bool stopping_ GUARDED_BY(mu_) = false;
    double admitted_cost_ GUARDED_BY(mu_) = 0.0;
    uint64_t active_requests_ GUARDED_BY(mu_) = 0;
    uint64_t served_requests_ GUARDED_BY(mu_) = 0;
    /** Transient accept() failures survived (health counter). */
    uint64_t accept_retries_ GUARDED_BY(mu_) = 0;
    /** Requests failed by a throwing cell compute (health counter). */
    uint64_t compute_failures_ GUARDED_BY(mu_) = 0;
    std::vector<int> conn_fds_ GUARDED_BY(mu_);
    std::vector<std::thread> threads_ GUARDED_BY(mu_);
};

/** What one run request produced, reassembled client-side. */
struct ServeReply
{
    /** Whether a done line arrived (false: see error). */
    bool ok = false;
    /** Whether the failure is worth re-sending the same request:
     *  server errors tagged "retryable":true, plus every local
     *  transport failure (connect refused, send failed, connection
     *  closed before the terminal line). */
    bool retryable = false;
    /** Attempts consumed (serveRequestWithRetries(); 1 elsewhere). */
    unsigned attempts = 1;
    /** The server's error message, or the local connect/IO failure. */
    std::string error;
    /** Cell payload JSONL, reordered into request (index) order --
     *  byte-identical to the direct CLI's --jsonl output. */
    std::vector<std::string> cells;
    /** The raw done line. */
    std::string done;
};

/** Connect, send one run request, and collect the reply. */
ServeReply serveRequest(const std::string &socketPath,
                        const RunRequest &req);

/** As serveRequest() with a raw request line (test hook for protocol
 *  errors; also how `moatsim client` forwards stats/shutdown). */
ServeReply serveRequestLine(const std::string &socketPath,
                            const std::string &line);

/** Client retry policy: how many times to re-send after a retryable
 *  failure, and the seed of the deterministic backoff sequence. */
struct RetryPolicy
{
    /** Re-sends after the first attempt (0 = single shot). */
    unsigned retries = 0;
    /** Backoff sequence seed (retryBackoffMs()). */
    uint64_t seed = 1;
};

/** The backoff before re-send @p attempt (0-based): a deterministic,
 *  seeded, exponentially growing jitter in milliseconds -- a pure
 *  function of (seed, attempt), no clock and no shared RNG, so two
 *  identically seeded clients pace identically. */
uint64_t retryBackoffMs(uint64_t seed, unsigned attempt);

/** As serveRequest(), re-sending on retryable failures (reconnecting
 *  each time) until it succeeds, a failure is not retryable, or the
 *  policy's retries are exhausted. Converges byte-identically to a
 *  clean run: the result store serves every already-finished cell,
 *  so a retry recomputes only what actually failed. */
ServeReply serveRequestWithRetries(const std::string &socketPath,
                                   const RunRequest &req,
                                   const RetryPolicy &policy);

} // namespace moatsim::sim

#endif // MOATSIM_SIM_SERVE_HH
