/**
 * @file
 * Single entry point for performance experiments.
 *
 * An Experiment bundles everything one run needs -- DRAM timing (via
 * the trace-generator config), ABO level, workload selection, the
 * mitigator spec, the seed, and the worker count -- so the CLI, the
 * benches, and the examples all drive the same code path instead of
 * hand-assembling PerfRunner calls. The Experiment owns a SweepEngine
 * (sim/sweep.hh), so every run fans its cells across the engine's
 * work-stealing pool and the cached no-ALERT baselines are shared
 * across every design/level evaluated through it. Design-space sweeps
 * call runMatrix() with the full point list so the whole matrix
 * parallelizes as one batch; results are bit-identical at any jobs
 * count.
 */

#ifndef MOATSIM_SIM_EXPERIMENT_HH
#define MOATSIM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "abo/abo.hh"
#include "mitigation/registry.hh"
#include "sim/coattack.hh"
#include "sim/perf.hh"
#include "sim/sweep.hh"

namespace moatsim::sim
{

/** Everything one performance experiment needs. */
struct ExperimentConfig
{
    /**
     * Trace generation: DRAM timing, window fraction, cores, seed, and
     * the sub-channel count (tracegen.subchannels) -- set it to 2 for
     * the paper's full-system Table-3 baseline; every cell then
     * simulates a sim::System of that many sub-channels.
     */
    workload::TraceGenConfig tracegen{};
    /**
     * Named device grade to run on: a dram::DeviceSpec string
     * ("device:org=...,speed=..."). When non-empty the spec is parsed
     * (fatal on malformed input) and applied to the trace-generator
     * configuration via workload::withDevice() -- timing, channels x
     * ranks topology, system bank count -- before the engines are
     * built. Empty (the default) leaves `tracegen` exactly as given,
     * reproducing the pre-device pipeline bit-identically.
     */
    std::string device;
    /** ABO mitigation level of the sub-channel (MR71 op[1:0]). */
    abo::Level aboLevel = abo::Level::L1;
    /** Design under test; default is the paper's MOAT defaults. */
    mitigation::MitigatorSpec mitigator{};
    /** Table-4 workload name, or "all" for the whole suite. */
    std::string workload = "all";
    /** Core model (memory-level parallelism). */
    CoreModel core{};
    /** Sweep worker threads; 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 0;
    /**
     * Whether to cache generated workload traces in the shared
     * workload::TraceStore (one store serves both the perf and the
     * co-attack engine, so a matrix generates each distinct trace
     * exactly once). false -- or MOATSIM_TRACE_STORE=0 in the
     * environment, or the CLI --no-trace-store flag -- regenerates
     * per cell instead; results are bit-identical either way (the
     * determinism suite proves it).
     */
    bool traceStore = true;
    /**
     * Result store configuration (sim/result_store.hh). The default
     * comes from the environment (MOATSIM_RESULT_STORE unset =
     * disabled pass-through); the CLI --result-store flag overrides
     * it. Results are bit-identical with the store enabled, disabled,
     * cold, or warm -- the store only changes how much is recomputed.
     */
    ResultStore::Config resultStore = ResultStore::envConfig();
};

/**
 * Long-lived shared state an Experiment may attach to instead of
 * creating its own: `moatsim serve` keeps one of each across every
 * client request, so concurrent requests dedupe trace generation,
 * baseline replays, and whole result cells between each other. Null
 * members fall back to per-experiment instances.
 */
struct ExperimentStores
{
    std::shared_ptr<workload::TraceStore> traces;
    std::shared_ptr<ResultStore> results;
    std::shared_ptr<BaselineCache> baselines;
};

/** One (design, level) point of a sweep matrix. */
struct SweepPoint
{
    mitigation::MitigatorSpec mitigator{};
    abo::Level level = abo::Level::L1;
};

/** One (design, level, attack) point of a co-attack sweep matrix. */
struct CoAttackPoint
{
    mitigation::MitigatorSpec mitigator{};
    abo::Level level = abo::Level::L1;
    CoAttackScenario attack{};
};

/** Runs the configured workloads against registered mitigator designs. */
class Experiment
{
  public:
    explicit Experiment(const ExperimentConfig &config);

    /** As above, attaching shared stores (null members = own). */
    Experiment(const ExperimentConfig &config,
               const ExperimentStores &stores);

    /** Run the configured workload selection with the configured design. */
    std::vector<PerfResult> run();

    /**
     * As run(), streaming each finished cell to @p sink (index within
     * the workload selection, result) as it completes -- the serve
     * protocol's per-cell response path. The sink is called from
     * worker threads; it must be thread-safe.
     */
    std::vector<PerfResult> run(const SweepEngine::CellSink &sink);

    /**
     * Run the same workload selection with a different design and/or
     * ABO level; the no-ALERT baselines are shared, so sweeps only pay
     * for the mitigated runs.
     */
    std::vector<PerfResult> run(const mitigation::MitigatorSpec &mitigator,
                                abo::Level level);

    /**
     * Run the workload selection at every sweep point as one parallel
     * batch; result [i][w] is point i on workload w. Equivalent to
     * (but much faster than) calling run() per point.
     */
    std::vector<std::vector<PerfResult>>
    runMatrix(const std::vector<SweepPoint> &points);

    /** One workload with an explicit design/level (sweep inner loop). */
    PerfResult runWorkload(const workload::WorkloadSpec &spec,
                           const mitigation::MitigatorSpec &mitigator,
                           abo::Level level);

    /**
     * Run the adversary-under-load scenario: the workload selection
     * co-scheduled with @p attack against the configured design and
     * level (one CoAttackResult per workload).
     */
    std::vector<CoAttackResult> runCoAttack(const CoAttackScenario &attack);

    /** As runCoAttack(), streaming each finished cell to @p sink (the
     *  sink must be thread-safe). */
    std::vector<CoAttackResult>
    runCoAttack(const CoAttackScenario &attack,
                const CoAttackEngine::CellSink &sink);

    /**
     * Run the workload selection at every (design, level, attack)
     * point as one parallel batch; result [i][w] is point i on
     * workload w. The (workload x mitigator x attack x level) cells
     * all fan out across the engine's pool.
     */
    std::vector<std::vector<CoAttackResult>>
    runCoAttackMatrix(const std::vector<CoAttackPoint> &points);

    const ExperimentConfig &config() const { return config_; }

    /** The underlying sweep engine (baseline cache included). */
    SweepEngine &engine() { return engine_; }

    /** The co-attack engine (attack-free baseline cache included). */
    CoAttackEngine &coAttackEngine() { return coattack_; }

    /**
     * The trace store shared by both engines. Its stats() are the
     * experiment-level hit/miss record bench_sweep_scale and the
     * bench snapshot surface.
     */
    const std::shared_ptr<workload::TraceStore> &traceStore() const
    {
        return engine_.traceStore();
    }

    /** The result store shared by both engines (hit/miss/compute
     *  stats; the CLI prints them, `moatsim serve` exposes them). */
    const std::shared_ptr<ResultStore> &resultStore() const
    {
        return engine_.resultStore();
    }

  private:
    /** The workloads config_.workload selects. */
    std::vector<workload::WorkloadSpec> selectedWorkloads() const;

    ExperimentConfig config_;
    SweepEngine engine_;
    CoAttackEngine coattack_;
};

} // namespace moatsim::sim

#endif // MOATSIM_SIM_EXPERIMENT_HH
