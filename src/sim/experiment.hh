/**
 * @file
 * Single entry point for performance experiments.
 *
 * An Experiment bundles everything one run needs -- DRAM timing (via
 * the trace-generator config), ABO level, workload selection, the
 * mitigator spec, and the seed -- so the CLI, the benches, and the
 * examples all drive the same code path instead of hand-assembling
 * PerfRunner calls. The Experiment owns a PerfRunner, so the cached
 * no-ALERT baselines are shared across every design/level evaluated
 * through it; design-space sweeps call run(spec, level) repeatedly
 * with alternative registered designs.
 */

#ifndef MOATSIM_SIM_EXPERIMENT_HH
#define MOATSIM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "abo/abo.hh"
#include "mitigation/registry.hh"
#include "sim/perf.hh"

namespace moatsim::sim
{

/** Everything one performance experiment needs. */
struct ExperimentConfig
{
    /** Trace generation: DRAM timing, window fraction, cores, seed. */
    workload::TraceGenConfig tracegen{};
    /** ABO mitigation level of the sub-channel (MR71 op[1:0]). */
    abo::Level aboLevel = abo::Level::L1;
    /** Design under test; default is the paper's MOAT defaults. */
    mitigation::MitigatorSpec mitigator{};
    /** Table-4 workload name, or "all" for the whole suite. */
    std::string workload = "all";
    /** Core model (memory-level parallelism). */
    CoreModel core{};
};

/** Runs the configured workloads against registered mitigator designs. */
class Experiment
{
  public:
    explicit Experiment(const ExperimentConfig &config);

    /** Run the configured workload selection with the configured design. */
    std::vector<PerfResult> run();

    /**
     * Run the same workload selection with a different design and/or
     * ABO level; the no-ALERT baselines are shared, so sweeps only pay
     * for the mitigated runs.
     */
    std::vector<PerfResult> run(const mitigation::MitigatorSpec &mitigator,
                                abo::Level level);

    /** One workload with an explicit design/level (sweep inner loop). */
    PerfResult runWorkload(const workload::WorkloadSpec &spec,
                           const mitigation::MitigatorSpec &mitigator,
                           abo::Level level);

    const ExperimentConfig &config() const { return config_; }

    /** The underlying runner (baseline cache included). */
    PerfRunner &runner() { return runner_; }

  private:
    ExperimentConfig config_;
    PerfRunner runner_;
};

} // namespace moatsim::sim

#endif // MOATSIM_SIM_EXPERIMENT_HH
