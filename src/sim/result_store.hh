/**
 * @file
 * Content-addressed, thread-safe store of computed cell results.
 *
 * workload::TraceStore eliminated redundant work on the *input* side of
 * a sweep (each distinct trace generated once); this store does the
 * same for the *outputs*. Every perf/co-attack cell is keyed by a
 * stable hash of everything that shapes its result -- the trace
 * generator configuration (device, seed, and timing included), the
 * core model, the workload, the mitigator's canonical describe() text,
 * the ABO level, and for co-attack cells the full attack scenario (see
 * sim::perfCellKey / sim::coAttackCellKey) -- so equal keys mean
 * bit-identical result lines, and a warm re-run of a full matrix is
 * O(changed cells).
 *
 * Values are the byte-stable JSONL payloads of sim/result_io: both the
 * cold and the warm path of an engine round-trip the result through
 * serialize -> parse, so a hit is byte-for-byte the line a recompute
 * would have produced (the determinism suite proves it). The in-memory
 * front uses the single-flight future idiom (concurrent first-touchers
 * of one key block on one computation -- this is what dedupes in-flight
 * cells across `moatsim serve` clients); a compute that throws
 * propagates to every waiter and is never cached, so a retry
 * recomputes. The on-disk back is a directory of append-only JSONL
 * shards, each record framed with the key, an FNV payload checksum,
 * and a CRC-32 over all three fields (older records without the CRC
 * still parse by their checksum alone).
 *
 * Crash safety: a torn, truncated, or bit-flipped record is *counted
 * and quarantined*, never silently skipped and never an error -- the
 * load moves the damaged raw lines to `quarantine.jsonl` in the shard
 * directory and compacts the shard atomically (tmp + rename), so the
 * next load is clean and the damaged cells simply recompute.
 * `moatsim store fsck` runs the same scan/repair offline (fsck()).
 * Append failures degrade the store to in-memory for that shard and
 * are warned once and counted; the health counters (append failures,
 * quarantined records, compactions) ride the Stats snapshot and the
 * serve `stats` reply. All of these failure paths are exercised under
 * the deterministic fault sites `result-store.append` and
 * `result-store.read` (common/fault.hh).
 *
 * Invalidation is explicit: the store folds Config::epoch into every
 * key, so a code change that alters what results mean (new fields, new
 * semantics, recalibration) must bump kResultStoreEpoch -- stale
 * entries then simply never match again. Nothing else invalidates;
 * that is the contract that makes warm runs O(changed cells).
 *
 * Enable it with MOATSIM_RESULT_STORE=DIR (persistent) or
 * MOATSIM_RESULT_STORE=1 (in-memory only), or the CLI --result-store
 * flag; unset or "0" leaves it disabled and getOrCompute() computes
 * every call.
 */

#ifndef MOATSIM_SIM_RESULT_STORE_HH
#define MOATSIM_SIM_RESULT_STORE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.hh"

namespace moatsim::sim
{

/**
 * Schema epoch of the result store. Bump it whenever a change alters
 * what a stored result means for an unchanged key: result fields added
 * or reinterpreted, metric definitions recalibrated, cell-key inputs
 * added (see CONTRIBUTING.md). Old entries then miss instead of
 * serving stale bytes.
 */
inline constexpr uint64_t kResultStoreEpoch = 1;

/** Shared, persistent cache of computed result lines. */
class ResultStore
{
  public:
    // moatlint: key-source(ResultStore::foldKey)
    struct Config
    {
        /** false: getOrCompute() computes every call, caches nothing. */
        // moatlint: key-exempt(ResultStore::foldKey): whether caching
        // is on changes how a result is obtained, never its bytes --
        // keying on it would make cold and warm runs disjoint
        bool enabled = false;
        /**
         * Shard directory (created on demand). Empty = in-memory only:
         * single-flight dedupe and warm hits within the process, no
         * persistence.
         */
        // moatlint: key-exempt(ResultStore::foldKey): a storage
        // location; the same result must hit wherever the shards live
        std::string dir;
        /** Schema epoch folded into every key (kResultStoreEpoch). */
        uint64_t epoch = kResultStoreEpoch;
    };

    /** Counters of store activity (monotonic over the store's life). */
    struct Stats
    {
        /** Calls served from a resolved or in-flight entry. */
        uint64_t hits = 0;
        /** Calls that found no entry (disabled store included). */
        uint64_t misses = 0;
        /** Payloads actually computed (= misses that ran the lambda). */
        uint64_t computes = 0;
        /** Entries loaded from the shard files at construction. */
        uint64_t loaded = 0;
        /** Shard records found corrupt/truncated/bad-checksum. */
        uint64_t corrupt = 0;
        /** Damaged raw lines moved to quarantine.jsonl. */
        uint64_t quarantined = 0;
        /** Shard files compacted (rewritten atomically) at load. */
        uint64_t compactions = 0;
        /** Shard appends that failed (store degraded to in-memory). */
        uint64_t appendFailures = 0;
        /** Entries currently resident (in-flight included). */
        size_t entries = 0;
        /** Computations currently in flight. */
        size_t inFlight = 0;

        /** Fraction of calls served without recomputing. */
        double hitRate() const
        {
            const uint64_t total = hits + misses;
            return total > 0 ? static_cast<double>(hits) /
                                   static_cast<double>(total)
                             : 0.0;
        }
    };

    /** What a shard-directory scan found (`moatsim store fsck`). */
    struct FsckReport
    {
        /** Shard files present and scanned. */
        uint64_t shards = 0;
        /** Records that parse and checksum. */
        uint64_t valid = 0;
        /** Damaged records (quarantined in repair mode). */
        uint64_t corrupt = 0;
        /** Same-key re-appends (latest wins; dropped by repair). */
        uint64_t duplicates = 0;
        /** Shard files rewritten (repair mode only). */
        uint64_t repaired = 0;

        /** Whether every record on disk is intact. */
        bool clean() const { return corrupt == 0; }
    };

    /** Store configured from the environment (envConfig()). */
    ResultStore();

    /** Loads every shard of config.dir up front when enabled. */
    explicit ResultStore(const Config &config);

    /**
     * The payload of @p key; computed by @p compute on first touch,
     * shared afterwards. Concurrent first-touchers of one key block on
     * the single computation (the computing thread runs @p compute
     * outside every store lock). A @p compute that throws propagates
     * the exception to the caller and every waiter, and the entry is
     * dropped -- failures are never cached. Thread-safe. The epoch is
     * folded in here -- callers pass the raw cell key.
     */
    std::shared_ptr<const std::string>
    getOrCompute(uint64_t key,
                 const std::function<std::string()> &compute)
        EXCLUDES(mu_, io_mu_);

    /** Whether the store caches at all. */
    bool enabled() const { return config_.enabled; }

    const Config &config() const { return config_; }

    Stats stats() const EXCLUDES(mu_, io_mu_);

    /**
     * Scan the shard files of @p dir: every record must decode and
     * match its checksums. With @p repair, damaged raw lines move to
     * `quarantine.jsonl` and each affected shard is compacted in place
     * (atomic tmp + rename, latest record per key wins, records
     * re-framed with the CRC). Standalone -- does not construct a
     * store or consult the epoch.
     */
    static FsckReport fsck(const std::string &dir, bool repair);

    /**
     * Config from the environment: MOATSIM_RESULT_STORE unset or "0"
     * = disabled, "1" = enabled in-memory only, anything else = the
     * shard directory of an enabled persistent store.
     * MOATSIM_RESULT_STORE_EPOCH overrides the epoch (test hook).
     */
    static Config envConfig();

    /** The Config a knob string denotes -- the shared grammar of
     *  MOATSIM_RESULT_STORE and the CLI --result-store flag: "" or
     *  "0" = disabled, "1" = enabled in-memory only, anything else =
     *  the shard directory of an enabled persistent store. */
    static Config configOf(const std::string &text);

  private:
    struct Entry
    {
        std::shared_future<std::shared_ptr<const std::string>> future;
        /** Resolved (vs still in flight). */
        bool resolved = false;
    };

    /** Fold the schema epoch into a raw cell key. */
    uint64_t foldKey(uint64_t key) const;

    /** Read every shard of config_.dir into entries_, quarantining
     *  and compacting damaged shards (ctor only). */
    void loadShards();

    /** Append one resolved record to its shard file. */
    void appendRecord(uint64_t folded, const std::string &payload)
        EXCLUDES(io_mu_);

    /** Shard file path of a (folded) key. */
    std::string shardPathOf(uint64_t folded) const;

    /** Immutable after construction. */
    Config config_;
    mutable Mutex mu_;
    std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
    uint64_t hits_ GUARDED_BY(mu_) = 0;
    uint64_t misses_ GUARDED_BY(mu_) = 0;
    uint64_t computes_ GUARDED_BY(mu_) = 0;
    uint64_t loaded_ GUARDED_BY(mu_) = 0;
    uint64_t corrupt_ GUARDED_BY(mu_) = 0;
    uint64_t quarantined_ GUARDED_BY(mu_) = 0;
    uint64_t compactions_ GUARDED_BY(mu_) = 0;
    size_t in_flight_ GUARDED_BY(mu_) = 0;
    /** Serializes shard appends (never held together with mu_). */
    mutable Mutex io_mu_;
    uint64_t append_failures_ GUARDED_BY(io_mu_) = 0;
    /** Shards already warned about failing appends (bit per shard). */
    uint32_t warned_shards_ GUARDED_BY(io_mu_) = 0;
};

} // namespace moatsim::sim

#endif // MOATSIM_SIM_RESULT_STORE_HH
