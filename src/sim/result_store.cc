#include "sim/result_store.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/hash.hh"
#include "sim/result_io.hh"

namespace moatsim::sim
{

namespace
{

/** Fixed shard fan-out: small enough to open-and-scan cheaply, large
 *  enough that concurrent appends rarely contend on one file. */
constexpr uint64_t kShards = 16;

std::string
hex16(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

/** Exactly 16 lowercase hex digits; anything else is corrupt. */
bool
parseHex16(const std::string &s, uint64_t *out)
{
    if (s.size() != 16)
        return false;
    uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    *out = v;
    return true;
}

} // namespace

ResultStore::ResultStore() : ResultStore(envConfig())
{
}

ResultStore::ResultStore(const Config &config) : config_(config)
{
    if (config_.enabled && !config_.dir.empty()) {
        // Best-effort: an unwritable directory degrades the store to
        // in-memory (appends fail silently, loads see no shards).
        std::error_code ec;
        std::filesystem::create_directories(config_.dir, ec);
        loadShards();
    }
}

uint64_t
ResultStore::foldKey(uint64_t key) const
{
    // The epoch participates in the *stored* key, so an epoch bump
    // orphans every old record -- explicit, total invalidation.
    return hashCombine(hashMix(config_.epoch), key);
}

std::string
ResultStore::shardPathOf(uint64_t folded) const
{
    char buf[8];
    std::snprintf(buf, sizeof buf, "%02x",
                  static_cast<unsigned>(folded % kShards));
    return config_.dir + "/shard-" + buf + ".jsonl";
}

void
ResultStore::loadShards()
{
    MutexLock lock(mu_);
    for (uint64_t shard = 0; shard < kShards; ++shard) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "%02x",
                      static_cast<unsigned>(shard));
        std::ifstream is(config_.dir + "/shard-" + buf + ".jsonl");
        if (!is)
            continue; // fresh store: shards appear on first compute
        std::string line;
        while (std::getline(is, line)) {
            if (line.empty())
                continue;
            // Every record must decode, carry the expected kind, and
            // checksum-match its payload; anything else (truncated
            // tail line, flipped byte, foreign file) is counted and
            // skipped -- a corrupt record is a miss, never an error.
            std::string kind;
            std::string key_text;
            std::string sum_text;
            std::string payload;
            uint64_t key = 0;
            uint64_t sum = 0;
            if (!tryJsonField(line, "kind", &kind) || kind != "result" ||
                !tryJsonField(line, "key", &key_text) ||
                !tryJsonField(line, "sum", &sum_text) ||
                !tryJsonField(line, "payload", &payload) ||
                !parseHex16(key_text, &key) ||
                !parseHex16(sum_text, &sum) ||
                stableHash64(payload) != sum) {
                ++corrupt_;
                continue;
            }
            // Later records win (a re-append after a partial write),
            // but payloads of equal keys are equal bytes anyway.
            std::promise<std::shared_ptr<const std::string>> promise;
            Entry e;
            e.future = promise.get_future().share();
            e.resolved = true;
            promise.set_value(
                std::make_shared<const std::string>(std::move(payload)));
            entries_[key] = std::move(e);
            ++loaded_;
        }
    }
}

void
ResultStore::appendRecord(uint64_t folded, const std::string &payload)
{
    MutexLock lock(io_mu_);
    std::ofstream os(shardPathOf(folded), std::ios::app);
    if (!os)
        return; // best-effort: the in-memory entry still serves
    os << "{\"kind\":\"result\",\"key\":\"" << hex16(folded)
       << "\",\"sum\":\"" << hex16(stableHash64(payload))
       << "\",\"payload\":" << jsonQuote(payload) << "}\n";
}

ResultStore::Config
ResultStore::configOf(const std::string &text)
{
    Config cfg;
    if (!text.empty() && text != "0") {
        cfg.enabled = true;
        if (text != "1")
            cfg.dir = text;
    }
    return cfg;
}

ResultStore::Config
ResultStore::envConfig()
{
    Config cfg;
    // getenv is read at startup before any worker threads exist, and
    // nothing in the process mutates the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *s = std::getenv("MOATSIM_RESULT_STORE"))
        cfg = configOf(s);
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *s = std::getenv("MOATSIM_RESULT_STORE_EPOCH")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end != s && *end == '\0')
            cfg.epoch = v;
    }
    return cfg;
}

std::shared_ptr<const std::string>
ResultStore::getOrCompute(uint64_t key,
                          const std::function<std::string()> &compute)
{
    if (!config_.enabled) {
        auto value = std::make_shared<const std::string>(compute());
        MutexLock lock(mu_);
        ++misses_;
        ++computes_;
        return value;
    }

    const uint64_t folded = foldKey(key);
    std::shared_future<std::shared_ptr<const std::string>> future;
    std::promise<std::shared_ptr<const std::string>> promise;
    bool run = false;
    {
        MutexLock lock(mu_);
        auto it = entries_.find(folded);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            Entry e;
            e.future = future;
            entries_.emplace(folded, e);
            ++misses_;
            ++computes_;
            ++in_flight_;
            run = true;
        } else {
            future = it->second.future;
            ++hits_;
        }
    }

    if (run) {
        // Only the winning first-toucher computes, outside every store
        // lock; everyone else blocks on the shared future.
        auto value = std::make_shared<const std::string>(compute());
        promise.set_value(value);
        {
            MutexLock lock(mu_);
            auto it = entries_.find(folded);
            if (it != entries_.end())
                it->second.resolved = true;
            --in_flight_;
        }
        if (!config_.dir.empty())
            appendRecord(folded, *value);
        return value;
    }
    return future.get();
}

ResultStore::Stats
ResultStore::stats() const
{
    MutexLock lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.computes = computes_;
    s.loaded = loaded_;
    s.corrupt = corrupt_;
    s.entries = entries_.size();
    s.inFlight = in_flight_;
    return s;
}

} // namespace moatsim::sim
