#include "sim/result_store.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/result_io.hh"

namespace moatsim::sim
{

namespace
{

/** Fixed shard fan-out: small enough to open-and-scan cheaply, large
 *  enough that concurrent appends rarely contend on one file. */
constexpr uint64_t kShards = 16;

std::string
hex16(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

std::string
hex8(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08" PRIx32, v);
    return buf;
}

/** Exactly 16 lowercase hex digits; anything else is corrupt. */
bool
parseHex16(const std::string &s, uint64_t *out)
{
    if (s.size() != 16)
        return false;
    uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    *out = v;
    return true;
}

std::string
shardFileOf(const std::string &dir, uint64_t shard)
{
    char buf[8];
    std::snprintf(buf, sizeof buf, "%02x", static_cast<unsigned>(shard));
    return dir + "/shard-" + buf + ".jsonl";
}

std::string
quarantineFileOf(const std::string &dir)
{
    return dir + "/quarantine.jsonl";
}

/**
 * One shard record, framed for tear detection: the FNV sum covers the
 * payload (the original framing, still accepted alone for records
 * written before the CRC existed) and the CRC-32 covers the key text,
 * the sum text, and the payload -- so damage to *any* field, not just
 * the payload, fails the frame.
 */
std::string
recordLineOf(uint64_t folded, const std::string &payload)
{
    const std::string key_text = hex16(folded);
    const std::string sum_text = hex16(stableHash64(payload));
    const uint32_t crc = crc32(key_text + sum_text + payload);
    return "{\"kind\":\"result\",\"key\":\"" + key_text +
           "\",\"sum\":\"" + sum_text +
           "\",\"payload\":" + jsonQuote(payload) + ",\"crc\":\"" +
           hex8(crc) + "\"}";
}

/**
 * Decode and frame-check one shard line. Every record must decode,
 * carry the expected kind, and checksum-match its payload; a record
 * with a crc field must additionally CRC-match across key + sum +
 * payload. Anything else (truncated tail line, flipped byte, foreign
 * file) is corrupt -- a miss, never an error.
 */
bool
tryParseRecord(const std::string &line, uint64_t *key,
               std::string *payload)
{
    std::string kind;
    std::string key_text;
    std::string sum_text;
    uint64_t sum = 0;
    if (!tryJsonField(line, "kind", &kind) || kind != "result" ||
        !tryJsonField(line, "key", &key_text) ||
        !tryJsonField(line, "sum", &sum_text) ||
        !tryJsonField(line, "payload", payload) ||
        !parseHex16(key_text, key) || !parseHex16(sum_text, &sum) ||
        stableHash64(*payload) != sum)
        return false;
    std::string crc_text;
    if (tryJsonField(line, "crc", &crc_text))
        return crc_text.size() == 8 &&
               crc_text == hex8(crc32(key_text + sum_text + *payload));
    // Only records written before the CRC existed may rest on the sum
    // alone; a crc token that is present but unextractable is a torn
    // tail, not a legacy record.
    return line.find("\"crc\"") == std::string::npos;
}

/** Everything one pass over a shard file found. */
struct ShardScan
{
    /** Intact records in file order, deduped latest-wins. */
    std::vector<std::pair<uint64_t, std::string>> records;
    /** Raw damaged lines, in file order. */
    std::vector<std::string> corrupt_lines;
    /** Same-key re-appends folded into an earlier slot. */
    uint64_t duplicates = 0;
    /** Whether the file existed at all. */
    bool present = false;
};

/** Scan @p path record by record. @p inject_read_faults evaluates the
 *  result-store.read site per record (the live load path; fsck scans
 *  what is actually on disk). */
ShardScan
scanShard(const std::string &path, bool inject_read_faults)
{
    ShardScan scan;
    std::ifstream is(path);
    if (!is)
        return scan; // fresh store: shards appear on first compute
    scan.present = true;
    std::unordered_map<uint64_t, size_t> slot_of;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        uint64_t key = 0;
        std::string payload;
        const bool injected =
            inject_read_faults && fault::shouldFail("result-store.read");
        if (injected || !tryParseRecord(line, &key, &payload)) {
            scan.corrupt_lines.push_back(line);
            continue;
        }
        // Later records win (a re-append after a partial write), but
        // payloads of equal keys are equal bytes anyway.
        const auto it = slot_of.find(key);
        if (it != slot_of.end()) {
            scan.records[it->second].second = std::move(payload);
            ++scan.duplicates;
        } else {
            slot_of.emplace(key, scan.records.size());
            scan.records.emplace_back(key, std::move(payload));
        }
    }
    return scan;
}

/** Move @p lines to the directory's quarantine file (append-only, raw
 *  bytes); false on I/O failure. */
bool
appendQuarantine(const std::string &dir,
                 const std::vector<std::string> &lines)
{
    if (lines.empty())
        return true;
    std::ofstream os(quarantineFileOf(dir), std::ios::app);
    if (!os)
        return false;
    for (const auto &line : lines)
        os << line << "\n";
    os.flush();
    return static_cast<bool>(os);
}

/** Atomically replace @p path with @p records, re-framed with the
 *  CRC: write a sibling tmp file, then rename over the original. On
 *  any failure the original file is left untouched. */
bool
rewriteShard(const std::string &path,
             const std::vector<std::pair<uint64_t, std::string>> &records)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        for (const auto &[key, payload] : records)
            os << recordLineOf(key, payload) << "\n";
        os.flush();
        if (!os) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace

ResultStore::ResultStore() : ResultStore(envConfig())
{
}

ResultStore::ResultStore(const Config &config) : config_(config)
{
    if (config_.enabled && !config_.dir.empty()) {
        // Best-effort: an unwritable directory degrades the store to
        // in-memory (appends warn once and count, loads see no
        // shards).
        std::error_code ec;
        std::filesystem::create_directories(config_.dir, ec);
        loadShards();
    }
}

uint64_t
ResultStore::foldKey(uint64_t key) const
{
    // The epoch participates in the *stored* key, so an epoch bump
    // orphans every old record -- explicit, total invalidation.
    return hashCombine(hashMix(config_.epoch), key);
}

std::string
ResultStore::shardPathOf(uint64_t folded) const
{
    return shardFileOf(config_.dir, folded % kShards);
}

void
ResultStore::loadShards()
{
    MutexLock lock(mu_);
    for (uint64_t shard = 0; shard < kShards; ++shard) {
        const std::string path = shardFileOf(config_.dir, shard);
        ShardScan scan = scanShard(path, /*inject_read_faults=*/true);
        for (auto &[key, payload] : scan.records) {
            std::promise<std::shared_ptr<const std::string>> promise;
            Entry e;
            e.future = promise.get_future().share();
            e.resolved = true;
            promise.set_value(
                std::make_shared<const std::string>(std::move(payload)));
            entries_[key] = std::move(e);
        }
        loaded_ += scan.records.size() + scan.duplicates;
        corrupt_ += scan.corrupt_lines.size();
        if (scan.corrupt_lines.empty())
            continue;
        // Self-heal: a damaged record is quarantined and counted,
        // never silently dropped -- and the shard is compacted
        // (atomic tmp + rename) so the next load starts clean. The
        // damaged cells simply recompute and re-append.
        warn("result store: " +
             std::to_string(scan.corrupt_lines.size()) +
             " corrupt record(s) in " + path + "; quarantining");
        if (appendQuarantine(config_.dir, scan.corrupt_lines))
            quarantined_ += scan.corrupt_lines.size();
        if (rewriteShard(path, scan.records))
            ++compactions_;
    }
}

void
ResultStore::appendRecord(uint64_t folded, const std::string &payload)
{
    MutexLock lock(io_mu_);
    bool failed = fault::shouldFail("result-store.append");
    if (!failed) {
        std::ofstream os(shardPathOf(folded), std::ios::app);
        if (os) {
            os << recordLineOf(folded, payload) << "\n";
            os.flush();
        }
        failed = !os;
    }
    if (!failed)
        return;
    // Best-effort persistence: the in-memory entry still serves, so
    // an unwritable shard costs recomputes in *future* processes,
    // never correctness now. Warn once per shard, count every miss.
    ++append_failures_;
    const uint32_t shard_bit = 1U << (folded % kShards);
    if ((warned_shards_ & shard_bit) == 0) {
        warned_shards_ |= shard_bit;
        warn("result store: cannot append to " + shardPathOf(folded) +
             "; serving this shard from memory only");
    }
}

ResultStore::FsckReport
ResultStore::fsck(const std::string &dir, bool repair)
{
    FsckReport report;
    for (uint64_t shard = 0; shard < kShards; ++shard) {
        const std::string path = shardFileOf(dir, shard);
        ShardScan scan = scanShard(path, /*inject_read_faults=*/false);
        if (!scan.present)
            continue;
        ++report.shards;
        report.valid += scan.records.size();
        report.corrupt += scan.corrupt_lines.size();
        report.duplicates += scan.duplicates;
        if (!repair ||
            (scan.corrupt_lines.empty() && scan.duplicates == 0))
            continue;
        if (!appendQuarantine(dir, scan.corrupt_lines)) {
            warn("fsck: cannot quarantine " +
                 std::to_string(scan.corrupt_lines.size()) +
                 " record(s) from " + path + "; shard left as is");
            continue;
        }
        if (rewriteShard(path, scan.records))
            ++report.repaired;
        else
            warn("fsck: cannot rewrite " + path + "; shard left as is");
    }
    return report;
}

ResultStore::Config
ResultStore::configOf(const std::string &text)
{
    Config cfg;
    if (!text.empty() && text != "0") {
        cfg.enabled = true;
        if (text != "1")
            cfg.dir = text;
    }
    return cfg;
}

ResultStore::Config
ResultStore::envConfig()
{
    Config cfg;
    // getenv is read at startup before any worker threads exist, and
    // nothing in the process mutates the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *s = std::getenv("MOATSIM_RESULT_STORE"))
        cfg = configOf(s);
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *s = std::getenv("MOATSIM_RESULT_STORE_EPOCH")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end != s && *end == '\0')
            cfg.epoch = v;
    }
    return cfg;
}

std::shared_ptr<const std::string>
ResultStore::getOrCompute(uint64_t key,
                          const std::function<std::string()> &compute)
{
    if (!config_.enabled) {
        auto value = std::make_shared<const std::string>(compute());
        MutexLock lock(mu_);
        ++misses_;
        ++computes_;
        return value;
    }

    const uint64_t folded = foldKey(key);
    std::shared_future<std::shared_ptr<const std::string>> future;
    std::promise<std::shared_ptr<const std::string>> promise;
    bool run = false;
    {
        MutexLock lock(mu_);
        auto it = entries_.find(folded);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            Entry e;
            e.future = future;
            entries_.emplace(folded, e);
            ++misses_;
            ++computes_;
            ++in_flight_;
            run = true;
        } else {
            future = it->second.future;
            ++hits_;
        }
    }

    if (run) {
        // Only the winning first-toucher computes, outside every store
        // lock; everyone else blocks on the shared future.
        std::shared_ptr<const std::string> value;
        try {
            value = std::make_shared<const std::string>(compute());
        } catch (...) {
            // A failed compute is never cached: drop the entry so the
            // next touch recomputes, and propagate the exception to
            // every waiter blocked on the shared future.
            {
                MutexLock lock(mu_);
                entries_.erase(folded);
                --in_flight_;
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        promise.set_value(value);
        {
            MutexLock lock(mu_);
            auto it = entries_.find(folded);
            if (it != entries_.end())
                it->second.resolved = true;
            --in_flight_;
        }
        if (!config_.dir.empty())
            appendRecord(folded, *value);
        return value;
    }
    return future.get();
}

ResultStore::Stats
ResultStore::stats() const
{
    Stats s;
    {
        MutexLock lock(mu_);
        s.hits = hits_;
        s.misses = misses_;
        s.computes = computes_;
        s.loaded = loaded_;
        s.corrupt = corrupt_;
        s.quarantined = quarantined_;
        s.compactions = compactions_;
        s.entries = entries_.size();
        s.inFlight = in_flight_;
    }
    {
        MutexLock lock(io_mu_);
        s.appendFailures = append_failures_;
    }
    return s;
}

} // namespace moatsim::sim
