#include "sim/coattack.hh"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/perf.hh"
#include "sim/result_io.hh"

namespace moatsim::sim
{

namespace
{

/** The channel template of a co-attack System: unlike perf runs the
 *  security oracle stays on -- attacker exposure is the point. */
subchannel::SubChannelConfig
coChannelConfig(const workload::TraceGenConfig &tg, abo::Level level,
                uint64_t seed)
{
    subchannel::SubChannelConfig sc;
    sc.timing = tg.timing;
    sc.numBanks = tg.banksSimulated;
    sc.aboLevel = level;
    sc.securityEnabled = true;
    sc.seed = seed;
    return sc;
}

} // namespace

uint64_t
coAttackCellSeed(const workload::TraceGenConfig &config,
                 const workload::WorkloadSpec &spec,
                 const mitigation::MitigatorSpec &mitigator,
                 abo::Level level,
                 const workload::AttackTraceConfig & /*attack*/)
{
    // Deliberately independent of the attack: the attacked run and its
    // attack-free baseline share one system state (seeding, counter
    // init) and differ only in the command stream, exactly like a real
    // co-tenant attack.
    return hashCombine(cellSeed(config, spec, mitigator, level),
                       stableHash64("coattack"));
}

uint64_t
coAttackCellKey(const workload::TraceGenConfig &config,
                const CoreModel &core, const CoAttackCell &cell)
{
    // Unlike the seed, the key must separate results by attack shape:
    // every scenario field shapes the replayed command stream, so
    // every field is folded in.
    uint64_t h = perfCellKey(config, core, cell.workload, cell.mitigator,
                             cell.level);
    h = hashCombine(h, stableHash64(cell.attack.pattern));
    h = hashCombine(h, static_cast<uint64_t>(cell.attack.poolRows));
    h = hashCombine(h, cell.attack.budget);
    h = hashCombine(h, static_cast<uint64_t>(cell.attack.subchannel));
    h = hashCombine(h, static_cast<uint64_t>(cell.attack.bank));
    h = hashCombine(h, cell.attack.seed);
    return hashCombine(h, stableHash64("coattack-cell"));
}

workload::AttackTraceConfig
resolveAttack(const CoAttackScenario &scenario,
              const workload::TraceGenConfig &config)
{
    workload::AttackTraceConfig at;
    at.timing = config.timing;
    at.pattern = scenario.pattern;
    at.subchannel = scenario.subchannel;
    at.bank = static_cast<BankId>(scenario.bank);
    at.poolRows = scenario.poolRows;
    at.budget = scenario.budget;
    at.window = static_cast<Time>(
        static_cast<double>(config.timing.tREFW) * config.windowFraction);
    at.seed = scenario.seed;
    return at;
}

SystemResult
runCoSystem(const workload::TraceGenConfig &config, const CoreModel &core,
            const workload::WorkloadSpec &spec,
            const mitigation::MitigatorSpec &mitigator, abo::Level level,
            const workload::AttackTraceConfig &attack,
            uint32_t *attacker_max_hammer, const workload::TraceSet *benign)
{
    const uint32_t subchannels = std::max(1u, config.subchannels);
    const uint32_t slots = std::max(1u, config.channels) *
                           std::max(1u, config.ranks) * subchannels;
    if (attack.subchannel >= slots)
        fatal("runCoSystem: attack sub-channel slot " +
              std::to_string(attack.subchannel) + " out of range (" +
              std::to_string(slots) + " simulated)");
    if (attack.bank >= config.banksSimulated)
        fatal("runCoSystem: attack bank " + std::to_string(attack.bank) +
              " out of range (" + std::to_string(config.banksSimulated) +
              " simulated)");

    // Benign traffic: the shared (store-cached) set when provided, a
    // locally generated one otherwise. The attacker core rides along
    // as one more borrowed view, so appending it never copies the
    // benign slab.
    std::unique_ptr<const workload::TraceSet> local;
    if (benign == nullptr) {
        local = std::make_unique<const workload::TraceSet>(
            workload::generateTraces(spec, config));
        benign = local.get();
    }
    const workload::AttackTrace at = workload::generateAttackTrace(attack);
    std::vector<workload::CoreTraceView> views = benign->views();
    if (!at.trace.events.empty())
        views.push_back(workload::viewOf(at.trace));

    SystemConfig sys;
    sys.channel = coChannelConfig(
        config, level,
        coAttackCellSeed(config, spec, mitigator, level, attack));
    sys.subchannels = subchannels;
    sys.channels = std::max(1u, config.channels);
    sys.ranks = std::max(1u, config.ranks);
    System system(sys, mitigator.factory());
    system.setPostponeRefresh(
        workload::attackPostponesRefresh(attack.pattern));

    const SystemResult res = runSystem(system, views, core);

    if (attacker_max_hammer != nullptr) {
        uint32_t peak = 0;
        const auto &sec =
            system.subchannel(at.subchannel).security(at.bank);
        for (const RowId row : at.rows)
            peak = std::max(peak, sec.peakHammer(row));
        *attacker_max_hammer = peak;
    }
    return res;
}

CoAttackEngine::CoAttackEngine(const SweepConfig &config)
    : config_(config),
      jobs_(config.jobs > 0 ? config.jobs : ThreadPool::hardwareThreads())
{
    if (!config_.traceStore)
        config_.traceStore = std::make_shared<workload::TraceStore>();
    if (!config_.resultStore)
        config_.resultStore = std::make_shared<ResultStore>();
}

std::shared_ptr<const CoAttackEngine::Baseline>
CoAttackEngine::baseline(const CoAttackCell &cell)
{
    uint64_t key = hashCombine(perfConfigKey(config_.tracegen, config_.core),
                               stableHash64(cell.workload.name));
    key = hashCombine(key, stableHash64(cell.mitigator.describe()));
    key = hashCombine(key,
                      static_cast<uint64_t>(abo::levelValue(cell.level)));
    key = hashCombine(key, stableHash64("coattack-baseline"));

    std::shared_future<std::shared_ptr<const Baseline>> future;
    std::promise<std::shared_ptr<const Baseline>> promise;
    bool compute = false;
    {
        MutexLock lock(mu_);
        auto it = baselines_.find(key);
        if (it == baselines_.end()) {
            future = promise.get_future().share();
            baselines_.emplace(key, future);
            compute = true;
        } else {
            future = it->second;
        }
    }
    if (compute) {
        std::shared_ptr<Baseline> base;
        try {
            CoAttackScenario none;
            none.pattern = "none";
            const auto benign =
                config_.traceStore->get(cell.workload, config_.tracegen);
            const SystemResult res = runCoSystem(
                config_.tracegen, config_.core, cell.workload,
                cell.mitigator, cell.level,
                resolveAttack(none, config_.tracegen), nullptr,
                benign.get());
            base = std::make_shared<Baseline>();
            base->coreFinish = res.coreFinish;
            base->totalActs = res.totalActs;
            base->alerts = res.alerts;
            base->refs = res.refs;
            for (const auto &u : res.perSubchannel)
                base->rfms += u.rfms;
        } catch (...) {
            // A failed baseline run is never cached: drop the entry so
            // the next touch recomputes, and propagate the exception
            // to every waiter blocked on the shared future.
            {
                MutexLock lock(mu_);
                baselines_.erase(key);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        promise.set_value(std::move(base));
    }
    return future.get();
}

CoAttackResult
CoAttackEngine::runCell(const CoAttackCell &cell)
{
    // Store-first, exactly like SweepEngine::runCell: a warm hit skips
    // the attack-free baseline and the co-run entirely, and both paths
    // round-trip through the byte-stable JSONL payload.
    if (!config_.resultStore->enabled())
        return computeCell(cell);
    const uint64_t key =
        coAttackCellKey(config_.tracegen, config_.core, cell);
    const auto payload = config_.resultStore->getOrCompute(
        key, [&] { return toJsonLine(computeCell(cell)); });
    return coAttackResultOfJsonLine(*payload);
}

CoAttackResult
CoAttackEngine::computeCell(const CoAttackCell &cell)
{
    // Same chaos boundary as SweepEngine::computeCell: upstream of the
    // result store, so injected failures are never cached.
    fault::failPoint("sweep.compute");
    const auto base = baseline(cell);

    CoAttackResult out;
    out.workload = cell.workload.name;
    out.mitigator = cell.mitigator.describe();
    out.device = config_.tracegen.device;
    out.pattern = cell.attack.pattern;
    out.aboLevel = abo::levelValue(cell.level);
    out.victimActs = base->totalActs;
    out.attackFreeAlerts = base->alerts;
    out.attackFreeRfms = base->rfms;
    if (base->refs > 0) {
        out.attackFreeAlertsPerRefi =
            static_cast<double>(base->alerts) /
            static_cast<double>(base->refs);
    }

    if (cell.attack.pattern == "none") {
        // The attack-free cell *is* the baseline.
        out.alerts = base->alerts;
        out.rfms = base->rfms;
        out.refs = base->refs;
        out.alertsPerRefi = out.attackFreeAlertsPerRefi;
        return out;
    }

    const workload::AttackTraceConfig attack =
        resolveAttack(cell.attack, config_.tracegen);
    uint32_t max_hammer = 0;
    const auto benign =
        config_.traceStore->get(cell.workload, config_.tracegen);
    const SystemResult co =
        runCoSystem(config_.tracegen, config_.core, cell.workload,
                    cell.mitigator, cell.level, attack, &max_hammer,
                    benign.get());

    out.attackerMaxHammer = max_hammer;
    out.attackerActs = co.totalActs - base->totalActs;
    out.alerts = co.alerts;
    out.refs = co.refs;
    for (const auto &u : co.perSubchannel)
        out.rfms += u.rfms;
    if (co.refs > 0) {
        out.alertsPerRefi = static_cast<double>(co.alerts) /
                            static_cast<double>(co.refs);
    }

    // Victim classes occupy [0, numCores); the attacker is last.
    const size_t victims =
        std::min(base->coreFinish.size(), co.coreFinish.size());
    double slow_sum = 0.0;
    double norm_sum = 0.0;
    size_t n = 0;
    for (size_t c = 0; c < victims; ++c) {
        if (base->coreFinish[c] <= 0 || co.coreFinish[c] <= 0)
            continue;
        slow_sum += static_cast<double>(co.coreFinish[c]) /
                    static_cast<double>(base->coreFinish[c]);
        norm_sum += static_cast<double>(base->coreFinish[c]) /
                    static_cast<double>(co.coreFinish[c]);
        ++n;
    }
    if (n > 0) {
        out.victimSlowdown = slow_sum / static_cast<double>(n);
        out.victimNormPerf = norm_sum / static_cast<double>(n);
    }
    return out;
}

std::vector<CoAttackResult>
CoAttackEngine::run(const std::vector<CoAttackCell> &cells)
{
    return run(cells, nullptr);
}

std::vector<CoAttackResult>
CoAttackEngine::run(const std::vector<CoAttackCell> &cells,
                    const CellSink &sink)
{
    std::vector<CoAttackResult> results(cells.size());
    // ThreadPool jobs must not throw (see SweepEngine::run): capture
    // per-cell failures, keep the rest of the sweep running, rethrow
    // the lowest failed index afterwards.
    std::vector<std::exception_ptr> errors(cells.size());
    const auto runOne = [&](size_t i) noexcept {
        try {
            results[i] = runCell(cells[i]);
            if (sink)
                sink(i, results[i]);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };
    if (jobs_ <= 1 || cells.size() <= 1) {
        for (size_t i = 0; i < cells.size(); ++i)
            runOne(i);
    } else {
        ThreadPool pool(
            std::min(jobs_, static_cast<unsigned>(cells.size())));
        for (size_t i = 0; i < cells.size(); ++i)
            pool.submit([&runOne, i] { runOne(i); });
        pool.wait();
    }
    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::vector<CoAttackCell>
crossCoAttackCells(const std::vector<workload::WorkloadSpec> &workloads,
                   const std::vector<mitigation::MitigatorSpec> &mitigators,
                   abo::Level level, const CoAttackScenario &attack)
{
    std::vector<CoAttackCell> cells;
    cells.reserve(workloads.size() * mitigators.size());
    for (const auto &m : mitigators) {
        for (const auto &w : workloads)
            cells.push_back({w, m, level, attack});
    }
    return cells;
}

} // namespace moatsim::sim
