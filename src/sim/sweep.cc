#include "sim/sweep.hh"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/fault.hh"
#include "common/thread_pool.hh"
#include "sim/result_io.hh"

namespace moatsim::sim
{

SweepEngine::SweepEngine(const SweepConfig &config)
    : SweepEngine(config, std::make_shared<BaselineCache>())
{
}

SweepEngine::SweepEngine(const SweepConfig &config,
                         std::shared_ptr<BaselineCache> baselines)
    : config_(config),
      jobs_(config.jobs > 0 ? config.jobs : ThreadPool::hardwareThreads()),
      baselines_(std::move(baselines))
{
    if (!config_.traceStore)
        config_.traceStore = std::make_shared<workload::TraceStore>();
    if (!config_.resultStore)
        config_.resultStore = std::make_shared<ResultStore>();
}

PerfResult
SweepEngine::runCell(const SweepCell &cell)
{
    // Store-first: a warm hit serves the cached JSONL payload without
    // touching traces or baselines (a warm matrix re-run does zero
    // trace generations). Both the hit and the compute path round-trip
    // the result through serialize -> parse, so the returned struct is
    // byte-equivalent either way; with the store disabled the
    // round-trip is skipped entirely, reproducing the pre-store
    // pipeline exactly.
    if (!config_.resultStore->enabled())
        return computeCell(cell);
    const uint64_t key = perfCellKey(config_.tracegen, config_.core,
                                     cell.workload, cell.mitigator,
                                     cell.level);
    const auto payload = config_.resultStore->getOrCompute(
        key, [&] { return toJsonLine(computeCell(cell)); });
    return perfResultOfJsonLine(*payload);
}

PerfResult
SweepEngine::computeCell(const SweepCell &cell)
{
    // The chaos suite fails whole cells here, upstream of the result
    // store, so an injected failure is never cached and a retried
    // request recomputes only the cells that failed.
    fault::failPoint("sweep.compute");
    // One store fetch serves the cell and (on first touch of this
    // workload) its baseline: each distinct trace of a matrix is
    // generated exactly once. With the store disabled, the baseline
    // falls back to the pre-store compute path (it regenerates its own
    // traces), reproducing the pre-overhaul pipeline faithfully for
    // the bench_sweep_scale reference and the determinism smoke.
    const auto traces =
        config_.traceStore->get(cell.workload, config_.tracegen);
    const auto base =
        config_.traceStore->enabled()
            ? baselines_->get(config_.tracegen, config_.core,
                              cell.workload, *traces,
                              config_.sealedDispatch)
            : baselines_->get(config_.tracegen, config_.core,
                              cell.workload, config_.sealedDispatch);
    return runPerfCell(config_.tracegen, config_.core, cell.workload,
                       cell.mitigator, cell.level, *traces, *base,
                       config_.sealedDispatch);
}

std::vector<PerfResult>
SweepEngine::run(const std::vector<SweepCell> &cells)
{
    return run(cells, nullptr);
}

std::vector<PerfResult>
SweepEngine::run(const std::vector<SweepCell> &cells, const CellSink &sink)
{
    std::vector<PerfResult> results(cells.size());
    // ThreadPool jobs must not throw, so every cell captures its own
    // failure; the sweep keeps running the remaining cells (their
    // results still land in the store) and rethrows the lowest failed
    // index afterwards -- which error surfaces is schedule-independent.
    std::vector<std::exception_ptr> errors(cells.size());
    const auto runOne = [&](size_t i) noexcept {
        try {
            results[i] = runCell(cells[i]);
            if (sink)
                sink(i, results[i]);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };
    if (jobs_ <= 1 || cells.size() <= 1) {
        for (size_t i = 0; i < cells.size(); ++i)
            runOne(i);
    } else {
        // No point spinning up more workers than there are cells.
        ThreadPool pool(
            std::min(jobs_, static_cast<unsigned>(cells.size())));
        for (size_t i = 0; i < cells.size(); ++i)
            pool.submit([&runOne, i] { runOne(i); });
        pool.wait();
    }
    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::vector<SweepCell>
crossCells(const std::vector<workload::WorkloadSpec> &workloads,
           const std::vector<std::pair<mitigation::MitigatorSpec,
                                       abo::Level>> &points)
{
    std::vector<SweepCell> cells;
    cells.reserve(workloads.size() * points.size());
    for (const auto &[mitigator, level] : points) {
        for (const auto &w : workloads)
            cells.push_back({w, mitigator, level});
    }
    return cells;
}

} // namespace moatsim::sim
