/**
 * @file
 * Parallel sweep engine for (workload x mitigator x parameter) grids.
 *
 * Every cell of a paper figure/table sweep is an independent
 * simulation, so the engine fans the cells out across a work-stealing
 * thread pool (common/thread_pool.hh). Determinism is by construction:
 * each cell's RNG streams are seeded from its own stable cell key
 * (sim::cellSeed), its workload traces come out of the shared
 * content-addressed workload::TraceStore (generated exactly once per
 * distinct key, baselines included), and its baseline comes from the
 * thread-safe BaselineCache, so the result vector is bit-identical at
 * any --jobs value and under any thread schedule -- and identical
 * again with the trace store disabled. The serial path (jobs=1) runs
 * inline on the calling thread and produces the same bytes.
 *
 * The engine itself holds no lock and so carries no thread-safety
 * annotations (src/common/thread_annotations.hh): each worker writes
 * only results[i] of its own pre-assigned cell index, every shared
 * input is const, and all cross-thread state lives behind the
 * annotated TraceStore and BaselineCache mutexes. ThreadPool::wait()
 * provides the happens-before edge that makes the result vector safe
 * to read afterwards.
 */

#ifndef MOATSIM_SIM_SWEEP_HH
#define MOATSIM_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <vector>

#include "abo/abo.hh"
#include "mitigation/registry.hh"
#include "sim/perf.hh"
#include "sim/result_store.hh"
#include "workload/spec.hh"
#include "workload/tracegen.hh"

namespace moatsim::sim
{

/** One independent simulation cell of a sweep matrix. */
struct SweepCell
{
    workload::WorkloadSpec workload;
    mitigation::MitigatorSpec mitigator;
    abo::Level level = abo::Level::L1;
};

/** Engine configuration. */
struct SweepConfig
{
    /** Trace generation: DRAM timing, window fraction, cores, seed,
     *  and sub-channel count (tracegen.subchannels). */
    workload::TraceGenConfig tracegen{};
    /** Core model (memory-level parallelism). */
    CoreModel core{};
    /** Worker threads; 0 = hardware concurrency, 1 = run inline. */
    unsigned jobs = 0;
    /**
     * Shared trace store: each distinct workload trace of a matrix is
     * generated exactly once and shared across cells (baselines
     * included) and across the pool. Null = the engine creates an
     * env-configured store of its own (MOATSIM_TRACE_STORE=0 yields a
     * disabled one); pass an explicit store to share it between
     * engines (sim::Experiment shares one across its perf and
     * co-attack engines).
     */
    std::shared_ptr<workload::TraceStore> traceStore;
    /**
     * Shared result store: every cell is keyed by perfCellKey /
     * coAttackCellKey and its JSONL payload cached across runs,
     * engines, and (when the store is persistent) processes, so a
     * warm matrix re-run recomputes only changed cells. Null = the
     * engine creates an env-configured store of its own
     * (MOATSIM_RESULT_STORE unset yields a disabled pass-through);
     * pass an explicit store to share it -- sim::Experiment shares
     * one across its perf and co-attack engines, `moatsim serve`
     * across every client request.
     */
    std::shared_ptr<ResultStore> resultStore;
    /**
     * Run cells on the devirtualized/flattened sub-channel hot path
     * (subchannel::SubChannelConfig::sealedDispatch). Results are
     * bit-identical either way; false exists so bench_sweep_scale can
     * measure the pre-overhaul reference path.
     */
    bool sealedDispatch = true;
};

/** Runs sweep cells in parallel with bit-identical-to-serial results. */
class SweepEngine
{
  public:
    explicit SweepEngine(const SweepConfig &config);

    /** Share a baseline cache with other engines / PerfRunners. */
    SweepEngine(const SweepConfig &config,
                std::shared_ptr<BaselineCache> baselines);

    /**
     * Per-cell completion callback of the streaming run() overload:
     * called with (cell index, result) as each cell finishes. Invoked
     * from worker threads in completion order -- the sink must be
     * thread-safe; per-cell results themselves stay bit-identical to
     * the returned vector at any jobs count.
     */
    using CellSink = std::function<void(size_t, const PerfResult &)>;

    /**
     * Run every cell; results are returned in cell order, independent
     * of the execution schedule.
     */
    std::vector<PerfResult> run(const std::vector<SweepCell> &cells);

    /** As run(cells), additionally streaming each finished cell to
     *  @p sink (null = none) -- `moatsim serve` responds per cell as
     *  it completes instead of after the batch. */
    std::vector<PerfResult> run(const std::vector<SweepCell> &cells,
                                const CellSink &sink);

    /** Run one cell inline (shares the baseline cache and stores). */
    PerfResult runCell(const SweepCell &cell);

    /** Resolved worker count (after the 0 -> hardware default). */
    unsigned jobs() const { return jobs_; }

    const SweepConfig &config() const { return config_; }

    /** The baseline cache (shared across runs of this engine). */
    const std::shared_ptr<BaselineCache> &baselines() const
    {
        return baselines_;
    }

    /** The trace store (config.traceStore, or the engine's own). */
    const std::shared_ptr<workload::TraceStore> &traceStore() const
    {
        return config_.traceStore;
    }

    /** The result store (config.resultStore, or the engine's own). */
    const std::shared_ptr<ResultStore> &resultStore() const
    {
        return config_.resultStore;
    }

  private:
    /** Simulate one cell (the result store's compute path). */
    PerfResult computeCell(const SweepCell &cell);

    SweepConfig config_;
    unsigned jobs_;
    std::shared_ptr<BaselineCache> baselines_;
};

/** Cross product: every workload at every (mitigator, level) point. */
std::vector<SweepCell>
crossCells(const std::vector<workload::WorkloadSpec> &workloads,
           const std::vector<std::pair<mitigation::MitigatorSpec,
                                       abo::Level>> &points);

} // namespace moatsim::sim

#endif // MOATSIM_SIM_SWEEP_HH
