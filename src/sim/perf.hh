/**
 * @file
 * Workload performance-experiment driver.
 *
 * Runs a workload's synthetic traces twice -- once against the
 * mitigator under test and once against a no-ALERT baseline -- and
 * reports the paper's metrics: normalized weighted speedup (Figures 11
 * and 17), ALERTs per tREFI per sub-channel, mitigations+ALERTs per
 * bank per tREFW (Table 5), and the activation-energy overhead
 * (Section 6.5). Baseline runs are cached per workload, since every
 * parameter sweep shares them.
 *
 * The mitigator under test is selected by a mitigation::MitigatorSpec,
 * so any registered design ("moat", "panopticon", "ideal-prc", ...)
 * runs through the same pipeline; see mitigation/registry.hh.
 */

#ifndef MOATSIM_SIM_PERF_HH
#define MOATSIM_SIM_PERF_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "abo/abo.hh"
#include "mitigation/moat.hh"
#include "mitigation/registry.hh"
#include "sim/memsys.hh"
#include "workload/spec.hh"
#include "workload/tracegen.hh"

namespace moatsim::sim
{

/** Metrics of one (workload, configuration) run. */
struct PerfResult
{
    std::string workload;
    /** Canonical spec of the design under test (MitigatorSpec text). */
    std::string mitigator;
    /** Weighted speedup relative to the no-ALERT baseline (<= 1). */
    double normPerf = 1.0;
    /** ALERTs per tREFI (per sub-channel). */
    double alertsPerRefi = 0.0;
    /** Mitigations + ALERT mitigations per bank per full tREFW. */
    double mitigationsPerBankPerRefw = 0.0;
    /** Extra mitigation row operations / demand activations. */
    double actOverheadFraction = 0.0;
    /** Raw ALERT count during the run. */
    uint64_t alerts = 0;
    /** Demand activations replayed. */
    uint64_t acts = 0;
};

/** Runs workloads against mitigator configurations with caching. */
class PerfRunner
{
  public:
    explicit PerfRunner(const workload::TraceGenConfig &config,
                        CoreModel core = CoreModel{});

    /** Run one workload against any registered mitigator design. */
    PerfResult run(const workload::WorkloadSpec &spec,
                   const mitigation::MitigatorSpec &mitigator,
                   abo::Level level = abo::Level::L1);

    /** Run every Table-4 workload; returns per-workload results. */
    std::vector<PerfResult> runSuite(const mitigation::MitigatorSpec &mitigator,
                                     abo::Level level = abo::Level::L1);

    /** @deprecated Thin MOAT-only shim; use the MitigatorSpec overload. */
    [[deprecated("pass a mitigation::MitigatorSpec instead of a MoatConfig")]]
    PerfResult run(const workload::WorkloadSpec &spec,
                   const mitigation::MoatConfig &moat,
                   abo::Level level = abo::Level::L1);

    /** @deprecated Thin MOAT-only shim; use the MitigatorSpec overload. */
    [[deprecated("pass a mitigation::MitigatorSpec instead of a MoatConfig")]]
    std::vector<PerfResult> runSuite(const mitigation::MoatConfig &moat,
                                     abo::Level level = abo::Level::L1);

    const workload::TraceGenConfig &config() const { return config_; }

  private:
    /** Baseline (no-ALERT) core finish times for a workload. */
    const std::vector<Time> &baselineFinish(
        const workload::WorkloadSpec &spec);

    workload::TraceGenConfig config_;
    CoreModel core_;
    std::unordered_map<std::string, std::vector<Time>> baseline_cache_;
};

/** Average normPerf across results (the paper's Gmean bar). */
double meanNormPerf(const std::vector<PerfResult> &results);

/** Average ALERTs-per-tREFI across results. */
double meanAlertsPerRefi(const std::vector<PerfResult> &results);

/** Average mitigations per bank per tREFW across results. */
double meanMitigations(const std::vector<PerfResult> &results);

} // namespace moatsim::sim

#endif // MOATSIM_SIM_PERF_HH
