/**
 * @file
 * Workload performance-experiment driver.
 *
 * Runs a workload's synthetic traces twice -- once against the
 * mitigator under test and once against a no-ALERT baseline -- and
 * reports the paper's metrics: normalized weighted speedup (Figures 11
 * and 17), ALERTs per tREFI per sub-channel, mitigations+ALERTs per
 * bank per tREFW (Table 5), and the activation-energy overhead
 * (Section 6.5). Baseline runs are cached in a thread-safe
 * BaselineCache keyed by (configuration hash, workload), since every
 * parameter sweep shares them, and the workload traces themselves come
 * out of a shared workload::TraceStore so a matrix generates each
 * distinct trace exactly once; see sim/sweep.hh for the parallel sweep
 * engine that fans independent cells across a thread pool.
 *
 * The mitigator under test is selected by a mitigation::MitigatorSpec,
 * so any registered design ("moat", "panopticon", "ideal-prc", ...)
 * runs through the same pipeline; see mitigation/registry.hh.
 */

#ifndef MOATSIM_SIM_PERF_HH
#define MOATSIM_SIM_PERF_HH

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "abo/abo.hh"
#include "common/mutex.hh"
#include "mitigation/registry.hh"
#include "sim/memsys.hh"
#include "workload/spec.hh"
#include "workload/trace_store.hh"
#include "workload/tracegen.hh"

namespace moatsim::sim
{

/** Per-sub-channel slice of a PerfResult (Table 5's per-sub-channel
 *  ALERT rate, simulated rather than extrapolated). */
struct SubChannelPerf
{
    /** Demand activations replayed on this sub-channel. */
    uint64_t acts = 0;
    /** ALERTs asserted on this sub-channel. */
    uint64_t alerts = 0;
    /** ALERTs per tREFI on this sub-channel. */
    double alertsPerRefi = 0.0;
    /** Mitigations per bank per full tREFW on this sub-channel. */
    double mitigationsPerBankPerRefw = 0.0;
};

/** Metrics of one (workload, configuration) run. */
struct PerfResult
{
    std::string workload;
    /** Canonical spec of the design under test (MitigatorSpec text). */
    std::string mitigator;
    /**
     * Canonical device spec the cell ran on (DeviceSpec text); empty
     * when the run used the hand-assembled default configuration
     * rather than a named device grade.
     */
    std::string device;
    /** ABO mitigation level of the run (1, 2, or 4). */
    int aboLevel = 1;
    /** Weighted speedup relative to the no-ALERT baseline (<= 1). */
    double normPerf = 1.0;
    /** ALERTs per tREFI per sub-channel (mean over sub-channels). */
    double alertsPerRefi = 0.0;
    /** Mitigations + ALERT mitigations per bank per full tREFW. */
    double mitigationsPerBankPerRefw = 0.0;
    /** Extra mitigation row operations / demand activations. */
    double actOverheadFraction = 0.0;
    /** Raw ALERT count during the run (all sub-channels). */
    uint64_t alerts = 0;
    /** Demand activations replayed (all sub-channels). */
    uint64_t acts = 0;
    /** Per-sub-channel-slot breakdown (subchannels x channels x ranks
     *  entries, in sim::System slot order). */
    std::vector<SubChannelPerf> perSubchannel;
};

/**
 * Stable 64-bit key of everything that shapes a perf simulation: the
 * trace-generator configuration (timing included) and the core model.
 */
uint64_t perfConfigKey(const workload::TraceGenConfig &config,
                       const CoreModel &core);

/**
 * Per-cell RNG seed: a stable function of the cell key (configuration,
 * workload, mitigator spec text, ABO level). Bit-identical results
 * regardless of thread count or schedule follow from seeding every
 * cell from its own key instead of from shared mutable state.
 */
uint64_t cellSeed(const workload::TraceGenConfig &config,
                  const workload::WorkloadSpec &spec,
                  const mitigation::MitigatorSpec &mitigator,
                  abo::Level level);

/**
 * Content address of one perf cell for the sim::ResultStore: a stable
 * hash of everything that shapes the cell's result line --
 * perfConfigKey() (trace generator, timing, device, seed, core model),
 * the workload, the mitigator's canonical describe() text, and the ABO
 * level. Equal keys produce byte-identical toJsonLine(PerfResult)
 * payloads; the store folds its schema epoch in on top.
 */
uint64_t perfCellKey(const workload::TraceGenConfig &config,
                     const CoreModel &core,
                     const workload::WorkloadSpec &spec,
                     const mitigation::MitigatorSpec &mitigator,
                     abo::Level level);

/**
 * Thread-safe cache of baseline (no-ALERT) per-core finish times.
 *
 * Keys combine perfConfigKey() with the workload name, so a single
 * cache may serve sweeps with different trace/core configurations
 * without serving stale times (a workload name alone is NOT a valid
 * key). Each distinct key is computed exactly once; concurrent
 * requesters of the same key block on the first computation.
 */
class BaselineCache
{
  public:
    using Finish = std::vector<Time>;

    /**
     * Finish times of @p spec under (config, core); computes on miss
     * by replaying @p traces -- the shared TraceSet the caller fetched
     * from the TraceStore for this very (spec, config), so a matrix
     * run never regenerates a trace just to compute its baseline.
     * @p sealed_dispatch selects the hot path of the baseline replay
     * (cost only; results are identical and the key ignores it).
     */
    std::shared_ptr<const Finish> get(const workload::TraceGenConfig &config,
                                      const CoreModel &core,
                                      const workload::WorkloadSpec &spec,
                                      const workload::TraceSet &traces,
                                      bool sealed_dispatch = true);

    /**
     * As above, generating the traces itself on a miss. This is the
     * pre-TraceStore compute path (one redundant generation per
     * baseline); it survives for callers that hold no store and as
     * the store-disabled reference pipeline bench_sweep_scale
     * measures against.
     */
    std::shared_ptr<const Finish> get(const workload::TraceGenConfig &config,
                                      const CoreModel &core,
                                      const workload::WorkloadSpec &spec,
                                      bool sealed_dispatch = true);

    /** Number of distinct baselines computed so far. */
    std::size_t size() const EXCLUDES(mu_);

  private:
    /** Single compute-once path; @p replay runs the baseline replay
     *  (outside the lock: only the winning requester computes). */
    std::shared_ptr<const Finish>
    getImpl(uint64_t key, const std::function<Finish()> &replay)
        EXCLUDES(mu_);

    mutable Mutex mu_;
    std::unordered_map<uint64_t,
                       std::shared_future<std::shared_ptr<const Finish>>>
        entries_ GUARDED_BY(mu_);
};

/**
 * Run one sweep cell given its traces and precomputed baseline finish
 * times. Pure function of its arguments (the cell seed is derived
 * internally via cellSeed), shared by PerfRunner and the SweepEngine
 * workers. @p traces is the shared TraceSet of (spec, config) --
 * typically a TraceStore handout replayed by every cell of the
 * matrix. @p sealed_dispatch selects the devirtualized hot path
 * (true, the default) or the pre-overhaul reference path; results are
 * bit-identical either way (bench_sweep_scale A/Bs the two).
 */
PerfResult runPerfCell(const workload::TraceGenConfig &config,
                       const CoreModel &core,
                       const workload::WorkloadSpec &spec,
                       const mitigation::MitigatorSpec &mitigator,
                       abo::Level level,
                       const workload::TraceSet &traces,
                       const std::vector<Time> &baseline,
                       bool sealed_dispatch = true);

/** Runs workloads against mitigator configurations with caching. */
class PerfRunner
{
  public:
    explicit PerfRunner(const workload::TraceGenConfig &config,
                        CoreModel core = CoreModel{});

    /** Share a baseline cache with other runners / a sweep engine. */
    PerfRunner(const workload::TraceGenConfig &config, CoreModel core,
               std::shared_ptr<BaselineCache> baselines);

    /** Share both the baseline cache and the trace store. */
    PerfRunner(const workload::TraceGenConfig &config, CoreModel core,
               std::shared_ptr<BaselineCache> baselines,
               std::shared_ptr<workload::TraceStore> traces);

    /** Run one workload against any registered mitigator design. */
    PerfResult run(const workload::WorkloadSpec &spec,
                   const mitigation::MitigatorSpec &mitigator,
                   abo::Level level = abo::Level::L1);

    /** Run every Table-4 workload; returns per-workload results. */
    std::vector<PerfResult> runSuite(const mitigation::MitigatorSpec &mitigator,
                                     abo::Level level = abo::Level::L1);

    const workload::TraceGenConfig &config() const { return config_; }

    /** The baseline cache (shared with any co-owning sweep engine). */
    const std::shared_ptr<BaselineCache> &baselines() const
    {
        return baselines_;
    }

    /** The trace store (shared with any co-owning sweep engine). */
    const std::shared_ptr<workload::TraceStore> &traceStore() const
    {
        return traces_;
    }

  private:
    workload::TraceGenConfig config_;
    CoreModel core_;
    std::shared_ptr<BaselineCache> baselines_;
    std::shared_ptr<workload::TraceStore> traces_;
};

/** Average normPerf across results (the paper's Gmean bar). */
double meanNormPerf(const std::vector<PerfResult> &results);

/** Average ALERTs-per-tREFI across results. */
double meanAlertsPerRefi(const std::vector<PerfResult> &results);

/** Average mitigations per bank per tREFW across results. */
double meanMitigations(const std::vector<PerfResult> &results);

} // namespace moatsim::sim

#endif // MOATSIM_SIM_PERF_HH
