/**
 * @file
 * Structured (JSON lines) serialization of experiment results.
 *
 * The golden-result regression harness locks every paper number down
 * by diffing regenerated results against checked-in files, so the
 * serialization must be byte-stable: fields are emitted in a fixed
 * order and doubles with "%.17g" (round-trip exact for IEEE-754
 * binary64). One JSON object per line; a "kind" discriminator tags
 * perf cells vs. attack outcomes so mixed streams stay greppable.
 */

#ifndef MOATSIM_SIM_RESULT_IO_HH
#define MOATSIM_SIM_RESULT_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "attacks/attack.hh"
#include "sim/coattack.hh"
#include "sim/perf.hh"

namespace moatsim::sim
{

/** @p s JSON-escaped and double-quoted (the writer's own escaping:
 *  \", \\, and \u00XX for control characters; other bytes raw). */
std::string jsonQuote(const std::string &s);

/** %.17g: shortest form that round-trips an IEEE binary64 exactly. */
std::string jsonDouble(double d);

/**
 * Pull one "key":value out of a flat one-line JSON object into @p out
 * (quotes stripped and escapes decoded for strings, brackets kept for
 * arrays). Returns false -- with a diagnostic in @p err when non-null
 * -- on a missing key or a malformed value, so callers fed untrusted
 * lines (the result store's shards, the serve protocol) can treat bad
 * input as data, not as a fatal error.
 */
bool tryJsonField(const std::string &line, const std::string &key,
                  std::string *out, std::string *err = nullptr);

/** One PerfResult as a byte-stable JSON line (no trailing newline). */
std::string toJsonLine(const PerfResult &r);

/** One adversary-under-load cell ("kind":"coattack") as a JSON line. */
std::string toJsonLine(const CoAttackResult &r);

/**
 * One AttackResult as a byte-stable JSON line; @p pattern and
 * @p mitigator name the attack cell the way PerfResult lines name
 * their (workload, mitigator) cell.
 */
std::string toJsonLine(const attacks::AttackResult &r,
                       const std::string &pattern,
                       const std::string &mitigator);

/** One ThroughputAttackResult (TSA / kernel losses) as a JSON line. */
std::string toJsonLine(const attacks::ThroughputAttackResult &r,
                       const std::string &pattern,
                       const std::string &mitigator);

/** Write one line per result. */
void writeJsonLines(std::ostream &os, const std::vector<PerfResult> &rs);

/** Write one line per co-attack result. */
void writeJsonLines(std::ostream &os, const std::vector<CoAttackResult> &rs);

/** Parse a toJsonLine(PerfResult) line back; fatal() on malformed. */
PerfResult perfResultOfJsonLine(const std::string &line);

/** Parse a toJsonLine(CoAttackResult) line back; fatal() on malformed. */
CoAttackResult coAttackResultOfJsonLine(const std::string &line);

/** Read every "kind":"perf" line of a JSONL stream. */
std::vector<PerfResult> readPerfJsonLines(std::istream &is);

} // namespace moatsim::sim

#endif // MOATSIM_SIM_RESULT_IO_HH
