/**
 * @file
 * The one parsed request type every sweep entry point shares.
 *
 * The CLI subcommands (`perf`, `coattack`), the in-process API
 * (sim::Experiment), and the `moatsim serve` socket protocol all
 * denote a run the same way: the spec strings the registry and the
 * device model already parse, plus the handful of scalar knobs of an
 * ExperimentConfig. RunRequest is that denotation as one struct with
 * two codecs -- CLI flags (runRequestOfArgs) and a byte-stable JSON
 * line (toJsonLine / tryRunRequestOfJsonLine) -- so the socket API
 * and the in-process API are literally the same parsed object and
 * serve.cc contains no third parsing path.
 *
 * Validation is split from parsing: tryRunRequestOfJsonLine() only
 * decodes, validateRunRequest() checks every field against the
 * registries without fatal()ing, so a daemon can reject a bad request
 * with an error line instead of dying.
 */

#ifndef MOATSIM_SIM_RUN_REQUEST_HH
#define MOATSIM_SIM_RUN_REQUEST_HH

#include <cstdint>
#include <string>

#include "abo/abo.hh"
#include "common/args.hh"
#include "mitigation/registry.hh"
#include "sim/experiment.hh"

namespace moatsim::sim
{

/** One sweep request: everything a perf or co-attack run needs.
 *  Every result-shaping field must be folded into requestKey() (the
 *  serve protocol's dedupe identity); scheduling knobs that must NOT
 *  perturb results are key-exempt. keylint proves both directions on
 *  every build (see tools/moatlint/keylint.hh). */
// moatlint: key-source(requestKey)
struct RunRequest
{
    /** "perf" or "coattack". */
    std::string kind = "perf";
    /** Mitigator spec text (mitigation::Registry grammar). */
    std::string mitigator = "moat";
    /** Device spec text; empty = the hand-assembled Table-3 default. */
    std::string device;
    /** Table-4 workload name, or "all" for the whole suite. */
    std::string workload = "all";
    /** ABO level (1, 2, or 4). */
    int level = 1;
    /** Fraction of a tREFW to simulate (tracegen.windowFraction). */
    double fraction = 0.0625;
    /** Sub-channels simulated per (channel, rank). */
    uint32_t subchannels = 2;
    /** Trace-generator seed. */
    uint64_t seed = 7;
    /** Worker threads; 0 = hardware concurrency. */
    // moatlint: key-exempt(requestKey): results are bit-identical at
    // any jobs count (the determinism headline), so two requests
    // differing only here must dedupe to one computation
    unsigned jobs = 0;
    /** Whether the run may use the shared trace store. */
    // moatlint: key-exempt(requestKey): the trace store is
    // content-addressed and bit-exact, so store on/off changes how a
    // result is computed, never what it is
    bool traceStore = true;

    // ----- coattack only -------------------------------------------
    /** Attack pattern (attacks::attackPatterns()), or "none". */
    std::string pattern = "hammer";
    /** Rows in the attack pool (0 = pattern default). */
    uint32_t poolRows = 0;
    /** Attacker activation budget (0 = span the window). */
    uint64_t budget = 0;
    /** Sub-channel replay slot the attacker pins. */
    uint32_t attackSubchannel = 0;
    /** Bank (within that slot) the attacker pins. */
    uint32_t attackBank = 0;
    /** Attack-trace seed. */
    uint64_t attackSeed = 1;
};

/**
 * MOAT-L couples the tracker size to the ABO level (Appendix D). When
 * a moat spec leaves "entries" unset, bind it to @p level so that
 * `--mitigator moat --level 4` means MOAT-L4. Specs that pin entries,
 * and other designs, pass through unchanged.
 */
mitigation::MitigatorSpec
withMoatLevelEntries(const mitigation::MitigatorSpec &spec,
                     abo::Level level);

/**
 * The mitigator of a request being assembled from CLI flags: the
 * --mitigator spec when present (legacy --ath/--eth then conflict),
 * otherwise a fully explicit MOAT spec built from --ath/--eth and
 * their paper defaults; either way MOAT-L entries bind to @p level.
 * fatal()s on malformed input (CLI codec).
 */
mitigation::MitigatorSpec mitigatorOfArgs(const Args &args,
                                          abo::Level level);

/**
 * Decode @p kind ("perf"/"coattack") plus the shared CLI flags into a
 * request. The --device flag is left to the caller (the perf CLI
 * sweeps a semicolon-separated device list, one request per grade).
 * fatal()s on malformed input (CLI codec).
 */
RunRequest runRequestOfArgs(const std::string &kind, const Args &args);

/** One RunRequest as a byte-stable JSON line (the serve protocol's
 *  request form; no trailing newline). */
std::string toJsonLine(const RunRequest &req);

/**
 * Content-address of a request: a stable 64-bit fold (FNV-1a,
 * common/hash.hh) of every result-shaping field. Two requests with
 * equal keys produce byte-identical result lines; scheduling knobs
 * (jobs, traceStore) are deliberately absent so they dedupe. The
 * coattack-only fields fold only for coattack requests, mirroring
 * toJsonLine(). The serve daemon reports it in the done line and
 * clients can use it to correlate sweeps across sessions.
 */
uint64_t requestKey(const RunRequest &req);

/**
 * Decode a toJsonLine(RunRequest) line. Absent fields keep their
 * defaults (forward compatibility); a malformed present field fails.
 * Returns false -- with a diagnostic in @p err when non-null -- and
 * never fatal()s: the serve loop treats bad requests as data.
 */
bool tryRunRequestOfJsonLine(const std::string &line, RunRequest *req,
                             std::string *err = nullptr);

/**
 * Check every field against the registries (mitigator and device
 * specs, workload name, attack pattern, level, fraction, attack slot
 * and bank bounds) without fatal()ing. Returns false with a
 * diagnostic in @p err when non-null.
 */
bool validateRunRequest(const RunRequest &req, std::string *err = nullptr);

/** Sub-channel replay slots of the request's device topology:
 *  channels x ranks x subchannels (1 x 1 for the default device). */
uint32_t slotCountOf(const RunRequest &req);

/**
 * Admission-control cost proxy of a request: the summed ACT-PKI of
 * the selected workloads scaled by the simulated window fraction and
 * slot count (co-attack runs count double for the attack-free
 * baseline). Proportional to replayed events, cheap to compute, and
 * deliberately unitless -- `moatsim serve --max-cost` budgets against
 * it.
 */
double estimatedCost(const RunRequest &req);

/** The ExperimentConfig a validated request denotes. fatal()s on
 *  malformed spec text -- validate first when input is untrusted. */
ExperimentConfig experimentConfigOf(const RunRequest &req);

/** The attack side of a "coattack" request. */
CoAttackScenario coAttackScenarioOf(const RunRequest &req);

} // namespace moatsim::sim

#endif // MOATSIM_SIM_RUN_REQUEST_HH
