#include "sim/run_request.hh"

#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "attacks/attack.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "dram/device.hh"
#include "mitigation/moat.hh"
#include "sim/result_io.hh"
#include "workload/spec.hh"

namespace moatsim::sim
{

namespace
{

abo::Level
levelOf(uint64_t l)
{
    if (l != 1 && l != 2 && l != 4)
        fatal("--level must be 1, 2, or 4");
    return static_cast<abo::Level>(l);
}

/** Strict base-10 uint64 parse of a bare JSON number token. */
bool
parseU64(const std::string &text, uint64_t *out)
{
    if (text.empty() || text.size() > 20)
        return false;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

/** Strict finite-double parse of a bare JSON number token. */
bool
parseF64(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

/** Whether @p key appears as a field name in @p line. Request lines
 *  are flat objects whose only string values are spec/workload names
 *  (no quotes or braces inside), so this literal scan is exact. */
bool
present(const std::string &line, const std::string &key)
{
    return line.find("\"" + key + "\":") != std::string::npos;
}

bool
failField(const std::string &key, const std::string &what,
          std::string *err)
{
    if (err)
        *err = "run request field '" + key + "' " + what;
    return false;
}

/** Decode an optional string field; absent leaves @p out unchanged. */
bool
optString(const std::string &line, const std::string &key,
          std::string *out, std::string *err)
{
    if (!present(line, key))
        return true;
    return tryJsonField(line, key, out, err);
}

/** Decode an optional unsigned field; absent leaves @p out unchanged. */
bool
optU64(const std::string &line, const std::string &key, uint64_t *out,
       std::string *err)
{
    if (!present(line, key))
        return true;
    std::string text;
    if (!tryJsonField(line, key, &text, err))
        return false;
    if (!parseU64(text, out))
        return failField(key, "is not an unsigned integer: " + text, err);
    return true;
}

/** optU64 constrained to 32 bits. */
bool
optU32(const std::string &line, const std::string &key, uint32_t *out,
       std::string *err)
{
    uint64_t v = *out;
    if (!optU64(line, key, &v, err))
        return false;
    if (v > UINT32_MAX)
        return failField(key, "does not fit in 32 bits", err);
    *out = static_cast<uint32_t>(v);
    return true;
}

/** Decode an optional double field; absent leaves @p out unchanged. */
bool
optF64(const std::string &line, const std::string &key, double *out,
       std::string *err)
{
    if (!present(line, key))
        return true;
    std::string text;
    if (!tryJsonField(line, key, &text, err))
        return false;
    if (!parseF64(text, out))
        return failField(key, "is not a number: " + text, err);
    return true;
}

bool
fail(const std::string &what, std::string *err)
{
    if (err)
        *err = what;
    return false;
}

} // namespace

mitigation::MitigatorSpec
withMoatLevelEntries(const mitigation::MitigatorSpec &spec,
                     abo::Level level)
{
    if (spec.name() != "moat" || spec.hasParam("entries"))
        return spec;
    const std::string desc = spec.describe();
    const char sep = desc.find(':') == std::string::npos ? ':' : ',';
    return mitigation::Registry::parse(
        desc + sep + "entries=" +
        std::to_string(abo::levelValue(level)));
}

mitigation::MitigatorSpec
mitigatorOfArgs(const Args &args, abo::Level level)
{
    if (args.has("mitigator")) {
        for (const char *flag : {"ath", "eth"}) {
            if (args.has(flag))
                fatal(std::string("--") + flag +
                      " conflicts with --mitigator; put the parameter "
                      "in the spec (see list-mitigators)");
        }
        return withMoatLevelEntries(
            mitigation::Registry::parse(args.get("mitigator", "moat")),
            level);
    }
    // Legacy MOAT flags: spell out the whole configuration so the spec
    // text -- the result-store key and every describe() the CLI prints
    // -- is identical whether the design came from --ath/--eth or from
    // an equivalent --mitigator string.
    mitigation::MoatConfig moat;
    moat.ath = args.getUint32("ath", 64);
    moat.eth = args.getUint32("eth", moat.ath / 2);
    moat.trackerEntries = static_cast<uint32_t>(abo::levelValue(level));
    return mitigation::Registry::parse(
        "moat:ath=" + std::to_string(moat.ath) +
        ",eth=" + std::to_string(moat.eth) +
        ",entries=" + std::to_string(moat.trackerEntries) +
        ",period=" + std::to_string(moat.mitigationPeriodRefis) +
        ",reset-on-refresh=" + (moat.resetOnRefresh ? "true" : "false") +
        ",safe-reset=" + (moat.safeReset ? "true" : "false") +
        ",blast=" + std::to_string(moat.blastRadius));
}

RunRequest
runRequestOfArgs(const std::string &kind, const Args &args)
{
    RunRequest req;
    req.kind = kind;
    const abo::Level level = levelOf(args.getInt("level", 1));
    req.level = abo::levelValue(level);
    req.mitigator = mitigatorOfArgs(args, level).describe();
    req.workload = args.get("workload", "all");
    req.fraction = args.getDouble("fraction", 0.0625);
    req.subchannels = args.getPositive("subchannels", 2);
    req.seed = args.getInt("trace-seed", 7);
    req.jobs = args.getUint32("jobs", 0);
    req.traceStore = !args.getBool("no-trace-store", false);
    if (kind == "coattack") {
        req.pattern = args.get("pattern", "hammer");
        req.poolRows = args.getUint32("pool", 0);
        req.budget = args.getInt("acts", 0);
        req.attackSubchannel = args.getUint32("attack-subchannel", 0);
        req.attackBank = args.getUint32("attack-bank", 0);
        req.attackSeed = args.getInt("seed", 1);
    }
    return req;
}

std::string
toJsonLine(const RunRequest &req)
{
    std::string out = "{\"kind\":" + jsonQuote(req.kind) +
                      ",\"mitigator\":" + jsonQuote(req.mitigator) +
                      ",\"device\":" + jsonQuote(req.device) +
                      ",\"workload\":" + jsonQuote(req.workload) +
                      ",\"level\":" + std::to_string(req.level) +
                      ",\"fraction\":" + jsonDouble(req.fraction) +
                      ",\"subchannels\":" + std::to_string(req.subchannels) +
                      ",\"seed\":" + std::to_string(req.seed) +
                      ",\"jobs\":" + std::to_string(req.jobs) +
                      ",\"trace_store\":" +
                      std::to_string(req.traceStore ? 1 : 0);
    if (req.kind == "coattack") {
        out += ",\"pattern\":" + jsonQuote(req.pattern) +
               ",\"pool_rows\":" + std::to_string(req.poolRows) +
               ",\"budget\":" + std::to_string(req.budget) +
               ",\"attack_subchannel\":" +
               std::to_string(req.attackSubchannel) +
               ",\"attack_bank\":" + std::to_string(req.attackBank) +
               ",\"attack_seed\":" + std::to_string(req.attackSeed);
    }
    out += "}";
    return out;
}

uint64_t
requestKey(const RunRequest &req)
{
    uint64_t h = stableHash64("moatsim.run-request.v1");
    h = hashCombine(h, stableHash64(req.kind));
    h = hashCombine(h, stableHash64(req.mitigator));
    h = hashCombine(h, stableHash64(req.device));
    h = hashCombine(h, stableHash64(req.workload));
    h = hashCombine(h, static_cast<uint64_t>(req.level));
    h = hashCombine(h, hashDouble(req.fraction));
    h = hashCombine(h, static_cast<uint64_t>(req.subchannels));
    h = hashCombine(h, req.seed);
    if (req.kind == "coattack") {
        h = hashCombine(h, stableHash64(req.pattern));
        h = hashCombine(h, static_cast<uint64_t>(req.poolRows));
        h = hashCombine(h, req.budget);
        h = hashCombine(h, static_cast<uint64_t>(req.attackSubchannel));
        h = hashCombine(h, static_cast<uint64_t>(req.attackBank));
        h = hashCombine(h, req.attackSeed);
    }
    return h;
}

bool
tryRunRequestOfJsonLine(const std::string &line, RunRequest *req,
                        std::string *err)
{
    RunRequest r;
    uint64_t level = static_cast<uint64_t>(r.level);
    uint64_t traceStore = r.traceStore ? 1 : 0;
    const bool ok =
        optString(line, "kind", &r.kind, err) &&
        optString(line, "mitigator", &r.mitigator, err) &&
        optString(line, "device", &r.device, err) &&
        optString(line, "workload", &r.workload, err) &&
        optU64(line, "level", &level, err) &&
        optF64(line, "fraction", &r.fraction, err) &&
        optU32(line, "subchannels", &r.subchannels, err) &&
        optU64(line, "seed", &r.seed, err) &&
        optU32(line, "jobs", &r.jobs, err) &&
        optU64(line, "trace_store", &traceStore, err) &&
        optString(line, "pattern", &r.pattern, err) &&
        optU32(line, "pool_rows", &r.poolRows, err) &&
        optU64(line, "budget", &r.budget, err) &&
        optU32(line, "attack_subchannel", &r.attackSubchannel, err) &&
        optU32(line, "attack_bank", &r.attackBank, err) &&
        optU64(line, "attack_seed", &r.attackSeed, err);
    if (!ok)
        return false;
    if (level > INT32_MAX)
        return failField("level", "is out of range", err);
    r.level = static_cast<int>(level);
    r.traceStore = traceStore != 0;
    *req = r;
    return true;
}

bool
validateRunRequest(const RunRequest &req, std::string *err)
{
    if (req.kind != "perf" && req.kind != "coattack")
        return fail("run request kind must be \"perf\" or \"coattack\", "
                    "got \"" + req.kind + "\"", err);
    if (req.level != 1 && req.level != 2 && req.level != 4)
        return fail("run request level must be 1, 2, or 4", err);
    if (!(req.fraction > 0.0) || req.fraction > 1.0)
        return fail("run request fraction must be in (0, 1]", err);
    if (req.subchannels == 0)
        return fail("run request subchannels must be positive", err);

    std::string detail;
    if (!mitigation::Registry::tryParse(req.mitigator, &detail))
        return fail("run request mitigator: " + detail, err);
    dram::DeviceModel device{};
    if (!req.device.empty()) {
        const auto spec = dram::DeviceSpec::tryParse(req.device, &detail);
        if (!spec)
            return fail("run request device: " + detail, err);
        device = spec->resolve();
    }
    if (req.workload != "all" &&
        workload::tryFindWorkload(req.workload) == nullptr)
        return fail("run request workload \"" + req.workload +
                    "\" is not a Table-4 name (or \"all\")", err);

    if (req.kind == "coattack") {
        if (req.pattern != "none") {
            bool known = false;
            for (const auto &p : attacks::attackPatterns())
                known = known || p == req.pattern;
            if (!known)
                return fail("run request pattern \"" + req.pattern +
                            "\" is not a registered attack (or "
                            "\"none\")", err);
        }
        const uint32_t slots = slotCountOf(req);
        if (req.attackSubchannel >= slots)
            return fail("run request attack_subchannel must be below "
                        "the sub-channel slot count (" +
                        std::to_string(slots) + ")", err);
        if (req.attackBank >= device.banksPerSubchannel())
            return fail("run request attack_bank must be below the "
                        "banks per sub-channel (" +
                        std::to_string(device.banksPerSubchannel()) +
                        ")", err);
    }
    return true;
}

uint32_t
slotCountOf(const RunRequest &req)
{
    uint32_t slots = req.subchannels;
    if (!req.device.empty()) {
        if (const auto spec =
                dram::DeviceSpec::tryParse(req.device, nullptr)) {
            const dram::DeviceModel dm = spec->resolve();
            slots *= dm.channels() * dm.ranks();
        }
    }
    return slots;
}

double
estimatedCost(const RunRequest &req)
{
    double actSum = 0.0;
    if (req.workload == "all") {
        for (const auto &w : workload::table4Workloads())
            actSum += w.actPki;
    } else if (const auto *w = workload::tryFindWorkload(req.workload)) {
        actSum = w->actPki;
    }
    double cost = actSum * req.fraction *
                  static_cast<double>(slotCountOf(req));
    if (req.kind == "coattack")
        cost *= 2.0; // the attack-free baseline co-run
    return cost;
}

ExperimentConfig
experimentConfigOf(const RunRequest &req)
{
    ExperimentConfig ec;
    ec.tracegen.windowFraction = req.fraction;
    ec.tracegen.subchannels = req.subchannels;
    ec.tracegen.seed = req.seed;
    ec.device = req.device;
    ec.aboLevel = levelOf(static_cast<uint64_t>(req.level));
    ec.mitigator = mitigation::Registry::parse(req.mitigator);
    ec.workload = req.workload;
    ec.jobs = req.jobs;
    ec.traceStore = req.traceStore;
    return ec;
}

CoAttackScenario
coAttackScenarioOf(const RunRequest &req)
{
    CoAttackScenario attack;
    attack.pattern = req.pattern;
    attack.poolRows = req.poolRows;
    attack.budget = req.budget;
    attack.subchannel = req.attackSubchannel;
    attack.bank = req.attackBank;
    attack.seed = req.attackSeed;
    return attack;
}

} // namespace moatsim::sim
