#include "sim/memsys.hh"

#include <algorithm>
#include <cassert>
#include <deque>

namespace moatsim::sim
{

MemSysResult
runMemSystem(subchannel::SubChannel &channel,
             const std::vector<workload::CoreTrace> &traces,
             const CoreModel &core)
{
    struct CoreState
    {
        size_t next = 0;
        /** Earliest time the next ACT may be requested. */
        Time arrival = 0;
        /** Completion times of in-flight ACTs (bounded by mlp). */
        std::deque<Time> inflight;
        Time last_intended = 0;
        Time last_completion = 0;
    };

    const Time start = channel.now();
    const uint64_t start_refs = channel.stats().refs;
    const uint64_t start_alerts = channel.abo().alertCount();
    const Time tRC = channel.timing().tRC;

    std::vector<CoreState> cores(traces.size());
    for (size_t c = 0; c < traces.size(); ++c) {
        if (!traces[c].events.empty())
            cores[c].arrival = start + traces[c].events.front().at;
    }

    // Issue in global arrival order: repeatedly pick the core whose
    // next request is ready earliest (FCFS memory scheduling under the
    // closed-page policy).
    for (;;) {
        size_t best = traces.size();
        for (size_t c = 0; c < traces.size(); ++c) {
            if (cores[c].next >= traces[c].events.size())
                continue;
            if (best == traces.size() ||
                cores[c].arrival < cores[best].arrival)
                best = c;
        }
        if (best == traces.size())
            break;

        CoreState &cs = cores[best];
        const workload::TraceEvent &ev = traces[best].events[cs.next];

        // The core may have at most `mlp` activations outstanding; the
        // request waits for the oldest one to complete otherwise.
        Time ready = cs.arrival;
        if (cs.inflight.size() >= core.mlp)
            ready = std::max(ready, cs.inflight.front());

        const Time issue = channel.activateAt(ev.bank, ev.row, ready);
        const Time completion = issue + tRC;

        while (cs.inflight.size() >= core.mlp)
            cs.inflight.pop_front();
        cs.inflight.push_back(completion);
        cs.last_completion = completion;

        // Next request: preserve the intended inter-request gap (the
        // instruction work between the two accesses).
        ++cs.next;
        if (cs.next < traces[best].events.size()) {
            const Time gap =
                traces[best].events[cs.next].at - ev.at;
            cs.arrival = std::max(cs.arrival, issue) + gap;
        }
        cs.last_intended = ev.at;
    }

    MemSysResult result;
    result.coreFinish.resize(traces.size());
    for (size_t c = 0; c < traces.size(); ++c) {
        const Time tail = traces[c].events.empty()
                              ? traces[c].window
                              : traces[c].window - cores[c].last_intended;
        result.coreFinish[c] =
            (cores[c].last_completion - start) + std::max<Time>(tail, 0);
        result.totalActs += traces[c].events.size();
    }
    result.refs = channel.stats().refs - start_refs;
    result.alerts = channel.abo().alertCount() - start_alerts;
    return result;
}

} // namespace moatsim::sim
