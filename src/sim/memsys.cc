#include "sim/memsys.hh"

#include "sim/system.hh"

namespace moatsim::sim
{

MemSysResult
runMemSystem(subchannel::SubChannel &channel,
             const std::vector<workload::CoreTrace> &traces,
             const CoreModel &core)
{
    // Single-sub-channel view of the shared replay loop (see
    // sim/system.hh); every event lands on the one channel regardless
    // of its subchannel field.
    const SystemResult r = runOnSubChannels({&channel}, traces, core);
    MemSysResult out;
    out.coreFinish = r.coreFinish;
    out.totalActs = r.totalActs;
    out.refs = r.refs;
    out.alerts = r.alerts;
    return out;
}

} // namespace moatsim::sim
