#include "sim/perf.hh"

#include <algorithm>

#include "mitigation/null.hh"

namespace moatsim::sim
{

namespace
{

subchannel::SubChannelConfig
channelConfigFor(const workload::TraceGenConfig &tg, abo::Level level)
{
    subchannel::SubChannelConfig sc;
    sc.timing = tg.timing;
    sc.numBanks = tg.banksSimulated;
    sc.aboLevel = level;
    sc.securityEnabled = false; // perf runs skip the damage oracle
    sc.seed = tg.seed;
    return sc;
}

} // namespace

PerfRunner::PerfRunner(const workload::TraceGenConfig &config,
                       CoreModel core)
    : config_(config), core_(core)
{
}

const std::vector<Time> &
PerfRunner::baselineFinish(const workload::WorkloadSpec &spec)
{
    auto it = baseline_cache_.find(spec.name);
    if (it != baseline_cache_.end())
        return it->second;

    const auto traces = workload::generateTraces(spec, config_);
    subchannel::SubChannel ch(
        channelConfigFor(config_, abo::Level::L1), [](BankId) {
            return std::make_unique<mitigation::NullMitigator>();
        });
    const MemSysResult res = runMemSystem(ch, traces, core_);
    return baseline_cache_.emplace(spec.name, res.coreFinish)
        .first->second;
}

PerfResult
PerfRunner::run(const workload::WorkloadSpec &spec,
                const mitigation::MitigatorSpec &mitigator, abo::Level level)
{
    const std::vector<Time> &base = baselineFinish(spec);

    const auto traces = workload::generateTraces(spec, config_);
    subchannel::SubChannel ch(channelConfigFor(config_, level),
                              mitigator.factory());
    const MemSysResult res = runMemSystem(ch, traces, core_);

    PerfResult out;
    out.workload = spec.name;
    out.mitigator = mitigator.describe();
    out.alerts = res.alerts;
    out.acts = res.totalActs;

    // Weighted speedup: mean per-core performance relative to baseline.
    double sum = 0.0;
    size_t n = 0;
    for (size_t c = 0; c < res.coreFinish.size() && c < base.size(); ++c) {
        if (res.coreFinish[c] > 0) {
            sum += static_cast<double>(base[c]) /
                   static_cast<double>(res.coreFinish[c]);
            ++n;
        }
    }
    out.normPerf = n > 0 ? sum / static_cast<double>(n) : 1.0;

    if (res.refs > 0)
        out.alertsPerRefi = static_cast<double>(res.alerts) /
                            static_cast<double>(res.refs);

    const auto mit = ch.mitigationStats();
    const double banks = static_cast<double>(ch.numBanks());
    // Scale the generated fraction of a window back to a full tREFW.
    out.mitigationsPerBankPerRefw =
        static_cast<double>(mit.totalMitigations()) / banks /
        config_.windowFraction;
    if (res.totalActs > 0) {
        out.actOverheadFraction =
            static_cast<double>(mit.victimRefreshes + mit.counterResets) /
            static_cast<double>(res.totalActs);
    }
    return out;
}

std::vector<PerfResult>
PerfRunner::runSuite(const mitigation::MitigatorSpec &mitigator,
                     abo::Level level)
{
    std::vector<PerfResult> results;
    for (const auto &spec : workload::table4Workloads())
        results.push_back(run(spec, mitigator, level));
    return results;
}

PerfResult
PerfRunner::run(const workload::WorkloadSpec &spec,
                const mitigation::MoatConfig &moat, abo::Level level)
{
    return run(spec, mitigation::moatSpec(moat), level);
}

std::vector<PerfResult>
PerfRunner::runSuite(const mitigation::MoatConfig &moat, abo::Level level)
{
    return runSuite(mitigation::moatSpec(moat), level);
}

double
meanNormPerf(const std::vector<PerfResult> &results)
{
    if (results.empty())
        return 1.0;
    double s = 0.0;
    for (const auto &r : results)
        s += r.normPerf;
    return s / static_cast<double>(results.size());
}

double
meanAlertsPerRefi(const std::vector<PerfResult> &results)
{
    if (results.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &r : results)
        s += r.alertsPerRefi;
    return s / static_cast<double>(results.size());
}

double
meanMitigations(const std::vector<PerfResult> &results)
{
    if (results.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &r : results)
        s += r.mitigationsPerBankPerRefw;
    return s / static_cast<double>(results.size());
}

} // namespace moatsim::sim
