#include "sim/perf.hh"

#include <algorithm>
#include <utility>

#include "common/hash.hh"
#include "mitigation/null.hh"
#include "sim/system.hh"

namespace moatsim::sim
{

namespace
{

subchannel::SubChannelConfig
channelConfigFor(const workload::TraceGenConfig &tg, abo::Level level,
                 uint64_t seed, bool sealed_dispatch)
{
    subchannel::SubChannelConfig sc;
    sc.timing = tg.timing;
    sc.numBanks = tg.banksSimulated;
    sc.aboLevel = level;
    sc.securityEnabled = false; // perf runs skip the damage oracle
    sc.sealedDispatch = sealed_dispatch;
    sc.seed = seed;
    return sc;
}

/** The full system a perf run simulates: tracegen.subchannels
 *  sub-channels per (channel, rank), each configured by
 *  channelConfigFor. */
System
systemFor(const workload::TraceGenConfig &tg, abo::Level level,
          uint64_t seed, const subchannel::SubChannel::MitigatorFactory &f,
          bool sealed_dispatch)
{
    SystemConfig sys;
    sys.channel = channelConfigFor(tg, level, seed, sealed_dispatch);
    sys.subchannels = std::max(1u, tg.subchannels);
    sys.channels = std::max(1u, tg.channels);
    sys.ranks = std::max(1u, tg.ranks);
    return System(sys, f);
}

/** Seed of the no-ALERT baseline run of @p spec (mitigator-free key). */
uint64_t
baselineSeed(const workload::TraceGenConfig &config, const CoreModel &core,
             const workload::WorkloadSpec &spec)
{
    uint64_t h = hashCombine(perfConfigKey(config, core),
                             stableHash64(spec.name));
    return hashCombine(h, stableHash64("baseline"));
}

} // namespace

uint64_t
perfConfigKey(const workload::TraceGenConfig &config, const CoreModel &core)
{
    return hashCombine(workload::configKey(config),
                       static_cast<uint64_t>(core.mlp));
}

uint64_t
cellSeed(const workload::TraceGenConfig &config,
         const workload::WorkloadSpec &spec,
         const mitigation::MitigatorSpec &mitigator, abo::Level level)
{
    uint64_t h =
        hashCombine(workload::configKey(config), stableHash64(spec.name));
    h = hashCombine(h, stableHash64(mitigator.describe()));
    return hashCombine(h, static_cast<uint64_t>(abo::levelValue(level)));
}

uint64_t
perfCellKey(const workload::TraceGenConfig &config, const CoreModel &core,
            const workload::WorkloadSpec &spec,
            const mitigation::MitigatorSpec &mitigator, abo::Level level)
{
    // perfConfigKey covers the generator (device, seed, and timing
    // included) plus the core model; the rest of the chain names the
    // cell within that configuration. A domain tag keeps perf keys
    // disjoint from every other key family sharing a store.
    uint64_t h =
        hashCombine(perfConfigKey(config, core), stableHash64(spec.name));
    h = hashCombine(h, stableHash64(mitigator.describe()));
    h = hashCombine(h, static_cast<uint64_t>(abo::levelValue(level)));
    return hashCombine(h, stableHash64("perf-cell"));
}

std::shared_ptr<const BaselineCache::Finish>
BaselineCache::getImpl(uint64_t key, const std::function<Finish()> &replay)
{
    std::shared_future<std::shared_ptr<const Finish>> future;
    std::promise<std::shared_ptr<const Finish>> promise;
    bool compute = false;
    {
        MutexLock lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            compute = true;
        } else {
            future = it->second;
        }
    }
    if (compute) {
        std::shared_ptr<const Finish> value;
        try {
            value = std::make_shared<const Finish>(replay());
        } catch (...) {
            // A failed replay is never cached: drop the entry so the
            // next touch recomputes, and propagate the exception to
            // every waiter blocked on the shared future.
            {
                MutexLock lock(mu_);
                entries_.erase(key);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        promise.set_value(value);
    }
    return future.get();
}

std::shared_ptr<const BaselineCache::Finish>
BaselineCache::get(const workload::TraceGenConfig &config,
                   const CoreModel &core, const workload::WorkloadSpec &spec,
                   const workload::TraceSet &traces, bool sealed_dispatch)
{
    const uint64_t key =
        hashCombine(perfConfigKey(config, core), stableHash64(spec.name));
    return getImpl(key, [&]() {
        System sys = systemFor(
            config, abo::Level::L1, baselineSeed(config, core, spec),
            [](BankId) {
                return std::make_unique<mitigation::NullMitigator>();
            },
            sealed_dispatch);
        SystemResult res = runSystem(sys, traces.views(), core);
        return std::move(res.coreFinish);
    });
}

std::shared_ptr<const BaselineCache::Finish>
BaselineCache::get(const workload::TraceGenConfig &config,
                   const CoreModel &core, const workload::WorkloadSpec &spec,
                   bool sealed_dispatch)
{
    const uint64_t key =
        hashCombine(perfConfigKey(config, core), stableHash64(spec.name));
    return getImpl(key, [&]() {
        const workload::TraceSet traces(workload::generateTraces(spec,
                                                                 config));
        System sys = systemFor(
            config, abo::Level::L1, baselineSeed(config, core, spec),
            [](BankId) {
                return std::make_unique<mitigation::NullMitigator>();
            },
            sealed_dispatch);
        SystemResult res = runSystem(sys, traces.views(), core);
        return std::move(res.coreFinish);
    });
}

std::size_t
BaselineCache::size() const
{
    MutexLock lock(mu_);
    return entries_.size();
}

PerfResult
runPerfCell(const workload::TraceGenConfig &config, const CoreModel &core,
            const workload::WorkloadSpec &spec,
            const mitigation::MitigatorSpec &mitigator, abo::Level level,
            const workload::TraceSet &traces,
            const std::vector<Time> &baseline, bool sealed_dispatch)
{
    System sys = systemFor(config, level,
                           cellSeed(config, spec, mitigator, level),
                           mitigator.factory(), sealed_dispatch);
    const SystemResult res = runSystem(sys, traces.views(), core);

    PerfResult out;
    out.workload = spec.name;
    out.mitigator = mitigator.describe();
    out.device = config.device;
    out.aboLevel = abo::levelValue(level);
    out.alerts = res.alerts;
    out.acts = res.totalActs;

    // Weighted speedup: mean per-core performance relative to baseline.
    double sum = 0.0;
    size_t n = 0;
    for (size_t c = 0; c < res.coreFinish.size() && c < baseline.size();
         ++c) {
        if (res.coreFinish[c] > 0) {
            sum += static_cast<double>(baseline[c]) /
                   static_cast<double>(res.coreFinish[c]);
            ++n;
        }
    }
    out.normPerf = n > 0 ? sum / static_cast<double>(n) : 1.0;

    // Per-sub-channel breakdown plus the paper's per-sub-channel ALERT
    // rate (mean over the simulated sub-channels).
    out.perSubchannel.resize(res.perSubchannel.size());
    const double banks_per_sc =
        static_cast<double>(sys.numSubchannels() > 0
                                ? sys.totalBanks() / sys.numSubchannels()
                                : 0);
    double refi_sum = 0.0;
    size_t refi_n = 0;
    for (size_t i = 0; i < res.perSubchannel.size(); ++i) {
        const SubChannelUsage &u = res.perSubchannel[i];
        SubChannelPerf &p = out.perSubchannel[i];
        p.acts = u.acts;
        p.alerts = u.alerts;
        if (u.refs > 0) {
            p.alertsPerRefi = static_cast<double>(u.alerts) /
                              static_cast<double>(u.refs);
            refi_sum += p.alertsPerRefi;
            ++refi_n;
        }
        if (banks_per_sc > 0) {
            p.mitigationsPerBankPerRefw =
                static_cast<double>(u.mitigation.totalMitigations()) /
                banks_per_sc / config.windowFraction;
        }
    }
    if (refi_n > 0)
        out.alertsPerRefi = refi_sum / static_cast<double>(refi_n);

    const auto mit = sys.mitigationStats();
    const double banks = static_cast<double>(sys.totalBanks());
    // Scale the generated fraction of a window back to a full tREFW.
    out.mitigationsPerBankPerRefw =
        static_cast<double>(mit.totalMitigations()) / banks /
        config.windowFraction;
    if (res.totalActs > 0) {
        out.actOverheadFraction =
            static_cast<double>(mit.victimRefreshes + mit.counterResets) /
            static_cast<double>(res.totalActs);
    }
    return out;
}

PerfRunner::PerfRunner(const workload::TraceGenConfig &config,
                       CoreModel core)
    : PerfRunner(config, core, std::make_shared<BaselineCache>())
{
}

PerfRunner::PerfRunner(const workload::TraceGenConfig &config, CoreModel core,
                       std::shared_ptr<BaselineCache> baselines)
    : PerfRunner(config, core, std::move(baselines),
                 std::make_shared<workload::TraceStore>())
{
}

PerfRunner::PerfRunner(const workload::TraceGenConfig &config, CoreModel core,
                       std::shared_ptr<BaselineCache> baselines,
                       std::shared_ptr<workload::TraceStore> traces)
    : config_(config),
      core_(core),
      baselines_(std::move(baselines)),
      traces_(std::move(traces))
{
}

PerfResult
PerfRunner::run(const workload::WorkloadSpec &spec,
                const mitigation::MitigatorSpec &mitigator, abo::Level level)
{
    const auto traces = traces_->get(spec, config_);
    const auto base = baselines_->get(config_, core_, spec, *traces);
    return runPerfCell(config_, core_, spec, mitigator, level, *traces,
                       *base);
}

std::vector<PerfResult>
PerfRunner::runSuite(const mitigation::MitigatorSpec &mitigator,
                     abo::Level level)
{
    std::vector<PerfResult> results;
    for (const auto &spec : workload::table4Workloads())
        results.push_back(run(spec, mitigator, level));
    return results;
}

double
meanNormPerf(const std::vector<PerfResult> &results)
{
    if (results.empty())
        return 1.0;
    double s = 0.0;
    for (const auto &r : results)
        s += r.normPerf;
    return s / static_cast<double>(results.size());
}

double
meanAlertsPerRefi(const std::vector<PerfResult> &results)
{
    if (results.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &r : results)
        s += r.alertsPerRefi;
    return s / static_cast<double>(results.size());
}

double
meanMitigations(const std::vector<PerfResult> &results)
{
    if (results.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &r : results)
        s += r.mitigationsPerBankPerRefw;
    return s / static_cast<double>(results.size());
}

} // namespace moatsim::sim
