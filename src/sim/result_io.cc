#include "sim/result_io.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace moatsim::sim
{

namespace
{

/** Escape the characters JSON strings cannot carry raw. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonDouble(double d)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    return buf;
}

bool
tryJsonField(const std::string &line, const std::string &key,
             std::string *out, std::string *err)
{
    const auto fail = [&line, err](const std::string &msg) {
        if (err != nullptr)
            *err = msg + ": " + line;
        return false;
    };
    const std::string needle = "\"" + key + "\":";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return fail("result line is missing field '" + key + "'");
    size_t v = at + needle.size();
    if (v < line.size() && line[v] == '[') {
        // Numeric array (per-sub-channel breakdowns); no nesting and
        // no strings inside, so the first ']' terminates it.
        const size_t end = line.find(']', v);
        if (end == std::string::npos)
            return fail("unterminated array in result line");
        *out = line.substr(v, end - v + 1);
        return true;
    }
    if (v < line.size() && line[v] == '"') {
        // String value. Our own escaper emits \", \\, and \u00XX for
        // control characters; the reader additionally accepts every
        // standard JSON escape so externally produced lines decode to
        // the same bytes a compliant parser would see. Unknown escapes
        // are an error, not a silently dropped backslash.
        std::string decoded;
        for (++v; v < line.size() && line[v] != '"'; ++v) {
            if (line[v] != '\\') {
                decoded.push_back(line[v]);
                continue;
            }
            if (v + 1 >= line.size())
                return fail("dangling escape in result line");
            const char e = line[v + 1];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                decoded.push_back(e);
                ++v;
                continue;
            case 'b':
                decoded.push_back('\b');
                ++v;
                continue;
            case 'f':
                decoded.push_back('\f');
                ++v;
                continue;
            case 'n':
                decoded.push_back('\n');
                ++v;
                continue;
            case 'r':
                decoded.push_back('\r');
                ++v;
                continue;
            case 't':
                decoded.push_back('\t');
                ++v;
                continue;
            case 'u': {
                if (v + 5 >= line.size())
                    return fail("truncated \\u escape in result line");
                const std::string hex = line.substr(v + 2, 4);
                // strtol alone would accept signs, whitespace, and 0x
                // prefixes; insist on exactly four hex digits.
                long code = 0;
                for (const char h : hex) {
                    if (!std::isxdigit(static_cast<unsigned char>(h)))
                        return fail("bad \\u escape in result line");
                    code = code * 16 +
                           (std::isdigit(static_cast<unsigned char>(h))
                                ? h - '0'
                                : (std::tolower(
                                       static_cast<unsigned char>(h)) -
                                   'a' + 10));
                }
                if (code >= 0xd800 && code <= 0xdfff)
                    return fail("surrogate \\u escape in result line");
                // Encode as UTF-8 so codes above 0xff round-trip: the
                // writer passes non-ASCII bytes through raw, so the
                // decoded bytes re-serialize to the same string.
                if (code < 0x80) {
                    decoded.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    decoded.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    decoded.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    decoded.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    decoded.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                    decoded.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                v += 5;
                continue;
            }
            default:
                return fail(std::string("unknown escape '\\") + e +
                            "' in result line");
            }
        }
        if (v >= line.size())
            return fail("unterminated string in result line");
        *out = decoded;
        return true;
    }
    size_t end = v;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    if (end == v)
        return fail("empty value for field '" + key + "'");
    *out = line.substr(v, end - v);
    return true;
}

namespace
{

/**
 * Pull one "key":value out of a flat one-line JSON object. Values are
 * returned as raw text (quotes stripped for strings, brackets kept for
 * arrays). fatal() when the key is absent or malformed -- the golden
 * format always writes every field.
 */
std::string
jsonField(const std::string &line, const std::string &key)
{
    std::string out;
    std::string err;
    if (!tryJsonField(line, key, &out, &err))
        fatal(err);
    return out;
}

uint64_t
parseUInt(const std::string &v, const std::string &key)
{
    char *end = nullptr;
    const uint64_t out = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        fatal("field '" + key + "' is not an integer: " + v);
    return out;
}

double
parseDouble(const std::string &v, const std::string &key)
{
    char *end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("field '" + key + "' is not a number: " + v);
    return out;
}

uint64_t
fieldUInt(const std::string &line, const std::string &key)
{
    return parseUInt(jsonField(line, key), key);
}

double
fieldDouble(const std::string &line, const std::string &key)
{
    return parseDouble(jsonField(line, key), key);
}

/** Split a "[a,b,c]" array field into its raw element strings. */
std::vector<std::string>
fieldArray(const std::string &line, const std::string &key)
{
    const std::string v = jsonField(line, key);
    if (v.size() < 2 || v.front() != '[' || v.back() != ']')
        fatal("field '" + key + "' is not an array: " + v);
    std::vector<std::string> out;
    size_t pos = 1;
    while (pos < v.size() - 1) {
        size_t comma = v.find(',', pos);
        if (comma == std::string::npos || comma > v.size() - 1)
            comma = v.size() - 1;
        if (comma == pos)
            fatal("empty element in array field '" + key + "': " + v);
        out.push_back(v.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

std::string
toJsonLine(const PerfResult &r)
{
    std::string out = "{\"kind\":\"perf\"";
    out += ",\"workload\":\"" + jsonEscape(r.workload) + "\"";
    out += ",\"mitigator\":\"" + jsonEscape(r.mitigator) + "\"";
    out += ",\"level\":" + std::to_string(r.aboLevel);
    out += ",\"norm_perf\":" + jsonDouble(r.normPerf);
    out += ",\"alerts_per_refi\":" + jsonDouble(r.alertsPerRefi);
    out += ",\"mitigations_per_bank_per_refw\":" +
           jsonDouble(r.mitigationsPerBankPerRefw);
    out += ",\"act_overhead\":" + jsonDouble(r.actOverheadFraction);
    out += ",\"alerts\":" + std::to_string(r.alerts);
    out += ",\"acts\":" + std::to_string(r.acts);
    // Per-sub-channel breakdowns as parallel arrays, one element per
    // simulated sub-channel (empty when no breakdown was recorded).
    auto append_array = [&out](const std::string &key, const auto &fmt) {
        out += ",\"" + key + "\":[";
        fmt();
        out += "]";
    };
    append_array("sc_acts", [&] {
        for (size_t i = 0; i < r.perSubchannel.size(); ++i) {
            if (i)
                out += ',';
            out += std::to_string(r.perSubchannel[i].acts);
        }
    });
    append_array("sc_alerts", [&] {
        for (size_t i = 0; i < r.perSubchannel.size(); ++i) {
            if (i)
                out += ',';
            out += std::to_string(r.perSubchannel[i].alerts);
        }
    });
    append_array("sc_alerts_per_refi", [&] {
        for (size_t i = 0; i < r.perSubchannel.size(); ++i) {
            if (i)
                out += ',';
            out += jsonDouble(r.perSubchannel[i].alertsPerRefi);
        }
    });
    append_array("sc_mitigations_per_bank_per_refw", [&] {
        for (size_t i = 0; i < r.perSubchannel.size(); ++i) {
            if (i)
                out += ',';
            out += jsonDouble(r.perSubchannel[i].mitigationsPerBankPerRefw);
        }
    });
    // Device grade at the tail, and only when one was named: default
    // runs keep the exact pre-device byte layout (golden files).
    if (!r.device.empty())
        out += ",\"device\":\"" + jsonEscape(r.device) + "\"";
    out += "}";
    return out;
}

std::string
toJsonLine(const CoAttackResult &r)
{
    std::string out = "{\"kind\":\"coattack\"";
    out += ",\"workload\":\"" + jsonEscape(r.workload) + "\"";
    out += ",\"mitigator\":\"" + jsonEscape(r.mitigator) + "\"";
    out += ",\"pattern\":\"" + jsonEscape(r.pattern) + "\"";
    out += ",\"level\":" + std::to_string(r.aboLevel);
    out += ",\"attacker_max_hammer\":" +
           std::to_string(r.attackerMaxHammer);
    out += ",\"attacker_acts\":" + std::to_string(r.attackerActs);
    out += ",\"victim_slowdown\":" + jsonDouble(r.victimSlowdown);
    out += ",\"victim_norm_perf\":" + jsonDouble(r.victimNormPerf);
    out += ",\"victim_acts\":" + std::to_string(r.victimActs);
    out += ",\"alerts\":" + std::to_string(r.alerts);
    out += ",\"attack_free_alerts\":" +
           std::to_string(r.attackFreeAlerts);
    out += ",\"rfms\":" + std::to_string(r.rfms);
    out += ",\"attack_free_rfms\":" + std::to_string(r.attackFreeRfms);
    out += ",\"refs\":" + std::to_string(r.refs);
    out += ",\"alerts_per_refi\":" + jsonDouble(r.alertsPerRefi);
    out += ",\"attack_free_alerts_per_refi\":" +
           jsonDouble(r.attackFreeAlertsPerRefi);
    // Device grade at the tail, and only when one was named: default
    // runs keep the exact pre-device byte layout (golden files).
    if (!r.device.empty())
        out += ",\"device\":\"" + jsonEscape(r.device) + "\"";
    out += "}";
    return out;
}

std::string
toJsonLine(const attacks::AttackResult &r, const std::string &pattern,
           const std::string &mitigator)
{
    std::string out = "{\"kind\":\"attack\"";
    out += ",\"pattern\":\"" + jsonEscape(pattern) + "\"";
    out += ",\"mitigator\":\"" + jsonEscape(mitigator) + "\"";
    out += ",\"max_hammer\":" + std::to_string(r.maxHammer);
    out += ",\"total_acts\":" + std::to_string(r.totalActs);
    out += ",\"alerts\":" + std::to_string(r.alerts);
    out += ",\"duration_ps\":" + std::to_string(r.duration);
    out += "}";
    return out;
}

std::string
toJsonLine(const attacks::ThroughputAttackResult &r,
           const std::string &pattern, const std::string &mitigator)
{
    std::string out = "{\"kind\":\"throughput_attack\"";
    out += ",\"pattern\":\"" + jsonEscape(pattern) + "\"";
    out += ",\"mitigator\":\"" + jsonEscape(mitigator) + "\"";
    out += ",\"attack_rate\":" + jsonDouble(r.attackRate);
    out += ",\"baseline_rate\":" + jsonDouble(r.baselineRate);
    out += ",\"relative_throughput\":" + jsonDouble(r.relativeThroughput);
    out += ",\"loss_fraction\":" + jsonDouble(r.lossFraction);
    out += ",\"alerts\":" + std::to_string(r.alerts);
    out += "}";
    return out;
}

void
writeJsonLines(std::ostream &os, const std::vector<PerfResult> &rs)
{
    for (const auto &r : rs)
        os << toJsonLine(r) << "\n";
}

void
writeJsonLines(std::ostream &os, const std::vector<CoAttackResult> &rs)
{
    for (const auto &r : rs)
        os << toJsonLine(r) << "\n";
}

CoAttackResult
coAttackResultOfJsonLine(const std::string &line)
{
    if (jsonField(line, "kind") != "coattack")
        fatal("not a coattack result line: " + line);
    CoAttackResult r;
    r.workload = jsonField(line, "workload");
    r.mitigator = jsonField(line, "mitigator");
    r.pattern = jsonField(line, "pattern");
    r.aboLevel = static_cast<int>(fieldUInt(line, "level"));
    r.attackerMaxHammer =
        static_cast<uint32_t>(fieldUInt(line, "attacker_max_hammer"));
    r.attackerActs = fieldUInt(line, "attacker_acts");
    r.victimSlowdown = fieldDouble(line, "victim_slowdown");
    r.victimNormPerf = fieldDouble(line, "victim_norm_perf");
    r.victimActs = fieldUInt(line, "victim_acts");
    r.alerts = fieldUInt(line, "alerts");
    r.attackFreeAlerts = fieldUInt(line, "attack_free_alerts");
    r.rfms = fieldUInt(line, "rfms");
    r.attackFreeRfms = fieldUInt(line, "attack_free_rfms");
    r.refs = fieldUInt(line, "refs");
    r.alertsPerRefi = fieldDouble(line, "alerts_per_refi");
    r.attackFreeAlertsPerRefi =
        fieldDouble(line, "attack_free_alerts_per_refi");
    // Optional: only named-device runs write it (default-device lines,
    // and every pre-device line, omit it entirely).
    if (line.find("\"device\":") != std::string::npos)
        r.device = jsonField(line, "device");
    return r;
}

PerfResult
perfResultOfJsonLine(const std::string &line)
{
    if (jsonField(line, "kind") != "perf")
        fatal("not a perf result line: " + line);
    PerfResult r;
    r.workload = jsonField(line, "workload");
    r.mitigator = jsonField(line, "mitigator");
    r.aboLevel = static_cast<int>(fieldUInt(line, "level"));
    r.normPerf = fieldDouble(line, "norm_perf");
    r.alertsPerRefi = fieldDouble(line, "alerts_per_refi");
    r.mitigationsPerBankPerRefw =
        fieldDouble(line, "mitigations_per_bank_per_refw");
    r.actOverheadFraction = fieldDouble(line, "act_overhead");
    r.alerts = fieldUInt(line, "alerts");
    r.acts = fieldUInt(line, "acts");
    // Optional: only named-device runs write it (default-device lines,
    // and every pre-device line, omit it entirely).
    if (line.find("\"device\":") != std::string::npos)
        r.device = jsonField(line, "device");
    // Pre-v2 lines carry no per-sub-channel arrays; treat their
    // absence as an empty breakdown so old JSONL stays readable (the
    // trace reader gives v1 files the same courtesy).
    if (line.find("\"sc_acts\":") == std::string::npos)
        return r;
    const auto sc_acts = fieldArray(line, "sc_acts");
    const auto sc_alerts = fieldArray(line, "sc_alerts");
    const auto sc_refi = fieldArray(line, "sc_alerts_per_refi");
    const auto sc_mit = fieldArray(line, "sc_mitigations_per_bank_per_refw");
    if (sc_alerts.size() != sc_acts.size() ||
        sc_refi.size() != sc_acts.size() || sc_mit.size() != sc_acts.size())
        fatal("per-sub-channel arrays disagree in length: " + line);
    r.perSubchannel.resize(sc_acts.size());
    for (size_t i = 0; i < sc_acts.size(); ++i) {
        r.perSubchannel[i].acts = parseUInt(sc_acts[i], "sc_acts");
        r.perSubchannel[i].alerts = parseUInt(sc_alerts[i], "sc_alerts");
        r.perSubchannel[i].alertsPerRefi =
            parseDouble(sc_refi[i], "sc_alerts_per_refi");
        r.perSubchannel[i].mitigationsPerBankPerRefw =
            parseDouble(sc_mit[i], "sc_mitigations_per_bank_per_refw");
    }
    return r;
}

std::vector<PerfResult>
readPerfJsonLines(std::istream &is)
{
    std::vector<PerfResult> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (jsonField(line, "kind") == "perf")
            out.push_back(perfResultOfJsonLine(line));
    }
    return out;
}

} // namespace moatsim::sim
