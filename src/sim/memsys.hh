/**
 * @file
 * Multi-core memory-system performance model.
 *
 * Replays per-core activation traces (workload::CoreTrace) through a
 * single SubChannel. This is the one-sub-channel compatibility view of
 * the full-system replay in sim/system.hh (which drives N sub-channels
 * in one merged event loop); both share the same flattened inner loop.
 * Cores are elastic: the intended gap between two
 * activations is preserved (it represents the instructions executed
 * between them), but a core may only run ahead of its outstanding
 * memory requests by a bounded memory-level parallelism, so channel
 * stalls (REF, ALERT/RFM) back-pressure the instruction stream. The
 * per-core finish time is the measure of performance; the paper's
 * normalized weighted speedup is the ratio of finish times against a
 * no-ALERT baseline run of the identical traces.
 */

#ifndef MOATSIM_SIM_MEMSYS_HH
#define MOATSIM_SIM_MEMSYS_HH

#include <cstdint>
#include <vector>

#include "common/time.hh"
#include "subchannel/subchannel.hh"
#include "workload/tracegen.hh"

namespace moatsim::sim
{

/** Core model parameters. */
struct CoreModel
{
    /** Maximum outstanding activations per core. */
    uint32_t mlp = 4;
};

/** Result of replaying one set of traces. */
struct MemSysResult
{
    /** Per-core completion time (last ACT completion + trailing gap). */
    std::vector<Time> coreFinish;
    /** Total activations replayed. */
    uint64_t totalActs = 0;
    /** REF commands executed during the run. */
    uint64_t refs = 0;
    /** ALERTs asserted during the run. */
    uint64_t alerts = 0;
};

/**
 * Replay @p traces on @p channel until every core consumed its trace.
 *
 * @param channel The sub-channel (caller chooses the mitigator).
 * @param traces One trace per core.
 * @param core Core model parameters.
 */
MemSysResult runMemSystem(subchannel::SubChannel &channel,
                          const std::vector<workload::CoreTrace> &traces,
                          const CoreModel &core = CoreModel{});

} // namespace moatsim::sim

#endif // MOATSIM_SIM_MEMSYS_HH
