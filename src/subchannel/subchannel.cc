#include "subchannel/subchannel.hh"

#include <algorithm>
#include <cassert>
#include <span>

#include "common/logging.hh"
#include "mitigation/ideal_prc.hh"
#include "mitigation/moat.hh"
#include "mitigation/null.hh"
#include "mitigation/panopticon.hh"
#include "mitigation/panopticon_counter.hh"

namespace moatsim::subchannel
{

namespace
{

using mitigation::MitigatorKind;

/**
 * Sealed dispatch of one mitigator hook: invoke @p fn with the
 * mitigator downcast to its resolved concrete (final) type, so the
 * call devirtualizes into a direct call the compiler can inline.
 * Custom (and any unmatched tag) falls back to the virtual interface.
 * The kind tag is resolved once at construction; this switch is the
 * only per-call cost.
 */
template <typename Fn>
inline auto
dispatchSealed(MitigatorKind kind, mitigation::IMitigator &mit, Fn &&fn)
    -> decltype(fn(mit))
{
    switch (kind) {
    case MitigatorKind::Moat:
        return fn(static_cast<mitigation::MoatMitigator &>(mit));
    case MitigatorKind::Panopticon:
        return fn(static_cast<mitigation::PanopticonMitigator &>(mit));
    case MitigatorKind::PanopticonCounter:
        return fn(
            static_cast<mitigation::PanopticonCounterMitigator &>(mit));
    case MitigatorKind::IdealPrc:
        return fn(static_cast<mitigation::IdealPrcMitigator &>(mit));
    case MitigatorKind::Null:
        return fn(static_cast<mitigation::NullMitigator &>(mit));
    case MitigatorKind::Custom:
        break;
    }
    return fn(mit);
}

} // namespace

SubChannel::SubChannel(const SubChannelConfig &config,
                       const MitigatorFactory &factory)
    : config_(config),
      rng_(config.seed),
      abo_(config_.timing, config.aboLevel)
{
    config_.timing.validate();
    if (!factory)
        fatal("SubChannel: a mitigator factory is required");

    const uint32_t nb = config_.numBanks != 0
                            ? config_.numBanks
                            : config_.timing.banksPerSubchannel;
    // The oracle's per-bank arrays (3 words per row) dominate the cost
    // of constructing a sub-channel; allocate them only when something
    // will read them. The reference path keeps the eager allocation so
    // the benches can A/B the pre-overhaul cost model.
    const bool oracle = config_.securityEnabled || !config_.sealedDispatch;
    const size_t rows = config_.timing.rowsPerBank;
    // The flat counter slab pays off where construction cost is the
    // bottleneck: oracle-free performance cells, built by the
    // thousand across a matrix. Channels that carry the oracle are
    // dominated by its arrays anyway, and measure slightly *slower*
    // with the slab, so they keep per-bank counter storage.
    const bool slab = config_.sealedDispatch && !oracle;
    if (slab)
        counter_slab_.assign(static_cast<size_t>(nb) * rows, 0);
    banks_.reserve(nb);
    if (oracle)
        security_.reserve(nb);
    mitigators_.reserve(nb);
    kinds_.reserve(nb);
    refresh_.reserve(nb);
    mitigation_stats_.reserve(nb);
    for (BankId b = 0; b < nb; ++b) {
        if (slab) {
            banks_.emplace_back(
                config_.timing, config_.counterInit, &rng_,
                std::span<ActCount>(counter_slab_.data() + b * rows,
                                    rows));
        } else {
            banks_.emplace_back(config_.timing, config_.counterInit,
                                &rng_);
        }
        if (oracle)
            security_.emplace_back(config_.timing.rowsPerBank,
                                   config_.timing.blastRadius);
        mitigators_.push_back(factory(b));
        kinds_.push_back(config_.sealedDispatch
                             ? mitigators_.back()->kind()
                             : MitigatorKind::Custom);
        refresh_.emplace_back(config_.timing, config_.maxPostponedRefs);
        mitigation_stats_.emplace_back();
    }
    bank_ready_.assign(nb, 0);
    next_ref_time_ = config_.timing.tREFI;
}

Time
SubChannel::earliestActTime(BankId bank) const
{
    assert(bank < banks_.size());
    Time t = std::max({now_, channel_busy_until_, bank_ready_[bank]});
    if (last_act_time_ >= 0)
        t = std::max(t, last_act_time_ + config_.timing.tRRD);
    const Time oldest = faw_ring_[faw_pos_];
    if (oldest >= 0)
        t = std::max(t, oldest + config_.timing.tFAW);
    return t;
}

Time
SubChannel::activate(BankId bank, RowId row)
{
    return activateAt(bank, row, now_);
}

Time
SubChannel::activateAt(BankId bank, RowId row, Time not_before)
{
    assert(bank < banks_.size());
    assert(row < banks_[bank].numRows());
    const Time tRC = config_.timing.tRC;

    for (;;) {
        const Time t = std::max(earliestActTime(bank), not_before);

        // The ACT must fully complete before any stall event that
        // starts earlier than its completion; process the earliest
        // such event and retry.
        const bool rfm_due =
            rfm_block_pending_ && abo_.rfmBlockStart() < t + tRC;
        const bool ref_due = next_ref_time_ < t + tRC;
        if (rfm_due &&
            (!ref_due || abo_.rfmBlockStart() <= next_ref_time_)) {
            serviceRfmBlock();
            continue;
        }
        if (ref_due) {
            processRefBoundary();
            continue;
        }

        // Issue the ACT at t; closed-page policy precharges right away
        // and the PRAC counter update lands at t + tRC.
        dram::Bank &bk = banks_[bank];
        bk.activate(row);
        bk.precharge();
        if (config_.securityEnabled)
            security_[bank].onActivate(row);
        mitigation::MitigationContext ctx(bk, securityPtr(bank),
                                          mitigation_stats_[bank]);
        mitigation::IMitigator &mit = *mitigators_[bank];
        const MitigatorKind kind = kinds_[bank];
        dispatchSealed(kind, mit,
                       [&](auto &m) { m.onActivate(row, ctx); });
        // An ACT can only raise the activated bank's own want; the
        // sticky flag spares the per-ACT scan over every other bank.
        if (config_.fastAlertScan &&
            dispatchSealed(kind, mit,
                           [](const auto &m) { return m.wantsAlert(); }))
            alert_wanted_sticky_ = true;
        ++stats_.acts;

        bank_ready_[bank] = t + tRC;
        last_act_time_ = t;
        faw_ring_[faw_pos_] = t;
        faw_pos_ = (faw_pos_ + 1) % 4;
        now_ = t;

        abo_.onActCompleted(t + tRC);
        maybeAssertAlert(t + tRC);
        return t;
    }
}

void
SubChannel::advanceTo(Time t)
{
    processEventsBefore(t);
    now_ = std::max(now_, t);
}

Time
SubChannel::drainToQuiescence(Time max_advance)
{
    const Time deadline = now_ + max_advance;
    while (alertWorkPending()) {
        // The next thing that can retire work: the in-flight ALERT's
        // RFM block, or the next REF boundary (whose mitigation slot
        // is the only thing that clears a want once ACTs stop).
        Time next = next_ref_time_;
        if (rfm_block_pending_)
            next = std::min(next, abo_.rfmBlockStart());
        if (next > deadline)
            break;
        advanceTo(next);
    }
    // The recovery is over when the work that retired the last want
    // finishes executing, not when it was issued.
    if (!alertWorkPending())
        now_ = std::max(now_, std::min(channel_busy_until_, deadline));
    return now_;
}

void
SubChannel::processEventsBefore(Time t)
{
    for (;;) {
        const bool rfm_due =
            rfm_block_pending_ && abo_.rfmBlockStart() <= t;
        const bool ref_due = next_ref_time_ <= t;
        if (rfm_due &&
            (!ref_due || abo_.rfmBlockStart() <= next_ref_time_)) {
            serviceRfmBlock();
        } else if (ref_due) {
            processRefBoundary();
        } else {
            break;
        }
    }
}

void
SubChannel::processRefBoundary()
{
    const Time boundary = next_ref_time_;
    next_ref_time_ += config_.timing.tREFI;

    if (postpone_refresh_ && owed_refs_ < config_.maxPostponedRefs) {
        ++owed_refs_;
        ++stats_.postponedRefs;
        return;
    }

    // Issue the due REF plus any owed ones back to back (batching).
    const uint32_t n = owed_refs_ + 1;
    owed_refs_ = 0;
    const Time busy_start = std::max(boundary, channel_busy_until_);
    channel_busy_until_ = busy_start +
                          static_cast<Time>(n) * config_.timing.tRFC;
    for (uint32_t i = 0; i < n; ++i)
        performOneRef();
    // REF-time mitigation work can clear (or, via counter resets on
    // refresh, raise) wants on any bank; refresh the sticky flag.
    if (config_.fastAlertScan)
        alert_wanted_sticky_ = anyAlertWanted();
    maybeAssertAlert(channel_busy_until_);
}

void
SubChannel::performOneRef()
{
    for (BankId b = 0; b < banks_.size(); ++b) {
        const uint32_t group = refresh_[b].issueRef();
        const auto [first, last] = refresh_[b].groupRows(group);
        mitigation::MitigationContext ctx(banks_[b], securityPtr(b),
                                          mitigation_stats_[b]);
        if (config_.refreshResetsRows) {
            if (config_.securityEnabled) {
                for (RowId r = first; r <= last; ++r)
                    security_[b].onRowRefreshed(r);
            }
            dispatchSealed(kinds_[b], *mitigators_[b], [&](auto &m) {
                m.onAutoRefresh(first, last, ctx);
            });
        }
        dispatchSealed(kinds_[b], *mitigators_[b],
                       [&](auto &m) { m.onRefCommand(ctx); });
    }
    ++stats_.refs;
}

void
SubChannel::serviceRfmBlock()
{
    assert(rfm_block_pending_);
    const int n = abo_.rfmsPerAlert();
    for (int i = 0; i < n; ++i) {
        for (BankId b = 0; b < banks_.size(); ++b) {
            mitigation::MitigationContext ctx(banks_[b], securityPtr(b),
                                              mitigation_stats_[b]);
            dispatchSealed(kinds_[b], *mitigators_[b],
                           [&](auto &m) { m.onRfm(ctx); });
        }
        ++stats_.rfms;
    }
    channel_busy_until_ =
        std::max(channel_busy_until_, abo_.rfmBlockEnd());
    abo_.completeAlert();
    rfm_block_pending_ = false;
    // RFM mitigation cleared wants on any subset of banks.
    if (config_.fastAlertScan)
        alert_wanted_sticky_ = anyAlertWanted();
}

void
SubChannel::maybeAssertAlert(Time t)
{
    if (rfm_block_pending_)
        return;
    // The sticky flag is exact (see its invariant in the header), so
    // the fast path replaces the all-banks wantsAlert() poll that
    // otherwise dominates the per-ACT cost.
    if (config_.fastAlertScan ? !alert_wanted_sticky_ : !anyAlertWanted())
        return;
    if (!abo_.canAssert(t))
        return;
    abo_.assertAlert(t);
    rfm_block_pending_ = true;
    for (BankId b = 0; b < banks_.size(); ++b) {
        mitigation::MitigationContext ctx(banks_[b], securityPtr(b),
                                          mitigation_stats_[b]);
        dispatchSealed(kinds_[b], *mitigators_[b],
                       [&](auto &m) { m.onAlertAsserted(ctx); });
    }
}

void
SubChannel::requireOracle() const
{
    if (security_.empty())
        fatal("SubChannel::security: the ground-truth oracle is elided "
              "on this channel (securityEnabled is off on the sealed "
              "path); enable securityEnabled to track damage/hammer "
              "state");
}

bool
SubChannel::anyAlertWanted() const
{
    for (BankId b = 0; b < banks_.size(); ++b) {
        const bool want = dispatchSealed(
            kinds_[b], *mitigators_[b],
            [](const auto &m) { return m.wantsAlert(); });
        if (want)
            return true;
    }
    return false;
}

mitigation::MitigationStats
SubChannel::mitigationStats() const
{
    mitigation::MitigationStats total;
    for (const auto &s : mitigation_stats_) {
        total.proactiveMitigations += s.proactiveMitigations;
        total.alertMitigations += s.alertMitigations;
        total.victimRefreshes += s.victimRefreshes;
        total.counterResets += s.counterResets;
    }
    return total;
}

uint32_t
SubChannel::maxHammerAnyBank() const
{
    uint32_t best = 0;
    for (const auto &s : security_)
        best = std::max(best, s.maxHammer());
    return best;
}

} // namespace moatsim::subchannel
