/**
 * @file
 * Command-level DDR5 sub-channel simulator.
 *
 * The SubChannel is the substrate on which both the attack patterns and
 * the workload performance model run. It owns the banks of one DDR5
 * sub-channel together with one mitigator instance per bank, enforces
 * command timing (per-bank tRC, channel-wide tRRD/tFAW, REF busy
 * windows), issues auto-refresh on the tREFI cadence (optionally with
 * attacker-controlled postponement, Appendix B), and runs the
 * ALERT-Back-Off protocol: when any bank's mitigator requests an ALERT
 * and the ABO engine permits it, the channel schedules the 180 ns
 * normal window followed by L RFM commands during which every bank's
 * mitigator performs reactive mitigation.
 *
 * Callers drive it with activate() ("issue this ACT as early as legal")
 * or activateAt() ("...but not before this time"), and advanceTo() for
 * idle waiting. A closed-page policy is assumed: every ACT is followed
 * by an automatic precharge, and the PRAC counter update (and thus any
 * ALERT trigger) lands at the end of the activate-precharge cycle.
 */

#ifndef MOATSIM_SUBCHANNEL_SUBCHANNEL_HH
#define MOATSIM_SUBCHANNEL_SUBCHANNEL_HH

#include <functional>
#include <memory>
#include <vector>

#include "abo/abo.hh"
#include "common/rng.hh"
#include "common/time.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/refresh.hh"
#include "dram/security.hh"
#include "dram/timing.hh"
#include "mitigation/mitigator.hh"

namespace moatsim::subchannel
{

/** Configuration of one sub-channel instance. */
struct SubChannelConfig
{
    dram::TimingParams timing{};
    /** ABO mitigation level (MR71 op[1:0]). */
    abo::Level aboLevel = abo::Level::L1;
    /** PRAC counter initialization. */
    dram::CounterInit counterInit = dram::CounterInit::Zero;
    /**
     * Whether auto-refresh resets row damage/hammer state and invokes
     * the mitigator's counter-reset-on-refresh hook. Long-running
     * security experiments disable this to model an attacker that
     * aligns the pattern with the refresh schedule (the threat model
     * lets the attacker pick the memory policy best suited to the
     * attack); REF commands still occur and still provide mitigation
     * slots.
     */
    bool refreshResetsRows = true;
    /**
     * Whether the ground-truth SecurityMonitor tracks every activation.
     * Security experiments need it; pure performance runs disable it
     * for speed (it never affects behaviour, only observation).
     */
    bool securityEnabled = true;
    /** Number of banks; 0 means timing.banksPerSubchannel. */
    uint32_t numBanks = 0;
    /**
     * Track bank ALERT requests incrementally (a sticky flag updated
     * at the single points where a mitigator's wantsAlert() can
     * change) instead of polling every bank's mitigator on every ACT.
     * Behaviour is bit-identical either way -- the flag exists so the
     * flattened hot path can be benchmarked against the full per-ACT
     * scan (bench_core_loop) and cross-checked in tests.
     */
    bool fastAlertScan = true;
    /**
     * Run the devirtualized hot path: per-ACT (and per-REF/RFM)
     * mitigator hooks dispatch through a sealed MitigatorKind switch
     * of direct calls into the five registry designs (anything else
     * falls back to the virtual IMitigator interface), and the
     * ground-truth oracle's multi-MB per-bank arrays are allocated
     * only when securityEnabled actually reads them. false preserves
     * the pre-overhaul reference path -- a virtual call per hook and
     * eagerly allocated oracle state -- so bench_core_loop and
     * bench_sweep_scale can A/B the two; results are bit-identical
     * either way (the same member functions run in the same order).
     */
    bool sealedDispatch = true;
    /** Maximum REFs that postponement may owe at once (DDR5: 2). */
    uint32_t maxPostponedRefs = 2;
    /** Seed for randomized counter initialization. */
    uint64_t seed = 1;
};

/** Aggregate activity counters of a sub-channel. */
struct SubChannelStats
{
    /** Activations issued. */
    uint64_t acts = 0;
    /** Individual REF commands executed. */
    uint64_t refs = 0;
    /** tREFI boundaries where the REF was postponed. */
    uint64_t postponedRefs = 0;
    /** RFM commands executed (rfmsPerAlert per ALERT). */
    uint64_t rfms = 0;
};

/** Command-level model of one DDR5 sub-channel. */
class SubChannel
{
  public:
    /** Builds the per-bank mitigator instances. */
    using MitigatorFactory =
        std::function<std::unique_ptr<mitigation::IMitigator>(BankId)>;

    SubChannel(const SubChannelConfig &config,
               const MitigatorFactory &factory);

    /** Current simulation time (completion of the last processed op). */
    Time now() const { return now_; }

    /** Number of banks. */
    uint32_t numBanks() const { return static_cast<uint32_t>(banks_.size()); }

    /**
     * Issue an activation to (bank, row) at the earliest legal time.
     * @return the issue time of the ACT.
     */
    Time activate(BankId bank, RowId row);

    /**
     * Issue an activation no earlier than @p not_before (used by the
     * performance model, where requests arrive at specific times, and
     * by attacks that pace themselves).
     * @return the issue time of the ACT.
     */
    Time activateAt(BankId bank, RowId row, Time not_before);

    /** Earliest time an ACT to @p bank could issue right now. */
    Time earliestActTime(BankId bank) const;

    /** Advance the clock to @p t, processing REFs and pending ALERTs. */
    void advanceTo(Time t);

    /**
     * Whether serviceable ALERT/mitigation work is still outstanding:
     * an asserted ALERT whose RFM block has not been serviced yet, or
     * a bank wanting an ALERT that the ABO protocol can still accept
     * without further activations. A want gated on the inter-ALERT
     * activation minimum is latent state, not pending work -- it
     * cannot resolve until the command stream resumes.
     */
    bool alertWorkPending() const
    {
        return rfm_block_pending_ ||
               (anyAlertWanted() && abo_.canAssert(now_));
    }

    /**
     * Advance time until no serviceable ALERT/mitigation work is
     * pending -- the in-flight RFM block executes, and an assertable
     * want is raised at the next REF boundary and serviced -- then
     * land on the end of the busy window that retired the last work
     * item. Never advances beyond now() + @p max_advance.
     * @return the new now().
     */
    Time drainToQuiescence(Time max_advance);

    /** Enable/disable attacker-controlled refresh postponement. */
    void setPostponeRefresh(bool on) { postpone_refresh_ = on; }

    /** Access to a bank (counters). */
    dram::Bank &bank(BankId b) { return banks_.at(b); }
    const dram::Bank &bank(BankId b) const { return banks_.at(b); }

    /**
     * Prefetch hint for an upcoming ACT to (bank, row); see
     * dram::Bank::prefetchCounter. Out-of-range banks are ignored.
     */
    void prefetchActivate(BankId b, RowId row) const
    {
        if (b < banks_.size())
            banks_[b].prefetchCounter(row);
    }

    /**
     * Ground-truth security monitor of a bank. Only available when the
     * configuration keeps the oracle (securityEnabled, or the
     * reference path); performance runs elide its storage entirely and
     * this accessor then fatal()s with a diagnostic.
     */
    dram::SecurityMonitor &security(BankId b)
    {
        requireOracle();
        return security_.at(b);
    }
    const dram::SecurityMonitor &security(BankId b) const
    {
        requireOracle();
        return security_.at(b);
    }

    /** Mitigator of a bank. */
    mitigation::IMitigator &mitigator(BankId b) { return *mitigators_.at(b); }
    const mitigation::IMitigator &mitigator(BankId b) const
    {
        return *mitigators_.at(b);
    }

    /** Refresh scheduler of a bank. */
    const dram::RefreshScheduler &refreshScheduler(BankId b) const
    {
        return refresh_.at(b);
    }

    /** ABO protocol engine. */
    const abo::AboEngine &abo() const { return abo_; }

    /** Activity counters. */
    const SubChannelStats &stats() const { return stats_; }

    /** Aggregated mitigation-work counters across all banks. */
    mitigation::MitigationStats mitigationStats() const;

    /** Max hammer count (paper's attack metric) across all banks. */
    uint32_t maxHammerAnyBank() const;

    /** The timing parameters in use. */
    const dram::TimingParams &timing() const { return config_.timing; }

    /** The configuration in use. */
    const SubChannelConfig &config() const { return config_; }

  private:
    /** Process REF boundaries and RFM blocks scheduled before @p t. */
    void processEventsBefore(Time t);

    /** Execute the REF(s) due at the current boundary. */
    void processRefBoundary();

    /** Execute one REF command across all banks. */
    void performOneRef();

    /** Execute the RFM block of the in-flight ALERT. */
    void serviceRfmBlock();

    /** Assert an ALERT at @p t if one is wanted and permitted. */
    void maybeAssertAlert(Time t);

    /** Whether any bank's mitigator currently wants an ALERT. */
    bool anyAlertWanted() const;

    /** Security monitor of @p b, or null when the oracle is elided. */
    dram::SecurityMonitor *securityPtr(BankId b)
    {
        return security_.empty() ? nullptr : &security_[b];
    }

    /** fatal() with a diagnostic when the oracle is elided. */
    void requireOracle() const;

    SubChannelConfig config_;
    Rng rng_;
    /**
     * Flat PRAC-counter slab backing every bank (sealed path): one
     * allocation of numBanks x rowsPerBank entries instead of one
     * multi-hundred-KB allocation per bank. Declared before banks_ so
     * it outlives the Bank spans into it. Empty on the reference path
     * (banks own their counters, the pre-overhaul layout).
     */
    std::vector<ActCount> counter_slab_;
    /** Banks stored by value: the per-ACT path indexes a contiguous
     *  array instead of chasing one heap pointer per bank. */
    std::vector<dram::Bank> banks_;
    /** Empty when the oracle is elided (securityEnabled off on the
     *  sealed path); its per-bank arrays are the dominant cost of
     *  constructing a sub-channel. */
    std::vector<dram::SecurityMonitor> security_;
    std::vector<std::unique_ptr<mitigation::IMitigator>> mitigators_;
    /** Sealed dispatch tag per bank (Custom forces virtual calls). */
    std::vector<mitigation::MitigatorKind> kinds_;
    std::vector<dram::RefreshScheduler> refresh_;
    std::vector<mitigation::MitigationStats> mitigation_stats_;
    abo::AboEngine abo_;
    SubChannelStats stats_;

    Time now_ = 0;
    /** Next scheduled tREFI boundary. */
    Time next_ref_time_;
    /** Channel unavailable before this time (REF/RFM busy). */
    Time channel_busy_until_ = 0;
    /** Per-bank earliest next ACT (tRC). */
    std::vector<Time> bank_ready_;
    /** Channel-wide last ACT issue time (tRRD). */
    Time last_act_time_ = -1;
    /** Issue times of the last four ACTs (tFAW window). */
    Time faw_ring_[4] = {-1, -1, -1, -1};
    uint32_t faw_pos_ = 0;
    /** RFM block of the in-flight ALERT not yet executed. */
    bool rfm_block_pending_ = false;
    bool postpone_refresh_ = false;
    /**
     * Whether any bank's mitigator currently wants an ALERT, kept
     * current by the fastAlertScan path: OR-ed with the activated
     * bank's state after every ACT (the only place a want can appear)
     * and recomputed after REF/RFM mitigation work (the only places a
     * want can clear). Unused when fastAlertScan is off.
     */
    bool alert_wanted_sticky_ = false;
    /** Channel-level count of postponed (owed) REFs. */
    uint32_t owed_refs_ = 0;
};

} // namespace moatsim::subchannel

#endif // MOATSIM_SUBCHANNEL_SUBCHANNEL_HH
