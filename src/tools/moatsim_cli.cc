/**
 * @file
 * moatsim command-line driver.
 *
 * One binary to run any of the library's experiments without writing
 * code. Every experiment subcommand accepts
 *
 *   --mitigator name[:key=value,...]
 *
 * naming any registered design (see `moatsim list-mitigators`), e.g.
 * `--mitigator moat:ath=128,eth=64` or `--mitigator panopticon`.
 *
 * Every command also accepts `--faults site@rate[:seed],...` (or the
 * MOATSIM_FAULTS environment variable) arming deterministic fault
 * injection at the named I/O sites (common/fault.hh; catalog in
 * README.md "Failure model") -- the chaos knob behind the serve/client
 * convergence smoke.
 *
 *   moatsim bound   [--ath N] [--level 1|2|4]        Appendix-A bound
 *   moatsim ratchet [--mitigator S] [--ath N] [--level 1|2|4] [--pool N]
 *   moatsim jailbreak [--mitigator S] [--queue N] [--threshold N]
 *   moatsim feinting [--mitigator S] [--rate K]
 *   moatsim postponement [--mitigator S] [--max N]
 *   moatsim tsa     [--mitigator S] [--banks N] [--cycles N]
 *   moatsim attack  --pattern P [--mitigator S] [--device D] [--pool N]
 *                   [--acts N] [--trials N] [--jobs N] [--level 1|2|4]
 *                   generic driver. Without --jobs, --trials keeps its
 *                   pattern-internal meaning (alignment sweep). With
 *                   --jobs, --trials N instead runs N independently
 *                   seeded single-shot instances across the workers
 *                   and reports the best outcome -- identical at any
 *                   --jobs value, but a different search than the
 *                   internal sweep. --device D runs the attack under
 *                   that device grade's timings.
 *   moatsim perf    [--workload NAME|all] [--mitigator S] [--ath N]
 *                   [--eth N] [--level 1|2|4] [--fraction F]
 *                   [--subchannels N] [--device D[;D...]] [--jobs N]
 *                   [--jsonl FILE] [--no-trace-store] [--trace-seed N]
 *                   [--result-store 0|1|DIR]
 *                   --subchannels N simulates the full system as N
 *                   sub-channels (default 2, the Table-3 baseline)
 *                   and reports per-sub-channel ALERT/mitigation
 *                   breakdowns; --device D runs on a named device
 *                   grade (see `moatsim list-devices`) -- a
 *                   semicolon-separated list sweeps the device axis,
 *                   one experiment per grade, all appending to the
 *                   same --jsonl file; --jobs N fans the sweep across
 *                   N workers (0 = hardware concurrency; results are
 *                   bit-identical at any value); --jsonl appends one
 *                   structured JSON line per result; --result-store
 *                   overrides MOATSIM_RESULT_STORE ("0" = off, "1" =
 *                   in-memory, DIR = persistent shards) and a summary
 *                   "result store: hits=... computes=..." line lands
 *                   on stderr after the sweep
 *   moatsim coattack [--pattern P] [--workload NAME|all]
 *                   [--mitigator S] [--device D] [--level 1|2|4]
 *                   [--fraction F] [--subchannels N] [--pool N]
 *                   [--acts N] [--attack-subchannel I] [--attack-bank B]
 *                   [--seed N] [--jobs N] [--jsonl FILE]
 *                   [--no-trace-store] [--trace-seed N]
 *                   [--result-store 0|1|DIR]
 *                   adversary-under-load scenario: the attack pattern
 *                   is synthesized as one more core's activation
 *                   trace and co-scheduled with the workload's benign
 *                   cores on the full multi-sub-channel System;
 *                   reports the attacker's maxHammer under contention,
 *                   the victims' slowdown vs an attack-free co-run of
 *                   the same design, and the ALERT/RFM activity with
 *                   the attack-free counts alongside
 *   moatsim serve   --socket PATH [--max-cost C] [--max-requests N]
 *                   [--drain-cells N] [--result-store 0|1|DIR]
 *                   sweep-as-a-service daemon: listens on an AF_UNIX
 *                   socket for line-oriented JSON run requests (the
 *                   same flags' JSON form; see sim/serve.hh for the
 *                   protocol), sharing one trace store, result store,
 *                   and baseline cache across all clients so
 *                   concurrent requests for the same cells compute
 *                   each cell once; --max-cost bounds the estimated
 *                   cost of concurrently running requests;
 *                   --max-requests N exits after N run requests;
 *                   --drain-cells N bounds how many more cells each
 *                   in-flight reply may stream after a shutdown
 *                   begins (0 = drain fully)
 *   moatsim client  --socket PATH [--kind perf|coattack] [--stats]
 *                   [--shutdown] [--retries N] [--retry-seed S]
 *                   [--jsonl FILE] [perf/coattack flags]
 *                   thin client: sends one request to a serve daemon
 *                   and prints the per-cell result JSONL in request
 *                   order (byte-identical to the direct CLI's --jsonl
 *                   output); --stats prints the daemon's store and
 *                   admission counters; --shutdown stops the daemon;
 *                   --retries N re-sends on retryable failures with a
 *                   deterministic seeded backoff, converging
 *                   byte-identically (the daemon's result store makes
 *                   replayed cells free)
 *   moatsim store fsck --dir DIR [--repair]
 *                   scan a persistent result-store shard directory:
 *                   every record must decode and match its checksums;
 *                   --repair quarantines damaged records
 *                   (quarantine.jsonl) and compacts the shards
 *                   atomically. Exit 1 = damage found without
 *                   --repair.
 *   moatsim replay  --trace FILE [--mitigator S] [--ath N] [--eth N]
 *                   [--subchannels N] [--postpone]
 *                   traces carrying a sub-channel column replay on a
 *                   multi-sub-channel System automatically
 *   moatsim list-mitigators
 *   moatsim list-devices
 *   moatsim list-workloads
 *
 * Flags may be boolean (`--postpone` with no value) or valued
 * (`--ath 128`); a valued flag with a missing value is reported by
 * name.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/ratchet_model.hh"
#include "attacks/feinting.hh"
#include "attacks/jailbreak.hh"
#include "attacks/postponement.hh"
#include "attacks/ratchet.hh"
#include "attacks/tsa.hh"
#include "common/args.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "attacks/attack.hh"
#include "dram/device.hh"
#include "mitigation/registry.hh"
#include "sim/experiment.hh"
#include "sim/result_io.hh"
#include "sim/run_request.hh"
#include "sim/serve.hh"
#include "sim/system.hh"
#include "workload/trace_io.hh"

using namespace moatsim;

namespace
{

abo::Level
levelOf(uint64_t l)
{
    if (l != 1 && l != 2 && l != 4)
        fatal("--level must be 1, 2, or 4");
    return static_cast<abo::Level>(l);
}

/** The --mitigator spec, or the parsed @p def when absent. */
mitigation::MitigatorSpec
mitigatorArg(const Args &args, const std::string &def)
{
    return mitigation::Registry::parse(args.get("mitigator", def));
}

/**
 * The --device grades to run: canonicalized DeviceSpec texts, one per
 * semicolon-separated list entry (semicolons, because device specs
 * carry commas internally). An absent flag yields one empty string --
 * the hand-assembled default pipeline, bit-identical to the
 * pre-device-model behavior.
 */
std::vector<std::string>
deviceListArg(const Args &args)
{
    const std::string text = args.get("device", "");
    if (text.empty())
        return {""};
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t semi = text.find(';', pos);
        if (semi == std::string::npos)
            semi = text.size();
        const std::string item = text.substr(pos, semi - pos);
        if (item.empty())
            fatal("--device: empty spec in list '" + text + "'");
        out.push_back(dram::DeviceSpec::parse(item).describe());
        pos = semi + 1;
    }
    return out;
}

/** The single --device grade (canonicalized), or "" when absent. */
std::string
deviceArg(const Args &args)
{
    const std::string text = args.get("device", "");
    if (text.empty())
        return "";
    return dram::DeviceSpec::parse(text).describe();
}

/** Reject legacy design flags that would silently fight --mitigator. */
void
rejectLegacyWithSpec(const Args &args,
                     std::initializer_list<const char *> legacy)
{
    if (!args.has("mitigator"))
        return;
    for (const char *flag : legacy) {
        if (args.has(flag))
            fatal(std::string("--") + flag + " conflicts with --mitigator; "
                  "put the parameter in the spec (see list-mitigators)");
    }
}

int
cmdBound(const Args &args)
{
    dram::TimingParams t;
    const auto b = analysis::ratchetBound(
        t, args.getUint32("ath", 64),
        static_cast<int>(args.getPositive("level", 1)));
    std::printf("ATH=%u level=%d: TRH_safe=%.1f (pool Nc=%lu, "
                "tA2A=%.0f ns, %u ACTs per ALERT window)\n",
                b.ath, b.level, b.safeTrh,
                static_cast<unsigned long>(b.maxPoolRows),
                toNs(b.alertToAlert), b.actsPerWindow);
    return 0;
}

int
cmdRatchet(const Args &args)
{
    rejectLegacyWithSpec(args, {"ath", "eth"});
    attacks::RatchetConfig cfg;
    cfg.aboLevel = levelOf(args.getInt("level", 1));
    cfg.moat = mitigation::moatConfigOf(sim::withMoatLevelEntries(
        mitigatorArg(args, "moat"), cfg.aboLevel));
    if (args.has("ath")) {
        cfg.moat.ath = args.getUint32("ath", 64);
        cfg.moat.eth = cfg.moat.ath / 2;
    }
    if (args.has("eth"))
        cfg.moat.eth = args.getUint32("eth", 0);
    cfg.poolRows = args.getUint32("pool", 0);
    const auto r = attacks::runRatchet(cfg);
    const auto bound = analysis::ratchetBound(
        cfg.timing, cfg.moat.ath, abo::levelValue(cfg.aboLevel));
    std::printf("Ratchet vs MOAT-L%d ATH=%u: max ACTs=%u (model bound "
                "%.1f), %lu ALERTs, %.2f ms\n",
                abo::levelValue(cfg.aboLevel), cfg.moat.ath, r.maxHammer,
                bound.safeTrh, static_cast<unsigned long>(r.alerts),
                toMs(r.duration));
    return 0;
}

int
cmdJailbreak(const Args &args)
{
    rejectLegacyWithSpec(args, {"queue", "threshold"});
    attacks::JailbreakConfig cfg;
    cfg.panopticon =
        mitigation::panopticonConfigOf(mitigatorArg(args, "panopticon"));
    cfg.panopticon.queueEntries =
        args.getPositive("queue", cfg.panopticon.queueEntries);
    cfg.panopticon.queueThreshold =
        args.getPositive("threshold", cfg.panopticon.queueThreshold);
    cfg.hammerActs = args.getUint32(
        "hammer", cfg.panopticon.queueThreshold *
                      (cfg.panopticon.queueEntries + 2));
    const auto r = attacks::runDeterministicJailbreak(cfg);
    std::printf("Jailbreak vs Panopticon(T=%u,Q=%u): max ACTs=%u "
                "(%.1fx threshold), %lu ALERTs\n",
                cfg.panopticon.queueThreshold,
                cfg.panopticon.queueEntries, r.maxHammer,
                static_cast<double>(r.maxHammer) /
                    cfg.panopticon.queueThreshold,
                static_cast<unsigned long>(r.alerts));
    return 0;
}

int
cmdFeinting(const Args &args)
{
    rejectLegacyWithSpec(args, {"rate"});
    attacks::FeintingConfig cfg;
    const auto prc =
        mitigation::idealPrcConfigOf(mitigatorArg(args, "ideal-prc"));
    cfg.mitigationPeriodRefis =
        args.getPositive("rate", prc.mitigationPeriodRefis);
    const auto r = attacks::runFeinting(cfg);
    std::printf("Feinting vs IdealPRC (1 aggressor per %u tREFI): "
                "max ACTs=%u\n",
                cfg.mitigationPeriodRefis, r.maxHammer);
    return 0;
}

int
cmdPostponement(const Args &args)
{
    const auto spec = mitigatorArg(args, "panopticon");
    if (spec.hasParam("drain-all") && !spec.paramBool("drain-all", true))
        fatal("postponement requires the drain-all policy; got '" +
              spec.describe() + "'");
    attacks::PostponementConfig cfg;
    cfg.panopticon = mitigation::panopticonConfigOf(spec);
    cfg.panopticon.drainAllOnRef = true;
    cfg.maxPostponed = args.getUint32("max", 2);
    const auto r = attacks::runRefreshPostponement(cfg);
    std::printf("REF postponement (max %u) vs drain-all Panopticon: "
                "max ACTs=%u (%.1fx threshold)\n",
                cfg.maxPostponed, r.maxHammer,
                static_cast<double>(r.maxHammer) /
                    cfg.panopticon.queueThreshold);
    return 0;
}

int
cmdTsa(const Args &args)
{
    attacks::PerfAttackConfig cfg;
    cfg.moat = mitigation::moatConfigOf(mitigatorArg(args, "moat"));
    cfg.numBanks = args.getPositive("banks", 17);
    cfg.cycles = args.getPositive("cycles", 20);
    const auto r = attacks::runTsa(cfg);
    std::printf("TSA on %u banks: throughput loss %s (%lu ALERTs)\n",
                cfg.numBanks, formatPercent(r.lossFraction, 1).c_str(),
                static_cast<unsigned long>(r.alerts));
    return 0;
}

/** Natural target design of a pattern (what it runs against bare). */
std::string
defaultDesignOf(const std::string &pattern)
{
    if (pattern == "jailbreak" || pattern == "postponement")
        return "panopticon";
    if (pattern == "feinting")
        return "ideal-prc";
    return "moat";
}

int
cmdAttack(const Args &args)
{
    attacks::AttackConfig cfg;
    cfg.pattern = args.get("pattern", "hammer");
    cfg.aboLevel = levelOf(args.getInt("level", 1));
    // A named device grade swaps in that grade's timings (geometry
    // included); attacks keep hammering one bank either way.
    const std::string device = deviceArg(args);
    if (!device.empty())
        cfg.timing = dram::DeviceSpec::parse(device).resolve().timing();
    cfg.poolRows = args.getUint32("pool", 0);
    cfg.budget = args.getInt("acts", 0);
    cfg.trials = args.getUint32("trials", 0);
    cfg.seed = args.getInt("seed", 1);
    const auto spec = sim::withMoatLevelEntries(
        mitigatorArg(args, defaultDesignOf(cfg.pattern)), cfg.aboLevel);
    // --trials N with --jobs: N independently seeded instances across
    // the pool, best outcome wins; identical at any --jobs value.
    const auto r =
        args.has("jobs")
            ? attacks::runAttackTrials(
                  cfg, spec, cfg.trials > 0 ? cfg.trials : 1,
                  args.getUint32("jobs", 0))
            : attacks::runAttack(cfg, spec);
    std::printf("%s vs %s%s%s: max ACTs=%u, %lu total ACTs, %lu ALERTs, "
                "%.2f ms\n",
                cfg.pattern.c_str(), spec.describe().c_str(),
                device.empty() ? "" : " on ", device.c_str(), r.maxHammer,
                static_cast<unsigned long>(r.totalActs),
                static_cast<unsigned long>(r.alerts), toMs(r.duration));
    return 0;
}

/** The --result-store override, or the environment's default. */
sim::ResultStore::Config
resultStoreArg(const Args &args)
{
    if (!args.has("result-store"))
        return sim::ResultStore::envConfig();
    // A bare --result-store means "1": enabled, in-memory only.
    return sim::ResultStore::configOf(args.get("result-store", "1"));
}

/** The post-run store summary verify.sh's warm smoke greps for. */
void
printResultStoreStats(const sim::ResultStore &store)
{
    if (!store.enabled())
        return;
    const auto st = store.stats();
    std::fprintf(stderr,
                 "result store: hits=%llu misses=%llu computes=%llu "
                 "loaded=%llu corrupt=%llu quarantined=%llu "
                 "append_failures=%llu entries=%zu\n",
                 static_cast<unsigned long long>(st.hits),
                 static_cast<unsigned long long>(st.misses),
                 static_cast<unsigned long long>(st.computes),
                 static_cast<unsigned long long>(st.loaded),
                 static_cast<unsigned long long>(st.corrupt),
                 static_cast<unsigned long long>(st.quarantined),
                 static_cast<unsigned long long>(st.appendFailures),
                 st.entries);
}

/** "a / b / c" column joining one value per sub-channel. */
std::string
perSubchannelColumn(const std::vector<sim::SubChannelPerf> &per,
                    double sim::SubChannelPerf::*field, int digits)
{
    std::string out;
    for (const auto &p : per) {
        if (!out.empty())
            out += " / ";
        out += formatFixed(p.*field, digits);
    }
    return out;
}

int
cmdPerf(const Args &args)
{
    // One shared RunRequest codec for the CLI, the in-process API,
    // and the serve protocol (sim/run_request.hh); the --device list
    // is CLI sugar, one request per grade.
    const sim::RunRequest base = sim::runRequestOfArgs("perf", args);

    // One result store across the whole device sweep (and, when
    // --result-store names a directory, across CLI invocations).
    sim::ExperimentStores stores;
    stores.results =
        std::make_shared<sim::ResultStore>(resultStoreArg(args));

    // The device axis: each named grade is its own experiment (its
    // timings and topology reshape every trace), all results landing in
    // one table sequence and one --jsonl file.
    const std::string jsonl = args.get("jsonl", "");
    for (const std::string &device : deviceListArg(args)) {
        sim::RunRequest req = base;
        req.device = device;
        const sim::ExperimentConfig ec = sim::experimentConfigOf(req);
        sim::Experiment exp(ec, stores);
        const auto results = exp.run();

        const uint32_t slots = sim::slotCountOf(req);
        if (device.empty()) {
            std::printf("mitigator: %s (%u sub-channels)\n",
                        ec.mitigator.describe().c_str(),
                        ec.tracegen.subchannels);
        } else {
            const auto dm = dram::DeviceSpec::parse(device).resolve();
            std::printf("mitigator: %s on %s (%u channel(s) x %u rank(s) "
                        "x %u sub-channels = %u slots)\n",
                        ec.mitigator.describe().c_str(), device.c_str(),
                        dm.channels(), dm.ranks(),
                        ec.tracegen.subchannels, slots);
        }
        const bool multi = slots > 1;
        std::vector<std::string> cols = {"workload", "slowdown",
                                         "ALERTs/tREFI",
                                         "mitigations/bank/tREFW"};
        if (multi) {
            cols.push_back("per-sc ALERTs/tREFI");
            cols.push_back("per-sc mitigations");
        }
        TablePrinter t(cols);
        for (const auto &r : results) {
            std::vector<std::string> row = {
                r.workload, formatPercent(1.0 - r.normPerf),
                formatFixed(r.alertsPerRefi, 4),
                formatFixed(r.mitigationsPerBankPerRefw, 0)};
            if (multi) {
                row.push_back(perSubchannelColumn(
                    r.perSubchannel, &sim::SubChannelPerf::alertsPerRefi,
                    4));
                row.push_back(perSubchannelColumn(
                    r.perSubchannel,
                    &sim::SubChannelPerf::mitigationsPerBankPerRefw, 0));
            }
            t.addRow(row);
        }
        t.print(std::cout);

        if (!jsonl.empty()) {
            std::ofstream os(jsonl, std::ios::app);
            if (!os)
                fatal("cannot open --jsonl file " + jsonl);
            sim::writeJsonLines(os, results);
        }
    }
    printResultStoreStats(*stores.results);
    return 0;
}

int
cmdCoattack(const Args &args)
{
    sim::RunRequest req = sim::runRequestOfArgs("coattack", args);
    req.device = deviceArg(args);

    // The attacker pins one replay slot; a named device grade may
    // multiply the slot count by channels x ranks.
    const uint32_t slots = sim::slotCountOf(req);
    if (req.attackSubchannel >= slots)
        fatal("--attack-subchannel must be below the sub-channel slot "
              "count (" + std::to_string(slots) + ")");

    sim::ExperimentStores stores;
    stores.results =
        std::make_shared<sim::ResultStore>(resultStoreArg(args));
    const sim::ExperimentConfig ec = sim::experimentConfigOf(req);
    sim::Experiment exp(ec, stores);

    const sim::CoAttackScenario attack = sim::coAttackScenarioOf(req);
    const auto results = exp.runCoAttack(attack);

    std::printf("%s attacker vs %s%s%s on %u sub-channel slot%s "
                "(ABO L%d)\n",
                attack.pattern.c_str(), ec.mitigator.describe().c_str(),
                ec.device.empty() ? "" : " on ", ec.device.c_str(),
                slots, slots == 1 ? "" : "s", req.level);
    TablePrinter t({"workload", "attacker max ACTs", "attacker ACTs",
                    "victim slowdown", "ALERTs (attack-free)",
                    "RFMs (attack-free)"});
    for (const auto &r : results) {
        t.addRow({r.workload, std::to_string(r.attackerMaxHammer),
                  std::to_string(r.attackerActs),
                  formatFixed(r.victimSlowdown, 4) + "x",
                  std::to_string(r.alerts) + " (" +
                      std::to_string(r.attackFreeAlerts) + ")",
                  std::to_string(r.rfms) + " (" +
                      std::to_string(r.attackFreeRfms) + ")"});
    }
    t.print(std::cout);

    const std::string jsonl = args.get("jsonl", "");
    if (!jsonl.empty()) {
        std::ofstream os(jsonl, std::ios::app);
        if (!os)
            fatal("cannot open --jsonl file " + jsonl);
        sim::writeJsonLines(os, results);
    }
    printResultStoreStats(*stores.results);
    return 0;
}

int
cmdServe(const Args &args)
{
    sim::ServeConfig sc;
    sc.socketPath = args.get("socket", "");
    if (sc.socketPath.empty())
        fatal("serve requires --socket PATH");
    sc.maxCost = args.getDouble("max-cost", 0.0);
    sc.maxRequests = args.getInt("max-requests", 0);
    sc.drainCells = args.getInt("drain-cells", 0);
    sc.resultStore = resultStoreArg(args);

    sim::Server server(sc);
    server.start();
    std::fprintf(stderr, "moatsim serve: listening on %s\n",
                 sc.socketPath.c_str());
    server.serveForever();
    printResultStoreStats(*server.resultStore());
    return 0;
}

int
cmdClient(const Args &args)
{
    const std::string socket = args.get("socket", "");
    if (socket.empty())
        fatal("client requires --socket PATH");
    if (args.getBool("shutdown", false) || args.getBool("stats", false)) {
        const char *kind =
            args.getBool("shutdown", false) ? "shutdown" : "stats";
        const auto reply = sim::serveRequestLine(
            socket, std::string("{\"kind\":\"") + kind + "\"}");
        if (!reply.ok)
            fatal("client: " + reply.error);
        std::printf("%s\n", reply.done.c_str());
        return 0;
    }

    sim::RunRequest req =
        sim::runRequestOfArgs(args.get("kind", "perf"), args);
    req.device = deviceArg(args);
    // --retries re-sends on retryable failures (daemon restarting,
    // injected faults, truncated reply streams) with a deterministic
    // seeded backoff; the daemon's result store makes every retry
    // recompute only the cells that actually failed, so the final
    // output is byte-identical to a clean run.
    sim::RetryPolicy policy;
    policy.retries = args.getUint32("retries", 0);
    policy.seed = args.getInt("retry-seed", 1);
    const auto reply = sim::serveRequestWithRetries(socket, req, policy);
    if (!reply.ok)
        fatal("client: " + reply.error +
              (reply.attempts > 1
                   ? " (after " + std::to_string(reply.attempts) +
                         " attempts)"
                   : ""));
    if (reply.attempts > 1)
        std::fprintf(stderr, "client: converged after %u attempts\n",
                     reply.attempts);

    // The cells come back in request order, so this stream is
    // byte-identical to what the direct CLI's --jsonl would append.
    const std::string jsonl = args.get("jsonl", "");
    if (!jsonl.empty()) {
        std::ofstream os(jsonl, std::ios::app);
        if (!os)
            fatal("cannot open --jsonl file " + jsonl);
        for (const auto &cell : reply.cells)
            os << cell << "\n";
    } else {
        for (const auto &cell : reply.cells)
            std::printf("%s\n", cell.c_str());
    }
    std::fprintf(stderr, "client: %s\n", reply.done.c_str());
    return 0;
}

int
cmdStoreFsck(const Args &args)
{
    const std::string dir = args.get("dir", "");
    if (dir.empty())
        fatal("store fsck requires --dir DIR (the shard directory)");
    const bool repair = args.getBool("repair", false);
    const auto report = sim::ResultStore::fsck(dir, repair);
    std::printf("fsck %s: shards=%llu valid=%llu corrupt=%llu "
                "duplicates=%llu repaired=%llu\n",
                dir.c_str(),
                static_cast<unsigned long long>(report.shards),
                static_cast<unsigned long long>(report.valid),
                static_cast<unsigned long long>(report.corrupt),
                static_cast<unsigned long long>(report.duplicates),
                static_cast<unsigned long long>(report.repaired));
    if (report.corrupt > 0) {
        if (!repair) {
            std::printf("store is damaged; re-run with --repair to "
                        "quarantine and compact\n");
            return 1;
        }
        std::printf("damaged records moved to %s/quarantine.jsonl; "
                    "the affected cells will recompute\n",
                    dir.c_str());
    }
    return 0;
}

int
cmdReplay(const Args &args)
{
    const std::string path = args.get("trace", "");
    if (path.empty())
        fatal("replay requires --trace FILE");
    const auto traces = workload::loadTraces(path);

    // The trace's sub-channel column sizes the replayed System;
    // --subchannels overrides (e.g. to fold a trace onto one channel).
    uint32_t nsc = 1;
    for (const auto &t : traces) {
        for (const auto &e : t.events)
            nsc = std::max(nsc, e.subchannel + 1);
    }
    nsc = args.getPositive("subchannels", nsc);

    const auto spec = sim::mitigatorOfArgs(args, abo::Level::L1);
    sim::SystemConfig sys;
    sys.channel.securityEnabled = true;
    sys.subchannels = nsc;
    sim::System system(sys, spec.factory());
    // Boolean flag: replay under attacker-controlled REF postponement.
    system.setPostponeRefresh(args.getBool("postpone", false));
    const auto res = sim::runSystem(system, traces);
    std::printf("Replayed %lu activations from %zu cores on %u "
                "sub-channel%s against %s: %lu ALERTs, %lu mitigations, "
                "max unmitigated ACTs on any row %u\n",
                static_cast<unsigned long>(res.totalActs), traces.size(),
                nsc, nsc == 1 ? "" : "s", spec.describe().c_str(),
                static_cast<unsigned long>(res.alerts),
                static_cast<unsigned long>(
                    system.mitigationStats().totalMitigations()),
                system.maxHammerAnyBank());
    if (nsc > 1) {
        for (uint32_t i = 0; i < nsc; ++i) {
            const auto &u = res.perSubchannel[i];
            std::printf("  sub-channel %u: %lu ACTs, %lu REFs, %lu "
                        "ALERTs, %lu mitigations\n",
                        i, static_cast<unsigned long>(u.acts),
                        static_cast<unsigned long>(u.refs),
                        static_cast<unsigned long>(u.alerts),
                        static_cast<unsigned long>(
                            u.mitigation.totalMitigations()));
        }
    }
    return 0;
}

int
cmdListMitigators()
{
    // Per-chip figures use the default device grade's bank count --
    // the same DeviceModel geometry the storage model consumes.
    const dram::DeviceModel device;
    TablePrinter t({"name", "SRAM B/bank", "SRAM B/chip",
                    "parameters (default)"});
    for (const auto &name : mitigation::Registry::names()) {
        const auto &desc = mitigation::Registry::descriptor(name);
        std::string params;
        for (const auto &p : desc.params) {
            if (!params.empty())
                params += ", ";
            params += p.key + "=" + p.defaultValue;
        }
        if (params.empty())
            params = "(none)";
        const auto spec = mitigation::Registry::parse(name);
        t.addRow({name, std::to_string(spec.sramBytesPerBank()),
                  std::to_string(spec.sramBytesPerBank() *
                                 device.banksPerSubchannel()),
                  params});
    }
    t.print(std::cout);

    std::cout << "\n";
    for (const auto &name : mitigation::Registry::names()) {
        const auto &desc = mitigation::Registry::descriptor(name);
        std::cout << name << ": " << desc.summary << "\n";
        for (const auto &p : desc.params)
            std::cout << "  " << p.key << " -- " << p.doc << "\n";
    }
    std::cout << "\nselect one with --mitigator name[:key=value,...], "
                 "e.g. --mitigator moat:ath=128,eth=64\n";
    return 0;
}

int
cmdListDevices()
{
    TablePrinter orgs({"org", "rows/bank", "banks/sub-ch", "ranks",
                       "channels", "summary"});
    for (const auto &o : dram::deviceOrgs()) {
        orgs.addRow({o.name, std::to_string(o.rowsPerBank),
                     std::to_string(o.banksPerSubchannel()),
                     std::to_string(o.ranks), std::to_string(o.channels),
                     o.summary});
    }
    orgs.print(std::cout);

    std::cout << "\n";
    TablePrinter speeds({"speed", "tRC ns", "tREFI ns", "tRFC ns",
                         "tREFW ms", "tRFM ns", "summary"});
    for (const auto &s : dram::deviceSpeeds()) {
        speeds.addRow({s.name, formatFixed(toNs(s.tRC), 0),
                       formatFixed(toNs(s.tREFI), 0),
                       formatFixed(toNs(s.tRFC), 0),
                       formatFixed(toMs(s.tREFW), 0),
                       formatFixed(toNs(s.tRFM), 0), s.summary});
    }
    speeds.print(std::cout);

    std::cout << "\nselect with --device device:org=NAME,speed=NAME "
                 "(either key may be omitted; defaults are org=" +
                     dram::defaultDeviceOrg() +
                     ", speed=" + dram::defaultDeviceSpeed() +
                     " -- the paper's Table-3 system)\n";
    return 0;
}

int
cmdListWorkloads()
{
    TablePrinter t({"name", "suite", "ACT-PKI", "ACT-32+", "ACT-64+",
                    "ACT-128+"});
    for (const auto &w : workload::table4Workloads()) {
        t.addRow({w.name, w.isGap ? "GAP" : "SPEC-2017",
                  formatFixed(w.actPki, 1), std::to_string(w.act32),
                  std::to_string(w.act64), std::to_string(w.act128)});
    }
    t.print(std::cout);
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: moatsim <command> [--flag [value] ...]\n"
        "commands: bound ratchet jailbreak feinting postponement tsa\n"
        "          attack coattack perf serve client store replay\n"
        "          list-mitigators list-devices list-workloads\n"
        "perf, coattack, and attack accept --jobs N (parallel sweep /\n"
        "trials; 0 = hardware concurrency, results bit-identical at\n"
        "any value) and --device D naming a DDR5 device grade (run\n"
        "'moatsim list-devices'; perf takes a semicolon-separated\n"
        "list to sweep the device axis); perf and coattack accept\n"
        "--jsonl FILE for structured results and --subchannels N\n"
        "(default 2) for the full-system simulation\n"
        "(--no-trace-store, or MOATSIM_TRACE_STORE=0, disables the\n"
        "shared trace cache -- results are bit-identical); coattack\n"
        "co-schedules an attack pattern with the workload's cores and\n"
        "reports attacker maxHammer plus victim slowdown;\n"
        "--result-store 0|1|DIR (or MOATSIM_RESULT_STORE) caches\n"
        "whole result cells -- DIR persists them, so a warm re-run\n"
        "recomputes nothing and is byte-identical; serve runs the\n"
        "sweep daemon on --socket PATH and client talks to it\n"
        "(--retries N re-sends on retryable failures with a seeded\n"
        "deterministic backoff); store fsck --dir DIR [--repair]\n"
        "scans the result-store shards and quarantines damage; every\n"
        "command accepts --faults site@rate[:seed],... (or\n"
        "MOATSIM_FAULTS) to arm deterministic fault injection -- see\n"
        "README.md \"Failure model\" for the site catalog;\n"
        "every experiment accepts --mitigator name[:k=v,...]; run\n"
        "'moatsim list-mitigators' for the registered designs and see\n"
        "the file header of src/tools/moatsim_cli.cc for all flags\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    // Chaos knob, armed before any store or daemon is built:
    // MOATSIM_FAULTS first, then --faults overriding it.
    fault::armFromEnv();
    if (cmd == "store") {
        // Subcommand grammar: `moatsim store fsck --flags`; the flag
        // parse starts after the subcommand token.
        if (argc < 3) {
            usage();
            return 1;
        }
        const std::string sub = argv[2];
        const Args sargs(argc, argv, 3);
        if (sargs.has("faults"))
            fault::arm(sargs.get("faults", ""));
        if (sub == "fsck")
            return cmdStoreFsck(sargs);
        fatal("unknown store subcommand '" + sub + "' (try fsck)");
    }
    const Args args(argc, argv, 2);
    if (args.has("faults"))
        fault::arm(args.get("faults", ""));
    if (cmd == "bound")
        return cmdBound(args);
    if (cmd == "ratchet")
        return cmdRatchet(args);
    if (cmd == "jailbreak")
        return cmdJailbreak(args);
    if (cmd == "feinting")
        return cmdFeinting(args);
    if (cmd == "postponement")
        return cmdPostponement(args);
    if (cmd == "tsa")
        return cmdTsa(args);
    if (cmd == "attack")
        return cmdAttack(args);
    if (cmd == "coattack")
        return cmdCoattack(args);
    if (cmd == "perf")
        return cmdPerf(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "client")
        return cmdClient(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "list-mitigators")
        return cmdListMitigators();
    if (cmd == "list-devices")
        return cmdListDevices();
    if (cmd == "list-workloads")
        return cmdListWorkloads();
    usage();
    return 1;
}
