/**
 * @file
 * moatsim command-line driver.
 *
 * One binary to run any of the library's experiments without writing
 * code:
 *
 *   moatsim bound   [--ath N] [--level 1|2|4]        Appendix-A bound
 *   moatsim ratchet [--ath N] [--level 1|2|4] [--pool N]
 *   moatsim jailbreak [--queue N] [--threshold N]
 *   moatsim feinting [--rate K]
 *   moatsim postponement [--max N]
 *   moatsim tsa     [--banks N] [--cycles N]
 *   moatsim perf    [--workload NAME|all] [--ath N] [--eth N]
 *                   [--level 1|2|4] [--fraction F]
 *   moatsim replay  --trace FILE [--ath N] [--eth N]
 *   moatsim list-workloads
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/ratchet_model.hh"
#include "attacks/feinting.hh"
#include "attacks/jailbreak.hh"
#include "attacks/postponement.hh"
#include "attacks/ratchet.hh"
#include "attacks/tsa.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/perf.hh"
#include "workload/trace_io.hh"

using namespace moatsim;

namespace
{

/** Tiny flag parser: --name value pairs after the subcommand. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) != 0)
                fatal(std::string("expected --flag, got ") + argv[i]);
            values_.emplace_back(argv[i] + 2, argv[i + 1]);
        }
        if ((argc - first) % 2 != 0)
            fatal("flags must come in --name value pairs");
    }

    std::string
    get(const std::string &name, const std::string &def) const
    {
        for (const auto &[k, v] : values_) {
            if (k == name)
                return v;
        }
        return def;
    }

    uint64_t
    getInt(const std::string &name, uint64_t def) const
    {
        const std::string v = get(name, std::to_string(def));
        return std::strtoull(v.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &name, double def) const
    {
        const std::string v = get(name, formatFixed(def, 6));
        return std::strtod(v.c_str(), nullptr);
    }

  private:
    std::vector<std::pair<std::string, std::string>> values_;
};

abo::Level
levelOf(uint64_t l)
{
    if (l != 1 && l != 2 && l != 4)
        fatal("--level must be 1, 2, or 4");
    return static_cast<abo::Level>(l);
}

int
cmdBound(const Args &args)
{
    dram::TimingParams t;
    const auto b = analysis::ratchetBound(
        t, static_cast<uint32_t>(args.getInt("ath", 64)),
        static_cast<int>(args.getInt("level", 1)));
    std::printf("ATH=%u level=%d: TRH_safe=%.1f (pool Nc=%lu, "
                "tA2A=%.0f ns, %u ACTs per ALERT window)\n",
                b.ath, b.level, b.safeTrh,
                static_cast<unsigned long>(b.maxPoolRows),
                toNs(b.alertToAlert), b.actsPerWindow);
    return 0;
}

int
cmdRatchet(const Args &args)
{
    attacks::RatchetConfig cfg;
    cfg.moat.ath = static_cast<ActCount>(args.getInt("ath", 64));
    cfg.moat.eth = cfg.moat.ath / 2;
    cfg.aboLevel = levelOf(args.getInt("level", 1));
    cfg.moat.trackerEntries =
        static_cast<uint32_t>(abo::levelValue(cfg.aboLevel));
    cfg.poolRows = static_cast<uint32_t>(args.getInt("pool", 0));
    const auto r = attacks::runRatchet(cfg);
    const auto bound = analysis::ratchetBound(
        cfg.timing, cfg.moat.ath, abo::levelValue(cfg.aboLevel));
    std::printf("Ratchet vs MOAT-L%d ATH=%u: max ACTs=%u (model bound "
                "%.1f), %lu ALERTs, %.2f ms\n",
                abo::levelValue(cfg.aboLevel), cfg.moat.ath, r.maxHammer,
                bound.safeTrh, static_cast<unsigned long>(r.alerts),
                toMs(r.duration));
    return 0;
}

int
cmdJailbreak(const Args &args)
{
    attacks::JailbreakConfig cfg;
    cfg.panopticon.queueEntries =
        static_cast<uint32_t>(args.getInt("queue", 8));
    cfg.panopticon.queueThreshold =
        static_cast<ActCount>(args.getInt("threshold", 128));
    cfg.hammerActs = static_cast<uint32_t>(args.getInt(
        "hammer", 128ull * (cfg.panopticon.queueEntries + 2)));
    const auto r = attacks::runDeterministicJailbreak(cfg);
    std::printf("Jailbreak vs Panopticon(T=%u,Q=%u): max ACTs=%u "
                "(%.1fx threshold), %lu ALERTs\n",
                cfg.panopticon.queueThreshold,
                cfg.panopticon.queueEntries, r.maxHammer,
                static_cast<double>(r.maxHammer) /
                    cfg.panopticon.queueThreshold,
                static_cast<unsigned long>(r.alerts));
    return 0;
}

int
cmdFeinting(const Args &args)
{
    attacks::FeintingConfig cfg;
    cfg.mitigationPeriodRefis =
        static_cast<uint32_t>(args.getInt("rate", 4));
    const auto r = attacks::runFeinting(cfg);
    std::printf("Feinting vs IdealPRC (1 aggressor per %u tREFI): "
                "max ACTs=%u\n",
                cfg.mitigationPeriodRefis, r.maxHammer);
    return 0;
}

int
cmdPostponement(const Args &args)
{
    attacks::PostponementConfig cfg;
    cfg.maxPostponed = static_cast<uint32_t>(args.getInt("max", 2));
    const auto r = attacks::runRefreshPostponement(cfg);
    std::printf("REF postponement (max %u) vs drain-all Panopticon: "
                "max ACTs=%u (%.1fx threshold)\n",
                cfg.maxPostponed, r.maxHammer, r.maxHammer / 128.0);
    return 0;
}

int
cmdTsa(const Args &args)
{
    attacks::PerfAttackConfig cfg;
    cfg.numBanks = static_cast<uint32_t>(args.getInt("banks", 17));
    cfg.cycles = static_cast<uint32_t>(args.getInt("cycles", 20));
    const auto r = attacks::runTsa(cfg);
    std::printf("TSA on %u banks: throughput loss %s (%lu ALERTs)\n",
                cfg.numBanks, formatPercent(r.lossFraction, 1).c_str(),
                static_cast<unsigned long>(r.alerts));
    return 0;
}

int
cmdPerf(const Args &args)
{
    workload::TraceGenConfig tg;
    tg.windowFraction = args.getDouble("fraction", 0.0625);
    sim::PerfRunner runner(tg);
    mitigation::MoatConfig moat;
    moat.ath = static_cast<ActCount>(args.getInt("ath", 64));
    moat.eth = static_cast<ActCount>(args.getInt("eth", moat.ath / 2));
    const auto level = levelOf(args.getInt("level", 1));
    moat.trackerEntries =
        static_cast<uint32_t>(abo::levelValue(level));

    const std::string which = args.get("workload", "all");
    TablePrinter t({"workload", "slowdown", "ALERTs/tREFI",
                    "mitigations/bank/tREFW"});
    auto add = [&](const workload::WorkloadSpec &spec) {
        const auto r = runner.run(spec, moat, level);
        t.addRow({r.workload, formatPercent(1.0 - r.normPerf),
                  formatFixed(r.alertsPerRefi, 4),
                  formatFixed(r.mitigationsPerBankPerRefw, 0)});
    };
    if (which == "all") {
        for (const auto &spec : workload::table4Workloads())
            add(spec);
    } else {
        add(workload::findWorkload(which));
    }
    t.print(std::cout);
    return 0;
}

int
cmdReplay(const Args &args)
{
    const std::string path = args.get("trace", "");
    if (path.empty())
        fatal("replay requires --trace FILE");
    const auto traces = workload::loadTraces(path);

    subchannel::SubChannelConfig sc;
    sc.securityEnabled = true;
    mitigation::MoatConfig moat;
    moat.ath = static_cast<ActCount>(args.getInt("ath", 64));
    moat.eth = static_cast<ActCount>(args.getInt("eth", moat.ath / 2));
    subchannel::SubChannel ch(sc, [&](BankId) {
        return std::make_unique<mitigation::MoatMitigator>(moat);
    });
    const auto res = sim::runMemSystem(ch, traces);
    std::printf("Replayed %lu activations from %zu cores: %lu ALERTs, "
                "%lu mitigations, max unmitigated ACTs on any row %u\n",
                static_cast<unsigned long>(res.totalActs), traces.size(),
                static_cast<unsigned long>(res.alerts),
                static_cast<unsigned long>(
                    ch.mitigationStats().totalMitigations()),
                ch.maxHammerAnyBank());
    return 0;
}

int
cmdListWorkloads()
{
    TablePrinter t({"name", "suite", "ACT-PKI", "ACT-32+", "ACT-64+",
                    "ACT-128+"});
    for (const auto &w : workload::table4Workloads()) {
        t.addRow({w.name, w.isGap ? "GAP" : "SPEC-2017",
                  formatFixed(w.actPki, 1), std::to_string(w.act32),
                  std::to_string(w.act64), std::to_string(w.act128)});
    }
    t.print(std::cout);
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: moatsim <command> [--flag value ...]\n"
        "commands: bound ratchet jailbreak feinting postponement tsa\n"
        "          perf replay list-workloads\n"
        "see the file header of src/tools/moatsim_cli.cc for flags\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "bound")
        return cmdBound(args);
    if (cmd == "ratchet")
        return cmdRatchet(args);
    if (cmd == "jailbreak")
        return cmdJailbreak(args);
    if (cmd == "feinting")
        return cmdFeinting(args);
    if (cmd == "postponement")
        return cmdPostponement(args);
    if (cmd == "tsa")
        return cmdTsa(args);
    if (cmd == "perf")
        return cmdPerf(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "list-workloads")
        return cmdListWorkloads();
    usage();
    return 1;
}
