/**
 * @file
 * The Jailbreak attack on Panopticon (Section 3 of the paper).
 *
 * Panopticon keeps no counter in its per-bank queue, so a row's
 * activations between queue insertion and mitigation are unbounded by
 * the queueing threshold. Jailbreak fills the 8-entry queue with eight
 * rows and then hammers the youngest entry at a rate that re-inserts it
 * exactly once per mitigation period, so the queue never overflows (no
 * ALERT) while the attacked row accrues queueEntries * threshold extra
 * activations: 1152 total for the threshold-128 configuration.
 *
 * The randomized variant (Section 3.3) attacks Panopticon with
 * randomized counter initialization: each iteration picks eight decoy
 * rows and succeeds when all eight are "heavy-weight" (within 32 ACTs
 * of their next threshold crossing, probability 1/4 each, so 2^-16 per
 * iteration), then hammers a fresh attack row through the full queue.
 */

#ifndef MOATSIM_ATTACKS_JAILBREAK_HH
#define MOATSIM_ATTACKS_JAILBREAK_HH

#include <cstdint>
#include <vector>

#include "attacks/attack.hh"
#include "dram/timing.hh"
#include "mitigation/panopticon.hh"

namespace moatsim::attacks
{

/** Configuration of a Jailbreak run. */
struct JailbreakConfig
{
    dram::TimingParams timing{};
    mitigation::PanopticonConfig panopticon{};
    /** Phase-2 hammering budget on the youngest entry. */
    uint32_t hammerActs = 1024;
    /** Phase-2 pacing: ACTs per tREFI (paper: 32). */
    uint32_t actsPerRefi = 32;
    uint64_t seed = 1;
};

/** Run deterministic Jailbreak; expect maxHammer ~ 9x the threshold. */
AttackResult runDeterministicJailbreak(const JailbreakConfig &config);

/** One point of the randomized-Jailbreak iteration sweep (Figure 5). */
struct RandomizedJailbreakPoint
{
    /** Iterations attempted. */
    uint64_t iterations = 0;
    /** Best hammer count on any attack row so far. */
    uint32_t maxHammer = 0;
    /** Iterations that fully primed the queue (all 8 decoys heavy). */
    uint64_t successes = 0;
};

/** Result of the randomized Jailbreak sweep. */
struct RandomizedJailbreakResult
{
    std::vector<RandomizedJailbreakPoint> curve;
    Time duration = 0;
};

/**
 * Run randomized Jailbreak for @p max_iterations iterations, recording
 * the best hammer count at power-of-two checkpoints (Figure 5).
 */
RandomizedJailbreakResult
runRandomizedJailbreak(const JailbreakConfig &config,
                       uint64_t max_iterations);

} // namespace moatsim::attacks

#endif // MOATSIM_ATTACKS_JAILBREAK_HH
