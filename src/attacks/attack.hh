/**
 * @file
 * Shared result types for the attack suite.
 *
 * Every attack in moatsim drives a SubChannel through its public
 * command API exactly as a memory controller under attacker control
 * would (the threat model of Section 2.1: arbitrary addresses, known
 * defence state, attacker-chosen memory policy), and reports the
 * ground-truth security outcome measured by the SecurityMonitor.
 */

#ifndef MOATSIM_ATTACKS_ATTACK_HH
#define MOATSIM_ATTACKS_ATTACK_HH

#include <cstdint>

#include "common/time.hh"

namespace moatsim::attacks
{

/** Outcome of a security attack run. */
struct AttackResult
{
    /** Maximum activations any row received without intervening
     *  mitigation or refresh (the paper's success metric). */
    uint32_t maxHammer = 0;
    /** Total activations the attacker issued. */
    uint64_t totalActs = 0;
    /** ALERTs the defence asserted during the attack. */
    uint64_t alerts = 0;
    /** Wall-clock (simulated) duration of the attack. */
    Time duration = 0;
};

/** Outcome of a performance (throughput) attack run. */
struct ThroughputAttackResult
{
    /** ACT throughput with the defence active (ACTs per second). */
    double attackRate = 0.0;
    /** ACT throughput of the identical pattern with no ALERTs. */
    double baselineRate = 0.0;
    /** attackRate / baselineRate. */
    double relativeThroughput = 0.0;
    /** 1 - relativeThroughput. */
    double lossFraction = 0.0;
    /** ALERTs asserted during the measured window. */
    uint64_t alerts = 0;
};

} // namespace moatsim::attacks

#endif // MOATSIM_ATTACKS_ATTACK_HH
