/**
 * @file
 * Shared result types and the common attack entry point.
 *
 * Every attack in moatsim drives a SubChannel through its public
 * command API exactly as a memory controller under attacker control
 * would (the threat model of Section 2.1: arbitrary addresses, known
 * defence state, attacker-chosen memory policy), and reports the
 * ground-truth security outcome measured by the SecurityMonitor.
 *
 * runAttack() is the design-agnostic shape: a named pattern plus a
 * mitigation::MitigatorSpec naming any registered defence. Generic
 * patterns ("hammer", "round-robin") run against every design; the
 * paper's specialized patterns ("ratchet", "jailbreak", "feinting",
 * "postponement") validate that the spec names the design they are
 * tailored to and reject others with a clear error.
 */

#ifndef MOATSIM_ATTACKS_ATTACK_HH
#define MOATSIM_ATTACKS_ATTACK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "abo/abo.hh"
#include "common/time.hh"
#include "dram/timing.hh"

namespace moatsim::mitigation
{
class MitigatorSpec;
} // namespace moatsim::mitigation

namespace moatsim::attacks
{

/** Outcome of a security attack run. */
struct AttackResult
{
    /** Maximum activations any row received without intervening
     *  mitigation or refresh (the paper's success metric). */
    uint32_t maxHammer = 0;
    /** Total activations the attacker issued. */
    uint64_t totalActs = 0;
    /** ALERTs the defence asserted during the attack. */
    uint64_t alerts = 0;
    /** Wall-clock (simulated) duration of the attack. */
    Time duration = 0;
};

/** Outcome of a performance (throughput) attack run. */
struct ThroughputAttackResult
{
    /** ACT throughput with the defence active (ACTs per second). */
    double attackRate = 0.0;
    /** ACT throughput of the identical pattern with no ALERTs. */
    double baselineRate = 0.0;
    /** attackRate / baselineRate. */
    double relativeThroughput = 0.0;
    /** 1 - relativeThroughput. */
    double lossFraction = 0.0;
    /** ALERTs asserted during the measured window. */
    uint64_t alerts = 0;
};

/** Configuration of the common runAttack() entry point. */
struct AttackConfig
{
    dram::TimingParams timing{};
    /** ABO mitigation level of the channel. */
    abo::Level aboLevel = abo::Level::L1;
    /** Pattern name; see attackPatterns(). */
    std::string pattern = "hammer";
    /** Rows in the attack pool (0 = pattern-specific default). */
    uint32_t poolRows = 0;
    /** Activation budget (0 = pattern-specific default). */
    uint64_t budget = 0;
    /** Alignment trials for phase-sweeping patterns (0 = default). */
    uint32_t trials = 0;
    uint64_t seed = 1;
};

/** Names of the patterns runAttack() understands. */
std::vector<std::string> attackPatterns();

/**
 * Run a named attack pattern against any registered mitigator design.
 * fatal()s on an unknown pattern, or when a design-specific pattern
 * is pointed at a design it cannot target.
 */
AttackResult runAttack(const AttackConfig &config,
                       const mitigation::MitigatorSpec &mitigator);

/**
 * Run @p trials independently seeded instances of the configured
 * pattern (seeds config.seed, config.seed+1, ...) across @p jobs
 * worker threads and return the strongest outcome: highest maxHammer,
 * lowest seed on ties. Each trial runs with config.trials forced to 1
 * (the driver owns the trial loop), so patterns with internal
 * alignment sweeps parallelize instead of nesting. Deterministic in
 * (config, trials) regardless of @p jobs.
 */
AttackResult runAttackTrials(const AttackConfig &config,
                             const mitigation::MitigatorSpec &mitigator,
                             uint32_t trials, unsigned jobs = 0);

} // namespace moatsim::attacks

#endif // MOATSIM_ATTACKS_ATTACK_HH
