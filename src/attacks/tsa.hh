/**
 * @file
 * ALERT-based performance attacks (Section 7 of the paper).
 *
 * These patterns do not break security; they abuse the fact that an
 * ALERT stalls the whole sub-channel to degrade throughput:
 *
 *  - Single-bank kernels (Figure 13): hammering one row or a pool of
 *    rows in one bank triggers an ALERT every ATH+1 activations per
 *    row (~10% throughput loss).
 *  - Torrent-of-Staggered-ALERT (Figure 12): multiple banks prime
 *    their pools in parallel but fire their ALERTs staggered so that
 *    no other bank has a mitigable row during any ALERT, wasting every
 *    stall (24% loss at 4 banks, 52% at the 17-bank tFAW limit).
 *
 * Each run measures activations per second against the identical
 * pattern on a no-ALERT channel (NullMitigator).
 */

#ifndef MOATSIM_ATTACKS_TSA_HH
#define MOATSIM_ATTACKS_TSA_HH

#include <cstdint>

#include "abo/abo.hh"
#include "attacks/attack.hh"
#include "dram/timing.hh"
#include "mitigation/moat.hh"

namespace moatsim::attacks
{

/** Configuration shared by the performance-attack patterns. */
struct PerfAttackConfig
{
    dram::TimingParams timing{};
    mitigation::MoatConfig moat{};
    abo::Level aboLevel = abo::Level::L1;
    /** Rows per bank in the hammered pool. */
    uint32_t poolRows = 5;
    /** Banks participating (1 for the Figure-13 kernels). */
    uint32_t numBanks = 1;
    /** Pattern repetitions to measure over. */
    uint32_t cycles = 50;
    uint64_t seed = 1;
};

/**
 * Single-bank kernel (Figure 13): hammer poolRows rows circularly.
 * poolRows == 1 is the single-row kernel.
 */
ThroughputAttackResult runSingleBankKernel(const PerfAttackConfig &config);

/**
 * Synchronized multi-bank kernel (Section 7.2): all banks hammer their
 * pools in lock-step, so every ALERT mitigates one row in every bank.
 * Loss stays at the single-bank level regardless of bank count.
 */
ThroughputAttackResult runSynchronizedMultiBank(const PerfAttackConfig &config);

/** Torrent-of-Staggered-ALERT (Figure 12). */
ThroughputAttackResult runTsa(const PerfAttackConfig &config);

} // namespace moatsim::attacks

#endif // MOATSIM_ATTACKS_TSA_HH
