/**
 * @file
 * Optimal feinting attack against transparent per-row-counter
 * mitigation (Section 2.5, Table 2; attack concept from ProTRR).
 *
 * The defender mitigates the highest-count row once every k tREFI. The
 * attacker keeps a pool of rows, spreads its per-period activation
 * budget evenly over the surviving pool (so every row looks equally
 * urgent), and sacrifices the mitigated row each period. The last
 * surviving row accumulates B * H_N activations, far above the
 * queueing/mitigation threshold -- the reason purely transparent
 * schemes cannot tolerate low TRH.
 */

#ifndef MOATSIM_ATTACKS_FEINTING_HH
#define MOATSIM_ATTACKS_FEINTING_HH

#include <cstdint>

#include "attacks/attack.hh"
#include "dram/timing.hh"

namespace moatsim::attacks
{

/** Configuration of a feinting run. */
struct FeintingConfig
{
    dram::TimingParams timing{};
    /** Defender mitigation period (one aggressor per k tREFI). */
    uint32_t mitigationPeriodRefis = 4;
    /**
     * Pool size; 0 derives the optimal pool (one row per mitigation
     * period in the refresh window).
     */
    uint32_t poolRows = 0;
    uint64_t seed = 1;
};

/** Run the feinting attack; maxHammer approximates Table 2's bound. */
AttackResult runFeinting(const FeintingConfig &config);

} // namespace moatsim::attacks

#endif // MOATSIM_ATTACKS_FEINTING_HH
