/**
 * @file
 * Common attack driver: runAttack(AttackConfig, MitigatorSpec).
 *
 * The generic patterns drive the defence purely through the SubChannel
 * command interface, so they run against any registered design; the
 * specialized patterns re-dispatch to the paper's tuned drivers after
 * validating that the spec names the design they exploit.
 */

#include "attacks/attack.hh"

#include <algorithm>
#include <limits>

#include "attacks/feinting.hh"
#include "attacks/jailbreak.hh"
#include "attacks/postponement.hh"
#include "attacks/ratchet.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "mitigation/registry.hh"
#include "subchannel/subchannel.hh"
#include "workload/attack_trace.hh"

namespace moatsim::attacks
{

namespace
{

using subchannel::SubChannel;
using subchannel::SubChannelConfig;

SubChannel
makeChannel(const AttackConfig &config,
            const mitigation::MitigatorSpec &mitigator)
{
    SubChannelConfig sc;
    sc.timing = config.timing;
    sc.numBanks = 1;
    sc.aboLevel = config.aboLevel;
    sc.seed = config.seed;
    return SubChannel(sc, mitigator.factory());
}

/**
 * Drain to quiescence: a fixed post-attack advance (the old 2000 ns)
 * cut off still-pending ALERT/recovery work at high ABO levels, so
 * `alerts` and `duration` undercounted. One refresh window is enough
 * for every registered design's REF-time mitigation to retire the
 * last want.
 */
void
drain(SubChannel &ch)
{
    ch.drainToQuiescence(ch.timing().tREFW);
}

AttackResult
resultOf(const SubChannel &ch)
{
    AttackResult res;
    res.maxHammer = ch.security(0).maxHammer();
    res.totalActs = ch.stats().acts;
    res.alerts = ch.abo().alertCount();
    res.duration = ch.now();
    return res;
}

/** Hammer a single mid-bank row as fast as the command timing allows. */
AttackResult
runHammer(const AttackConfig &config,
          const mitigation::MitigatorSpec &mitigator)
{
    SubChannel ch = makeChannel(config, mitigator);
    const uint64_t budget = config.budget != 0 ? config.budget : 4096;
    const RowId target = workload::attackBaseRow(config.timing);
    for (uint64_t i = 0; i < budget; ++i)
        ch.activate(0, target);
    drain(ch);
    return resultOf(ch);
}

/** Hammer a pool of rows circularly (the many-sided pattern). */
AttackResult
runRoundRobin(const AttackConfig &config,
              const mitigation::MitigatorSpec &mitigator)
{
    SubChannel ch = makeChannel(config, mitigator);
    const uint32_t pool = config.poolRows != 0 ? config.poolRows : 8;
    const uint64_t budget =
        config.budget != 0 ? config.budget : 512ULL * pool;
    // The same placement convention the co-attack trace synthesizer
    // uses, so the isolated and co-scheduled variants stay comparable.
    const std::vector<RowId> rows =
        workload::attackRowPool(config.timing, pool);
    for (uint64_t i = 0; i < budget; ++i)
        ch.activate(0, rows[i % pool]);
    drain(ch);
    return resultOf(ch);
}

AttackResult
runRatchetSpec(const AttackConfig &config,
               const mitigation::MitigatorSpec &mitigator)
{
    RatchetConfig cfg;
    cfg.timing = config.timing;
    cfg.moat = mitigation::moatConfigOf(mitigator);
    cfg.aboLevel = config.aboLevel;
    cfg.poolRows = config.poolRows;
    cfg.seed = config.seed;
    return runRatchet(cfg);
}

AttackResult
runJailbreakSpec(const AttackConfig &config,
                 const mitigation::MitigatorSpec &mitigator)
{
    JailbreakConfig cfg;
    cfg.timing = config.timing;
    cfg.panopticon = mitigation::panopticonConfigOf(mitigator);
    const uint64_t budget =
        config.budget != 0
            ? config.budget
            : static_cast<uint64_t>(cfg.panopticon.queueThreshold) *
                  (cfg.panopticon.queueEntries + 2);
    cfg.hammerActs = static_cast<uint32_t>(std::min<uint64_t>(
        budget, std::numeric_limits<uint32_t>::max()));
    cfg.seed = config.seed;
    return runDeterministicJailbreak(cfg);
}

AttackResult
runFeintingSpec(const AttackConfig &config,
                const mitigation::MitigatorSpec &mitigator)
{
    // The tuned driver models the default defender; reject parameters
    // it would otherwise silently ignore.
    for (const char *key : {"min-count", "blast"}) {
        if (mitigator.hasParam(key)) {
            fatal(std::string("the feinting pattern does not honor '") +
                  key + "'; only 'period' is supported (got '" +
                  mitigator.describe() + "')");
        }
    }
    const mitigation::IdealPrcConfig prc =
        mitigation::idealPrcConfigOf(mitigator);
    FeintingConfig cfg;
    cfg.timing = config.timing;
    cfg.mitigationPeriodRefis = prc.mitigationPeriodRefis;
    cfg.poolRows = config.poolRows;
    cfg.seed = config.seed;
    return runFeinting(cfg);
}

AttackResult
runPostponementSpec(const AttackConfig &config,
                    const mitigation::MitigatorSpec &mitigator)
{
    PostponementConfig cfg;
    cfg.timing = config.timing;
    cfg.panopticon = mitigation::panopticonConfigOf(mitigator);
    // The attack only bites the Appendix-B drain-all policy; reject an
    // explicit gradual-policy spec rather than silently overriding it.
    if (mitigator.hasParam("drain-all") &&
        !mitigator.paramBool("drain-all", true)) {
        fatal("the postponement pattern requires the drain-all policy; "
              "got '" + mitigator.describe() + "'");
    }
    cfg.panopticon.drainAllOnRef = true;
    if (config.trials != 0)
        cfg.trials = config.trials;
    cfg.seed = config.seed;
    return runRefreshPostponement(cfg);
}

void
requireDesign(const AttackConfig &config,
              const mitigation::MitigatorSpec &mitigator,
              const std::string &design)
{
    if (mitigator.name() != design) {
        fatal("attack pattern '" + config.pattern + "' targets the '" +
              design + "' design, got '" + mitigator.describe() +
              "' (generic patterns: hammer, round-robin)");
    }
}

} // namespace

std::vector<std::string>
attackPatterns()
{
    return {"hammer", "round-robin", "ratchet", "jailbreak", "feinting",
            "postponement"};
}

AttackResult
runAttack(const AttackConfig &config,
          const mitigation::MitigatorSpec &mitigator)
{
    if (!mitigation::Registry::known(mitigator.name()))
        fatal("runAttack: unknown mitigator '" + mitigator.name() + "'");

    if (config.pattern == "hammer")
        return runHammer(config, mitigator);
    if (config.pattern == "round-robin")
        return runRoundRobin(config, mitigator);
    if (config.pattern == "ratchet") {
        requireDesign(config, mitigator, "moat");
        return runRatchetSpec(config, mitigator);
    }
    if (config.pattern == "jailbreak") {
        requireDesign(config, mitigator, "panopticon");
        return runJailbreakSpec(config, mitigator);
    }
    if (config.pattern == "feinting") {
        requireDesign(config, mitigator, "ideal-prc");
        return runFeintingSpec(config, mitigator);
    }
    if (config.pattern == "postponement") {
        requireDesign(config, mitigator, "panopticon");
        return runPostponementSpec(config, mitigator);
    }

    std::string known;
    for (const auto &p : attackPatterns())
        known += (known.empty() ? "" : ", ") + p;
    fatal("unknown attack pattern '" + config.pattern + "' (known: " +
          known + ")");
}

AttackResult
runAttackTrials(const AttackConfig &config,
                const mitigation::MitigatorSpec &mitigator, uint32_t trials,
                unsigned jobs)
{
    if (trials <= 1)
        return runAttack(config, mitigator);

    std::vector<AttackResult> results(trials);
    auto trialConfig = [&](uint32_t i) {
        AttackConfig c = config;
        c.trials = 1;
        c.seed = config.seed + i;
        return c;
    };

    if (jobs == 1) {
        for (uint32_t i = 0; i < trials; ++i)
            results[i] = runAttack(trialConfig(i), mitigator);
    } else {
        ThreadPool pool(jobs);
        for (uint32_t i = 0; i < trials; ++i) {
            pool.submit([&, i] {
                results[i] = runAttack(trialConfig(i), mitigator);
            });
        }
        pool.wait();
    }

    // Strongest outcome; index order breaks ties, so the winner does
    // not depend on the completion schedule.
    size_t best = 0;
    for (size_t i = 1; i < results.size(); ++i) {
        if (results[i].maxHammer > results[best].maxHammer)
            best = i;
    }
    return results[best];
}

} // namespace moatsim::attacks
