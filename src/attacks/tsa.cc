#include "attacks/tsa.hh"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "mitigation/null.hh"
#include "subchannel/subchannel.hh"

namespace moatsim::attacks
{

namespace
{

using subchannel::SubChannel;
using subchannel::SubChannelConfig;

SubChannelConfig
channelConfig(const PerfAttackConfig &config)
{
    SubChannelConfig sc;
    sc.timing = config.timing;
    sc.numBanks = config.numBanks;
    sc.aboLevel = config.aboLevel;
    sc.seed = config.seed;
    return sc;
}

/** Pool rows of a bank, spaced so victim windows never overlap. */
std::vector<RowId>
poolOf(const PerfAttackConfig &config, BankId bank)
{
    std::vector<RowId> rows(config.poolRows);
    const RowId base = 1024 + bank * 64; // away from the refresh pointer
    for (uint32_t i = 0; i < config.poolRows; ++i)
        rows[i] = base + i * 8;
    return rows;
}

/** ACT rate in activations per second over the channel's lifetime. */
double
actRate(const SubChannel &ch)
{
    if (ch.now() <= 0)
        return 0.0;
    return static_cast<double>(ch.stats().acts) /
           (toNs(ch.now()) * 1e-9);
}

/**
 * Run @p pattern against MOAT, then replay the same number of
 * activations as an ideal bank-parallel stream on a no-ALERT channel
 * to obtain the baseline rate.
 */
ThroughputAttackResult
measure(const PerfAttackConfig &config,
        const std::function<void(SubChannel &)> &pattern)
{
    SubChannel attacked(channelConfig(config), [&](BankId) {
        return std::make_unique<mitigation::MoatMitigator>(config.moat);
    });
    pattern(attacked);

    SubChannel baseline(channelConfig(config), [](BankId) {
        return std::make_unique<mitigation::NullMitigator>();
    });
    const uint64_t total = attacked.stats().acts;
    const uint32_t k = baseline.numBanks();
    for (uint64_t i = 0; i < total; ++i) {
        const BankId b = static_cast<BankId>(i % k);
        const auto pool = poolOf(config, b);
        baseline.activate(b, pool[(i / k) % pool.size()]);
    }

    ThroughputAttackResult r;
    r.attackRate = actRate(attacked);
    r.baselineRate = actRate(baseline);
    r.relativeThroughput =
        r.baselineRate > 0 ? r.attackRate / r.baselineRate : 0.0;
    r.lossFraction = 1.0 - r.relativeThroughput;
    r.alerts = attacked.abo().alertCount();
    return r;
}

} // namespace

ThroughputAttackResult
runSingleBankKernel(const PerfAttackConfig &config)
{
    PerfAttackConfig cfg = config;
    cfg.numBanks = 1;
    return measure(cfg, [&](SubChannel &ch) {
        const auto pool = poolOf(cfg, 0);
        const uint64_t total = static_cast<uint64_t>(cfg.cycles) *
                               cfg.poolRows * (cfg.moat.ath + 1);
        for (uint64_t i = 0; i < total; ++i)
            ch.activate(0, pool[i % pool.size()]);
    });
}

ThroughputAttackResult
runSynchronizedMultiBank(const PerfAttackConfig &config)
{
    return measure(config, [&](SubChannel &ch) {
        std::vector<std::vector<RowId>> pools;
        for (BankId b = 0; b < ch.numBanks(); ++b)
            pools.push_back(poolOf(config, b));
        const uint64_t per_bank = static_cast<uint64_t>(config.cycles) *
                                  config.poolRows * (config.moat.ath + 1);
        for (uint64_t i = 0; i < per_bank; ++i) {
            for (BankId b = 0; b < ch.numBanks(); ++b)
                ch.activate(b, pools[b][i % config.poolRows]);
        }
    });
}

ThroughputAttackResult
runTsa(const PerfAttackConfig &config)
{
    return measure(config, [&](SubChannel &ch) {
        std::vector<std::vector<RowId>> pools;
        for (BankId b = 0; b < ch.numBanks(); ++b)
            pools.push_back(poolOf(config, b));
        const ActCount ath = config.moat.ath;

        for (uint32_t cycle = 0; cycle < config.cycles; ++cycle) {
            // Parallel priming (Figure 12: all banks run (ABCDE)^64
            // simultaneously): interleave banks so every bank primes
            // at its full tRC cadence. Rows mitigated by a foreign
            // ALERT's RFM in the previous torrent get topped up.
            bool all_primed = false;
            while (!all_primed) {
                all_primed = true;
                for (uint32_t i = 0; i < config.poolRows; ++i) {
                    for (BankId b = 0; b < ch.numBanks(); ++b) {
                        const RowId r = pools[b][i];
                        if (ch.bank(b).counter(r) < ath) {
                            ch.activate(b, r);
                            all_primed = false;
                        }
                    }
                }
            }
            // Staggered torrent: one bank at a time cycles its rows
            // over ATH until each has been mitigated by its ALERT;
            // the other banks issue nothing, so after their first
            // (sacrificed) tracker entry a foreign RFM finds nothing
            // to mitigate and the stall is pure waste. A row retires
            // when its hammer count drops (its RFM ran inside some
            // activation call).
            for (BankId b = 0; b < ch.numBanks(); ++b) {
                const size_t n = pools[b].size();
                std::vector<bool> done(n, false);
                std::vector<uint32_t> last(n);
                for (size_t i = 0; i < n; ++i)
                    last[i] = ch.security(b).hammerCount(pools[b][i]);
                bool any_live = true;
                uint32_t guard = 0;
                while (any_live && ++guard < 4096) {
                    any_live = false;
                    for (size_t i = 0; i < n; ++i) {
                        if (done[i])
                            continue;
                        ch.activate(b, pools[b][i]);
                        for (size_t j = 0; j < n; ++j) {
                            const uint32_t h =
                                ch.security(b).hammerCount(pools[b][j]);
                            if (h < last[j])
                                done[j] = true;
                            last[j] = h;
                        }
                        if (!done[i])
                            any_live = true;
                    }
                }
            }
        }
    });
}

} // namespace moatsim::attacks
