/**
 * @file
 * The Ratchet attack against PRAC+ABO designs (Section 5, Appendix A).
 *
 * JEDEC's ABO is neither stop-the-world (180 ns of normal operation
 * after assertion) nor instantaneous (at least L activations between
 * consecutive ALERTs), so each ALERT-to-ALERT window leaks M = 3 + L
 * activations the attacker controls. Ratchet primes a large pool of
 * rows to ATH, then triggers a torrent of ALERTs and spends every
 * leaked activation raising the surviving rows, funnelling all
 * remaining budget into the last survivor. The maximum count reached is
 * the real TRH tolerated by the design: ATH + log_{M/3}(Nc) + M
 * (~99 for ATH=64 at ABO level 1).
 */

#ifndef MOATSIM_ATTACKS_RATCHET_HH
#define MOATSIM_ATTACKS_RATCHET_HH

#include <cstdint>

#include "abo/abo.hh"
#include "attacks/attack.hh"
#include "dram/timing.hh"
#include "mitigation/moat.hh"

namespace moatsim::attacks
{

/** Configuration of a Ratchet run. */
struct RatchetConfig
{
    dram::TimingParams timing{};
    mitigation::MoatConfig moat{};
    /** ABO mitigation level of the channel. */
    abo::Level aboLevel = abo::Level::L1;
    /**
     * Pool size; 0 derives the Appendix-A optimum Nc (largest pool
     * whose priming + ALERT torrent fits the refresh window).
     */
    uint32_t poolRows = 0;
    /** Priming top-up sweeps to counter proactive mitigation. */
    uint32_t topUpSweeps = 4;
    uint64_t seed = 1;
};

/** Run the Ratchet attack; maxHammer approximates TRH_safe. */
AttackResult runRatchet(const RatchetConfig &config);

/**
 * Reproduce the Figure-9 micro-example: four rows, ABO level 4 with a
 * single-entry MOAT (one mitigation per ALERT); returns the hammer
 * count of the last row, expected ATH + 15.
 */
AttackResult runRatchetMicroExample(const dram::TimingParams &timing,
                                    uint32_t ath);

} // namespace moatsim::attacks

#endif // MOATSIM_ATTACKS_RATCHET_HH
