#include "attacks/jailbreak.hh"

#include <algorithm>
#include <cassert>

#include "common/rng.hh"
#include "subchannel/subchannel.hh"

namespace moatsim::attacks
{

namespace
{

using subchannel::SubChannel;
using subchannel::SubChannelConfig;

/** Build a single-bank sub-channel running Panopticon. */
SubChannel
makeChannel(const JailbreakConfig &config, dram::CounterInit init)
{
    SubChannelConfig sc;
    sc.timing = config.timing;
    sc.numBanks = 1;
    sc.counterInit = init;
    sc.seed = config.seed;
    return SubChannel(sc, [&](BankId) {
        return std::make_unique<mitigation::PanopticonMitigator>(
            config.panopticon);
    });
}

/** The Panopticon instance of bank 0 (the attacker knows its state). */
const mitigation::PanopticonMitigator &
pano(const SubChannel &ch)
{
    return static_cast<const mitigation::PanopticonMitigator &>(
        ch.mitigator(0));
}

/**
 * Hammer @p target at the paper's pace (actsPerRefi activations per
 * tREFI, 32 by default) while dodging queue overflow: when the next
 * ACT would cross a queueing-threshold multiple with the queue full,
 * wait for the gradual mitigation to free a slot. One insertion per
 * mitigation period, no ALERT. Returns the peak hammer count reached
 * before the target's first copy is mitigated.
 */
uint32_t
hammerWithGuard(SubChannel &ch, RowId target, uint32_t budget,
                const JailbreakConfig &config, Time pace,
                bool break_on_mitigation)
{
    const mitigation::PanopticonConfig &pcfg = config.panopticon;
    const Time refi = ch.timing().tREFI;
    Time not_before = ch.now();
    uint32_t peak = 0;
    uint32_t prev_h = 0;
    for (uint32_t a = 0; a < budget; ++a) {
        uint32_t guard = 0;
        while ((ch.bank(0).counter(target) + 1) % pcfg.queueThreshold == 0 &&
               pano(ch).queueSize() >= pcfg.queueEntries) {
            ch.advanceTo(ch.now() + refi);
            if (++guard > 16 * pcfg.queueEntries)
                break; // mitigation stalled; bail out rather than hang
        }
        const Time issued = ch.activateAt(0, target, not_before);
        not_before = issued + pace;
        const uint32_t h = ch.security(0).hammerCount(target);
        peak = std::max(peak, h);
        if (break_on_mitigation && h < prev_h)
            break; // target was mitigated; the episode is over
        prev_h = h;
    }
    return peak;
}

} // namespace

AttackResult
runDeterministicJailbreak(const JailbreakConfig &config)
{
    SubChannel ch = makeChannel(config, dram::CounterInit::Zero);
    const auto &pcfg = config.panopticon;

    // Pick queueEntries rows mid-bank (away from the refresh pointer,
    // which starts at row 0), spaced so victim windows never overlap.
    const RowId base = config.timing.rowsPerBank / 2;
    std::vector<RowId> rows(pcfg.queueEntries);
    for (uint32_t i = 0; i < pcfg.queueEntries; ++i)
        rows[i] = base + i * 8;

    // Phase 1: circular activation brings every row to the queueing
    // threshold within the same tREFI; all enter the queue, the target
    // (last-activated) row youngest.
    for (ActCount k = 0; k < pcfg.queueThreshold; ++k) {
        for (RowId r : rows)
            ch.activate(0, r);
    }

    // Phase 2: hammer the youngest entry with the paper's exact
    // (H)^1024 budget at full speed; the overflow guard self-paces the
    // queue insertions to one per mitigation period.
    const RowId target = rows.back();
    const uint32_t peak = hammerWithGuard(ch, target, config.hammerActs,
                                          config, /*pace=*/0,
                                          /*break_on_mitigation=*/false);

    AttackResult res;
    res.maxHammer = peak;
    res.totalActs = ch.stats().acts;
    res.alerts = ch.abo().alertCount();
    res.duration = ch.now();
    return res;
}

RandomizedJailbreakResult
runRandomizedJailbreak(const JailbreakConfig &config, uint64_t max_iterations)
{
    SubChannel ch = makeChannel(config, dram::CounterInit::RandomByte);
    const auto &pcfg = config.panopticon;
    const Time refi = ch.timing().tREFI;
    Rng rng(config.seed ^ 0xa5a5a5a5ULL);

    RandomizedJailbreakResult result;
    uint32_t best = 0;
    uint64_t successes = 0;
    uint64_t next_checkpoint = 4;

    const uint32_t num_rows = config.timing.rowsPerBank;
    for (uint64_t iter = 1; iter <= max_iterations; ++iter) {
        // Phase 1: eight random decoys, 32 ACTs each in a circular
        // pattern. A decoy enters the queue iff its counter was within
        // 32 of the next threshold multiple (probability 1/4).
        RowId decoys[8];
        for (auto &d : decoys)
            d = static_cast<RowId>(rng.below(num_rows));
        for (uint32_t k = 0; k < 32; ++k) {
            for (RowId d : decoys)
                ch.activate(0, d);
        }
        // A full prime counts as success; one decoy is typically
        // already being mitigated by the time phase 1 ends (the paper
        // notes "one row gets mitigated over this time").
        if (pano(ch).queueSize() + 1 >= pcfg.queueEntries)
            ++successes;

        // Phase 2: hammer a fresh attack row through whatever queue
        // depth phase 1 achieved. With a full queue the row accrues
        // ~queueEntries * threshold extra ACTs before mitigation.
        const RowId x = static_cast<RowId>(rng.below(num_rows));
        const Time pace = config.actsPerRefi > 0
                              ? refi / config.actsPerRefi
                              : 0;
        const uint32_t peak =
            hammerWithGuard(ch, x, config.hammerActs + pcfg.queueThreshold,
                            config, pace, /*break_on_mitigation=*/true);
        best = std::max(best, peak);

        // Queue reset: wait for the gradual mitigation to drain.
        uint32_t guard = 0;
        while (pano(ch).queueSize() > 0 && ++guard < 128)
            ch.advanceTo(ch.now() + 4 * refi);

        if (iter == next_checkpoint || iter == max_iterations) {
            result.curve.push_back({iter, best, successes});
            while (next_checkpoint <= iter)
                next_checkpoint *= 2;
        }
    }
    result.duration = ch.now();
    return result;
}

} // namespace moatsim::attacks
