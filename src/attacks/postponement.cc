#include "attacks/postponement.hh"

#include <algorithm>

#include "subchannel/subchannel.hh"

namespace moatsim::attacks
{

AttackResult
runRefreshPostponement(const PostponementConfig &config)
{
    using subchannel::SubChannel;
    using subchannel::SubChannelConfig;

    SubChannelConfig sc;
    sc.timing = config.timing;
    sc.numBanks = 1;
    sc.maxPostponedRefs = config.maxPostponed;
    sc.seed = config.seed;
    SubChannel ch(sc, [&](BankId) {
        return std::make_unique<mitigation::PanopticonMitigator>(
            config.panopticon);
    });
    ch.setPostponeRefresh(true);

    const ActCount threshold = config.panopticon.queueThreshold;
    const RowId pad_row = 2048; // sacrificial row for phase shifting
    uint32_t best = 0;

    for (uint32_t trial = 0; trial < config.trials; ++trial) {
        // Shift the pattern phase relative to the REF-batch schedule so
        // some trial's queue insertion lands right after a batch.
        const uint32_t pad = trial % 211;
        for (uint32_t j = 0; j < pad; ++j)
            ch.activate(0, pad_row);

        // Hammer a fresh row continuously; it enters the queue when its
        // counter crosses the threshold and is mitigated only at the
        // next REF batch, up to ~201 activations later.
        const RowId target = 4096 + trial * 128;
        const uint32_t budget = 4 * threshold + 64;
        uint32_t peak = 0;
        for (uint32_t a = 0; a < budget; ++a) {
            ch.activate(0, target);
            const uint32_t h = ch.security(0).hammerCount(target);
            peak = std::max(peak, h);
            if (peak > threshold && h == 0)
                break; // mitigated after crossing; episode over
        }
        best = std::max(best, peak);
    }

    AttackResult res;
    res.maxHammer = best;
    res.totalActs = ch.stats().acts;
    res.alerts = ch.abo().alertCount();
    res.duration = ch.now();
    return res;
}

} // namespace moatsim::attacks
