#include "attacks/ratchet.hh"

#include <algorithm>
#include <vector>

#include "analysis/ratchet_model.hh"
#include "common/logging.hh"
#include "subchannel/subchannel.hh"

namespace moatsim::attacks
{

namespace
{

using subchannel::SubChannel;
using subchannel::SubChannelConfig;

/**
 * Phase 2 of Ratchet: torrent of ALERTs over the primed pool.
 *
 * Strategy (optimal per Appendix A): always activate the live row with
 * the lowest count, avoiding the row MOAT currently tracks for
 * mitigation, so every leaked inter-ALERT activation raises the pool
 * as evenly as possible while each ALERT sacrifices only the tracked
 * maximum. Mitigated rows (counter back to 0) leave the pool.
 */
void
ratchetTorrent(SubChannel &ch, std::vector<RowId> &live,
               const mitigation::MoatMitigator &moat)
{
    uint64_t safety = 0;
    const uint64_t safety_cap =
        64ULL * 1024 * 1024; // generous bound against livelock
    while (!live.empty() && ++safety < safety_cap) {
        // Compact mitigated rows out and find the minimum-count row.
        // Avoid the row already latched for the in-flight ALERT's RFMs
        // (activations on it would be erased by the imminent reset).
        RowId pending = moat.pendingAlertRow();
        if (pending == kInvalidRow)
            pending = moat.maxTrackedRow();
        size_t w = 0;
        RowId pick = kInvalidRow;
        ActCount pick_count = 0;
        for (size_t i = 0; i < live.size(); ++i) {
            const RowId r = live[i];
            const ActCount c = ch.bank(0).counter(r);
            if (c == 0)
                continue; // mitigated; drop from the pool
            live[w++] = r;
            if (r != pending &&
                (pick == kInvalidRow || c < pick_count)) {
                pick = r;
                pick_count = c;
            }
        }
        live.resize(w);
        if (live.empty())
            break;
        if (pick == kInvalidRow)
            pick = live.front(); // only the pending row remains

        // Issue the activation. If the row's hammer count did not
        // grow, the RFM serviced inside this call mitigated the row
        // first (its reset is otherwise masked by this very ACT);
        // retire it from the pool.
        const uint32_t before = ch.security(0).hammerCount(pick);
        ch.activate(0, pick);
        if (ch.security(0).hammerCount(pick) <= before)
            std::erase(live, pick);
    }
}

} // namespace

AttackResult
runRatchet(const RatchetConfig &config)
{
    const dram::TimingParams &t = config.timing;
    const int level = abo::levelValue(config.aboLevel);

    // Derive the Appendix-A optimal pool size, capped to the bank.
    const auto bound = analysis::ratchetBound(t, config.moat.ath, level);
    const uint32_t stride = 2 * t.blastRadius + 2;
    const uint32_t max_fit = t.rowsPerBank / stride - 4;
    uint32_t pool = config.poolRows != 0
                        ? config.poolRows
                        : static_cast<uint32_t>(std::min<uint64_t>(
                              bound.maxPoolRows, max_fit));
    if (pool == 0)
        fatal("runRatchet: empty pool");
    pool = std::min(pool, max_fit);

    SubChannelConfig sc;
    sc.timing = t;
    sc.numBanks = 1;
    sc.aboLevel = config.aboLevel;
    sc.refreshResetsRows = false; // attacker dodges the refresh sweep
    sc.seed = config.seed;
    SubChannel ch(sc, [&](BankId) {
        return std::make_unique<mitigation::MoatMitigator>(config.moat);
    });
    const auto &moat =
        static_cast<const mitigation::MoatMitigator &>(ch.mitigator(0));

    std::vector<RowId> rows(pool);
    for (uint32_t i = 0; i < pool; ++i)
        rows[i] = i * stride;

    // Phase 1: prime every row to exactly ATH (one below the ALERT
    // trigger). Proactive mitigation keeps resetting some rows, so
    // sweep again a few times to top them up.
    for (uint32_t sweep = 0; sweep <= config.topUpSweeps; ++sweep) {
        bool all_primed = true;
        for (RowId r : rows) {
            ActCount c = ch.bank(0).counter(r);
            if (sweep > 0 && c == config.moat.ath)
                continue;
            all_primed = false;
            while (c < config.moat.ath) {
                ch.activate(0, r);
                c = ch.bank(0).counter(r);
            }
        }
        if (sweep > 0 && all_primed)
            break;
    }

    // Phase 2: the ALERT torrent over the successfully primed rows.
    std::vector<RowId> live;
    live.reserve(rows.size());
    for (RowId r : rows) {
        if (ch.bank(0).counter(r) == config.moat.ath)
            live.push_back(r);
    }
    ratchetTorrent(ch, live, moat);

    AttackResult res;
    res.maxHammer = ch.security(0).maxHammer();
    res.totalActs = ch.stats().acts;
    res.alerts = ch.abo().alertCount();
    res.duration = ch.now();
    return res;
}

AttackResult
runRatchetMicroExample(const dram::TimingParams &timing, uint32_t ath)
{
    // Figure 9: four rows, ABO level 4 (7 ACTs per ALERT window) with a
    // single-entry MOAT that mitigates one row per ALERT.
    RatchetConfig config;
    config.timing = timing;
    config.moat.ath = ath;
    config.moat.eth = ath / 2;
    config.moat.trackerEntries = 1;
    config.aboLevel = abo::Level::L4;
    config.poolRows = 4;
    config.topUpSweeps = 1;
    return runRatchet(config);
}

} // namespace moatsim::attacks
