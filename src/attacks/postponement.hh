/**
 * @file
 * Refresh-postponement attack on Drain-All-Entries-on-REF Panopticon
 * (Appendix B, Figure 16 of the paper).
 *
 * DDR5 allows the memory controller to postpone up to two REF commands
 * and issue them later as a batch. Against the drain-all policy --
 * which mitigates queue entries only when a REF arrives -- an attacker
 * postpones maximally, creating windows of up to 201 activations
 * between REF batches. A row inserted into the queue right after a
 * batch then accrues threshold + 200 = 328 activations (2.6x the
 * queueing threshold) before the next batch mitigates it.
 */

#ifndef MOATSIM_ATTACKS_POSTPONEMENT_HH
#define MOATSIM_ATTACKS_POSTPONEMENT_HH

#include <cstdint>

#include "attacks/attack.hh"
#include "dram/timing.hh"
#include "mitigation/panopticon.hh"

namespace moatsim::attacks
{

/** Configuration of a refresh-postponement run. */
struct PostponementConfig
{
    dram::TimingParams timing{};
    mitigation::PanopticonConfig panopticon{};
    /** REFs that may be postponed at once (DDR5: 2). */
    uint32_t maxPostponed = 2;
    /** Phase trials; insertion alignment is swept across them. */
    uint32_t trials = 256;
    uint64_t seed = 1;

    PostponementConfig() { panopticon.drainAllOnRef = true; }
};

/**
 * Run the attack; maxHammer is the paper's 328 (threshold 128 + 200
 * ACTs per postponed-batch window) when the alignment is hit.
 */
AttackResult runRefreshPostponement(const PostponementConfig &config);

} // namespace moatsim::attacks

#endif // MOATSIM_ATTACKS_POSTPONEMENT_HH
