#include "attacks/feinting.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "mitigation/ideal_prc.hh"
#include "subchannel/subchannel.hh"

namespace moatsim::attacks
{

AttackResult
runFeinting(const FeintingConfig &config)
{
    using subchannel::SubChannel;
    using subchannel::SubChannelConfig;

    const dram::TimingParams &t = config.timing;
    const uint32_t k = config.mitigationPeriodRefis;
    if (k == 0)
        fatal("runFeinting: mitigation period must be >= 1");

    // One round per mitigation period fits in the refresh window; the
    // optimal pool sacrifices one row per round.
    const uint64_t rounds = static_cast<uint64_t>(
        t.availableWindow() / (static_cast<Time>(k) * t.tREFI));
    const uint32_t pool_size =
        config.poolRows != 0 ? config.poolRows
                             : static_cast<uint32_t>(rounds);

    SubChannelConfig sc;
    sc.timing = t;
    sc.numBanks = 1;
    // The attacker aligns the pattern with the refresh schedule so the
    // pool is never refreshed mid-attack (threat model, Section 2.1).
    sc.refreshResetsRows = false;
    sc.seed = config.seed;

    mitigation::IdealPrcConfig prc;
    prc.mitigationPeriodRefis = k;
    prc.blastRadius = t.blastRadius;
    SubChannel ch(sc, [&](BankId) {
        return std::make_unique<mitigation::IdealPrcMitigator>(prc);
    });

    // Pool rows spaced beyond the blast radius so mitigating one row
    // never refreshes another pool row's victims.
    const uint32_t stride = 2 * t.blastRadius + 2;
    if (static_cast<uint64_t>(pool_size) * stride > t.rowsPerBank)
        fatal("runFeinting: pool does not fit in the bank");
    std::vector<RowId> live(pool_size);
    for (uint32_t i = 0; i < pool_size; ++i)
        live[i] = i * stride;

    // Round structure: during each mitigation period, spread the ACT
    // budget round-robin over the surviving pool (command timing
    // naturally limits the budget to ~67 ACTs per tREFI); at the period
    // boundary the defender mitigates the argmax row, which the
    // attacker then drops from the pool (its counter reset to 0).
    const uint64_t total_rounds = std::min<uint64_t>(rounds, live.size());
    // Expected counter of each pool row assuming no mitigation; a row
    // whose real counter falls below it was mitigated (counters only
    // reset through mitigation here) and leaves the pool.
    std::vector<ActCount> expected(live.size(), 0);
    size_t idx = 0; // persistent rotation so the budget spreads evenly
    for (uint64_t round = 0; round < total_rounds && !live.empty();
         ++round) {
        const Time round_end =
            static_cast<Time>((round + 1) * k) * t.tREFI;
        while (ch.now() < round_end && !live.empty()) {
            idx %= live.size();
            ch.activate(0, live[idx]);
            ++expected[idx];
            ++idx;
        }
        // Let the boundary REF (and its mitigation) finish, then evict
        // whichever row the defender reset this round.
        ch.advanceTo(round_end + 1);
        size_t w = 0;
        for (size_t i = 0; i < live.size(); ++i) {
            if (ch.bank(0).counter(live[i]) >= expected[i]) {
                live[w] = live[i];
                expected[w] = expected[i];
                ++w;
            }
        }
        live.resize(w);
        expected.resize(w);
    }

    AttackResult res;
    res.maxHammer = ch.security(0).maxHammer();
    res.totalActs = ch.stats().acts;
    res.alerts = ch.abo().alertCount();
    res.duration = ch.now();
    return res;
}

} // namespace moatsim::attacks
