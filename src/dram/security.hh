/**
 * @file
 * Ground-truth Rowhammer security oracle.
 *
 * The paper's success criterion (Section 2.1): an attack succeeds when
 * any row receives more than the threshold number of activations
 * without an intervening mitigation or refresh. The monitor therefore
 * tracks, independently of any mitigation logic, two quantities:
 *
 *  - per-victim *damage*: activations of neighbouring aggressor rows
 *    since the victim was last refreshed (by auto-refresh or victim
 *    refresh). This is the physical bit-flip condition.
 *  - per-aggressor *hammer count*: activations of a row since the last
 *    mitigation of that row or refresh of its victims. This is the
 *    number the paper reports for each attack (e.g. 1152 for Jailbreak).
 *
 * For the single-sided patterns the paper studies the two coincide;
 * both are kept because the damage view is what makes reset-on-refresh
 * analyses (Figure 7) honest.
 */

#ifndef MOATSIM_DRAM_SECURITY_HH
#define MOATSIM_DRAM_SECURITY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace moatsim::dram
{

/** Ground-truth per-bank Rowhammer damage tracker. */
class SecurityMonitor
{
  public:
    /**
     * @param num_rows Rows in the bank.
     * @param blast_radius Victim distance on each side of an aggressor.
     */
    SecurityMonitor(uint32_t num_rows, uint32_t blast_radius);

    /** Record one activation of @p row (updates victims and hammer count). */
    void onActivate(RowId row);

    /** Record a refresh of @p row (auto-refresh or victim refresh). */
    void onRowRefreshed(RowId row);

    /**
     * Record a mitigation of aggressor @p row. Resets the row's hammer
     * count; the caller is responsible for also reporting the victim
     * refreshes via onRowRefreshed().
     */
    void onMitigated(RowId row);

    /** Damage (neighbour ACTs since refresh) currently on a victim row. */
    uint32_t damage(RowId row) const;

    /** Hammer count currently on an aggressor row. */
    uint32_t hammerCount(RowId row) const;

    /**
     * Highest hammer count @p row ever reached. Per-core-class
     * accounting needs this: on a shared system the bank-wide
     * maxHammer() may belong to a benign hot row, so an attacker's
     * exposure is the peak over its own rows.
     */
    uint32_t peakHammer(RowId row) const;

    /** Highest damage any victim row ever reached. */
    uint32_t maxDamage() const { return max_damage_; }

    /** Row that reached maxDamage(). */
    RowId maxDamageRow() const { return max_damage_row_; }

    /** Highest hammer count any aggressor row ever reached. */
    uint32_t maxHammer() const { return max_hammer_; }

    /** Row that reached maxHammer(). */
    RowId maxHammerRow() const { return max_hammer_row_; }

    /** Reset all state (new experiment on the same bank). */
    void clear();

  private:
    uint32_t blast_radius_;
    std::vector<uint32_t> damage_;
    std::vector<uint32_t> hammer_;
    /** Historical per-row peak of hammer_ (never reset by refresh). */
    std::vector<uint32_t> peak_hammer_;
    uint32_t max_damage_ = 0;
    RowId max_damage_row_ = kInvalidRow;
    uint32_t max_hammer_ = 0;
    RowId max_hammer_row_ = kInvalidRow;
};

} // namespace moatsim::dram

#endif // MOATSIM_DRAM_SECURITY_HH
