#include "dram/bank.hh"

#include <cassert>

#include "common/logging.hh"

namespace moatsim::dram
{

namespace
{

void
initCounters(std::span<ActCount> counters, CounterInit init, Rng *rng)
{
    if (init == CounterInit::RandomByte) {
        if (rng == nullptr)
            fatal("Bank: RandomByte counter init requires an Rng");
        for (auto &c : counters)
            c = static_cast<ActCount>(rng->below(256));
    }
}

} // namespace

Bank::Bank(const TimingParams &params, CounterInit init, Rng *rng)
    : owned_(params.rowsPerBank, 0), counters_(owned_)
{
    initCounters(counters_, init, rng);
}

Bank::Bank(const TimingParams &params, CounterInit init, Rng *rng,
           std::span<ActCount> storage)
    : counters_(storage)
{
    if (storage.size() != params.rowsPerBank)
        fatal("Bank: counter storage size does not match rowsPerBank");
    initCounters(counters_, init, rng);
}

ActCount
Bank::activate(RowId row)
{
    assert(row < counters_.size());
    open_row_ = row;
    ++total_acts_;
    return ++counters_[row];
}

ActCount
Bank::counter(RowId row) const
{
    assert(row < counters_.size());
    return counters_[row];
}

void
Bank::resetCounter(RowId row)
{
    assert(row < counters_.size());
    counters_[row] = 0;
}

} // namespace moatsim::dram
