#include "dram/bank.hh"

#include <cassert>

#include "common/logging.hh"

namespace moatsim::dram
{

Bank::Bank(const TimingParams &params, CounterInit init, Rng *rng)
    : counters_(params.rowsPerBank, 0)
{
    if (init == CounterInit::RandomByte) {
        if (rng == nullptr)
            fatal("Bank: RandomByte counter init requires an Rng");
        for (auto &c : counters_)
            c = static_cast<ActCount>(rng->below(256));
    }
}

ActCount
Bank::activate(RowId row)
{
    assert(row < counters_.size());
    open_row_ = row;
    ++total_acts_;
    return ++counters_[row];
}

ActCount
Bank::counter(RowId row) const
{
    assert(row < counters_.size());
    return counters_[row];
}

void
Bank::resetCounter(RowId row)
{
    assert(row < counters_.size());
    counters_[row] = 0;
}

} // namespace moatsim::dram
