/**
 * @file
 * CoffeeLake-style physical-address-to-DRAM mapping.
 *
 * The paper's baseline (Table 3) uses the Intel CoffeeLake address
 * mapping with a closed-page policy. We model the structure published
 * by reverse-engineering work: low bits select the cache-line offset
 * and column, the bank index is an XOR of bank-address bits with row
 * bits (bank XOR hashing defeats trivial row-buffer-conflict patterns),
 * and the top bits select the row. The exact bit positions are
 * configurable; defaults match a 32 GB, 2-sub-channel, 32-bank, 64K-row,
 * 8 KB-row-size system.
 */

#ifndef MOATSIM_DRAM_ADDRESS_MAP_HH
#define MOATSIM_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"

namespace moatsim::dram
{

/** Decoded DRAM coordinates of a physical address. */
struct DramCoord
{
    uint32_t channel = 0;
    uint32_t rank = 0;
    uint32_t subchannel = 0;
    BankId bank = 0;
    RowId row = 0;
    uint32_t column = 0;

    bool operator==(const DramCoord &) const = default;
};

/** XOR-hashed physical-to-DRAM address mapping (CoffeeLake style). */
class AddressMap
{
  public:
    /** Mapping geometry. */
    struct Config
    {
        /** log2 of the row size in bytes (8 KB rows -> 13). */
        uint32_t rowBits = 13;
        /** log2 of banks per sub-channel (32 -> 5). */
        uint32_t bankBits = 5;
        /** log2 of sub-channels (2 -> 1). */
        uint32_t subchannelBits = 1;
        /** log2 of ranks per channel (single-rank default -> 0). */
        uint32_t rankBits = 0;
        /** log2 of memory channels (single-channel default -> 0). */
        uint32_t channelBits = 0;
        /** log2 of rows per bank (64K -> 16). */
        uint32_t rowIndexBits = 16;
        /** XOR the bank index with the low row bits (bank hashing). */
        bool xorBankHash = true;
    };

    AddressMap() : AddressMap(Config{}) {}
    explicit AddressMap(const Config &config);

    /** Decode a physical byte address into DRAM coordinates. */
    DramCoord decode(uint64_t phys_addr) const;

    /**
     * Compose a physical address that decodes to the given coordinates
     * (inverse of decode; used by attack code to target rows).
     */
    uint64_t encode(const DramCoord &coord) const;

    /** Total addressable bytes. */
    uint64_t capacityBytes() const;

    const Config &config() const { return config_; }

  private:
    Config config_;
};

} // namespace moatsim::dram

#endif // MOATSIM_DRAM_ADDRESS_MAP_HH
