#include "dram/address_map.hh"

#include <cassert>

namespace moatsim::dram
{

namespace
{

uint64_t
mask(uint32_t bits)
{
    return (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
}

} // namespace

AddressMap::AddressMap(const Config &config)
    : config_(config)
{
    assert(config_.rowBits > 0 && config_.rowIndexBits > 0);
}

DramCoord
AddressMap::decode(uint64_t phys_addr) const
{
    // Layout (low to high): column | subchannel | bank | rank |
    // channel | row. Rank and channel default to 0 bits, so
    // single-rank, single-channel decode is unchanged.
    uint64_t a = phys_addr;
    DramCoord c;
    c.column = static_cast<uint32_t>(a & mask(config_.rowBits));
    a >>= config_.rowBits;
    c.subchannel = static_cast<uint32_t>(a & mask(config_.subchannelBits));
    a >>= config_.subchannelBits;
    c.bank = static_cast<BankId>(a & mask(config_.bankBits));
    a >>= config_.bankBits;
    c.rank = static_cast<uint32_t>(a & mask(config_.rankBits));
    a >>= config_.rankBits;
    c.channel = static_cast<uint32_t>(a & mask(config_.channelBits));
    a >>= config_.channelBits;
    c.row = static_cast<RowId>(a & mask(config_.rowIndexBits));
    if (config_.xorBankHash) {
        // Bank hashing: XOR the bank with the low row bits, mirroring
        // the CoffeeLake rank/bank XOR functions.
        c.bank = static_cast<BankId>(
            (c.bank ^ (c.row & mask(config_.bankBits))) &
            mask(config_.bankBits));
    }
    return c;
}

uint64_t
AddressMap::encode(const DramCoord &coord) const
{
    BankId raw_bank = coord.bank;
    if (config_.xorBankHash) {
        raw_bank = static_cast<BankId>(
            (coord.bank ^ (coord.row & mask(config_.bankBits))) &
            mask(config_.bankBits));
    }
    uint64_t a = coord.row & mask(config_.rowIndexBits);
    a = (a << config_.channelBits) |
        (coord.channel & mask(config_.channelBits));
    a = (a << config_.rankBits) | (coord.rank & mask(config_.rankBits));
    a = (a << config_.bankBits) | (raw_bank & mask(config_.bankBits));
    a = (a << config_.subchannelBits) |
        (coord.subchannel & mask(config_.subchannelBits));
    a = (a << config_.rowBits) | (coord.column & mask(config_.rowBits));
    return a;
}

uint64_t
AddressMap::capacityBytes() const
{
    const uint32_t total_bits = config_.rowBits + config_.subchannelBits +
                                config_.bankBits + config_.rankBits +
                                config_.channelBits + config_.rowIndexBits;
    return 1ULL << total_bits;
}

} // namespace moatsim::dram
