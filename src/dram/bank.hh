/**
 * @file
 * Behavioural model of one DRAM bank with PRAC per-row activation
 * counters.
 *
 * The bank tracks only what Rowhammer mitigation needs: one activation
 * counter per row (the PRAC counter stored inline with the row) and the
 * currently open row. Data contents are not modelled. Per the JEDEC
 * PRAC extension, the counter read-modify-write physically happens
 * during precharge; behaviourally we increment it at activate() and the
 * sub-channel delays any resulting ALERT to the precharge point.
 */

#ifndef MOATSIM_DRAM_BANK_HH
#define MOATSIM_DRAM_BANK_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/timing.hh"

namespace moatsim::dram
{

/** How PRAC counters are initialized at power-up. */
enum class CounterInit
{
    /** All counters start at zero (deterministic Panopticon / MOAT). */
    Zero,
    /** Counters start uniformly random in [0, 255] (randomized
     *  Panopticon, Section 3.3). */
    RandomByte,
};

/** One DRAM bank: PRAC counters plus open-row state. */
class Bank
{
  public:
    /**
     * Construct a bank.
     *
     * @param params Geometry (rowsPerBank is taken from here).
     * @param init Counter initialization policy.
     * @param rng Generator for randomized initialization; may be null
     *            when init is CounterInit::Zero.
     */
    Bank(const TimingParams &params, CounterInit init, Rng *rng = nullptr);

    /** Number of rows in this bank. */
    uint32_t numRows() const { return static_cast<uint32_t>(counters_.size()); }

    /**
     * Activate a row: opens it and increments its PRAC counter.
     * @return the counter value after the increment.
     */
    ActCount activate(RowId row);

    /** Precharge the open row (no-op when already closed). */
    void precharge() { open_row_ = kInvalidRow; }

    /** Row currently open, or kInvalidRow. */
    RowId openRow() const { return open_row_; }

    /** Current PRAC counter of a row. */
    ActCount counter(RowId row) const;

    /** Reset a row's PRAC counter to zero (mitigation / refresh). */
    void resetCounter(RowId row);

    /** Total activations ever issued to this bank. */
    uint64_t totalActivations() const { return total_acts_; }

  private:
    std::vector<ActCount> counters_;
    RowId open_row_ = kInvalidRow;
    uint64_t total_acts_ = 0;
};

} // namespace moatsim::dram

#endif // MOATSIM_DRAM_BANK_HH
