/**
 * @file
 * Behavioural model of one DRAM bank with PRAC per-row activation
 * counters.
 *
 * The bank tracks only what Rowhammer mitigation needs: one activation
 * counter per row (the PRAC counter stored inline with the row) and the
 * currently open row. Data contents are not modelled. Per the JEDEC
 * PRAC extension, the counter read-modify-write physically happens
 * during precharge; behaviourally we increment it at activate() and the
 * sub-channel delays any resulting ALERT to the precharge point.
 */

#ifndef MOATSIM_DRAM_BANK_HH
#define MOATSIM_DRAM_BANK_HH

#include <span>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/timing.hh"

namespace moatsim::dram
{

/** How PRAC counters are initialized at power-up. */
enum class CounterInit
{
    /** All counters start at zero (deterministic Panopticon / MOAT). */
    Zero,
    /** Counters start uniformly random in [0, 255] (randomized
     *  Panopticon, Section 3.3). */
    RandomByte,
};

/** One DRAM bank: PRAC counters plus open-row state. */
class Bank
{
  public:
    /**
     * Construct a bank.
     *
     * @param params Geometry (rowsPerBank is taken from here).
     * @param init Counter initialization policy.
     * @param rng Generator for randomized initialization; may be null
     *            when init is CounterInit::Zero.
     */
    Bank(const TimingParams &params, CounterInit init, Rng *rng = nullptr);

    /**
     * Construct a bank whose counters live in caller-owned @p storage
     * (rowsPerBank zero-initialized entries). A SubChannel hands every
     * bank a slice of one flat slab, so building a 64-bank system
     * costs one large allocation instead of one multi-hundred-KB
     * allocation (and its page faults) per bank. The storage must
     * outlive the bank.
     */
    Bank(const TimingParams &params, CounterInit init, Rng *rng,
         std::span<ActCount> storage);

    /**
     * Moves keep the counters valid (both storage flavours live on
     * the heap); copies are deleted -- a copy's span would alias the
     * source's storage instead of its own.
     */
    Bank(Bank &&) = default;
    Bank &operator=(Bank &&) = default;
    Bank(const Bank &) = delete;
    Bank &operator=(const Bank &) = delete;

    /** Number of rows in this bank. */
    uint32_t numRows() const { return static_cast<uint32_t>(counters_.size()); }

    /**
     * Activate a row: opens it and increments its PRAC counter.
     * @return the counter value after the increment.
     */
    ActCount activate(RowId row);

    /** Precharge the open row (no-op when already closed). */
    void precharge() { open_row_ = kInvalidRow; }

    /** Row currently open, or kInvalidRow. */
    RowId openRow() const { return open_row_; }

    /** Current PRAC counter of a row. */
    ActCount counter(RowId row) const;

    /**
     * Hint that @p row's counter is about to be read-modify-written.
     * The per-ACT counter update is a random access into a multi-MB
     * array, so the replay loop prefetches the next event's counter
     * while earlier events are still being issued. Pure hint: no
     * state changes.
     */
    void prefetchCounter(RowId row) const
    {
        if (row < counters_.size())
            __builtin_prefetch(&counters_[row], 1, 1);
    }

    /** Reset a row's PRAC counter to zero (mitigation / refresh). */
    void resetCounter(RowId row);

    /** Total activations ever issued to this bank. */
    uint64_t totalActivations() const { return total_acts_; }

  private:
    /** Backing storage when the bank owns its counters (empty when a
     *  caller-owned slab backs them). */
    std::vector<ActCount> owned_;
    /** The counters; views owned_ or the caller's slab. Stays valid
     *  across moves (both point at heap storage). */
    std::span<ActCount> counters_;
    RowId open_row_ = kInvalidRow;
    uint64_t total_acts_ = 0;
};

} // namespace moatsim::dram

#endif // MOATSIM_DRAM_BANK_HH
