/**
 * @file
 * Auto-refresh scheduler for one bank.
 *
 * DDR5 divides each bank's rows into 8192 spatially contiguous groups;
 * one REF command refreshes one group, and the group pointer wraps once
 * per tREFW (Section 2.2). The scheduler also models refresh
 * postponement (Appendix B): the memory controller may postpone up to
 * `maxPostponed` REFs and later issue them as a batch.
 */

#ifndef MOATSIM_DRAM_REFRESH_HH
#define MOATSIM_DRAM_REFRESH_HH

#include <cstdint>
#include <utility>

#include "common/types.hh"
#include "dram/timing.hh"

namespace moatsim::dram
{

/** Per-bank auto-refresh group pointer with postponement accounting. */
class RefreshScheduler
{
  public:
    /** @param max_postponed REFs that may be owed at once (DDR5: 2). */
    explicit RefreshScheduler(const TimingParams &params,
                              uint32_t max_postponed = 2);

    /** Group that the next REF command will refresh. */
    uint32_t nextGroup() const { return next_group_; }

    /** Inclusive [first, last] row range of a group. */
    std::pair<RowId, RowId> groupRows(uint32_t group) const;

    /**
     * Issue one REF: refreshes the next group and advances the pointer.
     * Clears one owed REF if any were postponed.
     * @return the group index that was refreshed.
     */
    uint32_t issueRef();

    /**
     * Postpone the REF due at this tREFI.
     * @return true if allowed (owed count below the limit).
     */
    bool postpone();

    /** REFs currently owed due to postponement. */
    uint32_t owed() const { return owed_; }

    /** Total REFs issued. */
    uint64_t refsIssued() const { return refs_issued_; }

    /** Number of groups (wraps modulo this). */
    uint32_t numGroups() const { return num_groups_; }

  private:
    uint32_t num_groups_;
    uint32_t rows_per_group_;
    uint32_t max_postponed_;
    uint32_t next_group_ = 0;
    uint32_t owed_ = 0;
    uint64_t refs_issued_ = 0;
};

} // namespace moatsim::dram

#endif // MOATSIM_DRAM_REFRESH_HH
