#include "dram/timing.hh"

#include "common/logging.hh"

namespace moatsim::dram
{

uint32_t
TimingParams::actsPerRefi() const
{
    return static_cast<uint32_t>((tREFI - tRFC) / tRC);
}

uint32_t
TimingParams::refisPerRefw() const
{
    return static_cast<uint32_t>(tREFW / tREFI);
}

uint32_t
TimingParams::rowsPerGroup() const
{
    return rowsPerBank / refreshGroups;
}

Time
TimingParams::availableWindow() const
{
    return tREFW - static_cast<Time>(refreshGroups) * tRFC;
}

Time
TimingParams::alertToAlert(int level) const
{
    // 180 ns of normal activity, then L back-to-back RFMs, then one
    // tRC for the mandatory post-RFM activation slot (Section 5.1 /
    // Appendix A: tA2A = 180ns + (350ns + 52ns) * L).
    return tAlertNormal + static_cast<Time>(level) * (tRFM + tRC);
}

uint32_t
TimingParams::actsPerAlertWindow(int level) const
{
    // 3 ACTs fit in the 180 ns normal window; L ACTs are permitted
    // after the RFMs before the next ALERT may be asserted (Fig. 8).
    return 3 + static_cast<uint32_t>(level);
}

void
TimingParams::validate() const
{
    if (tRC <= 0 || tREFI <= 0 || tREFW <= 0 || tRFC <= 0)
        fatal("TimingParams: all timings must be positive");
    if (tRFC >= tREFI)
        fatal("TimingParams: tRFC must be smaller than tREFI");
    if (rowsPerBank == 0 || refreshGroups == 0)
        fatal("TimingParams: geometry must be non-zero");
    if (rowsPerBank % refreshGroups != 0)
        fatal("TimingParams: rowsPerBank must be a multiple of refreshGroups");
    if (blastRadius == 0)
        fatal("TimingParams: blastRadius must be at least 1");
}

} // namespace moatsim::dram
