#include "dram/timing.hh"

#include <string>
#include <utility>

#include "common/logging.hh"

namespace moatsim::dram
{

uint32_t
TimingParams::actsPerRefi() const
{
    return static_cast<uint32_t>((tREFI - tRFC) / tRC);
}

uint32_t
TimingParams::refisPerRefw() const
{
    return static_cast<uint32_t>(tREFW / tREFI);
}

uint32_t
TimingParams::rowsPerGroup() const
{
    return rowsPerBank / refreshGroups;
}

Time
TimingParams::availableWindow() const
{
    return tREFW - static_cast<Time>(refreshGroups) * tRFC;
}

Time
TimingParams::alertToAlert(int level) const
{
    // 180 ns of normal activity, then L back-to-back RFMs, then one
    // tRC for the mandatory post-RFM activation slot (Section 5.1 /
    // Appendix A: tA2A = 180ns + (350ns + 52ns) * L).
    return tAlertNormal + static_cast<Time>(level) * (tRFM + tRC);
}

uint32_t
TimingParams::actsPerAlertWindow(int level) const
{
    // 3 ACTs fit in the 180 ns normal window; L ACTs are permitted
    // after the RFMs before the next ALERT may be asserted (Fig. 8).
    return 3 + static_cast<uint32_t>(level);
}

void
TimingParams::validate() const
{
    // Name the offending field: a sweep over device grades must point
    // at the bad parameter, not at "all timings".
    const std::pair<const char *, Time> positives[] = {
        {"tACT", tACT},   {"tPRE", tPRE},   {"tRAS", tRAS},
        {"tRC", tRC},     {"tREFW", tREFW}, {"tREFI", tREFI},
        {"tRFC", tRFC},   {"tRRD", tRRD},   {"tFAW", tFAW},
        {"tRFM", tRFM},   {"tAlertNormal", tAlertNormal},
    };
    for (const auto &[name, value] : positives) {
        if (value <= 0)
            fatal("TimingParams: " + std::string(name) +
                  " must be positive (got " + std::to_string(value) +
                  " ps)");
    }
    if (tRFC >= tREFI)
        fatal("TimingParams: tRFC must be smaller than tREFI");
    if (tREFW <= tREFI)
        fatal("TimingParams: tREFW must be larger than tREFI");
    if (rowsPerBank == 0)
        fatal("TimingParams: rowsPerBank must be non-zero");
    if (banksPerSubchannel == 0)
        fatal("TimingParams: banksPerSubchannel must be non-zero");
    if (refreshGroups == 0)
        fatal("TimingParams: refreshGroups must be non-zero");
    if (rowsPerBank % refreshGroups != 0)
        fatal("TimingParams: rowsPerBank must be a multiple of refreshGroups");
    if (blastRadius == 0)
        fatal("TimingParams: blastRadius must be at least 1");

    // refisPerRefw() and actsPerRefi() truncate on non-divisible
    // inputs; the JEDEC defaults themselves leave a remainder (32 ms %
    // 3900 ns, (tREFI - tRFC) % tRC), so truncation is expected but
    // worth one note per process, not one per sweep cell.
    static const bool warned_once = [this] {
        if (tREFW % tREFI != 0)
            warn("TimingParams: tREFW (" + std::to_string(tREFW) +
                 " ps) is not a multiple of tREFI (" +
                 std::to_string(tREFI) +
                 " ps); refisPerRefw() truncates the remainder");
        if ((tREFI - tRFC) % tRC != 0)
            warn("TimingParams: tREFI - tRFC (" +
                 std::to_string(tREFI - tRFC) +
                 " ps) is not a multiple of tRC (" + std::to_string(tRC) +
                 " ps); actsPerRefi() truncates the remainder");
        return true;
    }();
    (void)warned_once;
}

} // namespace moatsim::dram
