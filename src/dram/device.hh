/**
 * @file
 * Named DDR5 device model: organization presets and speed grades.
 *
 * Today's Table-3 system is one hard-wired geometry; real deployments
 * span device grades (capacities, rank/channel counts, timing bins),
 * and a mitigator's security/cost story must hold per grade. Following
 * the ramulator org_map/speed_map idiom, the device model names each
 * grade once -- organization (rows/bank, banks per bank group, bank
 * groups, ranks, channels) and speed (the TimingParams time fields plus
 * the PRAC counter-update cost) -- and everything downstream derives
 * from the resolved DeviceModel: dram::TimingParams geometry,
 * dram::AddressMap::Config bit widths, sim::System topology, and the
 * SRAM-cost accounting in analysis/storage_model.
 *
 * A device is selected by a spec string, parsed and round-tripped
 * exactly like mitigation::MitigatorSpec:
 *
 *     device:org=32gb,speed=ddr5-prac
 *
 * DeviceSpec::describe() reproduces the given parameters in canonical
 * order; DeviceSpec::resolve() yields the DeviceModel. The default
 * spec ("device") resolves to the paper's Table-3 system bit-exactly:
 * TimingParams{} timing, 64K rows x 32 banks per sub-channel, 2
 * sub-channels, 1 rank, 1 channel.
 */

#ifndef MOATSIM_DRAM_DEVICE_HH
#define MOATSIM_DRAM_DEVICE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hh"
#include "dram/address_map.hh"
#include "dram/timing.hh"

namespace moatsim::dram
{

/** One named DDR5 organization (capacity/topology) preset. */
struct DeviceOrg
{
    /** Preset name (the `org=` value), e.g. "32gb". */
    std::string name;
    /** One-line summary for listings. */
    std::string summary;
    /** Rows per bank. */
    uint32_t rowsPerBank = 0;
    /** Banks per bank group. */
    uint32_t banksPerGroup = 0;
    /** Bank groups per sub-channel. */
    uint32_t bankGroups = 0;
    /** Ranks per channel. */
    uint32_t ranks = 1;
    /** Memory channels. */
    uint32_t channels = 1;
    /** Sub-channels per channel (DDR5 DIMMs: always 2). */
    uint32_t subchannelsPerChannel = 2;

    /** Banks per sub-channel (bank groups x banks per group). */
    uint32_t banksPerSubchannel() const { return banksPerGroup * bankGroups; }
};

/** One named DDR5 speed grade (timing bin). */
struct DeviceSpeed
{
    /** Preset name (the `speed=` value), e.g. "ddr5-prac". */
    std::string name;
    /** One-line summary for listings. */
    std::string summary;
    /** Time for performing an ACT. */
    Time tACT = 0;
    /** Row precharge, PRAC counter read-modify-write included. */
    Time tPRE = 0;
    /** Minimum time a row must be kept open. */
    Time tRAS = 0;
    /** Time between successive ACTs to the same bank. */
    Time tRC = 0;
    /** Refresh window: every row refreshed once per tREFW. */
    Time tREFW = 0;
    /** Time between successive REF commands. */
    Time tREFI = 0;
    /** Execution time of a REF command (bank unavailable). */
    Time tRFC = 0;
    /** ACT-to-ACT delay across banks of one sub-channel. */
    Time tRRD = 0;
    /** Four-activation window across a sub-channel. */
    Time tFAW = 0;
    /** RFM execution time (one ABO mitigation slot). */
    Time tRFM = 0;
    /** Normal-operation window after ALERT assertion. */
    Time tAlertNormal = 0;
    /**
     * PRAC counter increment cost per JEDEC DDR5 PRAC: the counter
     * read-modify-write the revised precharge hides. Already folded
     * into tPRE (tPRE ~ base precharge + pracIncrement); kept explicit
     * so analyses can separate the mitigation tax from the DRAM core.
     */
    Time pracIncrement = 0;
};

/** All named organization presets, in listing order. */
const std::vector<DeviceOrg> &deviceOrgs();

/** All named speed grades, in listing order. */
const std::vector<DeviceSpeed> &deviceSpeeds();

/** The default organization preset name (Table-3 system). */
std::string defaultDeviceOrg();

/** The default speed-grade name (Table-1 revised DDR5 with PRAC). */
std::string defaultDeviceSpeed();

class DeviceModel;

/**
 * Parsed `device:org=...,speed=...` spec. Mirrors
 * mitigation::MitigatorSpec: parse() fatals with the same error text
 * tryParse() reports, describe() reproduces the given parameters in
 * canonical (org, speed) order, and omitted parameters resolve to the
 * Table-3 defaults.
 *
 * describe() is a key input (perfCellKey folds the canonical spec
 * text into every ResultStore key), so every member below must reach
 * it -- keylint checks the round-trip on every build.
 */
// moatlint: key-source(DeviceSpec::describe)
class DeviceSpec
{
  public:
    /** The default device (Table-3 org at the Table-1 speed grade). */
    DeviceSpec() = default;

    /** Parse a spec string; calls fatal() on malformed input. */
    static DeviceSpec parse(const std::string &text);

    /** Parse; nullopt (and *error, when non-null) on malformed input. */
    static std::optional<DeviceSpec> tryParse(const std::string &text,
                                              std::string *error);

    /** Canonical spec text; parse(describe()) round-trips. */
    std::string describe() const;

    /** Resolved organization preset name. */
    const std::string &org() const { return org_; }

    /** Resolved speed-grade name. */
    const std::string &speed() const { return speed_; }

    /** Whether this is the default device grade. */
    bool isDefault() const;

    /** Resolve the named presets into a DeviceModel. */
    DeviceModel resolve() const;

  private:
    std::string org_ = "32gb";
    std::string speed_ = "ddr5-prac";
    /** Keys given in the spec text, canonical order (for describe()). */
    std::vector<std::string> given_;
};

/**
 * A resolved device: one organization preset at one speed grade. The
 * single source of truth for DRAM geometry -- TimingParams geometry
 * fields, AddressMap bit widths, and system topology all derive from
 * here instead of from parallel defaults.
 */
class DeviceModel
{
  public:
    /** The default device (equivalent to DeviceSpec{}.resolve()). */
    DeviceModel();

    DeviceModel(const DeviceSpec &spec, const DeviceOrg &org,
                const DeviceSpeed &speed);

    const DeviceSpec &spec() const { return spec_; }
    const DeviceOrg &org() const { return org_; }
    const DeviceSpeed &speed() const { return speed_; }

    /** Canonical spec text (spec().describe()). */
    std::string describe() const { return spec_.describe(); }

    /** Whether this is the default device grade. */
    bool isDefault() const { return spec_.isDefault(); }

    /**
     * The speed grade's timings merged with the organization's
     * geometry, as one validated TimingParams. The default device
     * reproduces TimingParams{} exactly.
     */
    TimingParams timing() const;

    /**
     * Address-mapping bit widths derived from the geometry. Fatals if
     * banks per sub-channel, rows per bank, sub-channels, ranks, or
     * channels is not a power of two -- a mismatched config must not
     * silently misroute addresses.
     */
    AddressMap::Config addressConfig() const;

    /** Memory channels. */
    uint32_t channels() const { return org_.channels; }
    /** Ranks per channel. */
    uint32_t ranks() const { return org_.ranks; }
    /** Sub-channels per channel. */
    uint32_t subchannelsPerChannel() const
    {
        return org_.subchannelsPerChannel;
    }
    /** Banks per sub-channel. */
    uint32_t banksPerSubchannel() const { return org_.banksPerSubchannel(); }
    /** Rows per bank. */
    uint32_t rowsPerBank() const { return org_.rowsPerBank; }

    /**
     * Independent sub-channel replay slots: channels x ranks x
     * sub-channels per channel. Each slot is one subchannel::SubChannel
     * (its own banks, mitigators, ABO state machine, RNG stream).
     */
    uint32_t totalSubchannelSlots() const
    {
        return org_.channels * org_.ranks * org_.subchannelsPerChannel;
    }

    /** Banks across the whole device (all slots). */
    uint32_t totalBanks() const
    {
        return totalSubchannelSlots() * banksPerSubchannel();
    }

  private:
    DeviceSpec spec_;
    DeviceOrg org_;
    DeviceSpeed speed_;
};

} // namespace moatsim::dram

#endif // MOATSIM_DRAM_DEVICE_HH
