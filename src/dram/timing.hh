/**
 * @file
 * DDR5 timing and geometry parameters (paper Table 1, JESD79-5C revised
 * specs with PRAC) plus the derived quantities the paper's analyses use.
 */

#ifndef MOATSIM_DRAM_TIMING_HH
#define MOATSIM_DRAM_TIMING_HH

#include <cstdint>

#include "common/time.hh"
#include "common/types.hh"

namespace moatsim::dram
{

/** Table-3 baseline geometry: rows per bank (64K at 8 KB rows). */
inline constexpr uint32_t kTable3RowsPerBank = 64 * 1024;
/** Table-3 baseline geometry: banks per sub-channel (8 groups x 4). */
inline constexpr uint32_t kTable3BanksPerSubchannel = 32;
/** Table-3 baseline geometry: sub-channels per DDR5 channel. */
inline constexpr uint32_t kTable3SubchannelsPerChannel = 2;

/**
 * DRAM timing/geometry configuration.
 *
 * Defaults reproduce Table 1 of the paper (revised DDR5 with PRAC:
 * tPRE grows to 36 ns to hide the counter read-modify-write, tRAS
 * shrinks to 16 ns, tRC becomes 52 ns) and Table 3 geometry (64K rows
 * per bank, 32 banks per sub-channel). tRRD/tFAW are not listed in the
 * paper's table; they are set so that ~17 banks saturate a sub-channel,
 * matching the tFAW limit quoted in the TSA analysis (Section 7.3).
 */
struct TimingParams
{
    /** Time for performing an ACT. */
    Time tACT = fromNs(12);
    /** Time to precharge an open row (includes PRAC counter update). */
    Time tPRE = fromNs(36);
    /** Minimum time a row must be kept open. */
    Time tRAS = fromNs(16);
    /** Time between successive ACTs to the same bank. */
    Time tRC = fromNs(52);
    /** Refresh window: every row refreshed once per tREFW. */
    Time tREFW = fromNs(32'000'000);
    /** Time between successive REF commands. */
    Time tREFI = fromNs(3900);
    /** Execution time of a REF command (bank unavailable). */
    Time tRFC = fromNs(410);
    /** ACT-to-ACT delay across banks of one sub-channel. */
    Time tRRD = fromNs(3);
    /** Four-activation window across a sub-channel. */
    Time tFAW = fromNs(12);
    /** RFM execution time (one ABO mitigation slot). */
    Time tRFM = fromNs(350);
    /** Normal-operation window after ALERT assertion. */
    Time tAlertNormal = fromNs(180);

    /** Rows per bank (Table 3: 64K rows). */
    uint32_t rowsPerBank = kTable3RowsPerBank;
    /** Banks per sub-channel (Table 3: 32). */
    uint32_t banksPerSubchannel = kTable3BanksPerSubchannel;
    /** Refresh groups per refresh window (Section 2.2: 8192). */
    uint32_t refreshGroups = 8192;
    /** Victim rows refreshed on each side of an aggressor (blast radius 2). */
    uint32_t blastRadius = 2;

    /** Maximum whole ACTs that fit in one tREFI after tRFC (paper: 67). */
    uint32_t actsPerRefi() const;
    /** REF commands per refresh window (tREFW / tREFI). */
    uint32_t refisPerRefw() const;
    /** Rows per refresh group. */
    uint32_t rowsPerGroup() const;
    /** Victim rows refreshed per aggressor mitigation (2 * blastRadius). */
    uint32_t victimsPerMitigation() const { return 2 * blastRadius; }
    /** tREFW minus total refresh execution time (Appendix A: 28.64 ms). */
    Time availableWindow() const;
    /** Minimum time between consecutive ALERTs for ABO level L. */
    Time alertToAlert(int level) const;
    /** ACTs possible between consecutive ALERTs for ABO level L (3 + L). */
    uint32_t actsPerAlertWindow(int level) const;

    /** Sanity-check invariants; calls fatal() on a bad configuration. */
    void validate() const;
};

} // namespace moatsim::dram

#endif // MOATSIM_DRAM_TIMING_HH
