#include "dram/device.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace moatsim::dram
{

namespace
{

/**
 * Organization presets (the ramulator org_map). Capacities assume 8 KB
 * rows: capacity = rows x banks x sub-channels x ranks x channels x
 * 8 KB. Every DDR5 channel has 2 sub-channels; grades vary rows per
 * bank (per-die density) and the rank/channel population.
 */
std::vector<DeviceOrg>
buildOrgs()
{
    std::vector<DeviceOrg> orgs;

    {
        DeviceOrg o;
        o.name = "32gb";
        o.summary = "Table-3 baseline: 64K rows, 8 bank groups x 4 "
                    "banks, 1 rank, 1 channel (32 GB)";
        o.rowsPerBank = kTable3RowsPerBank;
        o.banksPerGroup = 4;
        o.bankGroups = 8;
        o.ranks = 1;
        o.channels = 1;
        o.subchannelsPerChannel = kTable3SubchannelsPerChannel;
        orgs.push_back(std::move(o));
    }
    {
        DeviceOrg o;
        o.name = "8gb";
        o.summary = "low-density die: 16K rows per bank (8 GB)";
        o.rowsPerBank = kTable3RowsPerBank / 4;
        o.banksPerGroup = 4;
        o.bankGroups = 8;
        o.ranks = 1;
        o.channels = 1;
        o.subchannelsPerChannel = kTable3SubchannelsPerChannel;
        orgs.push_back(std::move(o));
    }
    {
        DeviceOrg o;
        o.name = "16gb";
        o.summary = "mid-density die: 32K rows per bank (16 GB)";
        o.rowsPerBank = kTable3RowsPerBank / 2;
        o.banksPerGroup = 4;
        o.bankGroups = 8;
        o.ranks = 1;
        o.channels = 1;
        o.subchannelsPerChannel = kTable3SubchannelsPerChannel;
        orgs.push_back(std::move(o));
    }
    {
        DeviceOrg o;
        o.name = "64gb-2r";
        o.summary = "dual-rank DIMM: Table-3 die x 2 ranks (64 GB)";
        o.rowsPerBank = kTable3RowsPerBank;
        o.banksPerGroup = 4;
        o.bankGroups = 8;
        o.ranks = 2;
        o.channels = 1;
        o.subchannelsPerChannel = kTable3SubchannelsPerChannel;
        orgs.push_back(std::move(o));
    }
    {
        DeviceOrg o;
        o.name = "64gb-2ch";
        o.summary = "dual-channel system: Table-3 DIMM x 2 channels "
                    "(64 GB)";
        o.rowsPerBank = kTable3RowsPerBank;
        o.banksPerGroup = 4;
        o.bankGroups = 8;
        o.ranks = 1;
        o.channels = 2;
        o.subchannelsPerChannel = kTable3SubchannelsPerChannel;
        orgs.push_back(std::move(o));
    }
    {
        DeviceOrg o;
        o.name = "128gb-2r2ch";
        o.summary = "dual-rank, dual-channel: Table-3 die x 2 ranks "
                    "x 2 channels (128 GB)";
        o.rowsPerBank = kTable3RowsPerBank;
        o.banksPerGroup = 4;
        o.bankGroups = 8;
        o.ranks = 2;
        o.channels = 2;
        o.subchannelsPerChannel = kTable3SubchannelsPerChannel;
        orgs.push_back(std::move(o));
    }

    return orgs;
}

/**
 * Speed grades (the ramulator speed_map). "ddr5-prac" is Table 1 of
 * the paper (revised DDR5 with PRAC) and must stay byte-equal to the
 * TimingParams defaults; the fast/slow bins bracket it, with the PRAC
 * counter read-modify-write (pracIncrement = tPRE - tACT) scaling with
 * the core timings per JEDEC's per-bin tPRE.
 */
std::vector<DeviceSpeed>
buildSpeeds()
{
    std::vector<DeviceSpeed> speeds;

    {
        const TimingParams def;
        DeviceSpeed s;
        s.name = "ddr5-prac";
        s.summary = "Table-1 revised DDR5 with PRAC (tRC 52 ns, "
                    "tPRE 36 ns incl. counter update)";
        s.tACT = def.tACT;
        s.tPRE = def.tPRE;
        s.tRAS = def.tRAS;
        s.tRC = def.tRC;
        s.tREFW = def.tREFW;
        s.tREFI = def.tREFI;
        s.tRFC = def.tRFC;
        s.tRRD = def.tRRD;
        s.tFAW = def.tFAW;
        s.tRFM = def.tRFM;
        s.tAlertNormal = def.tAlertNormal;
        s.pracIncrement = def.tPRE - def.tACT;
        speeds.push_back(std::move(s));
    }
    {
        DeviceSpeed s;
        s.name = "ddr5-prac-fast";
        s.summary = "fast bin: tRC 44 ns, tRFC 350 ns, tighter ABO "
                    "recovery";
        s.tACT = fromNs(10);
        s.tPRE = fromNs(30);
        s.tRAS = fromNs(14);
        s.tRC = fromNs(44);
        s.tREFW = fromNs(32'000'000);
        s.tREFI = fromNs(3900);
        s.tRFC = fromNs(350);
        s.tRRD = fromNs(2);
        s.tFAW = fromNs(10);
        s.tRFM = fromNs(300);
        s.tAlertNormal = fromNs(160);
        s.pracIncrement = s.tPRE - s.tACT;
        speeds.push_back(std::move(s));
    }
    {
        DeviceSpeed s;
        s.name = "ddr5-prac-slow";
        s.summary = "slow bin: tRC 60 ns, tRFC 450 ns, wider ABO "
                    "recovery";
        s.tACT = fromNs(14);
        s.tPRE = fromNs(40);
        s.tRAS = fromNs(18);
        s.tRC = fromNs(60);
        s.tREFW = fromNs(32'000'000);
        s.tREFI = fromNs(3900);
        s.tRFC = fromNs(450);
        s.tRRD = fromNs(4);
        s.tFAW = fromNs(14);
        s.tRFM = fromNs(400);
        s.tAlertNormal = fromNs(200);
        s.pracIncrement = s.tPRE - s.tACT;
        speeds.push_back(std::move(s));
    }

    return speeds;
}

const DeviceOrg *
findOrg(const std::string &name)
{
    for (const auto &o : deviceOrgs()) {
        if (o.name == name)
            return &o;
    }
    return nullptr;
}

const DeviceSpeed *
findSpeed(const std::string &name)
{
    for (const auto &s : deviceSpeeds()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::string
knownOrgsText()
{
    std::string out;
    for (const auto &o : deviceOrgs()) {
        if (!out.empty())
            out += ", ";
        out += o.name;
    }
    return out;
}

std::string
knownSpeedsText()
{
    std::string out;
    for (const auto &s : deviceSpeeds()) {
        if (!out.empty())
            out += ", ";
        out += s.name;
    }
    return out;
}

/** log2 of @p value, or fatal naming @p field on a non-power-of-two. */
uint32_t
log2Exact(uint32_t value, const std::string &field)
{
    if (value == 0 || !std::has_single_bit(value))
        fatal("DeviceModel: " + field + " (" + std::to_string(value) +
              ") must be a power of two for address mapping");
    return static_cast<uint32_t>(std::bit_width(value) - 1);
}

} // namespace

const std::vector<DeviceOrg> &
deviceOrgs()
{
    static const std::vector<DeviceOrg> orgs = buildOrgs();
    return orgs;
}

const std::vector<DeviceSpeed> &
deviceSpeeds()
{
    static const std::vector<DeviceSpeed> speeds = buildSpeeds();
    return speeds;
}

std::string
defaultDeviceOrg()
{
    return DeviceSpec{}.org();
}

std::string
defaultDeviceSpeed()
{
    return DeviceSpec{}.speed();
}

DeviceSpec
DeviceSpec::parse(const std::string &text)
{
    std::string error;
    auto spec = tryParse(text, &error);
    if (!spec)
        fatal(error);
    return *spec;
}

std::optional<DeviceSpec>
DeviceSpec::tryParse(const std::string &text, std::string *error)
{
    const auto fail =
        [&](const std::string &msg) -> std::optional<DeviceSpec> {
        if (error != nullptr)
            *error = msg;
        return std::nullopt;
    };

    const size_t colon = text.find(':');
    const std::string name = text.substr(0, colon);
    if (name.empty())
        return fail("empty device name in '" + text +
                    "' (expected device:org=...,speed=...)");
    if (name != "device")
        return fail("unknown device spec '" + name +
                    "' (expected device:org=...,speed=...)");

    DeviceSpec spec;
    if (colon == std::string::npos)
        return spec;

    // Split the "k=v,k=v" tail and validate each pair.
    std::vector<std::pair<std::string, std::string>> given;
    const std::string tail = text.substr(colon + 1);
    size_t pos = 0;
    while (pos <= tail.size()) {
        size_t comma = tail.find(',', pos);
        if (comma == std::string::npos)
            comma = tail.size();
        const std::string item = tail.substr(pos, comma - pos);
        pos = comma + 1;

        const size_t eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size()) {
            return fail("device: malformed parameter '" + item +
                        "' (expected key=value)");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        if (key != "org" && key != "speed")
            return fail("device: unknown key '" + key +
                        "' (known keys: org, speed)");
        for (const auto &[k, v] : given) {
            if (k == key)
                return fail("device: duplicate key '" + key + "'");
        }
        if (key == "org" && findOrg(value) == nullptr)
            return fail("device: unknown org '" + value + "' (known: " +
                        knownOrgsText() + ")");
        if (key == "speed" && findSpeed(value) == nullptr)
            return fail("device: unknown speed '" + value +
                        "' (known: " + knownSpeedsText() + ")");
        given.emplace_back(key, value);
    }

    // Canonical order: org before speed, regardless of input order.
    for (const std::string key : {"org", "speed"}) {
        for (const auto &[k, v] : given) {
            if (k != key)
                continue;
            spec.given_.push_back(k);
            (key == "org" ? spec.org_ : spec.speed_) = v;
        }
    }
    return spec;
}

std::string
DeviceSpec::describe() const
{
    std::string out = "device";
    bool first = true;
    for (const auto &k : given_) {
        out += first ? ":" : ",";
        out += k + "=" + (k == "org" ? org_ : speed_);
        first = false;
    }
    return out;
}

bool
DeviceSpec::isDefault() const
{
    return org_ == DeviceSpec{}.org_ && speed_ == DeviceSpec{}.speed_;
}

DeviceModel
DeviceSpec::resolve() const
{
    const DeviceOrg *org = findOrg(org_);
    if (org == nullptr)
        fatal("device: unknown org '" + org_ + "' (known: " +
              knownOrgsText() + ")");
    const DeviceSpeed *speed = findSpeed(speed_);
    if (speed == nullptr)
        fatal("device: unknown speed '" + speed_ + "' (known: " +
              knownSpeedsText() + ")");
    return DeviceModel(*this, *org, *speed);
}

DeviceModel::DeviceModel()
    : DeviceModel(DeviceSpec{}.resolve())
{
}

DeviceModel::DeviceModel(const DeviceSpec &spec, const DeviceOrg &org,
                         const DeviceSpeed &speed)
    : spec_(spec), org_(org), speed_(speed)
{
}

TimingParams
DeviceModel::timing() const
{
    TimingParams t;
    t.tACT = speed_.tACT;
    t.tPRE = speed_.tPRE;
    t.tRAS = speed_.tRAS;
    t.tRC = speed_.tRC;
    t.tREFW = speed_.tREFW;
    t.tREFI = speed_.tREFI;
    t.tRFC = speed_.tRFC;
    t.tRRD = speed_.tRRD;
    t.tFAW = speed_.tFAW;
    t.tRFM = speed_.tRFM;
    t.tAlertNormal = speed_.tAlertNormal;
    t.rowsPerBank = org_.rowsPerBank;
    t.banksPerSubchannel = org_.banksPerSubchannel();
    // refreshGroups and blastRadius keep the TimingParams defaults:
    // both are mitigation-protocol parameters (Section 2.2), not
    // device-grade properties.
    t.validate();
    return t;
}

AddressMap::Config
DeviceModel::addressConfig() const
{
    AddressMap::Config cfg;
    // rowBits (the 8 KB row size) is a property of the column/device
    // width, identical across the grades; keep the Config default.
    cfg.bankBits =
        log2Exact(org_.banksPerSubchannel(), "banks per sub-channel");
    cfg.subchannelBits =
        log2Exact(org_.subchannelsPerChannel, "sub-channels per channel");
    cfg.rankBits = log2Exact(org_.ranks, "ranks");
    cfg.channelBits = log2Exact(org_.channels, "channels");
    cfg.rowIndexBits = log2Exact(org_.rowsPerBank, "rows per bank");
    return cfg;
}

} // namespace moatsim::dram
