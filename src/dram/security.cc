#include "dram/security.hh"

#include <algorithm>
#include <cassert>

namespace moatsim::dram
{

SecurityMonitor::SecurityMonitor(uint32_t num_rows, uint32_t blast_radius)
    : blast_radius_(blast_radius),
      damage_(num_rows, 0),
      hammer_(num_rows, 0),
      peak_hammer_(num_rows, 0)
{
    assert(num_rows > 0 && blast_radius > 0);
}

void
SecurityMonitor::onActivate(RowId row)
{
    assert(row < hammer_.size());
    const uint32_t h = ++hammer_[row];
    if (h > peak_hammer_[row])
        peak_hammer_[row] = h;
    if (h > max_hammer_) {
        max_hammer_ = h;
        max_hammer_row_ = row;
    }

    const uint32_t n = static_cast<uint32_t>(damage_.size());
    const uint32_t lo =
        row >= blast_radius_ ? row - blast_radius_ : 0;
    const uint32_t hi =
        std::min<uint32_t>(n - 1, row + blast_radius_);
    for (uint32_t v = lo; v <= hi; ++v) {
        if (v == row)
            continue;
        const uint32_t d = ++damage_[v];
        if (d > max_damage_) {
            max_damage_ = d;
            max_damage_row_ = v;
        }
    }
}

void
SecurityMonitor::onRowRefreshed(RowId row)
{
    assert(row < damage_.size());
    damage_[row] = 0;
    // A refreshed row also stops being a live aggressor for its
    // neighbours only via their own refresh; its hammer count is the
    // count "without intervening mitigation or refresh" of itself.
    hammer_[row] = 0;
}

void
SecurityMonitor::onMitigated(RowId row)
{
    assert(row < hammer_.size());
    hammer_[row] = 0;
}

uint32_t
SecurityMonitor::damage(RowId row) const
{
    assert(row < damage_.size());
    return damage_[row];
}

uint32_t
SecurityMonitor::hammerCount(RowId row) const
{
    assert(row < hammer_.size());
    return hammer_[row];
}

uint32_t
SecurityMonitor::peakHammer(RowId row) const
{
    assert(row < peak_hammer_.size());
    return peak_hammer_[row];
}

void
SecurityMonitor::clear()
{
    std::fill(damage_.begin(), damage_.end(), 0);
    std::fill(hammer_.begin(), hammer_.end(), 0);
    std::fill(peak_hammer_.begin(), peak_hammer_.end(), 0);
    max_damage_ = 0;
    max_damage_row_ = kInvalidRow;
    max_hammer_ = 0;
    max_hammer_row_ = kInvalidRow;
}

} // namespace moatsim::dram
