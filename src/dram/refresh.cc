#include "dram/refresh.hh"

#include <cassert>

namespace moatsim::dram
{

RefreshScheduler::RefreshScheduler(const TimingParams &params,
                                   uint32_t max_postponed)
    : num_groups_(params.refreshGroups),
      rows_per_group_(params.rowsPerGroup()),
      max_postponed_(max_postponed)
{
    assert(num_groups_ > 0 && rows_per_group_ > 0);
}

std::pair<RowId, RowId>
RefreshScheduler::groupRows(uint32_t group) const
{
    assert(group < num_groups_);
    const RowId first = group * rows_per_group_;
    return {first, first + rows_per_group_ - 1};
}

uint32_t
RefreshScheduler::issueRef()
{
    const uint32_t group = next_group_;
    next_group_ = (next_group_ + 1) % num_groups_;
    if (owed_ > 0)
        --owed_;
    ++refs_issued_;
    return group;
}

bool
RefreshScheduler::postpone()
{
    if (owed_ >= max_postponed_)
        return false;
    ++owed_;
    return true;
}

} // namespace moatsim::dram
