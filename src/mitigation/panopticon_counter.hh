/**
 * @file
 * Counter-carrying Panopticon queue: the paper's Section-9
 * recommendations, implemented.
 *
 * The paper's post-mortem of the Jailbreak attack recommends that (a)
 * queue entries must carry a counter so activations received while a
 * row is enqueued are not invisible, and (b) entries should be
 * serviced by highest count rather than FIFO, with an ALERT once any
 * enqueued row's count crosses an ALERT threshold. This mitigator
 * implements exactly that repair of Panopticon, so the ablation bench
 * can show Jailbreak collapsing from 9x the threshold to roughly the
 * ALERT threshold.
 */

#ifndef MOATSIM_MITIGATION_PANOPTICON_COUNTER_HH
#define MOATSIM_MITIGATION_PANOPTICON_COUNTER_HH

#include <vector>

#include "mitigation/mitigator.hh"

namespace moatsim::mitigation
{

/** Configuration of the repaired (counter-carrying) Panopticon. */
struct PanopticonCounterConfig
{
    /** Queue insertion on crossing multiples of this (as original). */
    ActCount queueThreshold = 128;
    /** Queue entries per bank. */
    uint32_t queueEntries = 8;
    /**
     * ALERT once a row receives more than this many activations while
     * enqueued (i.e. at most queueThreshold + alertSlack activations
     * can land before the reactive mitigation).
     */
    ActCount alertSlack = 64;
    /** Victim rows on each side of an aggressor. */
    uint32_t blastRadius = 2;
};

/** Panopticon with per-entry counters and max-first service. */
class PanopticonCounterMitigator final : public IMitigator
{
  public:
    explicit PanopticonCounterMitigator(
        const PanopticonCounterConfig &config);

    void onActivate(RowId row, MitigationContext &ctx) override;
    void onRefCommand(MitigationContext &ctx) override;
    void onAutoRefresh(RowId first, RowId last,
                       MitigationContext &ctx) override;
    void onAlertAsserted(MitigationContext &ctx) override;
    void onRfm(MitigationContext &ctx) override;
    bool wantsAlert() const override;
    MitigatorKind kind() const override
    {
        return MitigatorKind::PanopticonCounter;
    }
    std::string name() const override;
    uint32_t sramBytesPerBank() const override;

    /** Current queue occupancy. */
    uint32_t queueSize() const
    {
        return static_cast<uint32_t>(queue_.size());
    }

  private:
    struct Entry
    {
        RowId row = kInvalidRow;
        ActCount count = 0;
    };

    /** Index of the max-count entry; queue_.size() when empty. */
    size_t maxIndex() const;

    PanopticonCounterConfig config_;
    std::vector<Entry> queue_;
    /** Gradual mitigation of the current max entry. */
    MitigationJob job_;
    /** Entry latched at ALERT assertion for the RFM. */
    Entry pending_rfm_;
    bool pending_valid_ = false;
    bool alert_requested_ = false;
};

} // namespace moatsim::mitigation

#endif // MOATSIM_MITIGATION_PANOPTICON_COUNTER_HH
