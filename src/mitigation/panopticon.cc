#include "mitigation/panopticon.hh"

#include <cassert>

#include "common/logging.hh"

namespace moatsim::mitigation
{

PanopticonMitigator::PanopticonMitigator(const PanopticonConfig &config)
    : config_(config)
{
    if (config_.queueThreshold == 0)
        fatal("PanopticonMitigator: queueThreshold must be positive");
    if (config_.queueEntries == 0)
        fatal("PanopticonMitigator: queueEntries must be positive");
}

RowId
PanopticonMitigator::queueAt(uint32_t index) const
{
    assert(index < queue_.size());
    return queue_[index];
}

void
PanopticonMitigator::insert(RowId row)
{
    if (queue_.size() < config_.queueEntries) {
        queue_.push_back(row);
        return;
    }
    // Queue full: assert ALERT and hold the insertion until an RFM
    // frees a slot.
    overflow_row_ = row;
    overflow_pending_ = true;
}

void
PanopticonMitigator::onActivate(RowId row, MitigationContext &ctx)
{
    // The counter is free-running; the row is (re-)queued every time
    // the counter crosses a multiple of the queueing threshold, i.e.
    // when the designated counter bit toggles.
    const ActCount count = ctx.counter(row);
    if (count % config_.queueThreshold == 0)
        insert(row);
}

void
PanopticonMitigator::onRefCommand(MitigationContext &ctx)
{
    if (config_.drainAllOnRef) {
        // Appendix B: repurpose the REF to fully mitigate up to
        // drainPerRef entries; entries still left arm ALERTs until the
        // queue is fully drained.
        for (uint32_t i = 0; i < config_.drainPerRef && !queue_.empty();
             ++i) {
            MitigationJob job(queue_.front(), config_.blastRadius,
                              /*reset_counter=*/false);
            queue_.pop_front();
            job.runToCompletion(ctx, /*reactive=*/false);
        }
        drain_alert_armed_ = !queue_.empty();
        return;
    }

    // Gradual policy: one victim-row refresh per REF; a queue entry is
    // consumed every 2*blastRadius REFs (4 tREFI by default).
    if (!head_job_.active() && !queue_.empty()) {
        head_job_ = MitigationJob(queue_.front(), config_.blastRadius,
                                  /*reset_counter=*/false);
        queue_.pop_front();
        if (overflow_pending_) {
            // A slot is free again; complete the held insertion.
            queue_.push_back(overflow_row_);
            overflow_pending_ = false;
        }
    }
    if (head_job_.active())
        head_job_.step(ctx, /*reactive=*/false);
}

void
PanopticonMitigator::onAutoRefresh(RowId first, RowId last,
                                   MitigationContext &ctx)
{
    // Panopticon counters are free-running and never reset.
    (void)first;
    (void)last;
    (void)ctx;
}

void
PanopticonMitigator::onRfm(MitigationContext &ctx)
{
    if (!queue_.empty()) {
        MitigationJob job(queue_.front(), config_.blastRadius,
                          /*reset_counter=*/false);
        queue_.pop_front();
        job.runToCompletion(ctx, /*reactive=*/true);
    }
    if (overflow_pending_ && queue_.size() < config_.queueEntries) {
        queue_.push_back(overflow_row_);
        overflow_pending_ = false;
    }
    if (drain_alert_armed_)
        drain_alert_armed_ = !queue_.empty();
}

bool
PanopticonMitigator::wantsAlert() const
{
    return overflow_pending_ || drain_alert_armed_;
}

std::string
PanopticonMitigator::name() const
{
    return std::string("Panopticon") +
           (config_.drainAllOnRef ? "-DrainAll" : "") +
           "(T=" + std::to_string(config_.queueThreshold) +
           ",Q=" + std::to_string(config_.queueEntries) + ")";
}

uint32_t
PanopticonMitigator::sramBytesPerBank() const
{
    // Two bytes of row address per queue entry.
    return 2 * config_.queueEntries;
}

} // namespace moatsim::mitigation
