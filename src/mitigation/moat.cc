#include "mitigation/moat.hh"

#include <cassert>

#include "common/logging.hh"

namespace moatsim::mitigation
{

uint32_t
MoatConfig::stepsPerRef() const
{
    // A full mitigation is 2*blastRadius victim refreshes plus one
    // counter reset; it must finish within the mitigation period.
    const uint32_t total_steps = 2 * blastRadius + 1;
    if (mitigationPeriodRefis == 0)
        return 0;
    return (total_steps + mitigationPeriodRefis - 1) / mitigationPeriodRefis;
}

MoatMitigator::MoatMitigator(const MoatConfig &config)
    : config_(config),
      tracker_(config.trackerEntries)
{
    if (config_.trackerEntries == 0)
        fatal("MoatMitigator: trackerEntries must be >= 1");
    if (config_.eth > config_.ath)
        fatal("MoatMitigator: ETH must not exceed ATH");
}

ActCount
MoatMitigator::effectiveCount(RowId row, const MitigationContext &ctx) const
{
    for (const auto &rep : replicas_) {
        if (rep.valid && rep.row == row)
            return rep.count;
    }
    return ctx.counter(row);
}

void
MoatMitigator::trackerInsert(RowId row, ActCount count)
{
    // Update in place when already tracked.
    for (auto &e : tracker_) {
        if (e.valid && e.row == row) {
            if (count > e.count)
                e.count = count;
            return;
        }
    }
    // Fill an invalid slot if one exists.
    for (auto &e : tracker_) {
        if (!e.valid) {
            e = {row, count, true};
            return;
        }
    }
    // Replace the minimum-count entry if the new row beats it (App. D).
    Entry *min_entry = &tracker_.front();
    for (auto &e : tracker_) {
        if (e.count < min_entry->count)
            min_entry = &e;
    }
    if (count > min_entry->count)
        *min_entry = {row, count, true};
}

bool
MoatMitigator::trackerPopMax(Entry &out)
{
    Entry *max_entry = nullptr;
    for (auto &e : tracker_) {
        if (e.valid && (max_entry == nullptr || e.count > max_entry->count))
            max_entry = &e;
    }
    if (max_entry == nullptr)
        return false;
    out = *max_entry;
    max_entry->valid = false;
    return true;
}

void
MoatMitigator::invalidateReplica(RowId row)
{
    for (auto &rep : replicas_) {
        if (rep.valid && rep.row == row)
            rep.valid = false;
    }
}

void
MoatMitigator::invalidateTracked(RowId row)
{
    // A mitigated row's counter is reset; any CTA entry still naming
    // it (e.g. inserted by an activation between ALERT assertion and
    // the RFM) is stale and must not trigger further mitigation.
    for (auto &e : tracker_) {
        if (e.valid && e.row == row)
            e.valid = false;
    }
}

void
MoatMitigator::onActivate(RowId row, MitigationContext &ctx)
{
    // Keep the SRAM replica in sync: it shadows the in-array counter,
    // which was already incremented by the bank.
    for (auto &rep : replicas_) {
        if (rep.valid && rep.row == row)
            ++rep.count;
    }

    const ActCount eff = effectiveCount(row, ctx);
    if (eff > config_.eth)
        trackerInsert(row, eff);
    if (eff > config_.ath)
        alert_requested_ = true;
}

void
MoatMitigator::onRefCommand(MitigationContext &ctx)
{
    if (config_.mitigationPeriodRefis == 0)
        return; // ALERT-only configuration (Appendix C, "none").

    // Advance the in-flight CMA mitigation by this REF's quota.
    const uint32_t quota = config_.stepsPerRef();
    for (uint32_t i = 0; i < quota && cma_job_.active(); ++i) {
        if (cma_job_.step(ctx, /*reactive=*/false)) {
            invalidateReplica(cma_job_.aggressor());
            invalidateTracked(cma_job_.aggressor());
        }
    }

    ++refs_seen_;
    if (refs_seen_ % config_.mitigationPeriodRefis != 0)
        return;

    // Mitigation-period boundary: latch the best candidate from the
    // tracker (CTA) into the CMA and start its gradual mitigation.
    assert(!cma_job_.active() &&
           "mitigation job must finish within its period");
    Entry best;
    if (trackerPopMax(best)) {
        cma_job_ = MitigationJob(best.row, config_.blastRadius,
                                 /*reset_counter=*/true);
    }
}

void
MoatMitigator::onAutoRefresh(RowId first, RowId last, MitigationContext &ctx)
{
    if (!config_.resetOnRefresh)
        return;

    if (config_.safeReset) {
        // Preserve the counters of the last two rows of this group in
        // SRAM before resetting (Section 4.3): their victims in the
        // next group are not refreshed yet.
        const RowId second_last = last > first ? last - 1 : first;
        replicas_[0] = {second_last, effectiveCount(second_last, ctx), true};
        replicas_[1] = {last, effectiveCount(last, ctx), true};
    }
    for (RowId r = first; r <= last; ++r)
        ctx.resetCounter(r);
}

void
MoatMitigator::onAlertAsserted(MitigationContext &ctx)
{
    (void)ctx;
    // CTA -> CMA latch at assertion time (Section 4.2): the rows to be
    // mitigated by the upcoming RFMs are fixed now, so activations in
    // the 180 ns window cannot redirect the mitigation. The tracker
    // (CTA) and the in-flight proactive mitigation (CMA) are
    // invalidated. Stale latched entries from a mismatched
    // tracker-size/ABO-level configuration are dropped.
    pending_rfm_.clear();
    for (auto &e : tracker_) {
        if (e.valid) {
            pending_rfm_.push_back(e);
            e.valid = false;
        }
    }
    cma_job_.cancel();
    alert_requested_ = false;
}

void
MoatMitigator::onRfm(MitigationContext &ctx)
{
    // Mitigate the highest-count entry latched at assertion. A bank
    // whose tracker was empty at assertion contributes nothing to this
    // ALERT: the design stores no other addresses to mitigate.
    Entry victim;
    bool have = false;
    if (!pending_rfm_.empty()) {
        auto best = pending_rfm_.begin();
        for (auto it = pending_rfm_.begin(); it != pending_rfm_.end();
             ++it) {
            if (it->count > best->count)
                best = it;
        }
        victim = *best;
        pending_rfm_.erase(best);
        have = true;
    }
    if (have) {
        MitigationJob job(victim.row, config_.blastRadius,
                          /*reset_counter=*/true);
        job.runToCompletion(ctx, /*reactive=*/true);
        invalidateReplica(victim.row);
        invalidateTracked(victim.row);
    }

    // Keep requesting ALERTs while tracked rows remain above ATH.
    alert_requested_ = false;
    for (const auto &e : tracker_) {
        if (e.valid && e.count > config_.ath)
            alert_requested_ = true;
    }
}

bool
MoatMitigator::wantsAlert() const
{
    return alert_requested_;
}

std::string
MoatMitigator::name() const
{
    return "MOAT-L" + std::to_string(config_.trackerEntries) +
           "(ETH=" + std::to_string(config_.eth) +
           ",ATH=" + std::to_string(config_.ath) + ")";
}

uint32_t
MoatMitigator::sramBytesPerBank() const
{
    // Section 6.5 / Appendix D: 3 bytes per tracker entry (row address
    // + counter), 2 bytes for the CMA register, and 2 bytes for the
    // two safe-reset replica counters.
    return 3 * config_.trackerEntries + 2 + (config_.safeReset ? 2 : 0);
}

bool
MoatMitigator::trackerValid() const
{
    for (const auto &e : tracker_) {
        if (e.valid)
            return true;
    }
    return false;
}

ActCount
MoatMitigator::maxTrackedCount() const
{
    ActCount best = 0;
    for (const auto &e : tracker_) {
        if (e.valid && e.count > best)
            best = e.count;
    }
    return best;
}

RowId
MoatMitigator::pendingAlertRow() const
{
    ActCount best = 0;
    RowId row = kInvalidRow;
    for (const auto &e : pending_rfm_) {
        if (e.count >= best) {
            best = e.count;
            row = e.row;
        }
    }
    return row;
}

RowId
MoatMitigator::maxTrackedRow() const
{
    ActCount best = 0;
    RowId row = kInvalidRow;
    for (const auto &e : tracker_) {
        if (e.valid && e.count >= best) {
            best = e.count;
            row = e.row;
        }
    }
    return row;
}

} // namespace moatsim::mitigation
