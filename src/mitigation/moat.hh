/**
 * @file
 * MOAT: Mitigating Rowhammer with Dual Thresholds (Section 4, Appendix
 * C and D of the paper).
 *
 * MOAT tracks a small number of candidate aggressor rows per bank (one
 * for the default MOAT-L1; L for MOAT-L2/L4) and uses two thresholds:
 *
 *  - ETH (Eligibility Threshold): a row becomes a candidate for the
 *    proactive mitigation performed under REF only once its activation
 *    count exceeds ETH; this bounds mitigation energy.
 *  - ATH (ALERT Threshold): once any counter exceeds ATH, MOAT asserts
 *    an ALERT so the row is mitigated reactively via RFM.
 *
 * The tracker (the CTA register for L1) always holds the highest-count
 * row(s) seen since the last mitigation or ALERT. Once per mitigation
 * period (default 5 tREFI: 4 victim refreshes plus one counter reset)
 * the best candidate is latched into the CMA register and mitigated
 * gradually, one row operation per REF.
 *
 * Counters are reset when their row is auto-refreshed, using the safe
 * scheme of Section 4.3: the counters of the last two rows of the
 * refreshed group are preserved in two SRAM replica registers until the
 * next group's refresh makes those rows safe.
 */

#ifndef MOATSIM_MITIGATION_MOAT_HH
#define MOATSIM_MITIGATION_MOAT_HH

#include <vector>

#include "mitigation/mitigator.hh"

namespace moatsim::mitigation
{

/** Configuration of one MOAT instance. */
struct MoatConfig
{
    /** Eligibility threshold for proactive mitigation (paper: ATH/2). */
    ActCount eth = 32;
    /** ALERT threshold (paper default 64). */
    ActCount ath = 64;
    /** Tracker entries; equals the ABO level for MOAT-L (App. D). */
    uint32_t trackerEntries = 1;
    /**
     * Mitigation period in tREFI. A full mitigation is 4 victim
     * refreshes + 1 counter reset = 5 row operations, spread over the
     * period. 0 disables proactive mitigation (ALERT-only, App. C).
     */
    uint32_t mitigationPeriodRefis = 5;
    /** Reset PRAC counters when their row is auto-refreshed (Sec 4.3). */
    bool resetOnRefresh = true;
    /**
     * Use the safe reset scheme (SRAM replicas for the last two rows of
     * the refreshed group). Disabling reproduces the 2T vulnerability
     * of Figure 7(a) and exists for the security experiments only.
     */
    bool safeReset = true;
    /** Victim rows on each side of an aggressor. */
    uint32_t blastRadius = 2;

    /** Row operations per REF needed to finish a job within the period. */
    uint32_t stepsPerRef() const;
};

/** The MOAT mitigator (per bank). */
class MoatMitigator final : public IMitigator
{
  public:
    explicit MoatMitigator(const MoatConfig &config);

    void onActivate(RowId row, MitigationContext &ctx) override;
    void onRefCommand(MitigationContext &ctx) override;
    void onAutoRefresh(RowId first, RowId last,
                       MitigationContext &ctx) override;
    void onAlertAsserted(MitigationContext &ctx) override;
    void onRfm(MitigationContext &ctx) override;
    bool wantsAlert() const override;
    MitigatorKind kind() const override { return MitigatorKind::Moat; }
    std::string name() const override;
    uint32_t sramBytesPerBank() const override;

    const MoatConfig &config() const { return config_; }

    /** Whether the tracker currently holds a valid candidate. */
    bool trackerValid() const;

    /** Highest tracked count (0 when the tracker is empty). */
    ActCount maxTrackedCount() const;

    /** Row of the highest tracked count (kInvalidRow when empty). */
    RowId maxTrackedRow() const;

    /** Highest-count row latched for the in-flight ALERT's RFMs
     *  (kInvalidRow when none). */
    RowId pendingAlertRow() const;

  private:
    /** One tracker entry (the CTA register for L1). */
    struct Entry
    {
        RowId row = kInvalidRow;
        ActCount count = 0;
        bool valid = false;
    };

    /** SRAM replica of a recently-reset row counter (Section 4.3). */
    struct Replica
    {
        RowId row = kInvalidRow;
        ActCount count = 0;
        bool valid = false;
    };

    /** Effective counter of a row: the SRAM replica if present. */
    ActCount effectiveCount(RowId row, const MitigationContext &ctx) const;

    /** Insert/update a row in the tracker per the MOAT policy. */
    void trackerInsert(RowId row, ActCount count);

    /** Remove and return the highest-count entry; false when empty. */
    bool trackerPopMax(Entry &out);

    /** Drop a replica if it refers to @p row (after counter reset). */
    void invalidateReplica(RowId row);

    /** Drop stale tracker entries naming a just-mitigated row. */
    void invalidateTracked(RowId row);

    MoatConfig config_;
    std::vector<Entry> tracker_;
    /** Entries latched at ALERT assertion, awaiting their RFMs. */
    std::vector<Entry> pending_rfm_;
    Replica replicas_[2];
    /** Gradual mitigation of the CMA row. */
    MitigationJob cma_job_;
    /** REF commands seen (for the mitigation period boundary). */
    uint64_t refs_seen_ = 0;
    /** Whether any tracked count exceeds ATH (latched ALERT request). */
    bool alert_requested_ = false;
};

} // namespace moatsim::mitigation

#endif // MOATSIM_MITIGATION_MOAT_HH
