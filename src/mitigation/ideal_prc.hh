/**
 * @file
 * Idealized per-row-counter tracker without ALERT (Section 2.5).
 *
 * This is the purely transparent scheme whose tolerated threshold is
 * bounded by feinting attacks (Table 2): activation counting for every
 * row, and every k tREFI the row with the globally highest counter is
 * mitigated (victims refreshed, counter reset). It has perfect
 * tracking, yet because mitigation time is bounded, an adversary can
 * still drive a row to B*H_N activations (B = ACTs per mitigation
 * period, N = periods in the refresh window). It exists as the
 * baseline that motivates reactive (ABO) mitigation.
 */

#ifndef MOATSIM_MITIGATION_IDEAL_PRC_HH
#define MOATSIM_MITIGATION_IDEAL_PRC_HH

#include "mitigation/mitigator.hh"

namespace moatsim::mitigation
{

/** Configuration of the idealized per-row-counter tracker. */
struct IdealPrcConfig
{
    /** Mitigation period: one aggressor per this many tREFI. */
    uint32_t mitigationPeriodRefis = 4;
    /** Ignore rows below this counter value (energy filter). */
    ActCount minCount = 1;
    /** Victim rows on each side of an aggressor. */
    uint32_t blastRadius = 2;
};

/** Idealized per-row-counter mitigator (per bank). */
class IdealPrcMitigator final : public IMitigator
{
  public:
    explicit IdealPrcMitigator(const IdealPrcConfig &config);

    void onActivate(RowId row, MitigationContext &ctx) override;
    void onRefCommand(MitigationContext &ctx) override;
    void onAutoRefresh(RowId first, RowId last,
                       MitigationContext &ctx) override;
    void onRfm(MitigationContext &ctx) override;
    bool wantsAlert() const override { return false; }
    MitigatorKind kind() const override { return MitigatorKind::IdealPrc; }
    std::string name() const override;
    uint32_t sramBytesPerBank() const override;

  private:
    IdealPrcConfig config_;
    uint64_t refs_seen_ = 0;
    /** Incrementally maintained argmax over the PRAC counters. */
    RowId max_row_ = kInvalidRow;
    ActCount max_count_ = 0;
};

} // namespace moatsim::mitigation

#endif // MOATSIM_MITIGATION_IDEAL_PRC_HH
