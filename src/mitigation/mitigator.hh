/**
 * @file
 * In-DRAM Rowhammer mitigator interface.
 *
 * A mitigator is the per-bank logic a DRAM vendor implements on top of
 * the PRAC+ABO framework: it observes activations (with PRAC counter
 * values), gets one proactive work slot per REF command, may request an
 * ALERT, and performs reactive mitigation during RFM commands. The
 * SubChannel owns one mitigator per bank and provides it a
 * MitigationContext for touching DRAM state.
 */

#ifndef MOATSIM_MITIGATION_MITIGATOR_HH
#define MOATSIM_MITIGATION_MITIGATOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace moatsim::dram
{
class Bank;
class SecurityMonitor;
} // namespace moatsim::dram

namespace moatsim::mitigation
{

/**
 * Sealed tag of the built-in mitigator designs. The per-ACT hooks are
 * the simulator's hottest calls, so the SubChannel resolves each
 * bank's kind once at construction and dispatches through a switch of
 * direct (devirtualized) calls into the five registry designs. Custom
 * is the extensibility fallback: any IMitigator subclass outside the
 * registry keeps working through the virtual interface, just without
 * the sealed fast path.
 */
enum class MitigatorKind : uint8_t
{
    Moat,
    Panopticon,
    PanopticonCounter,
    IdealPrc,
    Null,
    Custom,
};

/** Counters of mitigation work, aggregated per bank. */
struct MitigationStats
{
    /** Aggressor rows fully mitigated during REF (proactive). */
    uint64_t proactiveMitigations = 0;
    /** Aggressor rows fully mitigated during RFM (reactive/ALERT). */
    uint64_t alertMitigations = 0;
    /** Individual victim-row refreshes performed. */
    uint64_t victimRefreshes = 0;
    /** PRAC counter resets performed as mitigation steps. */
    uint64_t counterResets = 0;

    /** Total aggressor mitigations (both kinds). */
    uint64_t totalMitigations() const
    {
        return proactiveMitigations + alertMitigations;
    }
};

/**
 * Capability handle a mitigator uses to read counters and perform
 * refresh work on its bank. Wraps the bank, the ground-truth security
 * monitor, and the work counters so that every implementation reports
 * work uniformly.
 */
class MitigationContext
{
  public:
    MitigationContext(dram::Bank &bank, dram::SecurityMonitor &security,
                      MitigationStats &stats);

    /**
     * Context without a ground-truth monitor (@p security may be
     * null). Pure performance runs elide the oracle's storage
     * entirely; the security-facing accounting calls then become
     * no-ops, which is unobservable -- nothing reads the oracle when
     * it is disabled.
     */
    MitigationContext(dram::Bank &bank, dram::SecurityMonitor *security,
                      MitigationStats &stats);

    /** PRAC counter of a row. */
    ActCount counter(RowId row) const;

    /** Rows in the bank. */
    uint32_t numRows() const;

    /** Refresh one victim row (charges restored, damage cleared). */
    void refreshVictim(RowId row);

    /** Reset one row's PRAC counter (the aggressor, after mitigation). */
    void resetCounter(RowId row);

    /** Mark an aggressor's mitigation as complete (security accounting). */
    void markMitigated(RowId row, bool reactive);

  private:
    dram::Bank &bank_;
    /** Null when the oracle is disabled (performance runs). */
    dram::SecurityMonitor *security_;
    MitigationStats &stats_;
};

/**
 * A mitigation of one aggressor row, broken into single-row-refresh
 * steps so that gradual (one victim per REF) and atomic (whole
 * aggressor per RFM) mitigation share one implementation.
 *
 * Steps: refresh each victim within the blast radius (skipping rows
 * outside the bank), then optionally reset the aggressor's PRAC
 * counter. The final step marks the aggressor mitigated.
 */
class MitigationJob
{
  public:
    MitigationJob() = default;

    /**
     * @param aggressor Row being mitigated.
     * @param blast_radius Victims on each side to refresh.
     * @param reset_counter Whether a counter-reset step is appended.
     */
    MitigationJob(RowId aggressor, uint32_t blast_radius, bool reset_counter);

    /** Whether a job is loaded and unfinished. */
    bool active() const { return active_; }

    /** Aggressor row of the active job. */
    RowId aggressor() const { return aggressor_; }

    /**
     * Perform one single-row operation.
     * @param reactive Whether this runs under an RFM (for stats).
     * @return true when the job completed with this step.
     */
    bool step(MitigationContext &ctx, bool reactive);

    /** Run all remaining steps at once (RFM-style atomic mitigation). */
    void runToCompletion(MitigationContext &ctx, bool reactive);

    /** Abandon the job without completing it (MOAT invalidates the CMA
     *  when an ALERT is serviced). */
    void cancel() { active_ = false; }

  private:
    RowId aggressor_ = kInvalidRow;
    uint32_t blast_radius_ = 0;
    bool reset_counter_ = false;
    bool active_ = false;
    /** Next step index: victims first, then optional counter reset. */
    uint32_t next_step_ = 0;
};

/** Abstract in-DRAM Rowhammer mitigator (one instance per bank). */
class IMitigator
{
  public:
    virtual ~IMitigator() = default;

    /**
     * Observe an activation. Called after the PRAC counter increment;
     * the new value is readable via ctx.counter(row).
     */
    virtual void onActivate(RowId row, MitigationContext &ctx) = 0;

    /**
     * One REF command. Called after the auto-refresh bookkeeping, once
     * per tREFI; the mitigator may perform up to its per-REF quota of
     * single-row operations here.
     */
    virtual void onRefCommand(MitigationContext &ctx) = 0;

    /**
     * Auto-refresh of the row range [first, last] is being performed.
     * Counter-reset-on-refresh policies act here.
     */
    virtual void onAutoRefresh(RowId first, RowId last,
                               MitigationContext &ctx) = 0;

    /**
     * An ALERT was asserted on the channel (by this bank or another).
     * Designs that latch their candidate at assertion time (MOAT's
     * CTA -> CMA transfer, Section 4.2) do so here; activations in the
     * 180 ns window between assertion and the RFMs then no longer
     * change which row gets mitigated. Default: no-op.
     */
    virtual void onAlertAsserted(MitigationContext &ctx) { (void)ctx; }

    /**
     * One RFM command during an ALERT. The mitigator should complete
     * reactive mitigation of (up to) one aggressor row.
     */
    virtual void onRfm(MitigationContext &ctx) = 0;

    /** Whether the mitigator currently needs an ALERT. */
    virtual bool wantsAlert() const = 0;

    /**
     * Sealed dispatch tag, resolved once per bank at SubChannel
     * construction (never on the hot path). Registry designs return
     * their own kind; anything else inherits Custom and dispatches
     * virtually.
     */
    virtual MitigatorKind kind() const { return MitigatorKind::Custom; }

    /** Human-readable design name. */
    virtual std::string name() const = 0;

    /** SRAM cost of this design in bytes per bank (Section 6.5). */
    virtual uint32_t sramBytesPerBank() const = 0;
};

} // namespace moatsim::mitigation

#endif // MOATSIM_MITIGATION_MITIGATOR_HH
