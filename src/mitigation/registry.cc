#include "mitigation/registry.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"
#include "mitigation/null.hh"

namespace moatsim::mitigation
{

namespace
{

std::string
boolText(bool v)
{
    return v ? "true" : "false";
}

/** Strict unsigned-integer parse; false on any non-digit content. */
bool
parseUInt(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
    }
    out = std::strtoull(text.c_str(), nullptr, 10);
    return true;
}

/** Lenient boolean parse: true/false/1/0. */
bool
parseBool(const std::string &text, bool &out)
{
    if (text == "true" || text == "1") {
        out = true;
        return true;
    }
    if (text == "false" || text == "0") {
        out = false;
        return true;
    }
    return false;
}

std::vector<MitigatorDescriptor>
buildDescriptors()
{
    std::vector<MitigatorDescriptor> d;

    {
        const MoatConfig def;
        MitigatorDescriptor moat;
        moat.name = "moat";
        moat.summary = "MOAT dual-threshold tracker (Section 4): proactive "
                       "mitigation above ETH, ALERT above ATH";
        moat.params = {
            {"ath", ParamType::UInt, std::to_string(def.ath),
             "ALERT threshold"},
            {"eth", ParamType::UInt, std::to_string(def.eth),
             "eligibility threshold for proactive mitigation"},
            {"entries", ParamType::UInt, std::to_string(def.trackerEntries),
             "tracker entries (MOAT-L: equals the ABO level)"},
            {"period", ParamType::UInt,
             std::to_string(def.mitigationPeriodRefis),
             "mitigation period in tREFI (0 = ALERT-only)"},
            {"reset-on-refresh", ParamType::Bool,
             boolText(def.resetOnRefresh),
             "reset PRAC counters on auto-refresh (Section 4.3)"},
            {"safe-reset", ParamType::Bool, boolText(def.safeReset),
             "SRAM replicas for the last two refreshed rows"},
            {"blast", ParamType::UInt, std::to_string(def.blastRadius),
             "victim rows refreshed on each side of an aggressor"},
        };
        moat.create = [](const MitigatorSpec &spec) {
            return std::make_unique<MoatMitigator>(moatConfigOf(spec));
        };
        d.push_back(std::move(moat));
    }

    {
        const PanopticonConfig def;
        MitigatorDescriptor pano;
        pano.name = "panopticon";
        pano.summary = "Panopticon address-only FIFO queue (Section 3); "
                       "ALERT when an insertion finds the queue full";
        pano.params = {
            {"threshold", ParamType::UInt, std::to_string(def.queueThreshold),
             "queue insertion on crossing multiples of this count"},
            {"entries", ParamType::UInt, std::to_string(def.queueEntries),
             "FIFO entries per bank"},
            {"drain-all", ParamType::Bool, boolText(def.drainAllOnRef),
             "Appendix-B Drain-All-Entries-on-REF policy"},
            {"drain-per-ref", ParamType::UInt,
             std::to_string(def.drainPerRef),
             "aggressors a drain-all REF fully mitigates"},
            {"blast", ParamType::UInt, std::to_string(def.blastRadius),
             "victim rows refreshed on each side of an aggressor"},
        };
        pano.create = [](const MitigatorSpec &spec) {
            return std::make_unique<PanopticonMitigator>(
                panopticonConfigOf(spec));
        };
        d.push_back(std::move(pano));
    }

    {
        const PanopticonCounterConfig def;
        MitigatorDescriptor repaired;
        repaired.name = "panopticon-counter";
        repaired.summary = "Panopticon repaired per Section 9: queue entries "
                           "carry counters, served max-first";
        repaired.params = {
            {"threshold", ParamType::UInt, std::to_string(def.queueThreshold),
             "queue insertion on crossing multiples of this count"},
            {"entries", ParamType::UInt, std::to_string(def.queueEntries),
             "queue entries per bank"},
            {"slack", ParamType::UInt, std::to_string(def.alertSlack),
             "in-queue activations tolerated before an ALERT"},
            {"blast", ParamType::UInt, std::to_string(def.blastRadius),
             "victim rows refreshed on each side of an aggressor"},
        };
        repaired.create = [](const MitigatorSpec &spec) {
            return std::make_unique<PanopticonCounterMitigator>(
                panopticonCounterConfigOf(spec));
        };
        d.push_back(std::move(repaired));
    }

    {
        const IdealPrcConfig def;
        MitigatorDescriptor prc;
        prc.name = "ideal-prc";
        prc.summary = "idealized per-row-counter tracker without ALERT "
                      "(Section 2.5); mitigates the global argmax";
        prc.params = {
            {"period", ParamType::UInt,
             std::to_string(def.mitigationPeriodRefis),
             "one aggressor mitigated per this many tREFI"},
            {"min-count", ParamType::UInt, std::to_string(def.minCount),
             "ignore rows below this counter value"},
            {"blast", ParamType::UInt, std::to_string(def.blastRadius),
             "victim rows refreshed on each side of an aggressor"},
        };
        prc.create = [](const MitigatorSpec &spec) {
            return std::make_unique<IdealPrcMitigator>(idealPrcConfigOf(spec));
        };
        d.push_back(std::move(prc));
    }

    {
        MitigatorDescriptor none;
        none.name = "null";
        none.summary = "PRAC counters with no mitigation logic; the "
                       "no-ALERT normalization baseline";
        none.params = {};
        none.create = [](const MitigatorSpec &) {
            return std::make_unique<NullMitigator>();
        };
        d.push_back(std::move(none));
    }

    return d;
}

const std::vector<MitigatorDescriptor> &
descriptors()
{
    static const std::vector<MitigatorDescriptor> all = buildDescriptors();
    return all;
}

const MitigatorDescriptor *
findDescriptor(const std::string &name)
{
    for (const auto &d : descriptors()) {
        if (d.name == name)
            return &d;
    }
    return nullptr;
}

const ParamInfo *
findParam(const MitigatorDescriptor &desc, const std::string &key)
{
    for (const auto &p : desc.params) {
        if (p.key == key)
            return &p;
    }
    return nullptr;
}

std::string
knownNamesText()
{
    std::string out;
    for (const auto &d : descriptors()) {
        if (!out.empty())
            out += ", ";
        out += d.name;
    }
    return out;
}

std::string
knownKeysText(const MitigatorDescriptor &desc)
{
    if (desc.params.empty())
        return "(none)";
    std::string out;
    for (const auto &p : desc.params) {
        if (!out.empty())
            out += ", ";
        out += p.key;
    }
    return out;
}

} // namespace

std::string
MitigatorSpec::describe() const
{
    std::string out = name_;
    bool first = true;
    for (const auto &[k, v] : params_) {
        out += first ? ":" : ",";
        out += k + "=" + v;
        first = false;
    }
    return out;
}

bool
MitigatorSpec::hasParam(const std::string &key) const
{
    return std::any_of(params_.begin(), params_.end(),
                       [&](const auto &kv) { return kv.first == key; });
}

uint64_t
MitigatorSpec::paramUInt(const std::string &key, uint64_t def) const
{
    for (const auto &[k, v] : params_) {
        if (k == key) {
            uint64_t out = 0;
            if (!parseUInt(v, out))
                panic("MitigatorSpec holds non-integer value '" + v +
                      "' for key '" + key + "'");
            return out;
        }
    }
    return def;
}

bool
MitigatorSpec::paramBool(const std::string &key, bool def) const
{
    for (const auto &[k, v] : params_) {
        if (k == key) {
            bool out = false;
            if (!parseBool(v, out))
                panic("MitigatorSpec holds non-boolean value '" + v +
                      "' for key '" + key + "'");
            return out;
        }
    }
    return def;
}

std::unique_ptr<IMitigator>
MitigatorSpec::create() const
{
    const MitigatorDescriptor *desc = findDescriptor(name_);
    if (desc == nullptr)
        fatal("unknown mitigator '" + name_ + "' (known: " +
              knownNamesText() + ")");
    return desc->create(*this);
}

std::function<std::unique_ptr<IMitigator>(BankId)>
MitigatorSpec::factory() const
{
    // One shared resolved factory per factory() call: the per-bank
    // invocations copy a typed config struct instead of re-parsing the
    // spec's key=value strings.
    auto resolved = std::make_shared<const BankMitigatorFactory>(*this);
    return [resolved](BankId bank) { return resolved->make(bank); };
}

BankMitigatorFactory::BankMitigatorFactory(const MitigatorSpec &spec)
    : spec_(spec)
{
    if (spec.name() == "moat") {
        kind_ = MitigatorKind::Moat;
        config_ = moatConfigOf(spec);
    } else if (spec.name() == "panopticon") {
        kind_ = MitigatorKind::Panopticon;
        config_ = panopticonConfigOf(spec);
    } else if (spec.name() == "panopticon-counter") {
        kind_ = MitigatorKind::PanopticonCounter;
        config_ = panopticonCounterConfigOf(spec);
    } else if (spec.name() == "ideal-prc") {
        kind_ = MitigatorKind::IdealPrc;
        config_ = idealPrcConfigOf(spec);
    } else if (spec.name() == "null") {
        kind_ = MitigatorKind::Null;
    }
}

std::unique_ptr<IMitigator>
BankMitigatorFactory::make(BankId bank) const
{
    (void)bank; // registry designs are bank-agnostic
    switch (kind_) {
    case MitigatorKind::Moat:
        return std::make_unique<MoatMitigator>(std::get<MoatConfig>(config_));
    case MitigatorKind::Panopticon:
        return std::make_unique<PanopticonMitigator>(
            std::get<PanopticonConfig>(config_));
    case MitigatorKind::PanopticonCounter:
        return std::make_unique<PanopticonCounterMitigator>(
            std::get<PanopticonCounterConfig>(config_));
    case MitigatorKind::IdealPrc:
        return std::make_unique<IdealPrcMitigator>(
            std::get<IdealPrcConfig>(config_));
    case MitigatorKind::Null:
        return std::make_unique<NullMitigator>();
    case MitigatorKind::Custom:
        break;
    }
    return spec_.create();
}

uint32_t
MitigatorSpec::sramBytesPerBank() const
{
    return create()->sramBytesPerBank();
}

MitigatorSpec
Registry::parse(const std::string &text)
{
    std::string error;
    auto spec = tryParse(text, &error);
    if (!spec)
        fatal(error);
    return *spec;
}

std::optional<MitigatorSpec>
Registry::tryParse(const std::string &text, std::string *error)
{
    const auto fail =
        [&](const std::string &msg) -> std::optional<MitigatorSpec> {
        if (error != nullptr)
            *error = msg;
        return std::nullopt;
    };

    const size_t colon = text.find(':');
    const std::string name = text.substr(0, colon);
    if (name.empty())
        return fail("empty mitigator name in '" + text + "' (known: " +
                    knownNamesText() + ")");

    const MitigatorDescriptor *desc = findDescriptor(name);
    if (desc == nullptr)
        return fail("unknown mitigator '" + name + "' (known: " +
                    knownNamesText() + ")");

    MitigatorSpec spec;
    spec.name_ = name;
    spec.params_.clear();
    if (colon == std::string::npos)
        return spec;

    // Split the "k=v,k=v" tail and validate each pair.
    std::vector<std::pair<std::string, std::string>> given;
    const std::string tail = text.substr(colon + 1);
    size_t pos = 0;
    while (pos <= tail.size()) {
        size_t comma = tail.find(',', pos);
        if (comma == std::string::npos)
            comma = tail.size();
        const std::string item = tail.substr(pos, comma - pos);
        pos = comma + 1;

        const size_t eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size()) {
            return fail("mitigator '" + name + "': malformed parameter '" +
                        item + "' (expected key=value)");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        const ParamInfo *info = findParam(*desc, key);
        if (info == nullptr)
            return fail("mitigator '" + name + "': unknown key '" + key +
                        "' (known keys: " + knownKeysText(*desc) + ")");
        for (const auto &[k, v] : given) {
            if (k == key)
                return fail("mitigator '" + name + "': duplicate key '" +
                            key + "'");
        }
        if (info->type == ParamType::UInt) {
            uint64_t parsed = 0;
            if (!parseUInt(value, parsed))
                return fail("mitigator '" + name + "': key '" + key +
                            "' expects an unsigned integer, got '" + value +
                            "'");
            // Every config field is 32-bit; reject instead of wrapping.
            if (parsed > std::numeric_limits<uint32_t>::max())
                return fail("mitigator '" + name + "': key '" + key +
                            "' value " + value + " is out of range (max " +
                            std::to_string(
                                std::numeric_limits<uint32_t>::max()) +
                            ")");
        } else {
            bool parsed = false;
            if (!parseBool(value, parsed))
                return fail("mitigator '" + name + "': key '" + key +
                            "' expects true/false, got '" + value + "'");
        }
        given.emplace_back(key, value);
    }

    // Canonical order: the descriptor's parameter order.
    for (const auto &p : desc->params) {
        for (const auto &[k, v] : given) {
            if (k == p.key)
                spec.params_.emplace_back(k, v);
        }
    }
    return spec;
}

bool
Registry::known(const std::string &name)
{
    return findDescriptor(name) != nullptr;
}

std::vector<std::string>
Registry::names()
{
    std::vector<std::string> out;
    for (const auto &d : descriptors())
        out.push_back(d.name);
    return out;
}

const MitigatorDescriptor &
Registry::descriptor(const std::string &name)
{
    const MitigatorDescriptor *desc = findDescriptor(name);
    if (desc == nullptr)
        fatal("unknown mitigator '" + name + "' (known: " +
              knownNamesText() + ")");
    return *desc;
}

MoatConfig
moatConfigOf(const MitigatorSpec &spec)
{
    if (spec.name() != "moat")
        fatal("expected a 'moat' spec, got '" + spec.describe() + "'");
    MoatConfig cfg;
    cfg.ath = static_cast<ActCount>(spec.paramUInt("ath", cfg.ath));
    cfg.eth = static_cast<ActCount>(spec.paramUInt("eth", cfg.eth));
    cfg.trackerEntries =
        static_cast<uint32_t>(spec.paramUInt("entries", cfg.trackerEntries));
    cfg.mitigationPeriodRefis = static_cast<uint32_t>(
        spec.paramUInt("period", cfg.mitigationPeriodRefis));
    cfg.resetOnRefresh =
        spec.paramBool("reset-on-refresh", cfg.resetOnRefresh);
    cfg.safeReset = spec.paramBool("safe-reset", cfg.safeReset);
    cfg.blastRadius =
        static_cast<uint32_t>(spec.paramUInt("blast", cfg.blastRadius));
    return cfg;
}

PanopticonConfig
panopticonConfigOf(const MitigatorSpec &spec)
{
    if (spec.name() != "panopticon")
        fatal("expected a 'panopticon' spec, got '" + spec.describe() + "'");
    PanopticonConfig cfg;
    cfg.queueThreshold =
        static_cast<ActCount>(spec.paramUInt("threshold", cfg.queueThreshold));
    cfg.queueEntries =
        static_cast<uint32_t>(spec.paramUInt("entries", cfg.queueEntries));
    cfg.drainAllOnRef = spec.paramBool("drain-all", cfg.drainAllOnRef);
    cfg.drainPerRef = static_cast<uint32_t>(
        spec.paramUInt("drain-per-ref", cfg.drainPerRef));
    cfg.blastRadius =
        static_cast<uint32_t>(spec.paramUInt("blast", cfg.blastRadius));
    return cfg;
}

PanopticonCounterConfig
panopticonCounterConfigOf(const MitigatorSpec &spec)
{
    if (spec.name() != "panopticon-counter")
        fatal("expected a 'panopticon-counter' spec, got '" +
              spec.describe() + "'");
    PanopticonCounterConfig cfg;
    cfg.queueThreshold =
        static_cast<ActCount>(spec.paramUInt("threshold", cfg.queueThreshold));
    cfg.queueEntries =
        static_cast<uint32_t>(spec.paramUInt("entries", cfg.queueEntries));
    cfg.alertSlack =
        static_cast<ActCount>(spec.paramUInt("slack", cfg.alertSlack));
    cfg.blastRadius =
        static_cast<uint32_t>(spec.paramUInt("blast", cfg.blastRadius));
    return cfg;
}

IdealPrcConfig
idealPrcConfigOf(const MitigatorSpec &spec)
{
    if (spec.name() != "ideal-prc")
        fatal("expected an 'ideal-prc' spec, got '" + spec.describe() + "'");
    IdealPrcConfig cfg;
    cfg.mitigationPeriodRefis = static_cast<uint32_t>(
        spec.paramUInt("period", cfg.mitigationPeriodRefis));
    cfg.minCount =
        static_cast<ActCount>(spec.paramUInt("min-count", cfg.minCount));
    cfg.blastRadius =
        static_cast<uint32_t>(spec.paramUInt("blast", cfg.blastRadius));
    return cfg;
}

} // namespace moatsim::mitigation
