/**
 * @file
 * Panopticon in-DRAM mitigation (Section 3 and Appendix B of the
 * paper; original design from Bennett et al., DRAMSec 2021).
 *
 * Each bank keeps an 8-entry FIFO queue of row addresses. A row enters
 * the queue whenever its free-running PRAC counter toggles the
 * designated threshold bit, i.e. whenever the counter crosses a
 * multiple of the queueing threshold (e.g. 128). Only the row address
 * is stored -- no counter value -- which is exactly the weakness the
 * Jailbreak pattern exploits. ALERT is asserted when an insertion finds
 * the queue full.
 *
 * Two mitigation policies are modelled:
 *  - Gradual (the paper's default): one victim-row refresh per REF, so
 *    one queue entry is consumed every 4 tREFI.
 *  - Drain-All-Entries-on-REF (Appendix B): a REF repurposes its time
 *    to fully mitigate up to two queue entries and issues ALERTs until
 *    the queue is empty; broken by refresh postponement (Figure 16).
 */

#ifndef MOATSIM_MITIGATION_PANOPTICON_HH
#define MOATSIM_MITIGATION_PANOPTICON_HH

#include <deque>

#include "mitigation/mitigator.hh"

namespace moatsim::mitigation
{

/** Configuration of one Panopticon instance. */
struct PanopticonConfig
{
    /** Queueing threshold: insert on crossing multiples of this. */
    ActCount queueThreshold = 128;
    /** FIFO entries per bank. */
    uint32_t queueEntries = 8;
    /** Use the Appendix-B Drain-All-Entries-on-REF policy. */
    bool drainAllOnRef = false;
    /** Aggressors a drain-all REF can fully mitigate (Appendix B: 2). */
    uint32_t drainPerRef = 2;
    /** Victim rows on each side of an aggressor. */
    uint32_t blastRadius = 2;
};

/** The Panopticon mitigator (per bank). */
class PanopticonMitigator final : public IMitigator
{
  public:
    explicit PanopticonMitigator(const PanopticonConfig &config);

    void onActivate(RowId row, MitigationContext &ctx) override;
    void onRefCommand(MitigationContext &ctx) override;
    void onAutoRefresh(RowId first, RowId last,
                       MitigationContext &ctx) override;
    void onRfm(MitigationContext &ctx) override;
    bool wantsAlert() const override;
    MitigatorKind kind() const override
    {
        return MitigatorKind::Panopticon;
    }
    std::string name() const override;
    uint32_t sramBytesPerBank() const override;

    const PanopticonConfig &config() const { return config_; }

    /** Current queue occupancy (for tests and attack pacing). */
    uint32_t queueSize() const { return static_cast<uint32_t>(queue_.size()); }

    /** Row at a queue position, 0 = head (oldest). */
    RowId queueAt(uint32_t index) const;

  private:
    /** Insert a row; sets the overflow state when the queue is full. */
    void insert(RowId row);

    PanopticonConfig config_;
    std::deque<RowId> queue_;
    /** Gradual mitigation of the queue head. */
    MitigationJob head_job_;
    /** Insertion that found the queue full, waiting for an RFM. */
    RowId overflow_row_ = kInvalidRow;
    bool overflow_pending_ = false;
    /** Drain-all mode: a REF left entries behind; ALERT until empty. */
    bool drain_alert_armed_ = false;
};

} // namespace moatsim::mitigation

#endif // MOATSIM_MITIGATION_PANOPTICON_HH
