#include "mitigation/panopticon_counter.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moatsim::mitigation
{

PanopticonCounterMitigator::PanopticonCounterMitigator(
    const PanopticonCounterConfig &config)
    : config_(config)
{
    if (config_.queueThreshold == 0 || config_.queueEntries == 0)
        fatal("PanopticonCounterMitigator: bad configuration");
    if (config_.alertSlack == 0)
        fatal("PanopticonCounterMitigator: zero ALERT slack would "
              "alert on every enqueued activation");
    queue_.reserve(config_.queueEntries);
}

size_t
PanopticonCounterMitigator::maxIndex() const
{
    size_t best = queue_.size();
    for (size_t i = 0; i < queue_.size(); ++i) {
        if (best == queue_.size() || queue_[i].count > queue_[best].count)
            best = i;
    }
    return best;
}

void
PanopticonCounterMitigator::onActivate(RowId row, MitigationContext &ctx)
{
    // Enqueued rows keep counting activations received since they
    // were enqueued: this is the repair that defeats Jailbreak (the
    // original design forgot these activations).
    for (auto &e : queue_) {
        if (e.row == row) {
            ++e.count;
            if (e.count > config_.alertSlack)
                alert_requested_ = true;
            return;
        }
    }

    const ActCount count = ctx.counter(row);
    if (count % config_.queueThreshold != 0)
        return;
    if (queue_.size() < config_.queueEntries) {
        queue_.push_back({row, 0});
        return;
    }
    // Overflow still alerts, as in the original design.
    alert_requested_ = true;
}

void
PanopticonCounterMitigator::onRefCommand(MitigationContext &ctx)
{
    // Gradual proactive mitigation, one victim per REF, but always of
    // the highest-count entry (max-first service, recommendation (b)).
    if (!job_.active() && !queue_.empty()) {
        const size_t idx = maxIndex();
        job_ = MitigationJob(queue_[idx].row, config_.blastRadius,
                             /*reset_counter=*/false);
        queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(idx));
    }
    if (job_.active())
        job_.step(ctx, /*reactive=*/false);
}

void
PanopticonCounterMitigator::onAutoRefresh(RowId first, RowId last,
                                          MitigationContext &ctx)
{
    (void)first;
    (void)last;
    (void)ctx; // free-running counters, like the original
}

void
PanopticonCounterMitigator::onAlertAsserted(MitigationContext &ctx)
{
    (void)ctx;
    const size_t idx = maxIndex();
    if (idx < queue_.size()) {
        pending_rfm_ = queue_[idx];
        pending_valid_ = true;
        queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(idx));
    }
    alert_requested_ = false;
}

void
PanopticonCounterMitigator::onRfm(MitigationContext &ctx)
{
    if (pending_valid_) {
        MitigationJob job(pending_rfm_.row, config_.blastRadius,
                          /*reset_counter=*/false);
        job.runToCompletion(ctx, /*reactive=*/true);
        pending_valid_ = false;
    }
    for (const auto &e : queue_) {
        if (e.count > config_.alertSlack)
            alert_requested_ = true;
    }
}

bool
PanopticonCounterMitigator::wantsAlert() const
{
    return alert_requested_;
}

std::string
PanopticonCounterMitigator::name() const
{
    return "Panopticon+Ctr(T=" + std::to_string(config_.queueThreshold) +
           ",Q=" + std::to_string(config_.queueEntries) +
           ",slack=" + std::to_string(config_.alertSlack) + ")";
}

uint32_t
PanopticonCounterMitigator::sramBytesPerBank() const
{
    // Row address (2 B) + counter (1 B) per entry.
    return 3 * config_.queueEntries;
}

} // namespace moatsim::mitigation
