#include "mitigation/ideal_prc.hh"

#include "common/logging.hh"

namespace moatsim::mitigation
{

IdealPrcMitigator::IdealPrcMitigator(const IdealPrcConfig &config)
    : config_(config)
{
    if (config_.mitigationPeriodRefis == 0)
        fatal("IdealPrcMitigator: mitigationPeriodRefis must be >= 1");
}

void
IdealPrcMitigator::onActivate(RowId row, MitigationContext &ctx)
{
    // Track the argmax incrementally: counters only grow between
    // mitigations, and the mitigated row's counter resets to zero, at
    // which point we rescan lazily in onRefCommand.
    const ActCount count = ctx.counter(row);
    if (count > max_count_) {
        max_count_ = count;
        max_row_ = row;
    }
}

void
IdealPrcMitigator::onRefCommand(MitigationContext &ctx)
{
    ++refs_seen_;
    if (refs_seen_ % config_.mitigationPeriodRefis != 0)
        return;
    if (max_row_ == kInvalidRow || max_count_ < config_.minCount)
        return;

    // Mitigate the globally highest-count row within this REF (the
    // idealized scheme's mitigation is as fast as the period allows).
    MitigationJob job(max_row_, config_.blastRadius,
                      /*reset_counter=*/true);
    job.runToCompletion(ctx, /*reactive=*/false);

    // Rescan for the new argmax. The scan is conceptually free for the
    // idealized scheme; the simulator pays O(rows) host time only.
    max_row_ = kInvalidRow;
    max_count_ = 0;
    const uint32_t n = ctx.numRows();
    for (RowId r = 0; r < n; ++r) {
        const ActCount c = ctx.counter(r);
        if (c > max_count_) {
            max_count_ = c;
            max_row_ = r;
        }
    }
}

void
IdealPrcMitigator::onAutoRefresh(RowId first, RowId last,
                                 MitigationContext &ctx)
{
    // Reset counters on the row's own refresh; safe-reset subtleties
    // are MOAT-specific and out of scope for this idealized baseline.
    for (RowId r = first; r <= last; ++r) {
        ctx.resetCounter(r);
        if (r == max_row_) {
            max_row_ = kInvalidRow;
            max_count_ = 0;
        }
    }
}

void
IdealPrcMitigator::onRfm(MitigationContext &ctx)
{
    (void)ctx; // Never alerts, so never receives meaningful RFMs.
}

std::string
IdealPrcMitigator::name() const
{
    return "IdealPRC(k=" + std::to_string(config_.mitigationPeriodRefis) +
           ")";
}

uint32_t
IdealPrcMitigator::sramBytesPerBank() const
{
    return 0; // Counters live in the DRAM array (PRAC).
}

} // namespace moatsim::mitigation
