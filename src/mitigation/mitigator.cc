#include "mitigation/mitigator.hh"

#include <cassert>

#include "dram/bank.hh"
#include "dram/security.hh"

namespace moatsim::mitigation
{

MitigationContext::MitigationContext(dram::Bank &bank,
                                     dram::SecurityMonitor &security,
                                     MitigationStats &stats)
    : bank_(bank), security_(&security), stats_(stats)
{
}

MitigationContext::MitigationContext(dram::Bank &bank,
                                     dram::SecurityMonitor *security,
                                     MitigationStats &stats)
    : bank_(bank), security_(security), stats_(stats)
{
}

ActCount
MitigationContext::counter(RowId row) const
{
    return bank_.counter(row);
}

uint32_t
MitigationContext::numRows() const
{
    return bank_.numRows();
}

void
MitigationContext::refreshVictim(RowId row)
{
    if (security_ != nullptr)
        security_->onRowRefreshed(row);
    ++stats_.victimRefreshes;
}

void
MitigationContext::resetCounter(RowId row)
{
    bank_.resetCounter(row);
    ++stats_.counterResets;
}

void
MitigationContext::markMitigated(RowId row, bool reactive)
{
    if (security_ != nullptr)
        security_->onMitigated(row);
    if (reactive)
        ++stats_.alertMitigations;
    else
        ++stats_.proactiveMitigations;
}

MitigationJob::MitigationJob(RowId aggressor, uint32_t blast_radius,
                             bool reset_counter)
    : aggressor_(aggressor),
      blast_radius_(blast_radius),
      reset_counter_(reset_counter),
      active_(true)
{
    assert(blast_radius_ > 0);
}

bool
MitigationJob::step(MitigationContext &ctx, bool reactive)
{
    assert(active_);

    // Enumerate victims -radius..-1, +1..+radius (clipped to the bank)
    // to find the step's target. Steps beyond the victim list are the
    // optional counter reset.
    const uint32_t num_rows = ctx.numRows();
    uint32_t total_victims = 0;
    RowId victim_for_step = kInvalidRow;
    for (int32_t off = -static_cast<int32_t>(blast_radius_);
         off <= static_cast<int32_t>(blast_radius_); ++off) {
        if (off == 0)
            continue;
        const int64_t v = static_cast<int64_t>(aggressor_) + off;
        if (v < 0 || v >= static_cast<int64_t>(num_rows))
            continue;
        if (total_victims == next_step_)
            victim_for_step = static_cast<RowId>(v);
        ++total_victims;
    }

    if (next_step_ < total_victims) {
        ctx.refreshVictim(victim_for_step);
        ++next_step_;
        if (next_step_ == total_victims && !reset_counter_) {
            ctx.markMitigated(aggressor_, reactive);
            active_ = false;
            return true;
        }
        return false;
    }

    // All victims refreshed; the final step is the counter reset.
    if (reset_counter_)
        ctx.resetCounter(aggressor_);
    ctx.markMitigated(aggressor_, reactive);
    active_ = false;
    return true;
}

void
MitigationJob::runToCompletion(MitigationContext &ctx, bool reactive)
{
    while (active_) {
        if (step(ctx, reactive))
            break;
    }
}

} // namespace moatsim::mitigation
