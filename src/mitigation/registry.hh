/**
 * @file
 * String-keyed mitigator registry and the MitigatorSpec experiment API.
 *
 * The paper's claims are comparative -- MOAT vs. Panopticon vs. an
 * idealized per-row-counter design on the same PRAC+ABO substrate --
 * so the experiment layer must be able to name any design, not just
 * MOAT. Every design registers a Descriptor (name, summary, typed
 * key=value parameters); callers select one with a compact text form
 *
 *     name[:key=value,...]        e.g.  "moat:ath=128,eth=64"
 *
 * which parses into a MitigatorSpec: a validated, canonical,
 * round-trippable (parse -> describe -> parse) selection that converts
 * into the per-bank factory a SubChannel consumes. The registry is the
 * single source of truth for parameter names, defaults, and the
 * Section-6.5 SRAM cost reported by `moatsim list-mitigators` and the
 * storage bench.
 *
 * Registered designs: "moat", "panopticon", "panopticon-counter",
 * "ideal-prc", "null".
 */

#ifndef MOATSIM_MITIGATION_REGISTRY_HH
#define MOATSIM_MITIGATION_REGISTRY_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "mitigation/ideal_prc.hh"
#include "mitigation/mitigator.hh"
#include "mitigation/moat.hh"
#include "mitigation/panopticon.hh"
#include "mitigation/panopticon_counter.hh"

namespace moatsim::mitigation
{

/** Value type of one descriptor parameter. */
enum class ParamType
{
    UInt,
    Bool,
};

/** One typed key=value parameter of a registered design. */
struct ParamInfo
{
    /** Key as written on the command line (e.g. "ath"). */
    std::string key;
    ParamType type = ParamType::UInt;
    /** Canonical text of the default value (from the config struct). */
    std::string defaultValue;
    /** One-line description for list-mitigators. */
    std::string doc;
};

/**
 * A validated mitigator selection: a registered design name plus the
 * explicitly-overridden parameters. Obtain one from Registry::parse()
 * (or default-construct for the paper's default MOAT) and hand it to
 * PerfRunner, Experiment, or runAttack; factory() adapts it to the
 * SubChannel constructor.
 */
class MitigatorSpec
{
  public:
    /** The paper's default design: "moat" with default parameters. */
    MitigatorSpec() = default;

    /** Registered design name. */
    const std::string &name() const { return name_; }

    /** Canonical re-parseable text form: name[:k=v,...]. */
    std::string describe() const;

    /** Whether @p key was explicitly set. */
    bool hasParam(const std::string &key) const;

    /** Integer parameter value, or @p def when not explicitly set. */
    uint64_t paramUInt(const std::string &key, uint64_t def) const;

    /** Boolean parameter value, or @p def when not explicitly set. */
    bool paramBool(const std::string &key, bool def) const;

    /** Build one mitigator instance of this design. */
    std::unique_ptr<IMitigator> create() const;

    /**
     * Per-bank factory in the shape SubChannel consumes
     * (SubChannel::MitigatorFactory is this exact function type).
     */
    std::function<std::unique_ptr<IMitigator>(BankId)> factory() const;

    /**
     * SRAM cost in bytes per bank (Section 6.5) of this design at
     * these parameters, taken from the design's own implementation so
     * benches and list-mitigators never duplicate the constants.
     */
    uint32_t sramBytesPerBank() const;

    bool operator==(const MitigatorSpec &other) const
    {
        return name_ == other.name_ && params_ == other.params_;
    }

  private:
    friend class Registry;

    std::string name_ = "moat";
    /** Explicit overrides, in the descriptor's parameter order. */
    std::vector<std::pair<std::string, std::string>> params_;
};

/**
 * Reusable per-bank mitigator factory.
 *
 * MitigatorSpec::create() re-derives the design's typed configuration
 * from the spec's key=value strings on every call, which a sweep pays
 * once per bank per cell. This factory resolves the spec once -- the
 * design kind and its parsed config struct -- and then stamps out
 * instances with no further string work, so constructing a 64-bank
 * System costs 64 struct copies instead of 64 re-parses. Designs
 * outside the registry's sealed set fall back to spec.create().
 */
class BankMitigatorFactory
{
  public:
    explicit BankMitigatorFactory(const MitigatorSpec &spec);

    /** Build the mitigator instance of one bank. */
    std::unique_ptr<IMitigator> make(BankId bank) const;

    /** The sealed dispatch tag of the resolved design. */
    MitigatorKind kind() const { return kind_; }

  private:
    MitigatorKind kind_ = MitigatorKind::Custom;
    /** The typed config, resolved once (monostate for null/custom). */
    std::variant<std::monostate, MoatConfig, PanopticonConfig,
                 PanopticonCounterConfig, IdealPrcConfig>
        config_;
    /** Fallback spec for non-sealed designs. */
    MitigatorSpec spec_;
};

/** Registration record of one mitigator design. */
struct MitigatorDescriptor
{
    std::string name;
    /** One-line summary for list-mitigators. */
    std::string summary;
    /** Accepted parameters with defaults. */
    std::vector<ParamInfo> params;
    /** Build an instance from a validated spec. */
    std::function<std::unique_ptr<IMitigator>(const MitigatorSpec &)> create;
};

/** The static registry of mitigator designs. */
class Registry
{
  public:
    /**
     * Parse "name[:key=value,...]" into a validated spec; calls
     * fatal() with a message naming the offending token on error.
     */
    static MitigatorSpec parse(const std::string &text);

    /**
     * Parse without terminating: returns std::nullopt on error and,
     * when @p error is non-null, stores the diagnostic there.
     */
    static std::optional<MitigatorSpec>
    tryParse(const std::string &text, std::string *error = nullptr);

    /** Whether @p name is a registered design. */
    static bool known(const std::string &name);

    /** All registered design names, in registration order. */
    static std::vector<std::string> names();

    /** Descriptor of a registered design; fatal() when unknown. */
    static const MitigatorDescriptor &descriptor(const std::string &name);
};

/**
 * Config extraction: rebuild the typed config struct a spec denotes.
 * Single parsing point shared by the factories and the attack drivers
 * (which genuinely consume typed configs). Each fatal()s when the
 * spec names a different design. Code *constructing* a request goes
 * the other way: build the spec text and Registry::parse() it --
 * MitigatorSpec is the one request type (see sim::RunRequest).
 */
MoatConfig moatConfigOf(const MitigatorSpec &spec);
PanopticonConfig panopticonConfigOf(const MitigatorSpec &spec);
PanopticonCounterConfig panopticonCounterConfigOf(const MitigatorSpec &spec);
IdealPrcConfig idealPrcConfigOf(const MitigatorSpec &spec);

} // namespace moatsim::mitigation

#endif // MOATSIM_MITIGATION_REGISTRY_HH
