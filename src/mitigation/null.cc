#include "mitigation/null.hh"

namespace moatsim::mitigation
{

void
NullMitigator::onActivate(RowId row, MitigationContext &ctx)
{
    (void)row;
    (void)ctx;
}

void
NullMitigator::onRefCommand(MitigationContext &ctx)
{
    (void)ctx;
}

void
NullMitigator::onAutoRefresh(RowId first, RowId last, MitigationContext &ctx)
{
    (void)first;
    (void)last;
    (void)ctx;
}

void
NullMitigator::onRfm(MitigationContext &ctx)
{
    (void)ctx;
}

} // namespace moatsim::mitigation
