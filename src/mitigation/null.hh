/**
 * @file
 * No-op mitigator: a DRAM chip with PRAC counters but no Rowhammer
 * mitigation logic. Baseline for performance normalization (the paper
 * normalizes to a system that never incurs ALERTs) and ground truth
 * for "how bad can it get" security experiments.
 */

#ifndef MOATSIM_MITIGATION_NULL_HH
#define MOATSIM_MITIGATION_NULL_HH

#include "mitigation/mitigator.hh"

namespace moatsim::mitigation
{

/** Mitigator that never mitigates and never alerts. */
class NullMitigator final : public IMitigator
{
  public:
    void onActivate(RowId row, MitigationContext &ctx) override;
    void onRefCommand(MitigationContext &ctx) override;
    void onAutoRefresh(RowId first, RowId last,
                       MitigationContext &ctx) override;
    void onRfm(MitigationContext &ctx) override;
    bool wantsAlert() const override { return false; }
    MitigatorKind kind() const override { return MitigatorKind::Null; }
    std::string name() const override { return "none"; }
    uint32_t sramBytesPerBank() const override { return 0; }
};

} // namespace moatsim::mitigation

#endif // MOATSIM_MITIGATION_NULL_HH
