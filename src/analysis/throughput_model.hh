/**
 * @file
 * Analytical throughput models for ALERT-based performance attacks
 * (Section 7 and Appendix D of the paper).
 *
 * All models measure memory throughput as activations per unit time,
 * with one tRC as the unit (one ACT per tRC is the single-bank
 * baseline, Section 7.1).
 */

#ifndef MOATSIM_ANALYSIS_THROUGHPUT_MODEL_HH
#define MOATSIM_ANALYSIS_THROUGHPUT_MODEL_HH

#include <cstdint>

#include "dram/timing.hh"

namespace moatsim::analysis
{

/** Throughput of a pattern relative to the no-ALERT baseline. */
struct ThroughputResult
{
    /** ACTs performed per attack cycle. */
    double actsPerCycle = 0.0;
    /** Time units (tRC) per attack cycle. */
    double unitsPerCycle = 0.0;
    /** Relative throughput (1.0 = no loss). */
    double relative = 0.0;
    /** Throughput loss fraction (1 - relative). */
    double lossFraction = 0.0;
};

/**
 * Relative throughput while the channel is saturated with back-to-back
 * ALERTs (the 0.36x floor of Section 7.1 for level 1): M ACTs per
 * (tA2A + tRC) window versus M * tRC without ALERTs.
 */
ThroughputResult continuousAlertFloor(const dram::TimingParams &timing,
                                      int level);

/**
 * Single-bank kernel hammering @p pool_rows rows in a circular pattern
 * with ALERT threshold @p ath (Figure 13): each row needs ATH+1 ACTs to
 * alert, each ALERT costs tALERT + tRC.
 */
ThroughputResult singleBankKernel(const dram::TimingParams &timing,
                                  uint32_t ath, uint32_t pool_rows,
                                  int level);

/**
 * Torrent-of-Staggered-ALERT model (Figure 12): @p num_banks banks each
 * prime pool_rows rows to ATH in parallel, then fire their ALERTs
 * staggered so no other bank has a mitigable row during any ALERT.
 * Model: priming runs at full parallel bank throughput; every ALERT
 * stalls the whole sub-channel with only the inter-ALERT ACTs running.
 */
ThroughputResult tsaAttack(const dram::TimingParams &timing, uint32_t ath,
                           uint32_t pool_rows, uint32_t num_banks,
                           int level);

} // namespace moatsim::analysis

#endif // MOATSIM_ANALYSIS_THROUGHPUT_MODEL_HH
