#include "analysis/storage_model.hh"

namespace moatsim::analysis
{

StorageOverhead
moatStorage(uint32_t tracker_entries, uint32_t banks_per_chip)
{
    StorageOverhead s;
    s.trackerEntries = tracker_entries;
    s.bytesPerBank = 3 * tracker_entries + 2 + 2;
    s.bytesPerChip = s.bytesPerBank * banks_per_chip;
    return s;
}

StorageOverhead
moatStorage(uint32_t tracker_entries, const dram::DeviceModel &device)
{
    return moatStorage(tracker_entries, device.banksPerSubchannel());
}

EnergyOverhead
mitigationEnergy(uint64_t mitigation_row_ops, uint64_t baseline_acts,
                 double act_energy_share)
{
    EnergyOverhead e;
    e.activationEnergyShare = act_energy_share;
    if (baseline_acts > 0) {
        e.activationIncrease = static_cast<double>(mitigation_row_ops) /
                               static_cast<double>(baseline_acts);
    }
    e.dramEnergyIncrease = e.activationIncrease * act_energy_share;
    return e;
}

} // namespace moatsim::analysis
