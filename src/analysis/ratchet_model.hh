/**
 * @file
 * Closed-form model of the Ratchet attack (Appendix A of the paper).
 *
 * The Ratchet attack primes N rows to ATH and then uses the activations
 * permitted between consecutive ALERTs (M = 3 + L per window) to keep
 * raising the surviving rows while ALERTs mitigate them one batch at a
 * time. Appendix A bounds the maximum count any row can reach:
 *
 *   H(N)       = N * ATH * tRC + (N / L) * tA2A      (total attack time)
 *   Nc         = max N with H(N) <= tREFW - refresh time
 *   TRH_safe   = ATH + log_{M/3}(Nc) + M
 *
 * This TRH_safe is the Rowhammer threshold safely tolerated by MOAT for
 * a given ATH and ABO level (Figures 10 and 15, Table 7).
 */

#ifndef MOATSIM_ANALYSIS_RATCHET_MODEL_HH
#define MOATSIM_ANALYSIS_RATCHET_MODEL_HH

#include <cstdint>

#include "common/time.hh"
#include "dram/timing.hh"

namespace moatsim::analysis
{

/** Inputs/outputs of the Appendix-A Ratchet bound. */
struct RatchetBound
{
    /** ALERT threshold being analyzed. */
    uint32_t ath = 0;
    /** ABO mitigation level (1, 2, or 4). */
    int level = 1;
    /** ACTs per ALERT-to-ALERT window (M = 3 + L). */
    uint32_t actsPerWindow = 0;
    /** Minimum ALERT-to-ALERT time (tA2A). */
    Time alertToAlert = 0;
    /** Largest pool size that fits in the refresh window (Nc). */
    uint64_t maxPoolRows = 0;
    /** The safely tolerated Rowhammer threshold (TRH_safe). */
    double safeTrh = 0.0;
};

/**
 * Evaluate the Appendix-A bound.
 *
 * @param timing DRAM timing parameters.
 * @param ath ALERT threshold.
 * @param level ABO mitigation level (1, 2, or 4); the generalized MOAT
 *              design mitigates `level` aggressor rows per ALERT.
 */
RatchetBound ratchetBound(const dram::TimingParams &timing, uint32_t ath,
                          int level);

/**
 * TRH tolerated with an idealized stop-the-world, instantaneous ALERT
 * (Section 4.4): approximately ATH + 2.
 */
uint32_t stopTheWorldTrh(uint32_t ath);

} // namespace moatsim::analysis

#endif // MOATSIM_ANALYSIS_RATCHET_MODEL_HH
