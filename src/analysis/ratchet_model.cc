#include "analysis/ratchet_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace moatsim::analysis
{

RatchetBound
ratchetBound(const dram::TimingParams &timing, uint32_t ath, int level)
{
    if (level != 1 && level != 2 && level != 4)
        fatal("ratchetBound: ABO level must be 1, 2, or 4");

    RatchetBound b;
    b.ath = ath;
    b.level = level;
    b.actsPerWindow = timing.actsPerAlertWindow(level);
    b.alertToAlert = timing.alertToAlert(level);

    // H(N) = N*ATH*tRC + (N/L)*tA2A grows linearly in N; solve for the
    // largest N with H(N) <= availableWindow.
    const double window = static_cast<double>(timing.availableWindow());
    const double per_row =
        static_cast<double>(ath) * static_cast<double>(timing.tRC) +
        static_cast<double>(b.alertToAlert) / static_cast<double>(level);
    b.maxPoolRows = per_row > 0
                        ? static_cast<uint64_t>(window / per_row)
                        : 0;

    // TRH_safe = ATH + log_{M/3}(Nc) + M. The log term is the number of
    // halving-like rounds the ratchet can sustain (each ALERT window
    // multiplies the effective pool shrinkage by M/3); the final M ACTs
    // can all land on the last surviving row during its own ALERT.
    const double m = static_cast<double>(b.actsPerWindow);
    double log_term = 0.0;
    if (b.maxPoolRows > 1)
        log_term = std::log(static_cast<double>(b.maxPoolRows)) /
                   std::log(m / 3.0);
    b.safeTrh = static_cast<double>(ath) + log_term + m;
    return b;
}

uint32_t
stopTheWorldTrh(uint32_t ath)
{
    return ath + 2;
}

} // namespace moatsim::analysis
