/**
 * @file
 * SRAM-storage and DRAM-energy overhead models (Section 6.5 and
 * Appendix D of the paper).
 */

#ifndef MOATSIM_ANALYSIS_STORAGE_MODEL_HH
#define MOATSIM_ANALYSIS_STORAGE_MODEL_HH

#include <cstdint>

#include "dram/device.hh"

namespace moatsim::analysis
{

/** SRAM cost of a MOAT configuration. */
struct StorageOverhead
{
    /** Tracker entries (== ABO level for MOAT-L). */
    uint32_t trackerEntries = 1;
    /** Bytes per bank. */
    uint32_t bytesPerBank = 0;
    /** Bytes per chip (banksPerChip banks). */
    uint32_t bytesPerChip = 0;
};

/**
 * Evaluate MOAT's SRAM need: 3 bytes per tracker entry, 2 bytes for
 * the CMA register, and 2 bytes of safe-reset replica counters. The
 * per-chip figure multiplies by an explicit bank count -- there is no
 * baked-in "32"; geometry comes from the device model (the overload
 * below), so the cost report is correct for every named grade.
 */
StorageOverhead moatStorage(uint32_t tracker_entries,
                            uint32_t banks_per_chip);

/** As above with the bank count taken from @p device's geometry (the
 *  single source of truth for banks per chip). */
StorageOverhead moatStorage(uint32_t tracker_entries,
                            const dram::DeviceModel &device);

/** DRAM energy impact of extra mitigation activations. */
struct EnergyOverhead
{
    /** Extra row operations divided by baseline activations. */
    double activationIncrease = 0.0;
    /** Share of total DRAM energy spent on activation (paper: <20%). */
    double activationEnergyShare = 0.2;
    /** Resulting increase in total DRAM energy. */
    double dramEnergyIncrease = 0.0;
};

/**
 * Evaluate the energy model of Section 6.5: mitigation row operations
 * (victim refreshes + counter resets) add activations; total DRAM
 * energy scales by the activation energy share.
 */
EnergyOverhead mitigationEnergy(uint64_t mitigation_row_ops,
                                uint64_t baseline_acts,
                                double act_energy_share = 0.2);

} // namespace moatsim::analysis

#endif // MOATSIM_ANALYSIS_STORAGE_MODEL_HH
