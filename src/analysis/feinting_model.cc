#include "analysis/feinting_model.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace moatsim::analysis
{

FeintingBound
feintingBound(const dram::TimingParams &timing, uint32_t period_refis)
{
    if (period_refis == 0)
        fatal("feintingBound: period must be >= 1 tREFI");

    FeintingBound b;
    b.periodRefis = period_refis;
    b.actsPerPeriod =
        static_cast<uint64_t>(timing.actsPerRefi()) * period_refis;

    // One round per mitigation period within the usable window.
    const Time window = timing.availableWindow();
    b.rounds = static_cast<uint64_t>(
        window / (static_cast<Time>(period_refis) * timing.tREFI));

    b.trhBound = static_cast<double>(b.actsPerPeriod) * harmonic(b.rounds);
    return b;
}

} // namespace moatsim::analysis
