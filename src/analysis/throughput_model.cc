#include "analysis/throughput_model.hh"

#include "common/logging.hh"

namespace moatsim::analysis
{

namespace
{

double
td(Time t)
{
    return static_cast<double>(t);
}

} // namespace

ThroughputResult
continuousAlertFloor(const dram::TimingParams &timing, int level)
{
    // M ACTs fit in every minimum ALERT-to-ALERT window (Section 7.1:
    // 4 ACTs per 582 ns for level 1 -> 0.36x).
    ThroughputResult r;
    r.actsPerCycle = timing.actsPerAlertWindow(level);
    r.unitsPerCycle = td(timing.alertToAlert(level)) / td(timing.tRC);
    r.relative = r.actsPerCycle / r.unitsPerCycle;
    r.lossFraction = 1.0 - r.relative;
    return r;
}

ThroughputResult
singleBankKernel(const dram::TimingParams &timing, uint32_t ath,
                 uint32_t pool_rows, int level)
{
    if (pool_rows == 0)
        fatal("singleBankKernel: pool must be non-empty");

    // Each pool row needs ATH+1 ACTs to trigger its ALERT; M of those
    // ACTs per ALERT ride for free inside the ALERT window itself.
    const double m = timing.actsPerAlertWindow(level);
    const double p = pool_rows;
    const double acts = p * (ath + 1.0);

    ThroughputResult r;
    r.actsPerCycle = acts;
    const double cycle_time =
        (acts - m * p) * td(timing.tRC) + p * td(timing.alertToAlert(level));
    r.unitsPerCycle = cycle_time / td(timing.tRC);
    r.relative = acts / r.unitsPerCycle;
    r.lossFraction = 1.0 - r.relative;
    return r;
}

ThroughputResult
tsaAttack(const dram::TimingParams &timing, uint32_t ath,
          uint32_t pool_rows, uint32_t num_banks, int level)
{
    if (pool_rows == 0 || num_banks == 0)
        fatal("tsaAttack: pool and banks must be non-empty");

    // Priming runs on all banks in parallel (one ACT per tRC per bank),
    // so it costs pool * ATH ACT slots of time; the staggered ALERT
    // torrent then serializes pool * banks ALERT windows during which
    // the channel runs at the continuous-ALERT floor.
    const double prime_time =
        static_cast<double>(pool_rows) * ath * td(timing.tRC);
    const double alert_time = static_cast<double>(pool_rows) * num_banks *
                              td(timing.alertToAlert(level));
    const double cycle = prime_time + alert_time;
    const double alert_fraction = alert_time / cycle;
    const double floor = continuousAlertFloor(timing, level).relative;

    ThroughputResult r;
    r.relative = (1.0 - alert_fraction) + alert_fraction * floor;
    r.lossFraction = 1.0 - r.relative;
    r.unitsPerCycle = cycle / td(timing.tRC);
    r.actsPerCycle = r.relative * r.unitsPerCycle *
                     static_cast<double>(num_banks);
    return r;
}

} // namespace moatsim::analysis
