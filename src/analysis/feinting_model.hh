/**
 * @file
 * Analytical feinting bound for transparent per-row-counter schemes
 * (Section 2.5, Table 2 of the paper; attack from ProTRR).
 *
 * A purely transparent scheme mitigates one aggressor row every k
 * tREFI, always picking the highest-count row. The optimal feinting
 * adversary keeps a pool of N rows (N = periods available in the
 * refresh window), spreads the B = ACTs-per-period budget evenly over
 * the surviving pool each period, and sacrifices one row per period to
 * the mitigation. The surviving row accumulates
 *
 *   TRH_bound = B * (1/N + 1/(N-1) + ... + 1/1) = B * H_N
 *
 * activations, which is the threshold bound of Table 2.
 */

#ifndef MOATSIM_ANALYSIS_FEINTING_MODEL_HH
#define MOATSIM_ANALYSIS_FEINTING_MODEL_HH

#include <cstdint>

#include "dram/timing.hh"

namespace moatsim::analysis
{

/** Result of the feinting bound evaluation. */
struct FeintingBound
{
    /** Mitigation period in tREFI (k). */
    uint32_t periodRefis = 0;
    /** ACT budget per mitigation period (B = 67 * k). */
    uint64_t actsPerPeriod = 0;
    /** Pool size / rounds available in the window (N). */
    uint64_t rounds = 0;
    /** The feinting-based TRH bound (B * H_N). */
    double trhBound = 0.0;
};

/**
 * Evaluate the feinting bound for a mitigation rate of one aggressor
 * row per @p period_refis tREFI.
 */
FeintingBound feintingBound(const dram::TimingParams &timing,
                            uint32_t period_refis);

} // namespace moatsim::analysis

#endif // MOATSIM_ANALYSIS_FEINTING_MODEL_HH
