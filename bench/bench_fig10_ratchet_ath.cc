/**
 * @file
 * Figure 10: maximum activations a Ratchet attacker can inflict on an
 * attack row versus the ALERT threshold, ABO level 1. This is the TRH
 * actually tolerated by MOAT for a given ATH.
 *
 * Paper: TRH 99 at ATH 64, 161 at ATH 128; sub-50 thresholds are
 * impractical under the current ALERT specifications. The
 * stop-the-world bound (ATH+2, Section 4.4) is shown for contrast.
 */

#include <iostream>

#include "analysis/ratchet_model.hh"
#include "attacks/ratchet.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 10 (Ratchet: max ACTs on attack row vs ATH)",
                  "Appendix-A model and full attack simulation, ABO "
                  "level 1. Paper anchors: ATH 64 -> 99, ATH 128 -> 161.");

    dram::TimingParams timing;
    TablePrinter t({"ATH", "model TRH_safe", "simulated attack",
                    "stop-the-world (ATH+2)", "pool Nc", "sim ALERTs"});
    for (uint32_t ath = 16; ath <= 128; ath += 16) {
        const auto model = analysis::ratchetBound(timing, ath, 1);
        attacks::RatchetConfig cfg;
        cfg.timing = timing;
        cfg.moat.ath = ath;
        cfg.moat.eth = ath / 2;
        const auto sim = attacks::runRatchet(cfg);
        bench::emitJsonl(sim, "ratchet:ath=" + std::to_string(ath),
                         "moat");
        t.addRow({std::to_string(ath), formatFixed(model.safeTrh, 1),
                  std::to_string(sim.maxHammer),
                  std::to_string(analysis::stopTheWorldTrh(ath)),
                  std::to_string(model.maxPoolRows),
                  std::to_string(sim.alerts)});
    }
    t.print(std::cout);
    std::cout << "Note: for small ATH the optimal pool exceeds the "
                 "64K-row bank, so the simulated attack is capped at "
                 "the bank size and lands slightly under the model.\n";
    return 0;
}
