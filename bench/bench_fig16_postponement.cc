/**
 * @file
 * Figure 16 (Appendix B): breaking Drain-All-Entries-on-REF Panopticon
 * with refresh postponement.
 *
 * Paper: postponing 2 REFs creates 201-activation windows between REF
 * batches; a row queued right after a batch reaches 128 + 200 = 328
 * activations (2.6x the queueing threshold) before mitigation.
 */

#include <iostream>

#include "attacks/postponement.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 16 (refresh postponement vs drain-all "
                  "Panopticon)",
                  "Even an aggressive drain-all policy is broken once "
                  "the memory controller batches refreshes.");

    TablePrinter t({"configuration", "paper max ACTs", "moatsim",
                    "overshoot vs threshold"});
    {
        attacks::PostponementConfig cfg;
        cfg.trials =
            static_cast<uint32_t>(256 * bench::benchScale()) + 8;
        const auto r = attacks::runRefreshPostponement(cfg);
        bench::emitJsonl(r, "postponement:max=2", "panopticon");
        t.addRow({"postpone up to 2 REFs", "328",
                  std::to_string(r.maxHammer),
                  formatFixed(r.maxHammer / 128.0, 1) + "x"});
    }
    {
        attacks::PostponementConfig cfg;
        cfg.maxPostponed = 1;
        cfg.trials =
            static_cast<uint32_t>(128 * bench::benchScale()) + 8;
        const auto r = attacks::runRefreshPostponement(cfg);
        t.addRow({"postpone up to 1 REF", "-",
                  std::to_string(r.maxHammer),
                  formatFixed(r.maxHammer / 128.0, 1) + "x"});
    }
    {
        attacks::PostponementConfig cfg;
        cfg.maxPostponed = 0;
        cfg.trials =
            static_cast<uint32_t>(128 * bench::benchScale()) + 8;
        const auto r = attacks::runRefreshPostponement(cfg);
        t.addRow({"no postponement (control)", "-",
                  std::to_string(r.maxHammer),
                  formatFixed(r.maxHammer / 128.0, 1) + "x"});
    }
    t.print(std::cout);
    return 0;
}
