/**
 * @file
 * Ablation of the paper's Section-9 recommendations:
 *
 *  1. "Larger queues introduce vulnerability from insertion to
 *     mitigation, so shorter queues are preferred" — Jailbreak damage
 *     against the original Panopticon as the queue size is swept.
 *  2. "Queue entries must contain a counter to address attacks that
 *     cause frequent ACTs while a row is enqueued" — the same pattern
 *     against the repaired counter-carrying queue collapses from 9x
 *     the threshold to roughly the ALERT threshold.
 */

#include <iostream>

#include "attacks/jailbreak.hh"
#include "bench_util.hh"
#include "mitigation/registry.hh"
#include "subchannel/subchannel.hh"

using namespace moatsim;

namespace
{

/** Jailbreak pattern against the repaired counter-carrying queue. */
attacks::AttackResult
jailbreakVsCounterQueue(const mitigation::MitigatorSpec &spec)
{
    const mitigation::PanopticonCounterConfig cfg =
        mitigation::panopticonCounterConfigOf(spec);
    subchannel::SubChannelConfig sc;
    sc.numBanks = 1;
    subchannel::SubChannel ch(sc, spec.factory());

    const RowId base = sc.timing.rowsPerBank / 2;
    std::vector<RowId> rows(cfg.queueEntries);
    for (uint32_t i = 0; i < cfg.queueEntries; ++i)
        rows[i] = base + i * 8;
    for (ActCount k = 0; k < cfg.queueThreshold; ++k) {
        for (RowId r : rows)
            ch.activate(0, r);
    }
    // Phase 2 at the paper's 32 ACTs per tREFI.
    const Time pace = ch.timing().tREFI / 32;
    Time not_before = ch.now();
    for (uint32_t a = 0; a < 1024; ++a)
        not_before = ch.activateAt(0, rows.back(), not_before) + pace;
    ch.advanceTo(ch.now() + fromNs(2000));

    attacks::AttackResult res;
    res.maxHammer = ch.security(0).maxHammer();
    res.totalActs = ch.stats().acts;
    res.alerts = ch.abo().alertCount();
    res.duration = ch.now();
    return res;
}

} // namespace

int
main()
{
    bench::header("Ablation (Section 9 recommendations)",
                  "Why MOAT tracks a single counter-carrying entry: "
                  "queue depth is attack surface, and address-only "
                  "entries are blind.");

    std::cout << "Recommendation 1 -- shorter queues (Jailbreak vs "
                 "original Panopticon, threshold 128):\n";
    TablePrinter t1({"queue entries", "max ACTs", "overshoot",
                     "ALERTs"});
    for (uint32_t q : {2u, 4u, 8u, 16u}) {
        attacks::JailbreakConfig cfg;
        cfg.panopticon.queueEntries = q;
        // Budget scales with the queue: the accrual window is one
        // mitigation period per resident entry.
        cfg.hammerActs = 128 * (q + 2);
        const auto r = attacks::runDeterministicJailbreak(cfg);
        t1.addRow({std::to_string(q), std::to_string(r.maxHammer),
                   formatFixed(r.maxHammer / 128.0, 1) + "x",
                   std::to_string(r.alerts)});
    }
    t1.print(std::cout);

    std::cout << "\nRecommendation 2 -- counters in the queue "
                 "(Jailbreak pattern vs the repaired design):\n";
    TablePrinter t2({"design", "max ACTs", "overshoot", "ALERTs"});
    {
        attacks::JailbreakConfig cfg;
        const auto r = attacks::runDeterministicJailbreak(cfg);
        t2.addRow({"address-only FIFO (original)",
                   std::to_string(r.maxHammer),
                   formatFixed(r.maxHammer / 128.0, 1) + "x",
                   std::to_string(r.alerts)});
    }
    for (ActCount slack : {64u, 128u}) {
        const auto spec = mitigation::Registry::parse(
            "panopticon-counter:slack=" + std::to_string(slack));
        const auto r = jailbreakVsCounterQueue(spec);
        bench::emitJsonl(r, "jailbreak", spec.describe());
        t2.addRow({"counter queue, slack " + std::to_string(slack),
                   std::to_string(r.maxHammer),
                   formatFixed(r.maxHammer / 128.0, 1) + "x",
                   std::to_string(r.alerts)});
    }
    t2.print(std::cout);
    std::cout << "The counter-carrying queue caps the attack near its "
                 "ALERT threshold -- the design point MOAT then "
                 "minimizes (single entry, dual thresholds).\n";
    return 0;
}
