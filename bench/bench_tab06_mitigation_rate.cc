/**
 * @file
 * Table 6 (Appendix C): impact of the proactive mitigation rate on
 * MOAT's slowdown at ATH 64.
 *
 * Paper: 1 aggressor per 1/3/5/10 tREFI and ALERT-only ->
 * 0% / 0.12% / 0.28% / 0.51% / 0.91% average slowdown.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    bench::header("Table 6 (mitigation rate vs slowdown, ATH 64)",
                  "Slower proactive mitigation shifts work onto "
                  "reactive ALERTs, which stall the sub-channel.");

    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.0625 * bench::benchScale();
    // Full-system configuration (Table 3): 2 sub-channels x 32 banks.
    ec.tracegen.subchannels = 2;
    ec.jobs = bench::jobs();
    sim::Experiment exp(ec);

    const uint32_t rates[] = {1, 3, 5, 10, 0};
    const char *labels[] = {"1 aggressor per 1 tREFI",
                            "1 aggressor per 3 tREFI",
                            "1 aggressor per 5 tREFI",
                            "1 aggressor per 10 tREFI",
                            "none (ALERT only)"};
    const char *paper[] = {"0.0%", "0.12%", "0.28%", "0.51%", "0.91%"};

    std::vector<sim::SweepPoint> points;
    for (const uint32_t rate : rates) {
        points.push_back({mitigation::Registry::parse(
                              "moat:ath=64,eth=32,period=" +
                              std::to_string(rate)),
                          abo::Level::L1});
    }
    const auto all = exp.runMatrix(points);

    TablePrinter t({"mitigation rate", "paper slowdown",
                    "moatsim slowdown", "ALERTs/tREFI"});
    for (size_t i = 0; i < 5; ++i) {
        bench::emitJsonl(all[i]);
        t.addRow({labels[i], paper[i],
                  formatPercent(1.0 - sim::meanNormPerf(all[i])),
                  formatFixed(sim::meanAlertsPerRefi(all[i]), 4)});
    }
    t.print(std::cout);
    return 0;
}
