/**
 * @file
 * Table 7 (Appendix D): average slowdown and safely-tolerated TRH as
 * ATH and the ABO level vary.
 *
 * Paper:
 *   ATH 32:  L1 3.90% / 69,  L2 5.60% / 56,  L4 9.50% / 50
 *   ATH 64:  L1 0.28% / 99,  L2 0.34% / 87,  L4 0.45% / 82
 *   ATH 128: L1 0% / 161,    L2 0% / 150,    L4 0% / 145
 */

#include <iostream>
#include <iterator>

#include "analysis/ratchet_model.hh"
#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    bench::header("Table 7 (ATH x ABO level: slowdown and Safe-TRH)",
                  "MOAT-L tracks L entries and mitigates L rows per "
                  "ALERT; Safe-TRH comes from the Appendix-A Ratchet "
                  "bound.");

    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.0625 * bench::benchScale();
    ec.jobs = bench::jobs();
    sim::Experiment exp(ec);

    struct PaperRow
    {
        uint32_t ath;
        int level;
        const char *slow;
        int trh;
    };
    const PaperRow paper[] = {
        {32, 1, "3.90%", 69},  {32, 2, "5.60%", 56},  {32, 4, "9.50%", 50},
        {64, 1, "0.28%", 99},  {64, 2, "0.34%", 87},  {64, 4, "0.45%", 82},
        {128, 1, "0%", 161},   {128, 2, "0%", 150},   {128, 4, "0%", 145},
    };

    // The whole 9-point x 21-workload matrix fans out as one batch.
    std::vector<sim::SweepPoint> points;
    for (const auto &row : paper) {
        points.push_back({mitigation::Registry::parse(
                              "moat:ath=" + std::to_string(row.ath) +
                              ",eth=" + std::to_string(row.ath / 2) +
                              ",entries=" + std::to_string(row.level)),
                          static_cast<abo::Level>(row.level)});
    }
    const auto all = exp.runMatrix(points);

    TablePrinter t({"ATH", "design", "paper slowdown", "moatsim slowdown",
                    "paper Safe-TRH", "model Safe-TRH"});
    for (size_t i = 0; i < std::size(paper); ++i) {
        const auto &row = paper[i];
        bench::emitJsonl(all[i]);
        const auto bound = analysis::ratchetBound(ec.tracegen.timing,
                                                  row.ath, row.level);
        t.addRow({std::to_string(row.ath),
                  "MOAT-L" + std::to_string(row.level), row.slow,
                  formatPercent(1.0 - sim::meanNormPerf(all[i])),
                  std::to_string(row.trh), formatFixed(bound.safeTrh, 0)});
    }
    t.print(std::cout);
    std::cout << "Conclusion (paper): PRAC with current ALERT specs is "
                 "viable only down to TRH ~50.\n";
    return 0;
}
