/**
 * @file
 * Section 6.5 + Appendix D: SRAM storage and DRAM energy overheads.
 *
 * Paper: MOAT-L1/L2/L4 need 7/10/16 bytes per bank (224/320/512 per
 * 32-bank chip); MOAT (ATH 64) adds 2.3% activations, under 0.5% of
 * total DRAM energy at a <=20% activation-energy share.
 */

#include <iostream>

#include "analysis/storage_model.hh"
#include "bench_util.hh"
#include "dram/device.hh"
#include "mitigation/registry.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    bench::header("Section 6.5 / Appendix D (storage and energy)",
                  "SRAM per bank/chip for each design, reported by the "
                  "mitigator registry (one source of truth); energy "
                  "from the measured mitigation row operations.");

    // Geometry (banks per chip) comes from the device model, so the
    // chip figures track the grade instead of a baked-in constant.
    const dram::DeviceModel device;
    TablePrinter t({"design", "paper B/bank", "moatsim B/bank",
                    "paper B/chip", "moatsim B/chip"});
    const char *paper_bank[] = {"7", "10", "16"};
    const char *paper_chip[] = {"224", "320", "512"};
    int i = 0;
    for (uint32_t entries : {1u, 2u, 4u}) {
        const auto s = analysis::moatStorage(entries, device);
        const auto spec = mitigation::Registry::parse(
            "moat:entries=" + std::to_string(entries));
        t.addRow({"MOAT-L" + std::to_string(entries), paper_bank[i],
                  std::to_string(spec.sramBytesPerBank()), paper_chip[i],
                  std::to_string(s.bytesPerChip)});
        ++i;
    }
    for (const char *name : {"panopticon", "panopticon-counter"}) {
        const auto spec = mitigation::Registry::parse(name);
        t.addRow({name, "-", std::to_string(spec.sramBytesPerBank()), "-",
                  std::to_string(spec.sramBytesPerBank() *
                                 device.banksPerSubchannel())});
    }
    t.print(std::cout);

    std::cout << "\nEnergy (measured over the workload suite, MOAT "
                 "ATH 64 / ETH 32):\n";
    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.0625 * bench::benchScale();
    ec.jobs = bench::jobs();
    sim::Experiment exp(ec);
    const auto results = exp.run();
    bench::emitJsonl(results);
    double overhead = 0;
    for (const auto &r : results)
        overhead += r.actOverheadFraction;
    overhead /= static_cast<double>(results.size());
    const auto energy = analysis::mitigationEnergy(
        static_cast<uint64_t>(overhead * 1e6), 1'000'000);

    TablePrinter t2({"metric", "paper", "moatsim"});
    t2.addRow({"extra activations", "2.3%", formatPercent(overhead, 2)});
    t2.addRow({"activation energy share", "<20%", "20% (assumed)"});
    t2.addRow({"total DRAM energy increase", "<0.5%",
               formatPercent(energy.dramEnergyIncrease, 2)});
    t2.print(std::cout);
    return 0;
}
