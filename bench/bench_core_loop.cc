/**
 * @file
 * Replay-loop throughput bench: demand activations per second of
 * simulator wall time.
 *
 * Replays the same Table-4 workload traces four ways and reports
 * acts/sec for each:
 *
 *  - reference: the pre-flattening inner loop, kept here verbatim
 *    (std::deque in-flight queue, full-core scan per pick) against a
 *    SubChannel on the pre-overhaul path (fastAlertScan off -- every
 *    ACT polls every bank's mitigator -- virtual dispatch per hook,
 *    eagerly allocated oracle);
 *  - virtual dispatch: the current sim::System loop with
 *    sealedDispatch off, isolating the devirtualization/oracle-elision
 *    delta from the loop-flattening delta;
 *  - optimized: the full sim::System hot path (ring-buffer in-flight
 *    state, sticky ALERT flag, pre-decoded coordinates, sealed kind
 *    dispatch) on one sub-channel -- the speedup column is
 *    optimized/reference and the PR bar is >= 1.3x;
 *  - system x2: the same loop on the full 2-sub-channel system
 *    (twice the traffic through one merged event loop).
 *
 * All single-channel paths replay bit-identical simulations (same
 * traces, same seed; the knobs change no behaviour), so the
 * comparison measures the loop, not the workload.
 */

#include <chrono>
#include <deque>
#include <iostream>

#include "bench_util.hh"
#include "mitigation/registry.hh"
#include "sim/system.hh"

using namespace moatsim;

namespace
{

/**
 * The pre-flattening replay loop, preserved for comparison. This is
 * the exact shape of sim::runMemSystem before the System layer: a
 * std::deque per core for in-flight completions and a scan over every
 * core (finished ones included) per issued ACT.
 */
sim::MemSysResult
referenceReplay(subchannel::SubChannel &channel,
                const std::vector<workload::CoreTrace> &traces,
                const sim::CoreModel &core)
{
    struct CoreState
    {
        size_t next = 0;
        Time arrival = 0;
        std::deque<Time> inflight;
        Time last_intended = 0;
        Time last_completion = 0;
    };

    const Time start = channel.now();
    const uint64_t start_refs = channel.stats().refs;
    const uint64_t start_alerts = channel.abo().alertCount();
    const Time tRC = channel.timing().tRC;

    std::vector<CoreState> cores(traces.size());
    for (size_t c = 0; c < traces.size(); ++c) {
        if (!traces[c].events.empty())
            cores[c].arrival = start + traces[c].events.front().at;
    }

    for (;;) {
        size_t best = traces.size();
        for (size_t c = 0; c < traces.size(); ++c) {
            if (cores[c].next >= traces[c].events.size())
                continue;
            if (best == traces.size() ||
                cores[c].arrival < cores[best].arrival)
                best = c;
        }
        if (best == traces.size())
            break;

        CoreState &cs = cores[best];
        const workload::TraceEvent &ev = traces[best].events[cs.next];

        Time ready = cs.arrival;
        if (cs.inflight.size() >= core.mlp)
            ready = std::max(ready, cs.inflight.front());

        const Time issue = channel.activateAt(ev.bank, ev.row, ready);
        const Time completion = issue + tRC;

        while (cs.inflight.size() >= core.mlp)
            cs.inflight.pop_front();
        cs.inflight.push_back(completion);
        cs.last_completion = completion;

        ++cs.next;
        if (cs.next < traces[best].events.size()) {
            const Time gap = traces[best].events[cs.next].at - ev.at;
            cs.arrival = std::max(cs.arrival, issue) + gap;
        }
        cs.last_intended = ev.at;
    }

    sim::MemSysResult result;
    result.coreFinish.resize(traces.size());
    for (size_t c = 0; c < traces.size(); ++c) {
        const Time tail = traces[c].events.empty()
                              ? traces[c].window
                              : traces[c].window - cores[c].last_intended;
        result.coreFinish[c] =
            (cores[c].last_completion - start) + std::max<Time>(tail, 0);
        result.totalActs += traces[c].events.size();
    }
    result.refs = channel.stats().refs - start_refs;
    result.alerts = channel.abo().alertCount() - start_alerts;
    return result;
}

subchannel::SubChannelConfig
channelConfig(const workload::TraceGenConfig &tg, bool fast_alert_scan,
              bool sealed_dispatch)
{
    subchannel::SubChannelConfig sc;
    sc.timing = tg.timing;
    sc.numBanks = tg.banksSimulated;
    sc.securityEnabled = false;
    sc.fastAlertScan = fast_alert_scan;
    // false selects the pre-overhaul sub-channel path wholesale:
    // virtual dispatch on every mitigator hook and the eagerly
    // allocated (never read) security oracle.
    sc.sealedDispatch = sealed_dispatch;
    sc.seed = 42;
    return sc;
}

/** Best-of-N wall time of @p body, returned in seconds. */
template <typename F>
double
bestSeconds(int repeats, F &&body)
{
    double best = 1e300;
    for (int i = 0; i < repeats; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

} // namespace

int
main()
{
    bench::header(
        "Replay-loop throughput (acts/sec of simulator wall time)",
        "Pre-flattening reference loop vs the sim::System hot path on "
        "identical simulations; PR bar: >= 1.3x.");

    const auto spec = workload::findWorkload("roms");
    const auto moat = mitigation::Registry::parse("moat");
    const sim::CoreModel core;
    const int repeats = 3;

    workload::TraceGenConfig tg;
    tg.windowFraction = 0.125 * bench::benchScale();
    const auto traces = workload::generateTraces(spec, tg);
    uint64_t acts = 0;
    for (const auto &t : traces)
        acts += t.events.size();

    // Reference: pre-PR loop, full per-ACT ALERT polling, virtual
    // dispatch, eager oracle allocation.
    uint64_t ref_alerts = 0;
    const double ref_s = bestSeconds(repeats, [&] {
        subchannel::SubChannel ch(channelConfig(tg, false, false),
                                  moat.factory());
        ref_alerts = referenceReplay(ch, traces, core).alerts;
    });

    // Dispatch comparison: the same System loop with the per-hook
    // devirtualization (and oracle elision) turned off -- isolates the
    // sealed-dispatch delta from the loop-flattening delta.
    uint64_t virt_alerts = 0;
    const double virt_s = bestSeconds(repeats, [&] {
        sim::SystemConfig sys;
        sys.channel = channelConfig(tg, true, false);
        sys.subchannels = 1;
        sim::System system(sys, moat.factory());
        virt_alerts = sim::runSystem(system, traces, core).alerts;
    });

    // Optimized: the System path on the identical single sub-channel.
    uint64_t opt_alerts = 0;
    const double opt_s = bestSeconds(repeats, [&] {
        sim::SystemConfig sys;
        sys.channel = channelConfig(tg, true, true);
        sys.subchannels = 1;
        sim::System system(sys, moat.factory());
        opt_alerts = sim::runSystem(system, traces, core).alerts;
    });
    // Same simulation on all paths or the comparison is meaningless.
    if (ref_alerts != opt_alerts || virt_alerts != opt_alerts) {
        std::cerr << "FATAL: reference/virtual/optimized replays "
                     "diverged ("
                  << ref_alerts << " / " << virt_alerts << " / "
                  << opt_alerts << " ALERTs)\n";
        return 1;
    }

    // Full system: 2 sub-channels, twice the traffic, one event loop.
    workload::TraceGenConfig tg2 = tg;
    tg2.subchannels = 2;
    const auto traces2 = workload::generateTraces(spec, tg2);
    uint64_t acts2 = 0;
    for (const auto &t : traces2)
        acts2 += t.events.size();
    const double sys2_s = bestSeconds(repeats, [&] {
        sim::SystemConfig sys;
        sys.channel = channelConfig(tg2, true, true);
        sys.subchannels = 2;
        sim::System system(sys, moat.factory());
        sim::runSystem(system, traces2, core);
    });

    const double ref_rate = static_cast<double>(acts) / ref_s;
    const double virt_rate = static_cast<double>(acts) / virt_s;
    const double opt_rate = static_cast<double>(acts) / opt_s;
    const double sys2_rate = static_cast<double>(acts2) / sys2_s;
    const double speedup = ref_rate > 0 ? opt_rate / ref_rate : 0.0;
    const double dispatch_speedup =
        virt_rate > 0 ? opt_rate / virt_rate : 0.0;

    TablePrinter t({"path", "acts", "seconds", "acts/sec"});
    t.addRow({"reference (pre-PR loop)", std::to_string(acts),
              formatFixed(ref_s, 4), formatFixed(ref_rate, 0)});
    t.addRow({"virtual dispatch (System x1)", std::to_string(acts),
              formatFixed(virt_s, 4), formatFixed(virt_rate, 0)});
    t.addRow({"optimized (System x1, sealed)", std::to_string(acts),
              formatFixed(opt_s, 4), formatFixed(opt_rate, 0)});
    t.addRow({"full system (System x2)", std::to_string(acts2),
              formatFixed(sys2_s, 4), formatFixed(sys2_rate, 0)});
    t.print(std::cout);
    std::cout << "speedup (optimized/reference): "
              << formatFixed(speedup, 2) << "x (bar: 1.30x)\n";
    std::cout << "dispatch speedup (sealed/virtual, construction "
                 "included): "
              << formatFixed(dispatch_speedup, 2) << "x\n";

    if (std::ostream *os = bench::jsonlStream()) {
        *os << "{\"kind\":\"core_loop\",\"workload\":\"" << spec.name
            << "\",\"acts\":" << acts
            << ",\"ref_acts_per_sec\":" << formatFixed(ref_rate, 1)
            << ",\"virtual_acts_per_sec\":" << formatFixed(virt_rate, 1)
            << ",\"opt_acts_per_sec\":" << formatFixed(opt_rate, 1)
            << ",\"system2_acts_per_sec\":" << formatFixed(sys2_rate, 1)
            << ",\"speedup\":" << formatFixed(speedup, 3)
            << ",\"dispatch_speedup\":"
            << formatFixed(dispatch_speedup, 3)
            << ",\"bar\":1.3}\n";
    }
    return 0;
}
