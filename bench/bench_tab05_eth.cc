/**
 * @file
 * Table 5: impact of the Eligibility Threshold (ETH) at ATH 64 on the
 * number of mitigations+ALERTs per tREFW per bank and on slowdown.
 *
 * Paper: ETH 0/16/32/48 -> 1729/1329/835/505 mitigations (2.1x/1.6x/
 * 1x/0.6x) and 0.21%/0.21%/0.28%/0.69% average slowdown.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    bench::header("Table 5 (impact of ETH at ATH 64)",
                  "ETH trades mitigation energy against ALERT rate: "
                  "higher ETH means fewer proactive mitigations but "
                  "more rows racing to ATH.");

    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.0625 * bench::benchScale();
    // Full-system configuration (Table 3): 2 sub-channels x 32 banks.
    ec.tracegen.subchannels = 2;
    ec.jobs = bench::jobs();
    sim::Experiment exp(ec);

    const uint32_t eths[] = {0, 16, 32, 48};
    const char *paper_mit[] = {"1729 (2.1x)", "1329 (1.6x)", "835 (1x)",
                               "505 (0.6x)"};
    const char *paper_slow[] = {"0.21%", "0.21%", "0.28%", "0.69%"};

    std::vector<sim::SweepPoint> points;
    for (uint32_t eth : eths) {
        points.push_back({mitigation::Registry::parse(
                              "moat:ath=64,eth=" + std::to_string(eth)),
                          abo::Level::L1});
    }
    const auto all = exp.runMatrix(points);
    for (const auto &rs : all)
        bench::emitJsonl(rs);
    // Normalize the mitigation column to the ETH=32 default like the
    // paper does.
    const double base_mit = sim::meanMitigations(all[2]);

    TablePrinter t({"ETH", "paper mitig.+ALERT /tREFW", "moatsim",
                    "relative", "paper slowdown", "moatsim slowdown"});
    for (size_t i = 0; i < 4; ++i) {
        const double mit = sim::meanMitigations(all[i]);
        t.addRow({std::to_string(eths[i]), paper_mit[i],
                  formatFixed(mit, 0),
                  formatFixed(base_mit > 0 ? mit / base_mit : 0, 2) + "x",
                  paper_slow[i],
                  formatPercent(1.0 - sim::meanNormPerf(all[i]))});
    }
    t.print(std::cout);
    return 0;
}
