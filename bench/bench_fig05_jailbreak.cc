/**
 * @file
 * Figure 5 + Section 3.2: breaking deterministic and randomized
 * Panopticon (threshold 128) with the Jailbreak pattern.
 *
 * Paper: deterministic Jailbreak inflicts 1152 ACTs (9x the queueing
 * threshold) without a single ALERT; randomized Jailbreak reaches
 * ~1145 within minutes (success probability 2^-16 per iteration).
 */

#include <iostream>

#include "attacks/jailbreak.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 5 / Section 3 (Jailbreak vs Panopticon)",
                  "Attack row activations without intervening "
                  "mitigation, Panopticon threshold-128, 8-entry queue.");

    attacks::JailbreakConfig cfg;

    const auto det = attacks::runDeterministicJailbreak(cfg);
    bench::emitJsonl(det, "jailbreak-deterministic", "panopticon");
    TablePrinter t1({"variant", "paper max ACTs", "moatsim max ACTs",
                     "ALERTs", "overshoot vs threshold"});
    t1.addRow({"deterministic", "1152", std::to_string(det.maxHammer),
               std::to_string(det.alerts),
               formatFixed(det.maxHammer / 128.0, 1) + "x"});
    t1.print(std::cout);
    std::cout << "\n";

    const auto iterations = static_cast<uint64_t>(
        131072 * bench::benchScale()); // 2^17 full run
    std::cout << "Randomized Panopticon sweep (" << iterations
              << " iterations; paper expects ~2^-16 full-queue "
                 "successes per iteration, best ~1145):\n";
    const auto rnd = attacks::runRandomizedJailbreak(cfg, iterations);

    TablePrinter t2({"iterations", "best max ACTs", "full-queue successes",
                     "expected successes"});
    for (const auto &p : rnd.curve) {
        t2.addRow({std::to_string(p.iterations),
                   std::to_string(p.maxHammer),
                   std::to_string(p.successes),
                   formatFixed(static_cast<double>(p.iterations) / 65536.0,
                               2)});
    }
    t2.print(std::cout);
    std::cout << "Simulated attack time: " << formatFixed(toMs(rnd.duration), 0)
              << " ms (paper: ~16 s expected to first success)\n";
    return 0;
}
