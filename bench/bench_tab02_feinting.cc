/**
 * @file
 * Table 2: the feinting-based TRH bound for transparent per-row
 * counters as the mitigation rate varies (1 aggressor per k tREFI).
 *
 * Paper: 638 / 1188 / 1702 / 2195 / 2669 for k = 1..5. Both the
 * analytical bound (B * H_N) and the simulated optimal feinting attack
 * against the IdealPRC mitigator are reported.
 */

#include <iostream>

#include "analysis/feinting_model.hh"
#include "attacks/feinting.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Table 2 (feinting bound for per-row counters)",
                  "A purely transparent per-row-counter scheme cannot "
                  "tolerate sub-200 thresholds: the feinting attack "
                  "drives one row to B*H_N activations.");

    const int paper[] = {638, 1188, 1702, 2195, 2669};
    dram::TimingParams timing;

    TablePrinter t({"mitigation rate", "paper TRH bound", "model B*H_N",
                    "simulated attack", "ACT budget B", "rounds N"});
    for (uint32_t k = 1; k <= 5; ++k) {
        const auto model = analysis::feintingBound(timing, k);
        attacks::FeintingConfig cfg;
        cfg.mitigationPeriodRefis = k;
        const auto sim = attacks::runFeinting(cfg);
        bench::emitJsonl(sim, "feinting:period=" + std::to_string(k),
                         "ideal-prc");
        t.addRow({"1 aggr per " + std::to_string(k) + " tREFI",
                  std::to_string(paper[k - 1]),
                  formatFixed(model.trhBound, 0),
                  std::to_string(sim.maxHammer),
                  std::to_string(model.actsPerPeriod),
                  std::to_string(model.rounds)});
    }
    t.print(std::cout);
    return 0;
}
