/**
 * @file
 * Figure 15 (Appendix A): the safe threshold TRH_safe under the
 * Ratchet attack as a function of ATH, for ABO levels 1, 2 and 4
 * (generalized MOAT-L mitigating L rows per ALERT).
 */

#include <iostream>

#include "analysis/ratchet_model.hh"
#include "attacks/ratchet.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 15 (TRH_safe vs ATH for ABO levels 1/2/4)",
                  "Appendix-A closed form, anchor point ATH 64 / L1 = "
                  "99; simulation spot-checks at ATH 64.");

    dram::TimingParams timing;
    TablePrinter t({"ATH", "L1 model", "L2 model", "L4 model"});
    for (uint32_t ath = 16; ath <= 128; ath += 16) {
        t.addRow({std::to_string(ath),
                  formatFixed(analysis::ratchetBound(timing, ath, 1)
                                  .safeTrh, 1),
                  formatFixed(analysis::ratchetBound(timing, ath, 2)
                                  .safeTrh, 1),
                  formatFixed(analysis::ratchetBound(timing, ath, 4)
                                  .safeTrh, 1)});
    }
    t.print(std::cout);

    std::cout << "\nSimulated Ratchet at ATH 64 per level (paper "
                 "model: 99 / 87 / 82):\n";
    TablePrinter t2({"design", "model", "simulated", "ALERTs"});
    for (int level : {1, 2, 4}) {
        attacks::RatchetConfig cfg;
        cfg.timing = timing;
        cfg.aboLevel = static_cast<abo::Level>(level);
        cfg.moat.trackerEntries = static_cast<uint32_t>(level);
        const auto sim = attacks::runRatchet(cfg);
        bench::emitJsonl(sim, "ratchet:level=" + std::to_string(level),
                         "moat:entries=" + std::to_string(level));
        t2.addRow({"MOAT-L" + std::to_string(level),
                   formatFixed(analysis::ratchetBound(timing, 64, level)
                                   .safeTrh, 1),
                   std::to_string(sim.maxHammer),
                   std::to_string(sim.alerts)});
    }
    t2.print(std::cout);
    return 0;
}
