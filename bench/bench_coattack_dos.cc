/**
 * @file
 * Adversary-under-load: the Figure-16 postponement denial-of-service
 * story replayed on the full system with real victim traffic.
 *
 * The isolated Appendix-B result (bench_fig16_postponement) shows
 * refresh postponement breaking drain-all Panopticon at ~328 ACTs on
 * an empty channel. Here the same attacker is one more core on the
 * Table-3 two-sub-channel System, co-scheduled with a benign
 * workload's cores, so the bench measures what the paper's isolated
 * numbers cannot: the residual maxHammer the attacker retains under
 * contention, and the slowdown its postponement pressure and ALERT
 * torrent inflict on the victims -- against the drain-all target and,
 * for contrast, against MOAT at the same ABO level.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    bench::header(
        "adversary-under-load (postponement DoS on the full system)",
        "Refresh postponement keeps most of its isolated-channel "
        "punch under real co-running traffic, and the victims pay "
        "for it.");

    sim::ExperimentConfig ec;
    ec.tracegen.subchannels = 2;
    ec.tracegen.windowFraction = 0.0625 * bench::benchScale() + 0.015625;
    ec.jobs = bench::jobs();
    sim::Experiment exp(ec);

    std::vector<sim::CoAttackPoint> points;
    // The Appendix-B target is the drain-all policy; MOAT rides along
    // as the contrast that stays capped under the same pressure.
    for (const char *design : {"panopticon:drain-all=true", "moat"}) {
        for (const char *pattern : {"postponement", "hammer", "none"}) {
            sim::CoAttackPoint p;
            p.mitigator = mitigation::Registry::parse(design);
            p.attack.pattern = pattern;
            points.push_back(p);
        }
    }
    const auto matrix = exp.runCoAttackMatrix(points);

    TablePrinter t({"design", "attack", "attacker max ACTs",
                    "worst victim slowdown", "mean victim slowdown",
                    "ALERTs (attack-free)"});
    for (size_t i = 0; i < points.size(); ++i) {
        const auto &rs = matrix[i];
        bench::emitJsonl(rs);
        uint32_t max_hammer = 0;
        double worst = 1.0;
        double mean = 0.0;
        uint64_t alerts = 0;
        uint64_t base_alerts = 0;
        for (const auto &r : rs) {
            max_hammer = std::max(max_hammer, r.attackerMaxHammer);
            worst = std::max(worst, r.victimSlowdown);
            mean += r.victimSlowdown;
            alerts += r.alerts;
            base_alerts += r.attackFreeAlerts;
        }
        mean /= static_cast<double>(rs.size());
        t.addRow({points[i].mitigator.describe(),
                  points[i].attack.pattern, std::to_string(max_hammer),
                  formatFixed(worst, 4) + "x",
                  formatFixed(mean, 4) + "x",
                  std::to_string(alerts) + " (" +
                      std::to_string(base_alerts) + ")"});
    }
    t.print(std::cout);

    std::cout << "\nThe postponement row against drain-all Panopticon "
                 "is the paper's fig16 denial-of-service under load: "
                 "the attacker overshoots the queueing threshold while "
                 "every co-running core slows down.\n";
    return 0;
}
