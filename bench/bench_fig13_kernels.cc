/**
 * @file
 * Figure 13 + Section 7.1: basic single-bank performance-attack
 * kernels and the continuous-ALERT throughput floor.
 *
 * Paper: hammering one row, or five rows circularly, loses ~10%
 * throughput (69 ACTs per 76 units / 325 per 360); a channel kept in
 * back-to-back ALERTs bottoms out at 0.36x (2.8x slowdown, App. D).
 */

#include <iostream>

#include "analysis/throughput_model.hh"
#include "attacks/tsa.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 13 (single-bank ALERT kernels)",
                  "ALERT-triggering kernels cost ~10%; the ALERT floor "
                  "bounds any pattern at 0.36x (level 1).");

    dram::TimingParams timing;

    TablePrinter t({"kernel", "paper loss", "model loss", "sim loss",
                    "sim ALERTs"});
    const uint32_t cycles =
        static_cast<uint32_t>(40 * bench::benchScale()) + 1;
    {
        attacks::PerfAttackConfig cfg;
        cfg.poolRows = 1;
        cfg.cycles = cycles;
        const auto sim = attacks::runSingleBankKernel(cfg);
        bench::emitJsonl(sim, "kernel:pool=1", "moat");
        const auto model = analysis::singleBankKernel(timing, 64, 1, 1);
        t.addRow({"(A)^N single row", "~10%",
                  formatPercent(model.lossFraction, 1),
                  formatPercent(sim.lossFraction, 1),
                  std::to_string(sim.alerts)});
    }
    {
        attacks::PerfAttackConfig cfg;
        cfg.poolRows = 5;
        cfg.cycles = cycles;
        const auto sim = attacks::runSingleBankKernel(cfg);
        bench::emitJsonl(sim, "kernel:pool=5", "moat");
        const auto model = analysis::singleBankKernel(timing, 64, 5, 1);
        t.addRow({"(ABCDE)^N five rows", "~10%",
                  formatPercent(model.lossFraction, 1),
                  formatPercent(sim.lossFraction, 1),
                  std::to_string(sim.alerts)});
    }
    t.print(std::cout);

    std::cout << "\nContinuous-ALERT floor (Appendix D):\n";
    TablePrinter t2({"ABO level", "paper slowdown", "model floor",
                     "model slowdown"});
    const char *paper[] = {"2.8x", "3.8x", "4.9x"};
    int i = 0;
    for (int level : {1, 2, 4}) {
        const auto f = analysis::continuousAlertFloor(timing, level);
        t2.addRow({"L" + std::to_string(level), paper[i++],
                   formatFixed(f.relative, 3) + "x",
                   formatFixed(1.0 / f.relative, 1) + "x"});
    }
    t2.print(std::cout);
    return 0;
}
