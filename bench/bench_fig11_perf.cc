/**
 * @file
 * Figure 11 (a) and (b): performance impact of MOAT for ATH 64 and 128
 * (ETH = ATH/2) across the 21 SPEC-2017 + GAP workloads, and the rate
 * of ALERTs per tREFI per sub-channel.
 *
 * Paper: average slowdown 0.28% at ATH 64 (roms worst at ~2%), ~0% at
 * ATH 128; average 0.023 ALERTs per tREFI at ATH 64, ~0 at ATH 128.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    bench::header(
        "Figure 11 (MOAT slowdown and ALERT rate, ATH 64 vs 128)",
        "Synthetic Table-4-calibrated workloads; normalized to a "
        "no-ALERT system. Paper: avg 0.28% @ ATH64 (roms ~2%), ~0% @ "
        "ATH128; ALERTs/tREFI avg 0.023 @ ATH64.");

    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.125 * bench::benchScale();
    // Full-system configuration (Table 3): 2 sub-channels x 32 banks.
    ec.tracegen.subchannels = 2;
    ec.jobs = bench::jobs();
    sim::Experiment exp(ec);

    const auto all = exp.runMatrix(
        {{mitigation::Registry::parse("moat"), abo::Level::L1},
         {mitigation::Registry::parse("moat:ath=128,eth=64"),
          abo::Level::L1}});
    const auto &r64 = all[0];
    const auto &r128 = all[1];
    bench::emitJsonl(r64);
    bench::emitJsonl(r128);

    TablePrinter t({"workload", "slowdown ATH64", "slowdown ATH128",
                    "ALERTs/tREFI ATH64", "ALERTs/tREFI ATH128"});
    for (size_t i = 0; i < r64.size(); ++i) {
        t.addRow({r64[i].workload,
                  formatPercent(1.0 - r64[i].normPerf),
                  formatPercent(1.0 - r128[i].normPerf),
                  formatFixed(r64[i].alertsPerRefi, 4),
                  formatFixed(r128[i].alertsPerRefi, 4)});
    }
    t.addSeparator();
    t.addRow({"AVERAGE (paper: 0.28% / ~0% / 0.023 / ~0)",
              formatPercent(1.0 - sim::meanNormPerf(r64)),
              formatPercent(1.0 - sim::meanNormPerf(r128)),
              formatFixed(sim::meanAlertsPerRefi(r64), 4),
              formatFixed(sim::meanAlertsPerRefi(r128), 4)});
    t.print(std::cout);
    return 0;
}
