/**
 * @file
 * Google-benchmark micro-benchmarks of moatsim's hot paths: per-ACT
 * costs of the bank, security oracle, MOAT logic, and the full
 * command-level sub-channel. Useful when tuning the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "dram/bank.hh"
#include "dram/security.hh"
#include "mitigation/registry.hh"
#include "sim/sweep.hh"
#include "subchannel/subchannel.hh"
#include "workload/spec.hh"

using namespace moatsim;

namespace
{

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_BankActivate(benchmark::State &state)
{
    dram::TimingParams t;
    dram::Bank bank(t, dram::CounterInit::Zero);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bank.activate(static_cast<RowId>(rng.below(65536))));
}
BENCHMARK(BM_BankActivate);

void
BM_SecurityOnActivate(benchmark::State &state)
{
    dram::SecurityMonitor mon(65536, 2);
    Rng rng(3);
    for (auto _ : state)
        mon.onActivate(static_cast<RowId>(rng.below(65536)));
}
BENCHMARK(BM_SecurityOnActivate);

void
BM_SubChannelActivateNull(benchmark::State &state)
{
    subchannel::SubChannelConfig sc;
    sc.numBanks = static_cast<uint32_t>(state.range(0));
    subchannel::SubChannel ch(
        sc, mitigation::Registry::parse("null").factory());
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ch.activate(static_cast<BankId>(rng.below(ch.numBanks())),
                        static_cast<RowId>(rng.below(65536))));
    }
}
BENCHMARK(BM_SubChannelActivateNull)->Arg(1)->Arg(8)->Arg(32);

void
BM_SubChannelActivateMoat(benchmark::State &state)
{
    subchannel::SubChannelConfig sc;
    sc.numBanks = static_cast<uint32_t>(state.range(0));
    subchannel::SubChannel ch(
        sc, mitigation::Registry::parse("moat").factory());
    Rng rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ch.activate(static_cast<BankId>(rng.below(ch.numBanks())),
                        static_cast<RowId>(rng.below(65536))));
    }
}
BENCHMARK(BM_SubChannelActivateMoat)->Arg(1)->Arg(32);

void
BM_SweepEngineCells(benchmark::State &state)
{
    sim::SweepConfig sc;
    sc.tracegen.banksSimulated = 4;
    sc.tracegen.numCores = 2;
    sc.tracegen.windowFraction = 0.005;
    sc.jobs = static_cast<unsigned>(state.range(0));
    const std::vector<sim::SweepCell> cells(
        8, {workload::findWorkload("x264"),
            mitigation::Registry::parse("moat"), abo::Level::L1});
    for (auto _ : state) {
        sim::SweepEngine engine(sc);
        benchmark::DoNotOptimize(engine.run(cells));
    }
}
BENCHMARK(BM_SweepEngineCells)->Arg(1)->Arg(4);

} // namespace
