/**
 * @file
 * End-to-end matrix-sweep throughput bench: cells per second of
 * simulator wall time on the Table-5-shaped matrix (every Table-4
 * workload x four MOAT ETH points on the 2-sub-channel system).
 *
 * Runs the identical matrix twice through the SweepEngine:
 *
 *  - reference: trace store disabled and the pre-overhaul sub-channel
 *    path (virtual per-hook dispatch, eagerly allocated security
 *    oracle) -- every cell regenerates its workload trace, exactly as
 *    the pipeline worked before the shared-trace-store PR;
 *  - optimized: the shared workload::TraceStore plus the sealed
 *    devirtualized hot path -- each distinct trace is generated once
 *    (baselines included) and shared across the pool.
 *
 * Both runs must produce byte-identical JSONL (checked here; the bench
 * fails otherwise), so the comparison measures the pipeline, not the
 * simulation. The PR bar is >= 2x matrix cells/sec; the trace store's
 * hit rate and the generateTraces() invocation counts are reported so
 * a regression is attributable at a glance. bench_aggregate.py gates
 * the smoke run on the emitted bar.
 */

#include <chrono>
#include <iostream>
#include <sstream>

#include "bench_util.hh"
#include "sim/sweep.hh"

using namespace moatsim;

namespace
{

struct MatrixRun
{
    std::vector<sim::PerfResult> results;
    double seconds = 0.0;
    /** generateTraces() invocations this run performed. */
    uint64_t genCalls = 0;
};

MatrixRun
runMatrix(const sim::SweepConfig &config,
          const std::vector<sim::SweepCell> &cells)
{
    sim::SweepEngine engine(config);
    MatrixRun out;
    const uint64_t gen0 = workload::traceGenInvocations();
    const auto t0 = std::chrono::steady_clock::now();
    out.results = engine.run(cells);
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.genCalls = workload::traceGenInvocations() - gen0;
    return out;
}

std::string
jsonlOf(const std::vector<sim::PerfResult> &results)
{
    std::ostringstream os;
    sim::writeJsonLines(os, results);
    return os.str();
}

} // namespace

int
main()
{
    bench::header(
        "Matrix-sweep throughput (cells/sec of simulator wall time)",
        "Shared trace store + devirtualized ACT hot path vs the "
        "store-disabled/virtual-dispatch reference pipeline on the "
        "Table-5-shaped matrix; PR bar: >= 2x.");

    const auto workloads = workload::table4Workloads();
    std::vector<std::pair<mitigation::MitigatorSpec, abo::Level>> points;
    for (const uint32_t eth : {0u, 16u, 32u, 48u}) {
        points.emplace_back(
            mitigation::Registry::parse("moat:ath=64,eth=" +
                                        std::to_string(eth)),
            abo::Level::L1);
    }
    const auto cells = sim::crossCells(
        {workloads.begin(), workloads.end()}, points);

    sim::SweepConfig base;
    base.tracegen.windowFraction = 0.0625 * bench::benchScale();
    base.tracegen.subchannels = 2; // Table-3 full system
    base.jobs = bench::jobs();

    // Reference: regenerate per cell, pre-overhaul sub-channel path.
    sim::SweepConfig ref_cfg = base;
    ref_cfg.sealedDispatch = false;
    workload::TraceStore::Config off;
    off.enabled = false;
    ref_cfg.traceStore = std::make_shared<workload::TraceStore>(off);
    const MatrixRun ref = runMatrix(ref_cfg, cells);

    // Optimized: shared store, sealed hot path. The store config is
    // pinned explicitly (not read from the environment) so an ambient
    // MOATSIM_TRACE_STORE=0 cannot corrupt the A/B comparison.
    sim::SweepConfig opt_cfg = base;
    workload::TraceStore::Config on;
    opt_cfg.traceStore = std::make_shared<workload::TraceStore>(on);
    const MatrixRun opt = runMatrix(opt_cfg, cells);
    const auto store = opt_cfg.traceStore->stats();

    // Warm run: the identical matrix served from a pre-warmed
    // sim::ResultStore. The untimed cold pass fills the store; the
    // timed pass must recompute nothing (and generate no traces), so
    // its rate is the warm full-matrix re-run throughput the
    // result-store PR is about.
    sim::SweepConfig warm_cfg = base;
    warm_cfg.traceStore =
        std::make_shared<workload::TraceStore>(workload::TraceStore::Config{});
    sim::ResultStore::Config rs_on;
    rs_on.enabled = true;
    warm_cfg.resultStore = std::make_shared<sim::ResultStore>(rs_on);
    (void)runMatrix(warm_cfg, cells); // cold fill
    const uint64_t computes_cold = warm_cfg.resultStore->stats().computes;
    const MatrixRun warm = runMatrix(warm_cfg, cells);
    const uint64_t warm_recomputes =
        warm_cfg.resultStore->stats().computes - computes_cold;

    // Same simulation on all paths or the comparison is meaningless.
    const std::string ref_jsonl = jsonlOf(ref.results);
    const std::string opt_jsonl = jsonlOf(opt.results);
    if (ref_jsonl != opt_jsonl || jsonlOf(warm.results) != ref_jsonl) {
        std::cerr << "FATAL: reference, optimized, and warm matrix runs "
                     "diverged (results must be bit-identical with the "
                     "stores on, off, cold, or warm)\n";
        return 1;
    }
    if (warm_recomputes != 0) {
        std::cerr << "FATAL: warm result-store run recomputed "
                  << warm_recomputes << " cells (expected 0)\n";
        return 1;
    }

    const double n = static_cast<double>(cells.size());
    const double ref_rate = ref.seconds > 0 ? n / ref.seconds : 0.0;
    const double opt_rate = opt.seconds > 0 ? n / opt.seconds : 0.0;
    const double warm_rate = warm.seconds > 0 ? n / warm.seconds : 0.0;
    const double speedup = ref_rate > 0 ? opt_rate / ref_rate : 0.0;

    TablePrinter t({"pipeline", "cells", "seconds", "cells/sec",
                    "generateTraces calls"});
    t.addRow({"reference (no store, virtual dispatch)",
              std::to_string(cells.size()), formatFixed(ref.seconds, 3),
              formatFixed(ref_rate, 2), std::to_string(ref.genCalls)});
    t.addRow({"optimized (trace store, sealed dispatch)",
              std::to_string(cells.size()), formatFixed(opt.seconds, 3),
              formatFixed(opt_rate, 2), std::to_string(opt.genCalls)});
    t.addRow({"warm (pre-warmed result store)",
              std::to_string(cells.size()), formatFixed(warm.seconds, 3),
              formatFixed(warm_rate, 2), std::to_string(warm.genCalls)});
    t.print(std::cout);
    std::cout << "trace store: " << store.hits << " hits, "
              << store.misses << " misses (hit rate "
              << formatFixed(store.hitRate() * 100.0, 1) << "%), "
              << store.entries << " entries resident\n";
    std::cout << "speedup (optimized/reference): "
              << formatFixed(speedup, 2) << "x (bar: 2.00x)\n";

    if (std::ostream *os = bench::jsonlStream()) {
        *os << "{\"kind\":\"sweep_scale\",\"cells\":" << cells.size()
            << ",\"ref_cells_per_sec\":" << formatFixed(ref_rate, 3)
            << ",\"opt_cells_per_sec\":" << formatFixed(opt_rate, 3)
            << ",\"speedup\":" << formatFixed(speedup, 3)
            << ",\"bar\":2.0"
            << ",\"warm_cells_per_sec\":" << formatFixed(warm_rate, 3)
            << ",\"warm_recomputes\":" << warm_recomputes
            << ",\"ref_gen_calls\":" << ref.genCalls
            << ",\"opt_gen_calls\":" << opt.genCalls
            << ",\"trace_store_hits\":" << store.hits
            << ",\"trace_store_misses\":" << store.misses
            << ",\"trace_store_hit_rate\":"
            << formatFixed(store.hitRate(), 4) << "}\n";
    }
    return 0;
}
