/**
 * @file
 * Figure 17 (Appendix D): MOAT-L1/L2/L4 at ATH 64 -- per-workload
 * slowdown and ALERT rate when the ABO level (and tracker size) grows.
 *
 * Paper: average slowdown 0.28% / 0.34% / 0.44%; MOAT-L2 and MOAT-L4
 * have 0.52x and 0.27x as many ALERT episodes as MOAT-L1.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 17 (MOAT-L1/L2/L4 at ATH 64)",
                  "Higher ABO levels mitigate more rows per ALERT but "
                  "stall longer per episode.");

    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.0625 * bench::benchScale();
    // Full-system configuration (Table 3): 2 sub-channels x 32 banks.
    ec.tracegen.subchannels = 2;
    ec.jobs = bench::jobs();
    sim::Experiment exp(ec);

    std::vector<sim::SweepPoint> points;
    for (int level : {1, 2, 4}) {
        points.push_back({mitigation::Registry::parse(
                              "moat:entries=" + std::to_string(level)),
                          static_cast<abo::Level>(level)});
    }
    const auto all = exp.runMatrix(points);
    for (const auto &rs : all)
        bench::emitJsonl(rs);

    TablePrinter t({"workload", "slowdown L1", "slowdown L2",
                    "slowdown L4", "ALERTs/tREFI L1", "L2", "L4"});
    for (size_t i = 0; i < all[0].size(); ++i) {
        t.addRow({all[0][i].workload,
                  formatPercent(1.0 - all[0][i].normPerf),
                  formatPercent(1.0 - all[1][i].normPerf),
                  formatPercent(1.0 - all[2][i].normPerf),
                  formatFixed(all[0][i].alertsPerRefi, 4),
                  formatFixed(all[1][i].alertsPerRefi, 4),
                  formatFixed(all[2][i].alertsPerRefi, 4)});
    }
    t.addSeparator();
    const double a1 = sim::meanAlertsPerRefi(all[0]);
    const double a2 = sim::meanAlertsPerRefi(all[1]);
    const double a4 = sim::meanAlertsPerRefi(all[2]);
    t.addRow({"AVERAGE (paper: 0.28%/0.34%/0.44%)",
              formatPercent(1.0 - sim::meanNormPerf(all[0])),
              formatPercent(1.0 - sim::meanNormPerf(all[1])),
              formatPercent(1.0 - sim::meanNormPerf(all[2])),
              formatFixed(a1, 4), formatFixed(a2, 4), formatFixed(a4, 4)});
    t.print(std::cout);
    if (a1 > 0) {
        std::cout << "ALERT-episode ratio vs L1 (paper: 0.52x L2, 0.27x "
                     "L4): "
                  << formatFixed(a2 / a1, 2) << "x L2, "
                  << formatFixed(a4 / a1, 2) << "x L4\n";
    }
    return 0;
}
