/**
 * @file
 * Figure 9: the Ratchet micro-example. Four rows primed to ATH under a
 * single-entry MOAT at ABO level 4 (7 ACTs per ALERT window); the last
 * surviving row reaches exactly ATH + 15 activations.
 */

#include <iostream>

#include "attacks/ratchet.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 9 (Ratchet micro-example, 4 rows, ABO L4)",
                  "Spreading the inter-ALERT activations over the "
                  "surviving rows funnels T+15 ACTs onto the last row.");

    dram::TimingParams timing;
    TablePrinter t({"ATH (T)", "paper max ACTs (T+15)", "moatsim",
                    "ALERTs"});
    for (uint32_t ath : {32u, 64u, 128u}) {
        const auto r = attacks::runRatchetMicroExample(timing, ath);
        bench::emitJsonl(r, "ratchet-micro:ath=" + std::to_string(ath),
                         "moat");
        t.addRow({std::to_string(ath), std::to_string(ath + 15),
                  std::to_string(r.maxHammer), std::to_string(r.alerts)});
    }
    t.print(std::cout);
    return 0;
}
