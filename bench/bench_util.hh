/**
 * @file
 * Shared helpers for the reproduction benches. Every bench prints a
 * banner naming the paper artifact it regenerates, then a table with
 * the paper's value and moatsim's measured value side by side.
 */

#ifndef MOATSIM_BENCH_BENCH_UTIL_HH
#define MOATSIM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.hh"
#include "common/table.hh"

namespace moatsim::bench
{

/** Print the standard bench header. */
inline void
header(const std::string &artifact, const std::string &claim)
{
    printBanner(std::cout, "moatsim reproduction: " + artifact);
    std::cout << claim << "\n\n";
}

/**
 * Scale factor for long-running benches: MOATSIM_BENCH_SCALE in (0,1]
 * shrinks iteration counts for quick smoke runs (default 1 = full).
 */
inline double
benchScale()
{
    if (const char *s = std::getenv("MOATSIM_BENCH_SCALE")) {
        const double v = std::atof(s);
        if (v > 0.0 && v <= 1.0)
            return v;
    }
    return 1.0;
}

} // namespace moatsim::bench

#endif // MOATSIM_BENCH_BENCH_UTIL_HH
