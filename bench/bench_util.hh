/**
 * @file
 * Shared helpers for the reproduction benches. Every bench prints a
 * banner naming the paper artifact it regenerates, then a table with
 * the paper's value and moatsim's measured value side by side.
 */

#ifndef MOATSIM_BENCH_BENCH_UTIL_HH
#define MOATSIM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/result_io.hh"

namespace moatsim::bench
{

/** Print the standard bench header. */
inline void
header(const std::string &artifact, const std::string &claim)
{
    printBanner(std::cout, "moatsim reproduction: " + artifact);
    std::cout << claim << "\n\n";
}

/**
 * Scale factor for long-running benches: MOATSIM_BENCH_SCALE in (0,1]
 * shrinks iteration counts for quick smoke runs (default 1 = full).
 */
inline double
benchScale()
{
    if (const char *s = std::getenv("MOATSIM_BENCH_SCALE")) {
        const double v = std::atof(s);
        if (v > 0.0 && v <= 1.0)
            return v;
    }
    return 1.0;
}

/**
 * Sweep worker threads for benches that fan out through the
 * sim::SweepEngine: MOATSIM_JOBS, default 0 (hardware concurrency).
 * Results are bit-identical at any value.
 */
inline unsigned
jobs()
{
    if (const char *s = std::getenv("MOATSIM_JOBS")) {
        const long v = std::atol(s);
        if (v >= 0)
            return static_cast<unsigned>(v);
    }
    return 0;
}

/**
 * Structured-results sink: when MOATSIM_JSONL names a file, every
 * bench appends its results there as JSON lines (sim/result_io.hh) in
 * addition to printing its table, so the golden harness and ad-hoc
 * tooling can diff runs. Returns nullptr when the env var is unset.
 */
inline std::ostream *
jsonlStream()
{
    static std::ofstream stream;
    static bool opened = false;
    if (!opened) {
        opened = true;
        if (const char *path = std::getenv("MOATSIM_JSONL")) {
            stream.open(path, std::ios::app);
            if (!stream)
                std::cerr << "warning: cannot open MOATSIM_JSONL file "
                          << path << "\n";
        }
    }
    return stream.is_open() ? &stream : nullptr;
}

/** Append perf results to the MOATSIM_JSONL sink, if configured. */
inline void
emitJsonl(const std::vector<sim::PerfResult> &results)
{
    if (std::ostream *os = jsonlStream())
        sim::writeJsonLines(*os, results);
}

/** Append co-attack results to the MOATSIM_JSONL sink, if configured. */
inline void
emitJsonl(const std::vector<sim::CoAttackResult> &results)
{
    if (std::ostream *os = jsonlStream())
        sim::writeJsonLines(*os, results);
}

/** Append one attack outcome to the MOATSIM_JSONL sink. */
inline void
emitJsonl(const attacks::AttackResult &result, const std::string &pattern,
          const std::string &mitigator)
{
    if (std::ostream *os = jsonlStream())
        *os << sim::toJsonLine(result, pattern, mitigator) << "\n";
}

/** Append one throughput-attack outcome to the MOATSIM_JSONL sink. */
inline void
emitJsonl(const attacks::ThroughputAttackResult &result,
          const std::string &pattern, const std::string &mitigator)
{
    if (std::ostream *os = jsonlStream())
        *os << sim::toJsonLine(result, pattern, mitigator) << "\n";
}

} // namespace moatsim::bench

#endif // MOATSIM_BENCH_BENCH_UTIL_HH
