/**
 * @file
 * Figure 12: the Torrent-of-Staggered-ALERT performance attack.
 *
 * Paper: ~24% throughput loss at 4 banks, ~52% at the 17-bank tFAW
 * limit (unit-model arithmetic). moatsim reports the paper's unit
 * model plus a full command-level simulation; the simulated baseline
 * is the same activation stream on an ALERT-free channel at full
 * bank-parallel rate, which is a stricter normalization (see
 * EXPERIMENTS.md).
 */

#include <iostream>

#include "analysis/throughput_model.hh"
#include "attacks/tsa.hh"
#include "bench_util.hh"

using namespace moatsim;

int
main()
{
    bench::header("Figure 12 (Torrent-of-Staggered-ALERT)",
                  "Staggering ALERTs across banks wastes every stall; "
                  "synchronized attacks stay at the single-bank ~10%.");

    dram::TimingParams timing;
    TablePrinter t({"banks", "paper loss", "unit-model loss",
                    "simulated loss", "sim ALERTs"});
    const char *paper[] = {"-", "-", "24%", "-", "52%"};
    const uint32_t banks[] = {1, 2, 4, 8, 17};
    for (size_t i = 0; i < 5; ++i) {
        const auto model =
            analysis::tsaAttack(timing, 64, 5, banks[i], 1);
        attacks::PerfAttackConfig cfg;
        cfg.numBanks = banks[i];
        cfg.cycles = static_cast<uint32_t>(30 * bench::benchScale()) + 1;
        const auto sim = attacks::runTsa(cfg);
        bench::emitJsonl(sim, "tsa:banks=" + std::to_string(banks[i]),
                         "moat");
        t.addRow({std::to_string(banks[i]), paper[i],
                  formatPercent(model.lossFraction, 1),
                  formatPercent(sim.lossFraction, 1),
                  std::to_string(sim.alerts)});
    }
    t.print(std::cout);

    std::cout << "\nSynchronized multi-bank control (Section 7.2: no "
                 "gain over single bank):\n";
    TablePrinter t2({"banks", "synchronized loss"});
    for (uint32_t k : {1u, 4u, 17u}) {
        attacks::PerfAttackConfig cfg;
        cfg.numBanks = k;
        cfg.cycles = static_cast<uint32_t>(20 * bench::benchScale()) + 1;
        const auto sim = attacks::runSynchronizedMultiBank(cfg);
        bench::emitJsonl(sim, "tsa-sync:banks=" + std::to_string(k),
                         "moat");
        t2.addRow({std::to_string(k),
                   formatPercent(sim.lossFraction, 1)});
    }
    t2.print(std::cout);
    return 0;
}
