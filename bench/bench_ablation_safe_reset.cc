/**
 * @file
 * Ablation of the safe counter-reset scheme (Section 4.3, Figure 7).
 *
 * Resetting PRAC counters when their row is auto-refreshed is
 * attractive (it keeps counters small) but naively doing so lets an
 * attacker split 2T activations around the aggressor's own refresh
 * while its victims still hold all the damage. MOAT's safe scheme
 * keeps the counters of the last two rows of the refreshed group in
 * SRAM replicas. This bench attacks both variants and reports the
 * ground-truth victim damage reached without an ALERT.
 */

#include <iostream>

#include "bench_util.hh"
#include "mitigation/registry.hh"
#include "subchannel/subchannel.hh"

using namespace moatsim;

namespace
{

/**
 * Hammer the last row of a refresh group T activations right before
 * and right after that group's refresh; report the peak victim damage
 * and whether the defence ever alerted.
 */
std::pair<uint32_t, uint64_t>
resetDodgeAttack(bool safe_reset, uint32_t t_each)
{
    subchannel::SubChannelConfig sc;
    sc.numBanks = 1;
    const auto spec = mitigation::Registry::parse( // ATH 64
        safe_reset ? "moat" : "moat:safe-reset=false");
    subchannel::SubChannel ch(sc, spec.factory());

    // Group 199 (rows 1592..1599) is refreshed by REF #200 at
    // t = 200 * tREFI. Attack its last row; the victims in group 200
    // are refreshed a whole tREFI later.
    const uint32_t group = 199;
    const RowId aggressor = group * 8 + 7;
    const Time refresh_at = static_cast<Time>(group + 1) * ch.timing().tREFI;

    // Phase 1: T activations just before the refresh.
    const Time start =
        refresh_at - static_cast<Time>(t_each + 4) * ch.timing().tRC -
        ch.timing().tRFC;
    ch.advanceTo(start);
    for (uint32_t i = 0; i < t_each; ++i)
        ch.activate(0, aggressor);
    // Cross the refresh, then phase 2: T more activations.
    ch.advanceTo(refresh_at + ch.timing().tRFC + 1);
    for (uint32_t i = 0; i < t_each; ++i)
        ch.activate(0, aggressor);
    ch.advanceTo(ch.now() + fromNs(2000));

    return {ch.security(0).maxDamage(), ch.abo().alertCount()};
}

} // namespace

int
main()
{
    bench::header("Ablation (Figure 7: unsafe vs safe counter reset)",
                  "T activations before + T after the aggressor's own "
                  "refresh: the unsafe reset sees only T, the victims "
                  "see 2T.");

    TablePrinter t({"variant", "T per phase", "peak victim damage",
                    "ALERTs", "verdict"});
    for (uint32_t t_each : {60u, 64u}) {
        const auto unsafe = resetDodgeAttack(false, t_each);
        const auto safe = resetDodgeAttack(true, t_each);
        for (const bool is_safe : {false, true}) {
            const auto &r = is_safe ? safe : unsafe;
            attacks::AttackResult ar;
            ar.maxHammer = r.first;
            ar.alerts = r.second;
            bench::emitJsonl(ar,
                             "reset-dodge:t=" + std::to_string(t_each),
                             is_safe ? "moat" : "moat:safe-reset=false");
        }
        t.addRow({"unsafe reset", std::to_string(t_each),
                  std::to_string(unsafe.first),
                  std::to_string(unsafe.second),
                  unsafe.first >= 2 * t_each - 4 && unsafe.second == 0
                      ? "2T damage unseen (broken)"
                      : "caught"});
        t.addRow({"safe reset (SRAM replicas)", std::to_string(t_each),
                  std::to_string(safe.first), std::to_string(safe.second),
                  safe.second > 0 || safe.first < 2 * t_each - 4
                      ? "replica preserved the count"
                      : "MISSED"});
    }
    t.print(std::cout);
    std::cout << "Paper: the unsafe design doubles the tolerable TRH; "
                 "2 bytes of replica SRAM per bank close the hole.\n";
    return 0;
}
