/**
 * @file
 * Table 4 self-check: the synthetic trace generator must reproduce
 * each workload's published characterization -- ACT-PKI and the number
 * of rows per bank per tREFW with >= 32/64/128 activations.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "workload/spec.hh"
#include "workload/tracegen.hh"

using namespace moatsim;

int
main()
{
    bench::header("Table 4 (workload characteristics, generator census)",
                  "Rows per bank per tREFW with >= N activations: "
                  "paper value vs the census of the generated traces.");

    workload::TraceGenConfig tg;
    tg.windowFraction = 0.125 * bench::benchScale();

    // Each workload's generation + census is independent; fan them
    // across the pool (per-workload seeding keeps results identical
    // at any MOATSIM_JOBS value).
    const auto workloads = workload::table4Workloads();
    std::vector<workload::TierCensus> census(workloads.size());
    {
        ThreadPool pool(bench::jobs());
        for (size_t i = 0; i < workloads.size(); ++i) {
            pool.submit([&, i] {
                const auto traces =
                    workload::generateTraces(workloads[i], tg);
                census[i] = workload::censusOf(traces, tg, workloads[i]);
            });
        }
        pool.wait();
    }

    TablePrinter t({"workload", "ACT-PKI (paper/gen)", "ACT-32+ (p/g)",
                    "ACT-64+ (p/g)", "ACT-128+ (p/g)"});
    for (size_t i = 0; i < workloads.size(); ++i) {
        const auto &spec = workloads[i];
        const auto &c = census[i];
        t.addRow({spec.name,
                  formatFixed(spec.actPki, 1) + " / " +
                      formatFixed(c.actPki, 1),
                  std::to_string(spec.act32) + " / " +
                      formatFixed(c.act32, 0),
                  std::to_string(spec.act64) + " / " +
                      formatFixed(c.act64, 0),
                  std::to_string(spec.act128) + " / " +
                      formatFixed(c.act128, 0)});
    }
    t.print(std::cout);
    std::cout << "Note: generated ACT-PKI reflects the effective IPC "
                 "cap for memory-bound workloads (DESIGN.md).\n";
    return 0;
}
