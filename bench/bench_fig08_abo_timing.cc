/**
 * @file
 * Figure 8 / Section 5.1: minimum activations between consecutive
 * ALERTs for each ABO mitigation level, and the tA2A spacing.
 *
 * Paper: level 1 -> 4 ACTs per ALERT window (3 before the RFM, 1
 * after), level 4 -> 7; tA2A = 180ns + (350+52)ns * L.
 */

#include <iostream>

#include "abo/abo.hh"
#include "bench_util.hh"
#include "mitigation/registry.hh"
#include "subchannel/subchannel.hh"

using namespace moatsim;

namespace
{

/**
 * Measure the inter-ALERT ACT count end to end: prime a pool to
 * exactly ATH, then run a Ratchet-style torrent and count activations
 * per ALERT in steady state (between the 5th and 45th ALERT).
 */
uint32_t
measureActsBetweenAlerts(abo::Level level)
{
    subchannel::SubChannelConfig sc;
    sc.numBanks = 1;
    sc.aboLevel = level;
    sc.refreshResetsRows = false;
    const auto spec = mitigation::Registry::parse(
        "moat:entries=" + std::to_string(abo::levelValue(level)));
    const mitigation::MoatConfig moat = mitigation::moatConfigOf(spec);
    subchannel::SubChannel ch(sc, spec.factory());
    const auto &m =
        static_cast<const mitigation::MoatMitigator &>(ch.mitigator(0));

    std::vector<RowId> live;
    for (int i = 0; i < 512; ++i)
        live.push_back(30000 + 8 * i);
    for (RowId r : live) {
        while (ch.bank(0).counter(r) < moat.ath)
            ch.activate(0, r);
    }

    uint64_t acts_at_5 = 0;
    uint64_t acts_at_45 = 0;
    while (ch.abo().alertCount() < 45 && !live.empty()) {
        // Min-count live row, avoiding the one latched for the RFM.
        RowId pending = m.pendingAlertRow();
        size_t w = 0;
        RowId pick = kInvalidRow;
        ActCount pick_count = 0;
        for (RowId r : live) {
            const ActCount c = ch.bank(0).counter(r);
            if (c == 0)
                continue;
            live[w++] = r;
            if (r != pending && (pick == kInvalidRow || c < pick_count)) {
                pick = r;
                pick_count = c;
            }
        }
        live.resize(w);
        if (live.empty())
            break;
        if (pick == kInvalidRow)
            pick = live.front();
        ch.activate(0, pick);
        if (ch.abo().alertCount() == 5 && acts_at_5 == 0)
            acts_at_5 = ch.stats().acts;
        acts_at_45 = ch.stats().acts;
    }
    const uint64_t alerts = ch.abo().alertCount() - 5;
    if (alerts == 0 || acts_at_5 == 0)
        return 0;
    return static_cast<uint32_t>(
        (acts_at_45 - acts_at_5 + alerts / 2) / alerts);
}

} // namespace

int
main()
{
    bench::header("Figure 8 (ACTs between consecutive ALERTs)",
                  "The attacker-controllable activations leaked per "
                  "ALERT-to-ALERT window, per ABO mitigation level.");

    dram::TimingParams timing;
    TablePrinter t({"ABO level", "paper min ACTs", "model (3+L)",
                    "measured", "tA2A (ns)", "RFMs per ALERT"});
    const int paper[] = {4, 5, 7};
    int row = 0;
    for (abo::Level l : {abo::Level::L1, abo::Level::L2, abo::Level::L4}) {
        const int lv = abo::levelValue(l);
        const uint32_t measured = measureActsBetweenAlerts(l);
        attacks::AttackResult ar;
        ar.maxHammer = measured;
        bench::emitJsonl(ar, "abo-window:level=" + std::to_string(lv),
                         "moat:entries=" + std::to_string(lv));
        t.addRow({"L" + std::to_string(lv), std::to_string(paper[row++]),
                  std::to_string(timing.actsPerAlertWindow(lv)),
                  std::to_string(measured),
                  formatFixed(toNs(timing.alertToAlert(lv)), 0),
                  std::to_string(lv)});
    }
    t.print(std::cout);
    return 0;
}
