/**
 * @file
 * moatlint CLI.
 *
 *     moatlint [--root DIR] [--json FILE] [--list-rules] [--verbose]
 *              [dir...]
 *
 * Lints each dir (default: src) relative to --root (default: cwd),
 * prints findings as "file:line: [rule] message", and exits 1 when any
 * finding lacks a valid suppression. --json writes the machine-
 * readable report ("-" for stdout); --verbose also prints suppressed
 * findings with their justifications.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "moatlint/lint.hh"

namespace
{

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: %s [--root DIR] [--json FILE] [--list-rules] "
        "[--verbose] [dir...]\n"
        "Lints each dir (default: src) under --root (default: .).\n"
        "Exits 1 if any finding lacks a valid suppression.\n",
        argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string json_path;
    bool list_rules = false;
    bool verbose = false;
    std::vector<std::string> dirs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--verbose" || arg == "-v") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "moatlint: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0], 2);
        } else {
            dirs.push_back(arg);
        }
    }

    if (list_rules) {
        for (const auto &r : moatlint::rules())
            std::printf("%-16s %s\n", r.name.c_str(),
                        r.summary.c_str());
        return 0;
    }

    if (dirs.empty())
        dirs.push_back("src");

    std::vector<moatlint::Finding> findings;
    for (const auto &dir : dirs) {
        const std::filesystem::path tree =
            std::filesystem::path(root) / dir;
        if (!std::filesystem::exists(tree)) {
            std::fprintf(stderr, "moatlint: no such directory: %s\n",
                         tree.string().c_str());
            return 2;
        }
        auto part = moatlint::lintTree(tree.string());
        findings.insert(findings.end(), part.begin(), part.end());
    }
    moatlint::sortFindings(findings);

    std::size_t suppressed = 0;
    for (const auto &f : findings) {
        if (f.suppressed) {
            ++suppressed;
            if (verbose)
                std::printf(
                    "%s:%d: [%s] suppressed: %s (justification: %s)\n",
                    f.file.c_str(), f.line, f.rule.c_str(),
                    f.message.c_str(), f.justification.c_str());
            continue;
        }
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    }

    if (!json_path.empty()) {
        const std::string report = moatlint::reportJson(findings);
        if (json_path == "-") {
            std::printf("%s\n", report.c_str());
        } else {
            std::ofstream os(json_path, std::ios::binary);
            if (!os) {
                std::fprintf(stderr,
                             "moatlint: cannot write %s\n",
                             json_path.c_str());
                return 2;
            }
            os << report << "\n";
        }
    }

    const std::size_t bad = moatlint::unsuppressedCount(findings);
    std::fprintf(stderr,
                 "moatlint: %zu finding(s), %zu unsuppressed, "
                 "%zu suppressed\n",
                 findings.size(), bad, suppressed);
    return bad == 0 ? 0 : 1;
}
