/**
 * @file
 * moatlint CLI.
 *
 *     moatlint [--root DIR] [--json FILE] [--sarif FILE]
 *              [--pass textual|semantic] [--mutate-check]
 *              [--list-rules] [--verbose] [dir...]
 *
 * Lints the union of the given dirs (default: src tools tests)
 * relative to --root (default: cwd) as ONE tree -- key functions and
 * suppressions resolve across directory boundaries -- prints findings
 * as "file:line: [rule] message", and exits 1 when any finding lacks
 * a valid suppression. --json/--sarif write the machine-readable
 * reports ("-" for stdout); --pass restricts the printed findings and
 * the exit code to one engine layer; --mutate-check runs the keylint
 * self-test (mutate every key-source field in an in-memory copy of
 * the tree and assert the pass fires) instead of a normal lint;
 * --verbose also prints suppressed findings with justifications.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "moatlint/keylint.hh"
#include "moatlint/lint.hh"

namespace
{

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: %s [--root DIR] [--json FILE] [--sarif FILE]\n"
        "          [--pass textual|semantic] [--mutate-check]\n"
        "          [--list-rules] [--verbose] [dir...]\n"
        "Lints the union of the dirs (default: src tools tests) under\n"
        "--root (default: .) as one tree.\n"
        "Exits 1 if any finding lacks a valid suppression (or, with\n"
        "--mutate-check, if the keylint self-test fails).\n",
        argv0);
    return code;
}

int
runMutateCheck(const std::vector<moatlint::SourceFile> &files)
{
    const moatlint::MutateReport rep = moatlint::mutateCheck(files);
    if (!rep.baseline.empty()) {
        for (const auto &f : rep.baseline)
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        std::fprintf(stderr,
                     "moatlint: mutate-check needs a clean baseline; "
                     "%zu key finding(s) present\n",
                     rep.baseline.size());
        return 1;
    }
    std::size_t caught = 0;
    for (const auto &m : rep.mutants) {
        if (m.caught) {
            ++caught;
            continue;
        }
        std::fprintf(stderr,
                     "moatlint: mutant NOT caught: %s::%s (%s, "
                     "expected %s)\n",
                     m.structName.c_str(), m.field.c_str(),
                     m.keyFn.c_str(),
                     m.exempt ? "key-exempt-leak" : "key-coverage");
    }
    std::fprintf(stderr,
                 "moatlint: mutate-check: %zu/%zu mutants caught "
                 "across the key-source contracts\n",
                 caught, rep.mutants.size());
    if (rep.mutants.empty()) {
        std::fprintf(stderr,
                     "moatlint: mutate-check found no key-source "
                     "contracts to mutate\n");
        return 1;
    }
    return caught == rep.mutants.size() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string json_path;
    std::string sarif_path;
    std::string pass_filter;
    bool list_rules = false;
    bool verbose = false;
    bool mutate_check = false;
    std::vector<std::string> dirs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (arg == "--pass" && i + 1 < argc) {
            pass_filter = argv[++i];
            if (pass_filter != "textual" && pass_filter != "semantic") {
                std::fprintf(stderr,
                             "moatlint: --pass must be textual or "
                             "semantic, got %s\n",
                             pass_filter.c_str());
                return 2;
            }
        } else if (arg == "--mutate-check") {
            mutate_check = true;
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--verbose" || arg == "-v") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "moatlint: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0], 2);
        } else {
            dirs.push_back(arg);
        }
    }

    if (list_rules) {
        for (const auto &r : moatlint::rules())
            std::printf("%-16s [%s] %s\n", r.name.c_str(),
                        moatlint::passOf(r.name), r.summary.c_str());
        return 0;
    }

    if (dirs.empty())
        dirs = {"src", "tools", "tests"};

    // One combined file set: cross-file analyses (sealed-dispatch,
    // keylint's fold-closure reach) see every directory at once.
    std::vector<moatlint::SourceFile> files;
    for (const auto &dir : dirs) {
        const std::filesystem::path tree =
            std::filesystem::path(root) / dir;
        if (!std::filesystem::exists(tree)) {
            std::fprintf(stderr, "moatlint: no such directory: %s\n",
                         tree.string().c_str());
            return 2;
        }
        auto part = moatlint::readSourceTree(tree.string());
        files.insert(files.end(), part.begin(), part.end());
    }

    if (mutate_check)
        return runMutateCheck(files);

    std::vector<moatlint::Finding> findings =
        moatlint::lintFiles(files);
    if (!pass_filter.empty()) {
        std::erase_if(findings, [&](const moatlint::Finding &f) {
            return pass_filter != moatlint::passOf(f.rule);
        });
    }
    moatlint::sortFindings(findings);

    std::size_t suppressed = 0;
    for (const auto &f : findings) {
        if (f.suppressed) {
            ++suppressed;
            if (verbose)
                std::printf(
                    "%s:%d: [%s] suppressed: %s (justification: %s)\n",
                    f.file.c_str(), f.line, f.rule.c_str(),
                    f.message.c_str(), f.justification.c_str());
            continue;
        }
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    }

    const auto write_report = [&](const std::string &path,
                                  const std::string &report) {
        if (path == "-") {
            std::printf("%s\n", report.c_str());
            return true;
        }
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "moatlint: cannot write %s\n",
                         path.c_str());
            return false;
        }
        os << report << "\n";
        return true;
    };
    if (!json_path.empty() &&
        !write_report(json_path, moatlint::reportJson(findings)))
        return 2;
    if (!sarif_path.empty() &&
        !write_report(sarif_path, moatlint::reportSarif(findings)))
        return 2;

    const std::size_t bad = moatlint::unsuppressedCount(findings);
    std::fprintf(stderr,
                 "moatlint: %zu finding(s), %zu unsuppressed, "
                 "%zu suppressed\n",
                 findings.size(), bad, suppressed);
    return bad == 0 ? 0 : 1;
}
