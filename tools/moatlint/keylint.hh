/**
 * @file
 * keylint: the semantic key-soundness pass of moatlint.
 *
 * moatsim serves answers from content-addressed caches (TraceStore,
 * ResultStore): a config field that shapes results but is not folded
 * into its key silently returns stale data on warm runs, and a field
 * that must NOT perturb the key (jobs counts, output paths, store
 * toggles) destroys cache hits if it leaks into the fold. Both bugs
 * are invisible to tests until someone varies the exact field, so --
 * in the spirit of clang's Thread Safety Analysis, as already adopted
 * for locks in common/thread_annotations.hh -- the invariant is
 * annotated at the struct and machine-checked on every build:
 *
 *     // moatlint: key-source(configKey)
 *     struct TraceGenConfig { ... };
 *
 * declares that every field of TraceGenConfig must be reachable in the
 * fold body of configKey (direct `.field` mention, a hashCombine chain
 * through helper functions, or a nested struct's own key-source), and
 *
 *     // moatlint: key-exempt(configKey): scheduling knob, results
 *     // are bit-identical at any value
 *     unsigned jobs = 0;
 *
 * declares the opposite contract for one field: it must be ABSENT
 * from the fold. Key functions may be named bare (configKey) or
 * qualified (ResultStore::foldKey, DeviceSpec::describe); a
 * key-source may list several functions separated by commas, and a
 * field is covered when the union of their fold closures reaches it.
 *
 * Rules emitted (suppressable with the usual allow() grammar):
 *
 *   key-coverage     a non-exempt field of a key-source struct is not
 *                    reachable in the key function's fold closure.
 *   key-exempt-leak  a key-exempt field appears in the fold body
 *                    (over-keying: cache hits silently vanish).
 *   key-source-drift the annotation and the code disagree: the key
 *                    function has no definition in the linted tree,
 *                    the annotation is not attached to a struct or
 *                    field, a key-exempt names a function that is not
 *                    a key-source of its struct, or a field of a
 *                    key-source type never calls that type's key
 *                    functions (nested key bypassed).
 *
 * The pass ships its own regression oracle: mutateCheck() deletes one
 * field's fold mentions (or re-inserts an exempt field) in an
 * in-memory copy of the tree and asserts the pass fires -- proving
 * the analyzer detects the bug class it exists for, not just that the
 * current tree is clean.
 */

#ifndef MOATLINT_KEYLINT_HH
#define MOATLINT_KEYLINT_HH

#include "moatlint/lint.hh"

#include <string>
#include <vector>

namespace moatlint
{

/**
 * Run the key-soundness pass over @p files (every file of the linted
 * tree, so cross-file key functions resolve). Returns raw findings;
 * the caller (lintFiles) applies suppressions. When @p tree_mode is
 * false (lintSource on one snippet), a key function that is declared
 * but not defined in the snippet is not reported as drift -- fixture
 * and header-only views stay quiet.
 */
std::vector<Finding> keylintFiles(const std::vector<SourceFile> &files,
                                  bool tree_mode);

/**
 * Whether @p line contains a key-source/key-exempt directive in any
 * spelling. lint.cc's unknown-directive check uses it to leave key
 * annotations to this pass (which validates them properly and reports
 * malformed ones as bad-suppression).
 */
bool keyDirectiveLine(const std::string &line);

/** One seeded mutation of the tree and whether keylint caught it. */
struct MutantOutcome
{
    /** Qualified struct name ("ResultStore::Config"). */
    std::string structName;
    std::string field;
    /** Key function(s) of the contract, comma-joined. */
    std::string keyFn;
    /** True: re-inserted a key-exempt field (expects key-exempt-leak);
     *  false: deleted a covered field's fold (expects key-coverage). */
    bool exempt = false;
    bool caught = false;
};

/** mutateCheck() result: the oracle passes when baseline is empty and
 *  every mutant was caught. */
struct MutateReport
{
    /** Key-rule findings already present before mutating (the tree
     *  must be clean for the oracle to be meaningful). */
    std::vector<Finding> baseline;
    std::vector<MutantOutcome> mutants;

    bool ok() const
    {
        if (!baseline.empty() || mutants.empty())
            return false;
        for (const auto &m : mutants) {
            if (!m.caught)
                return false;
        }
        return true;
    }
};

/**
 * The analyzer's self-test: for every key-source contract in @p files,
 * (a) for each covered field, blank its fold mentions inside the key
 * closure and assert key-coverage fires for exactly that field, and
 * (b) for each key-exempt field, insert a use into the fold body and
 * assert key-exempt-leak fires. Mutations are applied to in-memory
 * copies; nothing on disk changes. Collateral findings on other
 * contracts sharing a fold helper are expected and ignored.
 */
MutateReport mutateCheck(const std::vector<SourceFile> &files);

} // namespace moatlint

#endif // MOATLINT_KEYLINT_HH
