#include "moatlint/keylint.hh"

#include "moatlint/cxx_scan.hh"

#include <algorithm>
#include <cctype>
#include <deque>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace moatlint
{

namespace
{

// ------------------------------------------------------------- utils

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** Last "::" component of a (possibly qualified) function name. */
std::string
lastComp(const std::string &name)
{
    const size_t at = name.rfind("::");
    return at == std::string::npos ? name : name.substr(at + 2);
}

std::string
join(const std::vector<std::string> &parts, const char *sep)
{
    std::string out;
    for (const auto &p : parts) {
        if (!out.empty())
            out += sep;
        out += p;
    }
    return out;
}

bool
validFnName(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
        return false;
    for (const char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != ':')
            return false;
    }
    return true;
}

/** Comma-split, trimmed; empty or malformed entries fail the parse. */
std::vector<std::string>
splitFns(const std::string &list, bool *ok)
{
    std::vector<std::string> fns;
    *ok = false;
    std::istringstream is(list);
    std::string item;
    while (std::getline(is, item, ',')) {
        const size_t b = item.find_first_not_of(" \t");
        if (b == std::string::npos)
            return fns;
        const size_t e = item.find_last_not_of(" \t");
        item = item.substr(b, e - b + 1);
        if (!validFnName(item))
            return fns;
        fns.push_back(item);
    }
    *ok = !fns.empty();
    return fns;
}

// --------------------------------------------------------- structure

/** One input file, pre-masked and declaration-scanned. */
struct KeyFile
{
    std::string code; // comments and string bodies masked
    std::vector<size_t> lines;
    cxx::FileDecls decls;
};

/** A function-body span within the file set. */
struct Body
{
    int file = -1;
    size_t begin = 0;
    size_t end = 0;
};

/** One key-source struct with its resolved fold machinery. */
struct Contract
{
    int file = -1;
    int struct_idx = -1;
    /** Key function names as annotated (bare or qualified). */
    std::vector<std::string> fns;
    /** Defined bodies of the annotated functions. */
    std::vector<Body> direct;
    /** direct + transitively called defined functions. */
    std::vector<Body> closure;
    /** Every name called anywhere in the closure, plus the key
     *  functions themselves (nested delegation checks against it). */
    std::set<std::string> called;
    /** True when a key fn is a member of the struct, so bare field
     *  mentions (org_) count as fold reach, not just .field ones. */
    bool member_fold = false;
    bool resolved = false;
    std::map<std::string, std::string> exempt; // field -> justification
};

struct Analysis
{
    std::vector<KeyFile> files;
    const std::vector<SourceFile> *srcs = nullptr;
    std::vector<Contract> contracts;
    std::vector<Finding> findings;
};

const cxx::StructDecl &
structOf(const Analysis &a, const Contract &c)
{
    return a.files[c.file].decls.structs[c.struct_idx];
}

// -------------------------------------------------------- annotations

struct Annotation
{
    int file = -1;
    int line = 0;   // line the comment sits on
    int target = 0; // line it annotates
    bool exempt = false;
    std::vector<std::string> fns;
    std::string justification;
};

const std::regex &
keySourceRe()
{
    static const std::regex re(
        R"(//\s*moatlint:\s*key-source\(([^()]*)\)\s*$)");
    return re;
}

const std::regex &
keyExemptRe()
{
    static const std::regex re(
        R"(//\s*moatlint:\s*key-exempt\(([^()]*)\)\s*:?[ \t]*(.*))");
    return re;
}

void
parseAnnotations(int fi, const std::string &raw,
                 const std::string &path,
                 std::vector<Annotation> &annos,
                 std::vector<Finding> &out)
{
    // Block comments and strings masked, line comments kept: the
    // directives live in line comments, and a directive-shaped string
    // in a fixture (or an example in a /** */ doc block) must not
    // register.
    const std::string sup = cxx::maskSource(
        raw, cxx::kMaskBlockComments | cxx::kMaskStrings);
    std::istringstream is(sup);
    std::string line;
    std::vector<bool> comment_lines;
    std::vector<Annotation> local;
    int n = 0;
    while (std::getline(is, line)) {
        ++n;
        const size_t first = line.find_first_not_of(" \t");
        comment_lines.push_back(first != std::string::npos &&
                                line.compare(first, 2, "//") == 0);
        if (line.find("moatlint:") == std::string::npos)
            continue;
        if (!keyDirectiveLine(line))
            continue; // allow() and unknown directives: lint.cc's job
        std::smatch m;
        Annotation an;
        an.file = fi;
        an.line = n;
        bool fns_ok = false;
        if (std::regex_search(line, m, keySourceRe())) {
            an.exempt = false;
            an.fns = splitFns(m[1], &fns_ok);
        } else if (std::regex_search(line, m, keyExemptRe())) {
            an.exempt = true;
            an.fns = splitFns(m[1], &fns_ok);
            an.justification = m[2];
            while (!an.justification.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       an.justification.back())))
                an.justification.pop_back();
            if (fns_ok && an.justification.empty()) {
                out.push_back(
                    {path, n, "bad-suppression",
                     "key-exempt annotation is missing its "
                     "justification (write \"// moatlint: key-exempt(" +
                         join(an.fns, ",") +
                         "): <why this field must not perturb the "
                         "key>\")",
                     false, ""});
                continue;
            }
        } else {
            out.push_back(
                {path, n, "bad-suppression",
                 "malformed key annotation (write \"// moatlint: "
                 "key-source(<keyFn>)\" on the line above a struct, or "
                 "\"// moatlint: key-exempt(<keyFn>): <why>\" above a "
                 "field)",
                 false, ""});
            continue;
        }
        if (!fns_ok) {
            out.push_back(
                {path, n, "bad-suppression",
                 "malformed key annotation: the function list must be "
                 "one or more comma-separated identifiers (optionally "
                 "qualified, e.g. ResultStore::foldKey)",
                 false, ""});
            continue;
        }
        const std::string before = m.prefix();
        const bool standalone =
            before.find_first_not_of(" \t") == std::string::npos;
        an.target = standalone ? n + 1 : n;
        local.push_back(std::move(an));
    }
    // Like allow(): a standalone annotation reaches past whole-line
    // comments (justification continuations) to the code below.
    for (auto &an : local) {
        if (an.target == an.line)
            continue;
        int t = an.target;
        while (t <= static_cast<int>(comment_lines.size()) &&
               comment_lines[t - 1])
            ++t;
        an.target = t;
    }
    annos.insert(annos.end(), local.begin(), local.end());
}

// --------------------------------------------------------- resolution

void
attachAnnotations(Analysis &a, const std::vector<Annotation> &annos)
{
    const auto &srcs = *a.srcs;
    // key-source first: exempts attach to the contracts they create.
    for (const auto &an : annos) {
        if (an.exempt)
            continue;
        const KeyFile &kf = a.files[an.file];
        bool attached = false;
        for (size_t si = 0; si < kf.decls.structs.size(); ++si) {
            if (cxx::lineOf(kf.lines, kf.decls.structs[si].head) !=
                an.target)
                continue;
            Contract c;
            c.file = an.file;
            c.struct_idx = static_cast<int>(si);
            c.fns = an.fns;
            a.contracts.push_back(std::move(c));
            attached = true;
            break;
        }
        if (!attached)
            a.findings.push_back(
                {srcs[an.file].path, an.line, "key-source-drift",
                 "key-source annotation does not precede a struct or "
                 "class definition (nothing to hold to the contract)",
                 false, ""});
    }
    for (const auto &an : annos) {
        if (!an.exempt)
            continue;
        const KeyFile &kf = a.files[an.file];
        bool on_field = false;
        bool attached = false;
        for (auto &c : a.contracts) {
            if (c.file != an.file)
                continue;
            const cxx::StructDecl &s = structOf(a, c);
            for (const auto &field : s.fields) {
                if (cxx::lineOf(kf.lines, field.offset) != an.target)
                    continue;
                on_field = true;
                bool fns_match = true;
                for (const auto &fn : an.fns) {
                    bool found = false;
                    for (const auto &cfn : c.fns) {
                        if (fn == cfn ||
                            lastComp(fn) == lastComp(cfn))
                            found = true;
                    }
                    fns_match = fns_match && found;
                }
                if (!fns_match) {
                    a.findings.push_back(
                        {srcs[an.file].path, an.line,
                         "key-source-drift",
                         "key-exempt names '" + join(an.fns, ",") +
                             "', which is not a key-source function "
                             "of struct '" +
                             s.qualified + "' (declared: " +
                             join(c.fns, ", ") + ")",
                         false, ""});
                    continue;
                }
                c.exempt[field.name] = an.justification;
                attached = true;
            }
        }
        if (!attached && !on_field)
            a.findings.push_back(
                {srcs[an.file].path, an.line, "key-source-drift",
                 "key-exempt annotation is not attached to a field of "
                 "a key-source struct",
                 false, ""});
    }
}

void
resolveContracts(Analysis &a, bool tree_mode)
{
    const auto &srcs = *a.srcs;
    for (auto &c : a.contracts) {
        const cxx::StructDecl &s = structOf(a, c);
        const int head_line =
            cxx::lineOf(a.files[c.file].lines, s.head);
        for (const auto &fn : c.fns) {
            const bool qualified =
                fn.find("::") != std::string::npos;
            bool declared = false;
            bool defined = false;
            for (size_t fi = 0; fi < a.files.size(); ++fi) {
                for (const auto &fd : a.files[fi].decls.functions) {
                    const bool match = qualified
                                           ? fd.qualified == fn
                                           : fd.name == fn;
                    if (!match)
                        continue;
                    declared = true;
                    if (!fd.defined)
                        continue;
                    defined = true;
                    c.direct.push_back({static_cast<int>(fi),
                                        fd.body_begin, fd.body_end});
                    if (startsWith(fd.qualified, s.name + "::") ||
                        startsWith(fd.qualified,
                                   s.qualified + "::"))
                        c.member_fold = true;
                }
            }
            // A declared-but-not-defined key fn is fine when linting
            // a lone header (the impl lives in the unseen .cc); on a
            // full tree it means the contract checks nothing.
            if (!defined && (tree_mode || !declared))
                a.findings.push_back(
                    {srcs[c.file].path, head_line, "key-source-drift",
                     "key-source function '" + fn + "' of struct '" +
                         s.qualified +
                         "' has no definition in the linted tree; "
                         "the key contract is unverifiable",
                     false, ""});
        }
        c.resolved = !c.direct.empty();
        if (!c.resolved)
            continue;

        // Transitive closure over called names: a fold that routes
        // through helpers (hashCombine chains, subchannelsOf) still
        // covers the fields those helpers touch.
        constexpr size_t kMaxBodies = 64;
        constexpr int kMaxDepth = 6;
        std::set<std::string> visited;
        for (const auto &fn : c.fns) {
            c.called.insert(lastComp(fn));
            visited.insert(lastComp(fn));
        }
        c.closure = c.direct;
        std::deque<std::pair<Body, int>> queue;
        for (const auto &b : c.direct)
            queue.push_back({b, 0});
        while (!queue.empty() && c.closure.size() < kMaxBodies) {
            const auto [b, depth] = queue.front();
            queue.pop_front();
            const std::string body = a.files[b.file].code.substr(
                b.begin, b.end - b.begin);
            for (const auto &name : cxx::calledNames(body)) {
                c.called.insert(name);
                if (depth >= kMaxDepth)
                    continue;
                if (!visited.insert(name).second)
                    continue;
                for (size_t fi = 0; fi < a.files.size(); ++fi) {
                    for (const auto &fd :
                         a.files[fi].decls.functions) {
                        if (!fd.defined || fd.name != name)
                            continue;
                        if (c.closure.size() >= kMaxBodies)
                            break;
                        const Body nb{static_cast<int>(fi),
                                      fd.body_begin, fd.body_end};
                        c.closure.push_back(nb);
                        queue.push_back({nb, depth + 1});
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------- field checks

bool
mentionsField(const std::string &body, const std::string &name,
              bool bare_ok)
{
    if (!cxx::memberRefs(body, name).empty())
        return true;
    return bare_ok && !cxx::identRefs(body, name).empty();
}

std::string
bodyText(const Analysis &a, const Body &b)
{
    return a.files[b.file].code.substr(b.begin, b.end - b.begin);
}

bool
fieldCovered(const Analysis &a, const Contract &c,
             const std::string &name)
{
    for (const auto &b : c.closure) {
        if (mentionsField(bodyText(a, b), name, c.member_fold))
            return true;
    }
    return false;
}

bool
fieldInDirectFold(const Analysis &a, const Contract &c,
                  const std::string &name)
{
    for (const auto &b : c.direct) {
        if (mentionsField(bodyText(a, b), name, c.member_fold))
            return true;
    }
    return false;
}

void
checkContracts(Analysis &a)
{
    const auto &srcs = *a.srcs;
    for (const auto &c : a.contracts) {
        if (!c.resolved)
            continue;
        const cxx::StructDecl &s = structOf(a, c);
        const KeyFile &kf = a.files[c.file];
        const std::string fn_label = join(c.fns, "/");
        for (const auto &field : s.fields) {
            const int line = cxx::lineOf(kf.lines, field.offset);
            const std::string label = s.qualified + "::" + field.name;
            if (c.exempt.count(field.name)) {
                if (fieldInDirectFold(a, c, field.name))
                    a.findings.push_back(
                        {srcs[c.file].path, line, "key-exempt-leak",
                         "field '" + label +
                             "' is key-exempt but appears in the fold "
                             "body of '" +
                             fn_label +
                             "'; exempt fields must not perturb the "
                             "key (over-keying silently destroys "
                             "cache hits)",
                         false, ""});
                continue;
            }
            if (!fieldCovered(a, c, field.name)) {
                a.findings.push_back(
                    {srcs[c.file].path, line, "key-coverage",
                     "field '" + label +
                         "' is not reachable in key function '" +
                         fn_label +
                         "'; fold it (hashCombine) or annotate \"// "
                         "moatlint: key-exempt(" +
                         fn_label +
                         "): <why>\" if it must not perturb the key",
                     false, ""});
                continue;
            }
            // Nested delegation: a field whose type is itself a
            // key-source struct must route through that struct's key
            // functions, not restate (a subset of) its fields.
            for (const auto &c2 : a.contracts) {
                if (&c2 == &c)
                    continue;
                const cxx::StructDecl &t = structOf(a, c2);
                if (t.name != field.type && t.qualified != field.type)
                    continue;
                bool delegated = false;
                for (const auto &fn : c2.fns) {
                    if (c.called.count(lastComp(fn)))
                        delegated = true;
                }
                if (!delegated)
                    a.findings.push_back(
                        {srcs[c.file].path, line, "key-source-drift",
                         "field '" + label +
                             "' has key-source type '" + t.qualified +
                             "' but '" + fn_label +
                             "' never calls its key function(s) '" +
                             join(c2.fns, ", ") +
                             "'; the nested key is bypassed",
                         false, ""});
                break;
            }
        }
    }
}

Analysis
analyze(const std::vector<SourceFile> &files, bool tree_mode)
{
    Analysis a;
    a.srcs = &files;
    a.files.reserve(files.size());
    std::vector<Annotation> annos;
    for (size_t i = 0; i < files.size(); ++i) {
        KeyFile kf;
        kf.code = cxx::maskSource(
            files[i].content, cxx::kMaskComments | cxx::kMaskStrings);
        kf.lines = cxx::lineStartsOf(files[i].content);
        kf.decls = cxx::scanDecls(kf.code);
        a.files.push_back(std::move(kf));
        parseAnnotations(static_cast<int>(i), files[i].content,
                         files[i].path, annos, a.findings);
    }
    attachAnnotations(a, annos);
    resolveContracts(a, tree_mode);
    checkContracts(a);
    return a;
}

void
finishFindings(std::vector<Finding> &findings)
{
    sortFindings(findings);
    findings.erase(
        std::unique(findings.begin(), findings.end(),
                    [](const Finding &x, const Finding &y) {
                        return x.file == y.file && x.line == y.line &&
                               x.rule == y.rule &&
                               x.message == y.message;
                    }),
        findings.end());
}

} // namespace

// ------------------------------------------------------------- public

bool
keyDirectiveLine(const std::string &line)
{
    static const std::regex re(
        R"(//\s*moatlint:\s*key-(source|exempt)\b)");
    return std::regex_search(line, re);
}

std::vector<Finding>
keylintFiles(const std::vector<SourceFile> &files, bool tree_mode)
{
    Analysis a = analyze(files, tree_mode);
    std::vector<Finding> findings = std::move(a.findings);
    finishFindings(findings);
    return findings;
}

MutateReport
mutateCheck(const std::vector<SourceFile> &files)
{
    MutateReport rep;
    for (const auto &f : keylintFiles(files, true)) {
        if (f.rule == "key-coverage" || f.rule == "key-exempt-leak" ||
            f.rule == "key-source-drift")
            rep.baseline.push_back(f);
    }
    if (!rep.baseline.empty())
        return rep;

    const Analysis a = analyze(files, true);
    for (const auto &c : a.contracts) {
        if (!c.resolved)
            continue;
        const cxx::StructDecl &s = structOf(a, c);
        const std::string fn_label = join(c.fns, "/");
        for (const auto &field : s.fields) {
            const std::string label = s.qualified + "::" + field.name;
            const std::string quoted = "'" + label + "'";
            MutantOutcome mo;
            mo.structName = s.qualified;
            mo.field = field.name;
            mo.keyFn = fn_label;
            if (c.exempt.count(field.name)) {
                // Re-insert the exempt field into the fold body and
                // expect key-exempt-leak.
                mo.exempt = true;
                std::vector<SourceFile> mut(files);
                const Body &b = c.direct.front();
                const std::string use =
                    c.member_fold
                        ? " (void) " + field.name + ";"
                        : " (void) qz__." + field.name + ";";
                mut[b.file].content.insert(b.begin + 1, use);
                for (const auto &fi : keylintFiles(mut, true)) {
                    if (fi.rule == "key-exempt-leak" &&
                        fi.message.find(quoted) != std::string::npos)
                        mo.caught = true;
                }
            } else {
                if (!fieldCovered(a, c, field.name))
                    continue; // baseline already reported it
                // Blank every fold mention inside the closure and
                // expect key-coverage. Masking preserves offsets, so
                // positions found in the masked code are valid in the
                // raw text.
                mo.exempt = false;
                std::vector<SourceFile> mut(files);
                const std::string filler(field.name.size(), 'q');
                for (const auto &b : c.closure) {
                    const std::string body = bodyText(a, b);
                    for (size_t off :
                         cxx::memberRefs(body, field.name))
                        mut[b.file].content.replace(
                            b.begin + off, field.name.size(), filler);
                    if (c.member_fold) {
                        for (size_t off :
                             cxx::identRefs(body, field.name))
                            mut[b.file].content.replace(
                                b.begin + off, field.name.size(),
                                filler);
                    }
                }
                for (const auto &fi : keylintFiles(mut, true)) {
                    if (fi.rule == "key-coverage" &&
                        fi.message.find(quoted) != std::string::npos)
                        mo.caught = true;
                }
            }
            rep.mutants.push_back(std::move(mo));
        }
    }
    return rep;
}

} // namespace moatlint
